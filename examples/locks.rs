//! Mutual exclusion does NOT separate the models — the contrast that makes
//! the paper's signaling result interesting (§3).
//!
//! Local-spin locks (MCS, Yang–Anderson tournament) cost the same in CC and
//! DSM; Anderson's array lock is local-spin in CC only; TAS/TTAS collapse
//! under contention. Run with: `cargo run --release --example locks`

use cc_dsm::mutex::{run_lock_workload, LockWorkloadConfig, MutexAlgorithm};
use cc_dsm::shm::CostModel;

fn main() {
    let locks: Vec<Box<dyn MutexAlgorithm>> = vec![
        Box::new(cc_dsm::mutex::TasLock),
        Box::new(cc_dsm::mutex::TtasLock),
        Box::new(cc_dsm::mutex::AndersonLock),
        Box::new(cc_dsm::mutex::McsLock),
        Box::new(cc_dsm::mutex::TournamentLock),
    ];
    println!("RMRs per passage, 16 contenders x 4 passages each, seed 7\n");
    println!(
        "{:<12} {:>10} {:>10} {:>22}",
        "lock", "CC", "DSM", "CC vs DSM"
    );
    for lock in &locks {
        let mut per_model = Vec::new();
        for model in [CostModel::cc_default(), CostModel::Dsm] {
            let r = run_lock_workload(
                lock.as_ref(),
                &LockWorkloadConfig {
                    n: 16,
                    cycles: 4,
                    seed: 7,
                    model,
                },
            );
            assert!(r.completed, "{} stalled", lock.name());
            assert!(
                r.violations.is_empty(),
                "{} violated mutual exclusion",
                lock.name()
            );
            per_model.push(r.rmrs_per_passage());
        }
        let (cc, dsm) = (per_model[0], per_model[1]);
        let verdict = if dsm > 3.0 * cc {
            "local-spin in CC only"
        } else if (cc - dsm).abs() / cc.max(dsm) < 0.6 {
            "same in both models"
        } else {
            "model-dependent"
        };
        println!(
            "{:<12} {:>10.2} {:>10.2} {:>22}",
            lock.name(),
            cc,
            dsm,
            verdict
        );
    }
    println!("\nFor mutual exclusion the tight RMR bounds agree across models");
    println!("(Θ(log N) for reads/writes, O(1) with RMW primitives) — the paper");
    println!("needed the *signaling problem* to separate CC from DSM.");

    // Coda: group mutual exclusion, the problem where Hadzilacos and Danek
    // found the *first* CC/DSM separation (§3). Two sessions share the
    // floor; conflicting sessions exclude each other.
    let gme = cc_dsm::mutex::MutexBackedGme {
        lock: cc_dsm::mutex::TournamentLock,
    };
    let r = cc_dsm::mutex::run_gme_workload(
        &gme,
        &cc_dsm::mutex::GmeWorkloadConfig {
            sessions: vec![0, 0, 0, 1, 1, 1],
            cycles: 3,
            seed: 2,
            model: CostModel::Dsm,
        },
    );
    assert!(r.completed && r.violations.is_empty());
    println!("\nGME (2 sessions, 6 processes, tournament-backed): safe across");
    println!(
        "{} events; same-session processes overlapped in the critical section",
        r.sim.history().len()
    );
    println!("while cross-session overlap never occurred — the §3 problem family,");
    println!("executable (see shm-mutex::gme).");
}
