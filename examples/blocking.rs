//! Blocking semantics (§4/§7): `Wait()` returns only after `Signal()` has
//! begun — and a good DSM algorithm waits by spinning on *local* memory.
//!
//! Compares three `Wait()` implementations with the waiters parked for a
//! long time before the signal arrives:
//!
//! * `cc-flag` — spin on the global Boolean: free in CC, an RMR per spin in DSM;
//! * `fixed-signaler` — register, then spin on your own flag: O(1) in both;
//! * `queue-faa` — register in the FAA list, then spin locally: O(1) in both,
//!   with nobody fixed in advance.
//!
//! Run with: `cargo run --release --example blocking`

use cc_dsm::shm::{CostModel, ProcId, RoundRobin, Simulator};
use cc_dsm::signaling::algorithms::{CcFlag, FixedSignaler, QueueSignaling};
use cc_dsm::signaling::{check_blocking, Role, Scenario, SignalingAlgorithm};

fn main() {
    let n_waiters = 6u32;
    let park_steps = 500; // how long each waiter spins before the signal
    let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
        Box::new(CcFlag),
        Box::new(FixedSignaler {
            signaler: ProcId(n_waiters),
        }),
        Box::new(QueueSignaling),
    ];

    println!("blocking waiters parked ~{park_steps} steps before the signal\n");
    println!(
        "{:<16} {:>8} {:>24} {:>18}",
        "algorithm", "model", "max waiter RMRs", "signaler RMRs"
    );
    for algo in &algos {
        for (label, model) in [("cc", CostModel::cc_default()), ("dsm", CostModel::Dsm)] {
            let mut roles = vec![Role::BlockingWaiter; n_waiters as usize];
            roles.push(Role::signaler());
            let scenario = Scenario {
                algorithm: algo.as_ref(),
                roles,
                model,
            };
            let spec = scenario.build();
            let mut sim = Simulator::new(&spec);
            // Park: every waiter spins inside Wait() while the signaler is
            // withheld by the scheduler.
            for _ in 0..park_steps {
                for w in 0..n_waiters {
                    let _ = sim.step(ProcId(w));
                }
            }
            let ok = cc_dsm::shm::run_to_completion(&mut sim, &mut RoundRobin::new(), 10_000_000);
            assert!(ok, "{} did not complete", algo.name());
            assert_eq!(check_blocking(sim.history()), Ok(()));
            let max_waiter = (0..n_waiters)
                .map(|w| sim.proc_stats(ProcId(w)).rmrs)
                .max()
                .unwrap_or(0);
            println!(
                "{:<16} {:>8} {:>24} {:>18}",
                algo.name(),
                label,
                max_waiter,
                sim.proc_stats(ProcId(n_waiters)).rmrs
            );
        }
    }
    println!("\ncc-flag's DSM row shows the busy-wait pathology (one RMR per spin);");
    println!("the registration-based algorithms wait for free in both models by");
    println!("spinning on a flag in the waiter's own memory module.");
}
