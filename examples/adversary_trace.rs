//! Watch the §6 construction at miniature scale, with labelled variables.
//!
//! Runs the lower-bound adversary against the single-waiter algorithm with
//! just six processes and prints the entire constructed history using the
//! trace renderer: you can see the first polls pile onto `W`, the
//! roll-forward of the last writer, stabilization onto the local `V[i]`
//! flags, and the injected `Signal()` at the end.
//!
//! Run with: `cargo run --release --example adversary_trace`

use cc_dsm::adversary::{Part1Config, Part1Runner};
use cc_dsm::shm::{trace, Call, ProcId, TransitionPeek};
use cc_dsm::signaling::algorithms::SingleWaiter;
use cc_dsm::signaling::kinds;

fn main() {
    let n = 6;
    let cfg = Part1Config {
        n,
        ..Part1Config::default()
    };
    let mut runner = Part1Runner::new(&SingleWaiter, cfg);
    let labels = runner.spec.layout.labels().clone();
    let outcome = runner.run();

    println!("== Part 1: erase / roll forward / stabilize (N = {n}) ==\n");
    for r in &outcome.rounds {
        println!(
            "round {}: pending {}, newly stable {}, erased {:?}, rolled forward {:?}{}",
            r.index,
            r.pending,
            r.newly_stable,
            r.erased,
            r.rolled_forward,
            if r.roll_forward_case {
                "  [roll-forward case]"
            } else {
                ""
            },
        );
    }
    println!(
        "\nstable = {:?}, finished = {:?}, erased = {:?}, regular = {}\n",
        outcome.stable, outcome.finished, outcome.erased, outcome.regular
    );
    println!("== The constructed history (RMRs starred) ==\n");
    print!(
        "{}",
        trace::render(runner.sim.history().events(), &labels, None)
    );

    // Inject a Signal() into a process whose module nobody wrote and run it
    // to completion, printing its steps.
    let s = (0..n as u32)
        .map(ProcId)
        .find(|p| runner.sim.proc_stats(*p).steps == 0)
        .or_else(|| outcome.stable.first().copied())
        .expect("a signaler exists");
    println!("\n== Solo Signal() by {s} ==\n");
    let before = runner.sim.history().len();
    let rmrs_before = runner.sim.proc_stats(s).rmrs;
    runner.sim.inject_call(
        s,
        Call::new(kinds::SIGNAL, "Signal", runner.instance.signal_call(s)),
    );
    loop {
        match runner.sim.peek_transition(s) {
            TransitionPeek::Return { kind, .. } => {
                let _ = runner.sim.step(s);
                if kind == kinds::SIGNAL {
                    break;
                }
            }
            TransitionPeek::Access(_) => {
                let _ = runner.sim.step(s);
            }
            _ => break,
        }
    }
    print!(
        "{}",
        trace::render(runner.sim.history().events_from(before), &labels, None)
    );
    println!(
        "\nSignal() cost {s} {} RMRs; it saw only W's last writer — every other",
        runner.sim.proc_stats(s).rmrs - rmrs_before
    );
    println!("stable waiter is still spinning on its local V[i] = 0, and its next");
    println!("Poll() would return false: with many waiters this algorithm violates");
    println!("Specification 4.1, which is exactly how the adversary indicts it");
    println!("(single-waiter is only specified for one waiter; see the separation");
    println!("example for the full zoo).");
}
