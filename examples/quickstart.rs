//! Quickstart: the paper's headline contrast in one run.
//!
//! The §5 algorithm (one shared Boolean) solves the signaling problem with
//! O(1) RMRs per process in the cache-coherent model. Price the *same*
//! execution in the DSM model and every poll of the global flag becomes a
//! remote memory reference.
//!
//! Run with: `cargo run --example quickstart`

use cc_dsm::shm::{run_to_completion, CostModel, ProcId, RoundRobin, Scripted, Simulator};
use cc_dsm::signaling::algorithms::CcFlag;
use cc_dsm::signaling::{check_polling, Role, Scenario};

fn main() {
    let n_waiters = 8;
    let polls_before_signal = 20;

    // A fixed, adversarial-ish schedule: every waiter polls
    // `polls_before_signal` times, then the signaler runs, then everyone
    // finishes. Using the same scripted schedule under both cost models
    // prices the identical execution twice.
    let mut order = Vec::new();
    for _ in 0..polls_before_signal {
        for w in 0..n_waiters {
            order.extend(std::iter::repeat_n(ProcId(w), 4));
        }
    }
    for p in 0..=n_waiters {
        order.extend(std::iter::repeat_n(ProcId(p), 8));
    }

    println!("signaling with one shared Boolean (the §5 algorithm), {n_waiters} waiters");
    println!("each waiter polls {polls_before_signal}x before the signal arrives\n");
    println!(
        "{:<28} {:>12} {:>16}",
        "model", "total RMRs", "max RMRs/process"
    );

    for (label, model) in [
        ("cache-coherent (CC)", CostModel::cc_default()),
        ("distributed shared (DSM)", CostModel::Dsm),
    ] {
        let mut roles = vec![Role::waiter(); n_waiters as usize];
        roles.push(Role::signaler());
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles,
            model,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        // Play the fixed interleaving, then drain fairly to completion.
        cc_dsm::shm::run(&mut sim, &mut Scripted::new(order.clone()), 10_000_000);
        assert!(run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            10_000_000
        ));
        assert_eq!(
            check_polling(sim.history()),
            Ok(()),
            "Specification 4.1 violated?!"
        );
        let max_per_proc = (0..=n_waiters)
            .map(|i| sim.proc_stats(ProcId(i)).rmrs)
            .max()
            .unwrap_or(0);
        println!(
            "{:<28} {:>12} {:>16}",
            label,
            sim.totals().rmrs,
            max_per_proc
        );
    }

    println!("\nCC: every waiter caches the flag — one RMR to fetch it, one when the");
    println!("signal invalidates it. DSM: the flag lives in somebody else's module,");
    println!("so every one of the {polls_before_signal} polls is remote. Theorem 6.2 proves no");
    println!("read/write/CAS/LLSC algorithm can avoid this, even amortized.");
}
