//! The separation, end to end: run the §6 lower-bound adversary against
//! four algorithms and watch who pays.
//!
//! * `broadcast` — correct, reads/writes only: the adversary hides all but
//!   a handful of waiters and the signaler still pays N−1 RMRs; amortized
//!   cost explodes.
//! * `cc-flag` — the CC-optimal algorithm run in DSM: waiters never
//!   stabilize; they pay the RMRs themselves.
//! * `single-waiter` — driven past its §7 one-waiter contract: the spec
//!   failures the adversary induces are reported as out-of-contract, not
//!   as safety violations (the algorithm is correct within its premise).
//! * `queue-faa` — Fetch-And-Add registration (§7): erasure certification
//!   fails (FAA leaks information), the adversary is defeated, amortized
//!   cost stays O(1).
//!
//! Run with: `cargo run --release --example separation`

use cc_dsm::adversary::{run_lower_bound, LowerBoundConfig};
use cc_dsm::signaling::algorithms::{Broadcast, CcFlag, QueueSignaling, SingleWaiter};
use cc_dsm::signaling::SignalingAlgorithm;

fn main() {
    let n = 128;
    println!("§6 lower-bound adversary, N = {n} processes, DSM model\n");
    println!(
        "{:<15} {:>10} {:>8} {:>12} {:>9} {:>10} {:>11}  verdict",
        "algorithm", "stabilized", "stable", "chase RMRs", "erased", "blocked", "amortized"
    );

    let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
        Box::new(Broadcast),
        Box::new(CcFlag),
        Box::new(SingleWaiter),
        Box::new(QueueSignaling),
    ];
    for algo in &algos {
        let report = run_lower_bound(algo.as_ref(), LowerBoundConfig::for_n(n));
        let (chase_rmrs, erased, blocked) = report
            .chase
            .as_ref()
            .map_or((0, 0, 0), |c| (c.signaler_rmrs, c.erased.len(), c.blocked));
        let verdict = if report.found_violation() {
            "UNSAFE: hidden waiters poll false after Signal()"
        } else if report.out_of_contract() {
            "out of contract: ≤1 waiter promised, adversary drives many"
        } else if !report.part1.stabilized {
            "waiters pay: never stabilize, RMRs grow every round"
        } else if blocked > 0 {
            "adversary defeated: FAA blocks erasure (O(1) amortized)"
        } else {
            "signaler pays: one RMR per hidden waiter"
        };
        println!(
            "{:<15} {:>10} {:>8} {:>12} {:>9} {:>10} {:>11.2}  {}",
            report.algorithm,
            report.part1.stabilized,
            report.part1.stable.len(),
            chase_rmrs,
            erased,
            blocked,
            report.worst_amortized(),
            verdict
        );
    }

    println!("\nEvery erasure was certified by survivor-projection replay (Lemma 6.7");
    println!("checked, not assumed). The queue-faa row is §7's escape hatch: with a");
    println!("non-comparison RMW primitive the CC/DSM gap closes — exactly matching");
    println!("Corollary 6.14's boundary (reads/writes/CAS/LLSC only).");
}
