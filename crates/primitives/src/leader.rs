//! One-shot leader election.
//!
//! §7 of the paper reduces the many-signalers signaling variant to the
//! one-signaler variant by electing a leader, and observes that with
//! "virtually any read-modify-write primitive (e.g., Test-And-Set or
//! Fetch-And-Store)" election takes **one step per process**. The paper also
//! notes the catch for the blocking reduction: "the leader election
//! algorithm must tell each waiter the ID of the leader rather than merely
//! telling each waiter whether it is the leader" (§7).
//!
//! We provide two elections that announce the winner's ID:
//!
//! * [`CasLeaderElection`] — genuinely one step: a failed `CAS(NIL → me)`
//!   returns the winner's ID directly. O(1) RMRs per process, wait-free,
//!   in both models.
//! * [`FasLeaderElection`] — the one-step FAS/TAS election decides *whether*
//!   you won; announcing the winner requires an extra announce cell that
//!   losers spin on. That spin is O(1) RMRs in the CC model but unbounded in
//!   the worst case in the DSM model — a pocket-sized instance of the
//!   paper's central theme that shared spin variables are free in CC and
//!   poisonous in DSM.
//!
//! (The read/write-only O(1)-RMR election of Golab–Hendler–Woelfel \[13\] is
//! cited by the paper but not needed by any construction we reproduce; the
//! splitter in [`crate::splitter`] is the read/write contrast object we
//! property-test instead.)

use shm_sim::{Addr, MemLayout, Op, ProcId, ProcedureCall, Step, Word, NIL};

/// Leader election decided by a single CAS on a shared cell.
///
/// `elect_call(p)` returns the elected leader's ID (as a word): `p` CASes
/// its own ID into the cell; on failure the old value *is* the leader,
/// because exactly one CAS on a [`NIL`]-initialized cell can succeed.
/// One memory access per process, O(1) RMRs in both models, wait-free.
#[derive(Clone, Copy, Debug)]
pub struct CasLeaderElection {
    /// The election cell, initially [`NIL`].
    pub cell: Addr,
}

impl CasLeaderElection {
    /// Allocates the election cell.
    #[must_use]
    pub fn allocate(layout: &mut MemLayout) -> Self {
        CasLeaderElection {
            cell: layout.alloc_global(NIL),
        }
    }

    /// The election call for process `pid`; returns the leader's ID word.
    #[must_use]
    pub fn elect_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(CasElect {
            cell: self.cell,
            me: pid.to_word(),
            issued: false,
        })
    }
}

#[derive(Clone, Debug)]
struct CasElect {
    cell: Addr,
    me: Word,
    issued: bool,
}

impl ProcedureCall for CasElect {
    fn step(&mut self, last: Option<Word>) -> Step {
        if !self.issued {
            self.issued = true;
            Step::Op(Op::Cas(self.cell, NIL, self.me))
        } else {
            let old = last.expect("CAS result");
            Step::Return(if old == NIL { self.me } else { old })
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

/// Leader election from Fetch-And-Store plus an announce cell.
///
/// Election: `FAS(race, me)`; the process that displaces [`NIL`] wins.
/// Announcement: the winner writes its ID to `announce`; losers busy-wait
/// until `announce` is non-NIL and return it.
///
/// Terminating but not wait-free (losers wait for the winner). Loser spins
/// cost O(1) RMRs in the CC model (the announce cell is cached until the
/// winner's single write) and Θ(spins) RMRs in the DSM model (the announce
/// cell cannot be local to every loser) — measured in the E3/E6 experiments.
#[derive(Clone, Copy, Debug)]
pub struct FasLeaderElection {
    /// The race cell, initially [`NIL`].
    pub race: Addr,
    /// The announce cell, initially [`NIL`].
    pub announce: Addr,
}

impl FasLeaderElection {
    /// Allocates the election cells.
    #[must_use]
    pub fn allocate(layout: &mut MemLayout) -> Self {
        FasLeaderElection {
            race: layout.alloc_global(NIL),
            announce: layout.alloc_global(NIL),
        }
    }

    /// The election call for process `pid`; returns the leader's ID word.
    #[must_use]
    pub fn elect_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(FasElect {
            cells: *self,
            me: pid.to_word(),
            state: FasState::Swap,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FasState {
    Swap,
    Decide,
    WinnerReturn,
    SpinAnnounce,
}

#[derive(Clone, Debug)]
struct FasElect {
    cells: FasLeaderElection,
    me: Word,
    state: FasState,
}

impl ProcedureCall for FasElect {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            FasState::Swap => {
                self.state = FasState::Decide;
                Step::Op(Op::Fas(self.cells.race, self.me))
            }
            FasState::Decide => {
                let old = last.expect("FAS result");
                if old == NIL {
                    self.state = FasState::WinnerReturn;
                    Step::Op(Op::Write(self.cells.announce, self.me))
                } else {
                    self.state = FasState::SpinAnnounce;
                    Step::Op(Op::Read(self.cells.announce))
                }
            }
            FasState::WinnerReturn => Step::Return(self.me),
            FasState::SpinAnnounce => {
                let seen = last.expect("read result");
                if seen == NIL {
                    Step::Op(Op::Read(self.cells.announce))
                } else {
                    Step::Return(seen)
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shm_sim::{
        run_to_completion, CallKind, CostModel, RoundRobin, Script, ScriptedCall, SeededRandom,
        SimSpec, Simulator,
    };
    use std::sync::Arc;

    enum Which {
        Cas,
        Fas,
    }

    fn election_spec(n: usize, which: &Which, model: CostModel) -> SimSpec {
        let mut layout = MemLayout::new();
        let cas = CasLeaderElection::allocate(&mut layout);
        let fas = FasLeaderElection::allocate(&mut layout);
        let sources = (0..n)
            .map(|i| {
                let pid = ProcId(i as u32);
                let factory: shm_sim::CallFactory = match which {
                    Which::Cas => Arc::new(move || cas.elect_call(pid)),
                    Which::Fas => Arc::new(move || fas.elect_call(pid)),
                };
                Box::new(Script::new(vec![ScriptedCall::new(
                    CallKind(0),
                    "elect",
                    factory,
                )])) as Box<dyn shm_sim::CallSource>
            })
            .collect();
        SimSpec {
            layout,
            sources,
            model,
        }
    }

    fn run_and_collect_leaders(spec: &SimSpec, seed: u64) -> Vec<Word> {
        let mut sim = Simulator::new(spec);
        assert!(run_to_completion(
            &mut sim,
            &mut SeededRandom::new(seed),
            1_000_000
        ));
        sim.history()
            .calls()
            .iter()
            .map(|c| c.return_value.unwrap())
            .collect()
    }

    #[test]
    fn cas_everyone_agrees_on_one_leader() {
        for seed in 0..20 {
            let leaders =
                run_and_collect_leaders(&election_spec(9, &Which::Cas, CostModel::Dsm), seed);
            assert!(
                leaders.windows(2).all(|w| w[0] == w[1]),
                "disagreement: {leaders:?}"
            );
            assert!(ProcId::from_word(leaders[0]).is_some());
        }
    }

    #[test]
    fn fas_everyone_agrees_on_one_leader() {
        for seed in 0..50 {
            let leaders =
                run_and_collect_leaders(&election_spec(9, &Which::Fas, CostModel::Dsm), seed);
            assert!(
                leaders.windows(2).all(|w| w[0] == w[1]),
                "seed {seed} disagreement: {leaders:?}"
            );
        }
    }

    #[test]
    fn solo_process_elects_itself() {
        for which in [Which::Cas, Which::Fas] {
            let spec = election_spec(1, &which, CostModel::Dsm);
            assert_eq!(run_and_collect_leaders(&spec, 0), vec![0]);
        }
    }

    #[test]
    fn cas_election_costs_constant_rmrs_in_both_models() {
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            let spec = election_spec(8, &Which::Cas, model);
            let mut sim = Simulator::new(&spec);
            assert!(run_to_completion(&mut sim, &mut RoundRobin::new(), 100_000));
            for i in 0..8 {
                assert!(sim.proc_stats(ProcId(i)).rmrs <= 2);
            }
        }
    }

    #[test]
    fn fas_loser_spin_is_cheap_in_cc_expensive_in_dsm() {
        // Deterministic adversarial-ish interleaving: the winner (p0) swaps,
        // then stalls while p1 spins k times, then p0 announces.
        let run = |model| {
            let spec = election_spec(2, &Which::Fas, model);
            let mut sim = Simulator::new(&spec);
            let _ = sim.step(ProcId(0)); // invoke + FAS (wins)
            let _ = sim.step(ProcId(1)); // invoke + FAS (loses)
            let _ = sim.step(ProcId(1)); // first announce read
            for _ in 0..50 {
                let _ = sim.step(ProcId(1)); // spin on announce
            }
            assert!(run_to_completion(&mut sim, &mut RoundRobin::new(), 1_000));
            sim.proc_stats(ProcId(1)).rmrs
        };
        assert!(
            run(CostModel::cc_default()) <= 3,
            "CC: spin served from cache"
        );
        assert!(run(CostModel::Dsm) >= 50, "DSM: every spin read is an RMR");
    }

    #[test]
    fn fas_leader_is_first_swapper() {
        let spec = election_spec(3, &Which::Fas, CostModel::Dsm);
        let mut sim = Simulator::new(&spec);
        // p2 swaps first; then p0 and p1 race.
        let _ = sim.step(ProcId(2)); // invoke + FAS: p2 wins
        let _ = sim.step(ProcId(0));
        let _ = sim.step(ProcId(1));
        assert!(run_to_completion(&mut sim, &mut RoundRobin::new(), 10_000));
        let leaders: Vec<Word> = sim
            .history()
            .calls()
            .iter()
            .map(|c| c.return_value.unwrap())
            .collect();
        assert!(
            leaders.iter().all(|&l| l == 2),
            "p2 swapped first: {leaders:?}"
        );
    }
}
