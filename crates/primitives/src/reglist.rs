//! Wait-free append-only registration list built from Fetch-And-Add.
//!
//! §7 of the paper ("many waiters not fixed in advance, one signaler not
//! fixed in advance") closes the CC/DSM gap by letting waiters register in a
//! shared queue that the signaler later drains. A full FIFO queue is not
//! needed — only *enqueue* and *scan* — so we implement the minimal object:
//! a ticket counter dispensed by FAA plus a slot array.
//!
//! Each `enqueue` is wait-free and costs O(1) RMRs in both models (one FAA
//! on the ticket counter, one write to the claimed slot). A scan reads the
//! counter and then the claimed slots; unwritten slots (ticket claimed but
//! value not yet stored) read as [`NIL`] and may be skipped by scanners that
//! can prove the racing enqueuer will learn the relevant fact another way —
//! exactly the argument the queue-based signaling algorithm makes.

use shm_sim::{Addr, AddrRange, MemLayout, Op, ProcedureCall, Step, Word, NIL};

/// Addresses of a registration list's cells.
///
/// Allocate with [`RegistrationList::allocate`]; all cells are global (the
/// object is inherently shared — §6 shows *some* sharing is unavoidable).
#[derive(Clone, Copy, Debug)]
pub struct RegistrationList {
    /// Ticket counter (next free slot index).
    pub tail: Addr,
    /// Slot array; slot `t` holds the word stored by the holder of ticket
    /// `t`, or [`NIL`] if not yet written.
    pub slots: AddrRange,
}

impl RegistrationList {
    /// Allocates a list with capacity for `capacity` registrations.
    ///
    /// `capacity` is normally the number of processes, because each process
    /// registers at most once in the signaling protocols.
    #[must_use]
    pub fn allocate(layout: &mut MemLayout, capacity: usize) -> Self {
        RegistrationList {
            tail: layout.alloc_global(0),
            slots: layout.alloc_global_array(capacity, NIL),
        }
    }

    /// Capacity of the slot array.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// A procedure call that appends `value` to the list and returns the
    /// ticket (slot index) it claimed.
    ///
    /// Wait-free, two memory accesses, O(1) RMRs in both models.
    ///
    /// # Panics
    ///
    /// The *call* panics at run time (when stepped) if the list is full,
    /// i.e. more than `capacity` enqueues were attempted.
    #[must_use]
    pub fn enqueue_call(&self, value: Word) -> Box<dyn ProcedureCall> {
        Box::new(Enqueue {
            list: *self,
            value,
            ticket: None,
            state: EnqueueState::Start,
        })
    }

    /// Reads the current registration count from a simulator's memory
    /// (test/inspection helper; not a process step).
    #[must_use]
    pub fn snapshot_count(&self, memory: &shm_sim::Memory) -> u64 {
        memory.peek(self.tail)
    }

    /// Reads all registered values from a simulator's memory, skipping
    /// claimed-but-unwritten slots (test/inspection helper).
    #[must_use]
    pub fn snapshot_values(&self, memory: &shm_sim::Memory) -> Vec<Word> {
        let count = (self.snapshot_count(memory) as usize).min(self.capacity());
        (0..count)
            .map(|i| memory.peek(self.slots.at(i)))
            .filter(|&w| w != NIL)
            .collect()
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EnqueueState {
    Start,
    WriteSlot,
    Done,
}

#[derive(Clone, Debug)]
struct Enqueue {
    list: RegistrationList,
    value: Word,
    ticket: Option<Word>,
    state: EnqueueState,
}

impl ProcedureCall for Enqueue {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            EnqueueState::Start => {
                self.state = EnqueueState::WriteSlot;
                Step::Op(Op::Faa(self.list.tail, 1))
            }
            EnqueueState::WriteSlot => {
                let ticket = last.expect("FAA result expected");
                assert!(
                    (ticket as usize) < self.list.capacity(),
                    "registration list overflow: ticket {ticket} >= capacity {}",
                    self.list.capacity()
                );
                self.ticket = Some(ticket);
                self.state = EnqueueState::Done;
                Step::Op(Op::Write(self.list.slots.at(ticket as usize), self.value))
            }
            EnqueueState::Done => Step::Return(self.ticket.expect("ticket recorded")),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shm_sim::{
        run_to_completion, CallKind, CostModel, ProcId, RoundRobin, Script, ScriptedCall,
        SeededRandom, SimSpec, Simulator,
    };
    use std::sync::Arc;

    fn enqueue_spec(n: usize, model: CostModel) -> (SimSpec, RegistrationList) {
        let mut layout = MemLayout::new();
        let list = RegistrationList::allocate(&mut layout, n);
        let sources = (0..n)
            .map(|i| {
                let call = ScriptedCall::new(
                    CallKind(0),
                    "enqueue",
                    Arc::new(move || list.enqueue_call(i as Word)),
                );
                Box::new(Script::new(vec![call])) as Box<dyn shm_sim::CallSource>
            })
            .collect();
        (
            SimSpec {
                layout,
                sources,
                model,
            },
            list,
        )
    }

    #[test]
    fn all_enqueuers_get_distinct_tickets() {
        let (spec, list) = enqueue_spec(8, CostModel::Dsm);
        let mut sim = Simulator::new(&spec);
        assert!(run_to_completion(
            &mut sim,
            &mut SeededRandom::new(42),
            100_000
        ));
        let mut tickets: Vec<Word> = sim
            .history()
            .calls()
            .iter()
            .map(|c| c.return_value.unwrap())
            .collect();
        tickets.sort_unstable();
        assert_eq!(tickets, (0..8).collect::<Vec<Word>>());
        assert_eq!(list.snapshot_count(sim.memory()), 8);
        let mut values = list.snapshot_values(sim.memory());
        values.sort_unstable();
        assert_eq!(values, (0..8).collect::<Vec<Word>>());
    }

    #[test]
    fn enqueue_costs_constant_rmrs_in_both_models() {
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            let (spec, _) = enqueue_spec(16, model);
            let mut sim = Simulator::new(&spec);
            assert!(run_to_completion(&mut sim, &mut RoundRobin::new(), 100_000));
            for i in 0..16 {
                assert!(
                    sim.proc_stats(ProcId(i)).rmrs <= 2,
                    "enqueue must be O(1) RMRs, got {} under {model:?}",
                    sim.proc_stats(ProcId(i)).rmrs
                );
            }
        }
    }

    #[test]
    fn partial_enqueue_leaves_skippable_nil_slot() {
        let (spec, list) = enqueue_spec(2, CostModel::Dsm);
        let mut sim = Simulator::new(&spec);
        // p0 claims a ticket but is suspended before writing its slot.
        let _ = sim.step(ProcId(0)); // invoke + FAA
        assert_eq!(list.snapshot_count(sim.memory()), 1);
        assert_eq!(list.snapshot_values(sim.memory()), Vec::<Word>::new());
        // p1 registers fully.
        while sim.is_runnable(ProcId(1)) {
            let _ = sim.step(ProcId(1));
        }
        assert_eq!(list.snapshot_count(sim.memory()), 2);
        assert_eq!(list.snapshot_values(sim.memory()), vec![1]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut layout = MemLayout::new();
        let list = RegistrationList::allocate(&mut layout, 1);
        let mk = |v: Word| {
            ScriptedCall::new(
                CallKind(0),
                "enqueue",
                Arc::new(move || list.enqueue_call(v)),
            )
        };
        let spec = SimSpec {
            layout,
            sources: vec![Box::new(Script::new(vec![mk(0), mk(1)])) as Box<dyn shm_sim::CallSource>],
            model: CostModel::Dsm,
        };
        let mut sim = Simulator::new(&spec);
        run_to_completion(&mut sim, &mut RoundRobin::new(), 100);
    }
}
