//! A wait-free splitter from reads and writes only.
//!
//! The splitter (Lamport's fast-path mechanism, isolated by Moir and
//! Anderson) guarantees with just one multi-writer register `X` and one
//! Boolean `Y`:
//!
//! * at most one process returns **Stop**;
//! * if a process runs the splitter alone, it returns Stop;
//! * not all processes return the same non-Stop direction: at most `n - 1`
//!   return **Right** and at most `n - 1` return **Down**.
//!
//! It is the classic read/write building block for renaming and adaptive
//! algorithms, and serves here as the read/write-only contrast to the
//! one-step RMW elections in [`crate::leader`] — with reads and writes only,
//! one splitter cannot elect a leader, it can only *filter* contenders.
//!
//! Protocol for process `p`:
//!
//! ```text
//! X := p
//! if Y then return Right
//! Y := true
//! if X = p then return Stop else return Down
//! ```

use shm_sim::{Addr, MemLayout, Op, ProcId, ProcedureCall, Step, Word, NIL};

/// Result encoding for splitter calls.
pub mod outcome {
    use shm_sim::Word;
    /// The process stopped (won the splitter).
    pub const STOP: Word = 2;
    /// The process was deflected right (saw `Y` set).
    pub const RIGHT: Word = 1;
    /// The process was deflected down (lost the `X` race).
    pub const DOWN: Word = 0;
}

/// Addresses of a splitter's two registers.
#[derive(Clone, Copy, Debug)]
pub struct Splitter {
    /// Multi-writer ID register, initially [`NIL`].
    pub x: Addr,
    /// Boolean gate, initially 0.
    pub y: Addr,
}

impl Splitter {
    /// Allocates the splitter's registers (global cells).
    #[must_use]
    pub fn allocate(layout: &mut MemLayout) -> Self {
        Splitter {
            x: layout.alloc_global(NIL),
            y: layout.alloc_global(0),
        }
    }

    /// The splitter call for process `pid`; returns one of
    /// [`outcome::STOP`], [`outcome::RIGHT`], [`outcome::DOWN`].
    ///
    /// Wait-free: at most 4 memory accesses.
    #[must_use]
    pub fn enter_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Enter {
            s: *self,
            me: pid.to_word(),
            state: EnterState::WriteX,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EnterState {
    WriteX,
    ReadY,
    DecideY,
    CheckX,
    DecideX,
}

#[derive(Clone, Debug)]
struct Enter {
    s: Splitter,
    me: Word,
    state: EnterState,
}

impl ProcedureCall for Enter {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            EnterState::WriteX => {
                self.state = EnterState::ReadY;
                Step::Op(Op::Write(self.s.x, self.me))
            }
            EnterState::ReadY => {
                self.state = EnterState::DecideY;
                Step::Op(Op::Read(self.s.y))
            }
            EnterState::DecideY => {
                if last.expect("Y value") != 0 {
                    Step::Return(outcome::RIGHT)
                } else {
                    self.state = EnterState::CheckX;
                    Step::Op(Op::Write(self.s.y, 1))
                }
            }
            EnterState::CheckX => {
                self.state = EnterState::DecideX;
                Step::Op(Op::Read(self.s.x))
            }
            EnterState::DecideX => {
                if last.expect("X value") == self.me {
                    Step::Return(outcome::STOP)
                } else {
                    Step::Return(outcome::DOWN)
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shm_sim::{
        run_to_completion, CallKind, CostModel, RoundRobin, Script, ScriptedCall, SeededRandom,
        SimSpec, Simulator,
    };
    use std::sync::Arc;

    fn splitter_spec(n: usize) -> SimSpec {
        let mut layout = MemLayout::new();
        let s = Splitter::allocate(&mut layout);
        let sources = (0..n)
            .map(|i| {
                let pid = ProcId(i as u32);
                let call =
                    ScriptedCall::new(CallKind(0), "splitter", Arc::new(move || s.enter_call(pid)));
                Box::new(Script::new(vec![call])) as Box<dyn shm_sim::CallSource>
            })
            .collect();
        SimSpec {
            layout,
            sources,
            model: CostModel::Dsm,
        }
    }

    fn outcomes(n: usize, seed: u64) -> Vec<Word> {
        let spec = splitter_spec(n);
        let mut sim = Simulator::new(&spec);
        assert!(run_to_completion(
            &mut sim,
            &mut SeededRandom::new(seed),
            100_000
        ));
        sim.history()
            .calls()
            .iter()
            .map(|c| c.return_value.unwrap())
            .collect()
    }

    #[test]
    fn at_most_one_stop_across_many_schedules() {
        for seed in 0..200 {
            let out = outcomes(6, seed);
            let stops = out.iter().filter(|&&o| o == outcome::STOP).count();
            assert!(stops <= 1, "seed {seed}: {out:?}");
        }
    }

    #[test]
    fn solo_process_stops() {
        assert_eq!(outcomes(1, 0), vec![outcome::STOP]);
    }

    #[test]
    fn not_everyone_goes_right_and_not_everyone_goes_down() {
        for seed in 0..100 {
            let out = outcomes(5, seed);
            let rights = out.iter().filter(|&&o| o == outcome::RIGHT).count();
            let downs = out.iter().filter(|&&o| o == outcome::DOWN).count();
            assert!(rights < out.len(), "seed {seed}: all went right");
            assert!(downs < out.len(), "seed {seed}: all went down");
        }
    }

    #[test]
    fn sequential_processes_first_stops_rest_go_right() {
        let spec = splitter_spec(3);
        let mut sim = Simulator::new(&spec);
        // Run each process to completion, one at a time.
        for pid in 0..3 {
            while sim.is_runnable(ProcId(pid)) {
                let _ = sim.step(ProcId(pid));
            }
        }
        let out: Vec<Word> = sim
            .history()
            .calls()
            .iter()
            .map(|c| c.return_value.unwrap())
            .collect();
        assert_eq!(out, vec![outcome::STOP, outcome::RIGHT, outcome::RIGHT]);
    }

    #[test]
    fn splitter_is_wait_free_four_accesses_max() {
        let spec = splitter_spec(4);
        let mut sim = Simulator::new(&spec);
        assert!(run_to_completion(&mut sim, &mut RoundRobin::new(), 100_000));
        for i in 0..4 {
            assert!(sim.proc_stats(ProcId(i)).accesses <= 4);
        }
    }
}
