//! # shm-primitives: building-block synchronization objects
//!
//! Small shared-memory objects used by the signaling algorithms of §7 of
//! Golab's paper and by the experiment harness:
//!
//! * [`RegistrationList`] — a wait-free append-only set built from
//!   Fetch-And-Add, the "shared queue" the paper uses to close the
//!   CC/DSM gap for signaling when FAA is available (§7).
//! * [`leader`] — one-shot leader election. The paper notes that with
//!   "virtually any read-modify-write primitive (e.g., Test-And-Set or
//!   Fetch-And-Store)" leader election takes one step per process (§7,
//!   many-signalers case); we provide exactly those one-step variants, plus
//!   a CAS variant.
//! * [`splitter`] — Moir–Anderson-style splitter (at most one process
//!   *stops*), built from reads and writes only; useful as a property-tested
//!   micro-object and as the read/write contrast to the one-step RMW
//!   elections.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod leader;
pub mod reglist;
pub mod splitter;

pub use leader::{CasLeaderElection, FasLeaderElection};
pub use reglist::RegistrationList;
pub use splitter::Splitter;
