//! Dependency-free scoped work-stealing thread pool with deterministic,
//! index-ordered result merging.
//!
//! The workspace is offline (no rayon), so parallel fan-outs are built on
//! [`std::thread::scope`]. The one primitive exported here, [`map_indexed`],
//! runs `f(i, item)` for every item of a `Vec` on a small crew of scoped
//! workers and returns the results **in submission order** — so callers that
//! build tables or JSON from the result vector produce byte-identical output
//! regardless of thread count or scheduling.
//!
//! Design points:
//!
//! - **Work stealing.** Job indices are dealt round-robin into per-worker
//!   deques; a worker pops its own queue from the front and, when empty,
//!   steals from the back of the others. This keeps big jobs (large `n`
//!   adversary rows) from serializing behind a single worker while remaining
//!   simple enough to audit.
//! - **Exact serial path.** `threads <= 1` (or a single item) runs the plain
//!   `for` loop inline on the caller's thread: no spawns, no mutexes, no
//!   behavioural difference from the pre-pool code.
//! - **No nested oversubscription.** A `map_indexed` issued from inside a
//!   pool worker runs serially: the outermost parallel construct owns the
//!   cores. (E.g. an audited E2 row parallelizes across rows; the audit's own
//!   shards then run inline within that row's worker.)
//! - **Thread-count resolution.** [`threads`] resolves, in order: an explicit
//!   [`set_threads`] call, the `CC_DSM_THREADS` environment variable, then
//!   [`std::thread::available_parallelism`].

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Explicit thread-count override; 0 means "not set" (fall back to env/HW).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while the current thread is a pool worker; nested `map_indexed`
    /// calls observe this and degrade to the serial path.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Set the process-wide thread count used by [`threads`]. `0` clears the
/// override (reverting to `CC_DSM_THREADS` / available parallelism).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Resolve the effective thread count: [`set_threads`] override, else the
/// `CC_DSM_THREADS` environment variable, else available parallelism, else 1.
pub fn threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("CC_DSM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `f(i, item)` over every item on up to `threads` scoped workers and
/// return the results in submission (index) order.
///
/// With `threads <= 1`, a single item, or when called from inside another
/// `map_indexed` worker, this is exactly the serial loop on the current
/// thread. Panics in `f` propagate to the caller (via scope join).
pub fn map_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let nested = IN_WORKER.with(|w| w.get());
    let nworkers = threads.min(items.len());
    if nworkers <= 1 || nested {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let njobs = items.len();
    // Job payloads, taken by index exactly once.
    let payloads: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    // Result slots, filled by index; unwrapped in order afterwards.
    let results: Vec<Mutex<Option<R>>> = (0..njobs).map(|_| Mutex::new(None)).collect();
    // Per-worker deques of job indices, dealt round-robin.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..nworkers)
        .map(|w| Mutex::new((w..njobs).step_by(nworkers).collect()))
        .collect();

    std::thread::scope(|scope| {
        for w in 0..nworkers {
            let queues = &queues;
            let payloads = &payloads;
            let results = &results;
            let f = &f;
            scope.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                loop {
                    // Own queue first (front), then steal from others (back).
                    let mut job = queues[w].lock().unwrap().pop_front();
                    if job.is_none() {
                        for v in 1..nworkers {
                            let victim = (w + v) % nworkers;
                            job = queues[victim].lock().unwrap().pop_back();
                            if job.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(i) = job else { break };
                    let item = payloads[i].lock().unwrap().take().expect("job taken twice");
                    let r = f(i, item);
                    *results[i].lock().unwrap() = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("job not run"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn results_are_in_submission_order() {
        for threads in [1, 2, 4, 7] {
            let items: Vec<usize> = (0..37).collect();
            let out = map_indexed(threads, items, |i, x| {
                assert_eq!(i, x);
                x * 10 + 1
            });
            let expect: Vec<usize> = (0..37).map(|x| x * 10 + 1).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_serial_for_nontrivial_work() {
        let work = |_, seed: u64| {
            // Deterministic per-item computation (xorshift-style mix).
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let items: Vec<u64> = (0..64).collect();
        let serial = map_indexed(1, items.clone(), work);
        let parallel = map_indexed(4, items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = map_indexed(16, vec![5usize, 6], |_, x| x + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = map_indexed(4, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn nested_map_runs_serially_in_worker() {
        let saw_nested_parallelism = AtomicBool::new(false);
        let out = map_indexed(4, (0..8).collect::<Vec<usize>>(), |_, x| {
            // Inside a worker: this inner call must take the serial path, so
            // the inner closure always runs on the current (worker) thread.
            let outer_thread = std::thread::current().id();
            let inner: Vec<usize> = map_indexed(4, (0..4).collect(), |_, y| {
                if std::thread::current().id() != outer_thread {
                    saw_nested_parallelism.store(true, Ordering::SeqCst);
                }
                y + x
            });
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        assert!(!saw_nested_parallelism.load(Ordering::SeqCst));
    }

    #[test]
    fn set_threads_overrides_env_and_hw() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
