//! Dependency-free scoped work-stealing thread pool with deterministic,
//! index-ordered result merging.
//!
//! The workspace is offline (no rayon), so parallel fan-outs are built on
//! [`std::thread::scope`]. The one primitive exported here, [`map_indexed`],
//! runs `f(i, item)` for every item of a `Vec` on a small crew of scoped
//! workers and returns the results **in submission order** — so callers that
//! build tables or JSON from the result vector produce byte-identical output
//! regardless of thread count or scheduling.
//!
//! Design points:
//!
//! - **Work stealing.** Job indices are dealt round-robin into per-worker
//!   deques; a worker pops its own queue from the front and, when empty,
//!   steals from the back of the others. This keeps big jobs (large `n`
//!   adversary rows) from serializing behind a single worker while remaining
//!   simple enough to audit.
//! - **Exact serial path.** `threads <= 1` (or a single item) runs the plain
//!   `for` loop inline on the caller's thread: no spawns, no mutexes, no
//!   behavioural difference from the pre-pool code.
//! - **No nested oversubscription.** A `map_indexed` issued from inside a
//!   pool worker runs serially: the outermost parallel construct owns the
//!   cores. (E.g. an audited E2 row parallelizes across rows; the audit's own
//!   shards then run inline within that row's worker.)
//! - **Thread-count resolution.** [`threads`] resolves, in order: an explicit
//!   [`set_threads`] call, the `CC_DSM_THREADS` environment variable, then
//!   [`std::thread::available_parallelism`].
//! - **Observability.** When an `shm-obs` recorder is installed, every job
//!   runs under track segment `i` (its submission index) wrapped in a
//!   `pool.job` span — identically on the serial and parallel paths, so the
//!   deterministic view of the recording is thread-count independent.
//!   Workers adopt the submitting thread's track path (nested fan-outs stay
//!   rooted correctly), claim Chrome-trace lane `w + 1`, and additionally
//!   emit the scheduling-dependent `pool.execute` / `pool.steal` /
//!   `pool.idle` counters, which `shm-obs` registers as nondeterministic
//!   and keeps out of the deterministic sinks.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Explicit thread-count override; 0 means "not set" (fall back to env/HW).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True while the current thread is a pool worker; nested `map_indexed`
    /// calls observe this and degrade to the serial path.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Set the process-wide thread count used by [`threads`]. `0` clears the
/// override (reverting to `CC_DSM_THREADS` / available parallelism).
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Resolve the effective thread count: [`set_threads`] override, else the
/// `CC_DSM_THREADS` environment variable, else available parallelism, else 1.
pub fn threads() -> usize {
    let explicit = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(v) = std::env::var("CC_DSM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Run `f(i, item)` over every item on up to `threads` scoped workers and
/// return the results in submission (index) order.
///
/// With `threads <= 1`, a single item, or when called from inside another
/// `map_indexed` worker, this is exactly the serial loop on the current
/// thread. Panics in `f` propagate to the caller (via scope join).
pub fn map_indexed<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    // Job index as an obs track segment (saturating: tracks are labels).
    fn seg(i: usize) -> u32 {
        u32::try_from(i).unwrap_or(u32::MAX)
    }

    let nested = IN_WORKER.with(|w| w.get());
    let nworkers = threads.min(items.len());
    if nworkers <= 1 || nested {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let _track = shm_obs::enter_track(seg(i));
                let _span = shm_obs::Span::enter("pool.job");
                f(i, t)
            })
            .collect();
    }

    let njobs = items.len();
    // Job payloads, taken by index exactly once.
    let payloads: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    // Result slots, filled by index; unwrapped in order afterwards.
    let results: Vec<Mutex<Option<R>>> = (0..njobs).map(|_| Mutex::new(None)).collect();
    // Per-worker deques of job indices, dealt round-robin.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..nworkers)
        .map(|w| Mutex::new((w..njobs).step_by(nworkers).collect()))
        .collect();

    // Workers adopt the submitting thread's track path so the tracks they
    // open per job (`base ++ [i]`) match the serial path exactly.
    let base_track = shm_obs::track_path();

    std::thread::scope(|scope| {
        for w in 0..nworkers {
            let queues = &queues;
            let payloads = &payloads;
            let results = &results;
            let f = &f;
            let base_track = &base_track;
            scope.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                let _adopt = shm_obs::adopt_track_path(base_track.clone());
                let _lane = shm_obs::set_lane(seg(w + 1));
                loop {
                    // Own queue first (front), then steal from others (back).
                    let mut job = queues[w].lock().unwrap().pop_front();
                    let mut stolen = false;
                    if job.is_none() {
                        for v in 1..nworkers {
                            let victim = (w + v) % nworkers;
                            job = queues[victim].lock().unwrap().pop_back();
                            if job.is_some() {
                                stolen = true;
                                break;
                            }
                        }
                    }
                    let Some(i) = job else {
                        shm_obs::counter!("pool.idle", 1, pid: seg(w));
                        break;
                    };
                    if stolen {
                        shm_obs::counter!("pool.steal", 1, pid: seg(w));
                    }
                    shm_obs::counter!("pool.execute", 1, pid: seg(w));
                    let item = payloads[i].lock().unwrap().take().expect("job taken twice");
                    let r = {
                        let _track = shm_obs::enter_track(seg(i));
                        let _span = shm_obs::Span::enter("pool.job");
                        f(i, item)
                    };
                    *results[i].lock().unwrap() = Some(r);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("job not run"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn results_are_in_submission_order() {
        for threads in [1, 2, 4, 7] {
            let items: Vec<usize> = (0..37).collect();
            let out = map_indexed(threads, items, |i, x| {
                assert_eq!(i, x);
                x * 10 + 1
            });
            let expect: Vec<usize> = (0..37).map(|x| x * 10 + 1).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_serial_for_nontrivial_work() {
        let work = |_, seed: u64| {
            // Deterministic per-item computation (xorshift-style mix).
            let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
            for _ in 0..1000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
            }
            x
        };
        let items: Vec<u64> = (0..64).collect();
        let serial = map_indexed(1, items.clone(), work);
        let parallel = map_indexed(4, items, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = map_indexed(16, vec![5usize, 6], |_, x| x + 1);
        assert_eq!(out, vec![6, 7]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = map_indexed(4, Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn nested_map_runs_serially_in_worker() {
        let saw_nested_parallelism = AtomicBool::new(false);
        let out = map_indexed(4, (0..8).collect::<Vec<usize>>(), |_, x| {
            // Inside a worker: this inner call must take the serial path, so
            // the inner closure always runs on the current (worker) thread.
            let outer_thread = std::thread::current().id();
            let inner: Vec<usize> = map_indexed(4, (0..4).collect(), |_, y| {
                if std::thread::current().id() != outer_thread {
                    saw_nested_parallelism.store(true, Ordering::SeqCst);
                }
                y + x
            });
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        assert!(!saw_nested_parallelism.load(Ordering::SeqCst));
    }

    #[test]
    fn obs_recording_is_thread_count_independent() {
        // Deterministic view of a recorded fan-out (track set, span names,
        // deterministic counters) must not depend on the worker count. The
        // recorder is process-global, so scope this test's data under a
        // unique track prefix and compare relative to it.
        let collector = shm_obs::Collector::new();
        shm_obs::install_collector(&collector);
        let run = |tag: u32, threads: usize| {
            let _base = shm_obs::adopt_track_path(vec![4242, tag]);
            map_indexed(threads, (0..16).collect::<Vec<u64>>(), |i, x| {
                shm_obs::counter!("sim.steps", x + 1);
                i as u64 + x
            })
        };
        assert_eq!(run(1, 1), run(2, 4));
        shm_obs::uninstall();

        let snap = collector.snapshot();
        let view = |tag: u32| {
            snap.tracks
                .iter()
                .filter(|(p, _)| p.starts_with(&[4242, tag]))
                .map(|(p, d)| {
                    let spans: Vec<&str> = d.spans.iter().map(|s| s.name).collect();
                    let counters: Vec<(shm_obs::CounterKey, u64)> = d
                        .counters
                        .iter()
                        .filter(|(k, _)| shm_obs::registry::is_deterministic(k.name))
                        .map(|(k, v)| (k.clone(), *v))
                        .collect();
                    (p[2..].to_vec(), spans, counters)
                })
                // A track holding only nondeterministic counters (the base
                // path, where workers count steals) is invisible to the
                // deterministic sinks; drop it from the view too.
                .filter(|(_, spans, counters)| !spans.is_empty() || !counters.is_empty())
                .collect::<Vec<_>>()
        };
        let serial = view(1);
        let parallel = view(2);
        assert_eq!(serial.len(), 16, "one track per job");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn set_threads_overrides_env_and_hw() {
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }
}
