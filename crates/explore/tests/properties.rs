//! Property tests for the explorer: DPOR agrees with naive enumeration,
//! shrinking preserves classification, the negative control is caught, and
//! reports are byte-identical at any thread count.

use shm_explore::{check, explore, Bounds, PollingSpecOracle, ProcRmrs, ScenarioSpec};
use shm_sim::{CostModel, ProcId};
use signaling::algorithms::{Broadcast, CcFlag, SeededBuggy, SingleWaiter};
use signaling::SignalingAlgorithm;
use std::sync::Mutex;

/// Thread-count changes are process-global; serialize the tests that touch
/// them.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn scenario<'a>(
    algo: &'a dyn SignalingAlgorithm,
    waiters: usize,
    max_polls: u64,
) -> ScenarioSpec<'a> {
    ScenarioSpec {
        algorithm: algo,
        waiters,
        max_polls,
        signaler_polls_first: 0,
        model: CostModel::Dsm,
        seed: None,
    }
}

/// DPOR + dedup must reach the same verdict and the same RMR maximum as the
/// naive full enumeration, while exploring strictly fewer states.
#[test]
fn dpor_matches_naive_verdict_and_maximum_with_fewer_states() {
    let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
        Box::new(Broadcast),
        Box::new(CcFlag),
        Box::new(SingleWaiter),
        Box::new(SeededBuggy::new(2)),
    ];
    for algo in &algos {
        let s = scenario(algo.as_ref(), 2, 1);
        let spec = s.build();
        let oracle = PollingSpecOracle {
            max_concurrent_waiters: algo.max_concurrent_waiters(),
        };
        let objective = ProcRmrs(s.signaler());
        let naive = explore(&spec, &[&oracle], Some(&objective), &Bounds::naive());
        let dpor = explore(&spec, &[&oracle], Some(&objective), &Bounds::exhaustive());
        assert!(naive.exhaustive && dpor.exhaustive, "{}", algo.name());
        // Same verdict (violation existence and its contract classification)…
        assert_eq!(
            naive.violations_found > 0,
            dpor.violations_found > 0,
            "{}: naive {naive:?} vs dpor {dpor:?}",
            algo.name()
        );
        assert_eq!(
            naive.violations_in_contract > 0,
            dpor.violations_in_contract > 0,
            "{}",
            algo.name()
        );
        // …same empirical RMR maximum…
        assert_eq!(
            naive.max_objective.as_ref().map(|m| m.value),
            dpor.max_objective.as_ref().map(|m| m.value),
            "{}",
            algo.name()
        );
        // …strictly fewer explored states (the point of the reductions).
        assert!(
            dpor.explored < naive.explored,
            "{}: dpor explored {} vs naive {}",
            algo.name(),
            dpor.explored,
            naive.explored
        );
    }
}

/// Regression (satellite 2): shrinking a SingleWaiter violation found with
/// 2 concurrent waiters must preserve the out-of-contract classification —
/// the shrunk schedule must never be reported as an in-contract violation
/// of the algorithm.
#[test]
fn shrinking_single_waiter_violation_stays_out_of_contract() {
    let s = scenario(&SingleWaiter, 2, 2);
    let out = check(&s, &Bounds::exhaustive());
    assert!(out.report.exhaustive);
    assert_eq!(
        out.in_contract_violations, 0,
        "single-waiter must be clean within its contract"
    );
    assert!(
        out.out_of_contract_violations > 0,
        "2 waiters against a 1-waiter contract must violate somewhere"
    );
    let cx = out.counterexample.expect("violations ⇒ counterexample");
    assert!(
        !cx.in_contract,
        "shrunk counterexample flipped to in-contract"
    );
    assert!(cx.audit_clean);
    assert!(cx.schedule.len() <= cx.shrunk_from);
    // Independent re-validation: replay the shrunk schedule and re-judge it
    // from scratch with a fresh oracle.
    let spec = s.build();
    let sim = shm_explore::replay(&spec, &cx.schedule);
    let oracle = PollingSpecOracle {
        max_concurrent_waiters: SingleWaiter.max_concurrent_waiters(),
    };
    use shm_explore::Oracle as _;
    assert!(
        oracle.check(&sim).is_err(),
        "shrunk schedule must still violate"
    );
    assert!(
        !oracle.in_contract(&sim),
        "shrunk schedule must still exceed the 1-waiter contract"
    );
}

/// Negative control (every seeded bug family): exploration finds an
/// in-contract violation, shrinks it, and the shrunk replay passes the
/// differential audit.
#[test]
fn seeded_buggy_variants_are_found_shrunk_and_audited() {
    for seed in 0..3 {
        let algo = SeededBuggy::new(seed);
        let s = scenario(&algo, 2, 2);
        let out = check(&s, &Bounds::exhaustive());
        assert!(out.report.exhaustive, "seed {seed}");
        assert!(
            out.in_contract_violations > 0,
            "seed {seed}: the injected bug must be found in contract"
        );
        let cx = out.counterexample.expect("violations ⇒ counterexample");
        assert!(cx.in_contract, "seed {seed}");
        assert!(cx.audit_clean, "seed {seed}");
        assert!(
            cx.schedule.len() <= cx.shrunk_from,
            "seed {seed}: shrinking must never grow the schedule"
        );
        assert_eq!(cx.algorithm, "seeded-buggy");
        // The JSON form round-trips the schedule digits faithfully.
        let json = cx.to_json();
        let digits: Vec<String> = cx.schedule.iter().map(|p| p.0.to_string()).collect();
        assert!(json.contains(&format!("\"schedule\":[{}]", digits.join(","))));
    }
}

/// The full report — counts, retained schedules, argmax — is identical
/// whether the frontier fan-out runs on 1 worker or 4.
#[test]
fn reports_are_identical_at_any_thread_count() {
    let _guard = POOL_LOCK.lock().unwrap();
    let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
        Box::new(Broadcast),
        Box::new(SingleWaiter),
        Box::new(SeededBuggy::new(0)),
    ];
    for algo in &algos {
        let s = scenario(algo.as_ref(), 2, 2);
        let spec = s.build();
        let oracle = PollingSpecOracle {
            max_concurrent_waiters: algo.max_concurrent_waiters(),
        };
        let objective = ProcRmrs(ProcId(2));
        shm_pool::set_threads(1);
        let one = explore(&spec, &[&oracle], Some(&objective), &Bounds::exhaustive());
        shm_pool::set_threads(4);
        let four = explore(&spec, &[&oracle], Some(&objective), &Bounds::exhaustive());
        shm_pool::set_threads(0);
        assert_eq!(
            format!("{one:?}"),
            format!("{four:?}"),
            "{}: report differs across thread counts",
            algo.name()
        );
    }
}
