//! Property tests for the disk-backed visited store: the delta-compressed
//! run encoder round-trips arbitrary sorted key batches, and exploration
//! reports are invariant under any memory budget (spilling moves keys and
//! nodes between tiers, never changes answers).

use shm_explore::spill::{CompressedKeySet, Key};
use shm_explore::store::VisitedStore;
use shm_explore::{check, Bounds, ScenarioSpec};
use shm_sim::rng::mix64;
use shm_sim::CostModel;
use signaling::algorithms::{Broadcast, SeededBuggy, SingleWaiter};
use signaling::SignalingAlgorithm;

/// A batch of `n` random keys (sorted, deduped) from a splitmix64 stream.
/// Mixes full-range fingerprints with clustered ones so both large and
/// tiny deltas appear, plus adversarial word patterns in the tail words.
fn random_sorted_keys(seed: u64, n: usize) -> Vec<Key> {
    let mut keys: Vec<Key> = (0..n as u64)
        .map(|i| {
            let a = mix64(seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let b = mix64(a);
            let fp = if i % 4 == 0 {
                // Clustered: tiny fingerprint deltas.
                u128::from(seed % 1000) << 64 | u128::from(b % 512)
            } else {
                u128::from(a) << 64 | u128::from(b)
            };
            (fp, mix64(b) % 8, mix64(b ^ 1), u64::MAX - a % 3)
        })
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

#[test]
fn run_encoder_round_trips_random_sorted_batches() {
    for (case, &(seed, n)) in [
        (1u64, 0usize),
        (2, 1),
        (3, 100),
        (5, 255),
        (7, 256),
        (11, 257),
        (13, 2048),
        (17, 10_000),
    ]
    .iter()
    .enumerate()
    {
        let keys = random_sorted_keys(seed, n);
        let set = CompressedKeySet::from_sorted(&keys);
        assert_eq!(set.len(), keys.len() as u64, "case {case}");
        let mut decoded = Vec::new();
        set.decode_into(&mut decoded);
        assert_eq!(decoded, keys, "case {case}: decode round-trip");
        for k in &keys {
            assert!(set.contains(k), "case {case}: present key {k:?}");
        }
        // Perturbed keys must be absent (unless the perturbation lands on a
        // real key, which the sorted batch rules out for the ctx-word flip).
        for k in keys.iter().step_by(7) {
            let absent = (k.0, k.1, k.2 ^ 0x8000_0000_0000_0000, k.3);
            assert!(!set.contains(&absent), "case {case}: absent key");
        }
    }
}

#[test]
fn budgeted_store_agrees_with_reference_on_random_streams() {
    // Random insert stream with repeats; a tiny budget forces flushes and
    // log-structured merges while answers must track a plain set exactly.
    let mut store = VisitedStore::new(Some(4096), None);
    let mut reference = std::collections::HashSet::new();
    let mut x = 0xD15C_BAC6u64;
    for _ in 0..20_000 {
        x = mix64(x);
        // Small key universe → plenty of duplicate hits in every tier.
        let v = x % 3000;
        let key: Key = (u128::from(v) << 96 | u128::from(mix64(v)), v % 4, 0, v % 9);
        assert_eq!(
            store.insert(key, Vec::new) == shm_explore::store::Lookup::New,
            reference.insert(key),
        );
    }
    assert_eq!(store.len(), reference.len() as u64);
    assert!(store.spilled_bytes() > 0, "budget must have forced spills");
}

fn scenario<'a>(algo: &'a dyn SignalingAlgorithm, waiters: usize) -> ScenarioSpec<'a> {
    ScenarioSpec {
        algorithm: algo,
        waiters,
        max_polls: 1,
        signaler_polls_first: 1,
        model: CostModel::Dsm,
        seed: None,
    }
}

/// The whole point of the store: a forcing budget must not change a single
/// count, verdict, maximum, or schedule — only the memory-trajectory
/// fields. Exercises both spill paths (visited runs and packed frontier
/// nodes: at 8 KiB the frontier ring holds 4 nodes < the 64-node target).
#[test]
fn explore_reports_are_invariant_under_forced_spilling() {
    let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
        Box::new(Broadcast),
        Box::new(SingleWaiter),
        Box::new(SeededBuggy::new(2)),
    ];
    for algo in &algos {
        let s = scenario(algo.as_ref(), 2);
        let unspilled = check(&s, &Bounds::exhaustive());
        let spilled = check(
            &s,
            &Bounds {
                mem_budget: Some(8 * 1024),
                ..Bounds::exhaustive()
            },
        );
        // Tiny spaces can fit under the hot-tier floors (64 keys / 4
        // nodes) even at a forcing budget; single-waiter at n = 3 (~19k
        // states) cannot.
        if algo.name() == "single-waiter" {
            assert!(
                spilled.report.spilled_bytes > 0,
                "{}: 8 KiB must force spilling",
                algo.name()
            );
        }
        let logical = |o: &shm_explore::CheckOutcome| {
            let r = &o.report;
            (
                r.explored,
                r.deduped,
                r.sleep_pruned,
                r.bound_pruned,
                r.terminals,
                r.violations_found,
                r.violations_in_contract,
                r.exhaustive,
                r.frontier,
                r.max_objective
                    .as_ref()
                    .map(|m| (m.value, m.schedule.clone())),
                o.counterexample.as_ref().map(|c| c.schedule.clone()),
            )
        };
        assert_eq!(
            logical(&unspilled),
            logical(&spilled),
            "{}: spilling changed an answer",
            algo.name()
        );
    }
}
