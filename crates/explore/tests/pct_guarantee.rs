//! PCT guarantee smoke tests: the documented schedule budget finds every
//! seeded fault variant at n = 8 (sizes exhaustive BFS cannot reach),
//! reports are byte-identical at any thread count, and a shrunk
//! counterexample replays byte-identically from its serialized JSON alone
//! in a fresh process.

use shm_explore::{check_random, PollingSpecOracle, RandomBounds, ScenarioSpec};
use shm_sim::{CostModel, ProcId};
use signaling::algorithms::{Broadcast, SeededBuggy};
use signaling::SignalingAlgorithm;
use std::sync::Mutex;

/// Thread-count changes are process-global; serialize the tests that touch
/// them.
static POOL_LOCK: Mutex<()> = Mutex::new(());

/// The documented budget: 256 PCT schedules at depth d = 3 over a
/// 4000-step budget (see EXPERIMENTS.md §E10). Every `SeededBuggy` variant
/// must fall within it at n = 8 for the fixed base seed below.
const BUDGET_SCHEDULES: u64 = 256;
const BUDGET_DEPTH: usize = 3;
const BUDGET_STEPS: u64 = 4000;
const BASE_SEED: u64 = 0xE10;

/// The fixed scenario shape of these tests (the "manifest"): a
/// counterexample JSON plus this shape and the `seed` field is the whole
/// repro — nothing from the finding run's scheduler state is needed.
const WAITERS: usize = 8;
const MAX_POLLS: u64 = 2;
const SIGNALER_POLLS_FIRST: u64 = 1;

fn scenario<'a>(algo: &'a dyn SignalingAlgorithm, seed: Option<u64>) -> ScenarioSpec<'a> {
    ScenarioSpec {
        algorithm: algo,
        waiters: WAITERS,
        max_polls: MAX_POLLS,
        signaler_polls_first: SIGNALER_POLLS_FIRST,
        model: CostModel::Dsm,
        seed,
    }
}

/// Every seeded fault family is caught at n = 8 within the documented
/// budget, and the counterexample comes back shrunk, in contract, and
/// audit-clean — exactly the exhaustive checker's packaging.
#[test]
fn every_seeded_buggy_variant_found_within_documented_budget_at_n8() {
    for seed in 0..3 {
        let algo = SeededBuggy::new(seed);
        let s = scenario(&algo, Some(seed));
        let out = check_random(
            &s,
            &RandomBounds::pct(BASE_SEED, BUDGET_SCHEDULES, BUDGET_DEPTH, BUDGET_STEPS),
        );
        assert!(
            out.in_contract_violations > 0,
            "seed {seed}: bug not found within {BUDGET_SCHEDULES} schedules"
        );
        let cx = out.counterexample.expect("violations ⇒ counterexample");
        assert!(cx.in_contract, "seed {seed}");
        assert!(
            cx.audit_clean,
            "seed {seed}: shrunk replay must audit clean"
        );
        assert!(cx.schedule.len() <= cx.shrunk_from, "seed {seed}");
        assert_eq!(cx.n, WAITERS + 1, "seed {seed}");
        assert_eq!(cx.seed, Some(seed), "seed {seed}");
    }
}

/// `check_random` is byte-deterministic across thread counts: every report
/// field and the packaged counterexample agree between 1 and 4 workers.
#[test]
fn check_random_reports_are_byte_identical_at_threads_1_vs_4() {
    let _guard = POOL_LOCK.lock().unwrap();
    let algos: Vec<(Box<dyn SignalingAlgorithm>, Option<u64>)> = vec![
        (Box::new(Broadcast), None),
        (Box::new(SeededBuggy::new(1)), Some(1)),
    ];
    for (algo, seed) in &algos {
        let s = scenario(algo.as_ref(), *seed);
        let bounds = RandomBounds::pct(BASE_SEED, 64, BUDGET_DEPTH, BUDGET_STEPS);
        let run = || {
            let out = check_random(&s, &bounds);
            format!(
                "{:?} | {} {} | {:?}",
                out.report,
                out.in_contract_violations,
                out.out_of_contract_violations,
                out.counterexample.as_ref().map(|c| c.to_json()),
            )
        };
        shm_pool::set_threads(1);
        let one = run();
        shm_pool::set_threads(4);
        let four = run();
        shm_pool::set_threads(0);
        assert_eq!(
            one,
            four,
            "{}: report differs across thread counts",
            algo.name()
        );
    }
}

/// Walk mode (depth 0) shares the determinism guarantee.
#[test]
fn walk_mode_is_thread_count_independent() {
    let _guard = POOL_LOCK.lock().unwrap();
    let s = scenario(&Broadcast, None);
    let bounds = RandomBounds::walk(BASE_SEED, 32, BUDGET_STEPS);
    let run = || format!("{:?}", check_random(&s, &bounds).report);
    shm_pool::set_threads(1);
    let one = run();
    shm_pool::set_threads(4);
    let four = run();
    shm_pool::set_threads(0);
    assert_eq!(one, four);
}

/// Extracts the integer array under `"schedule":[…]` from counterexample
/// JSON. Deliberately minimal: the schema is pinned by
/// `counterexample_json_has_stable_shape`.
fn parse_schedule(json: &str) -> Vec<ProcId> {
    let start = json.find("\"schedule\":[").expect("schedule key") + "\"schedule\":[".len();
    let end = start + json[start..].find(']').expect("schedule close");
    json[start..end]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| ProcId(s.trim().parse().expect("pid digit")))
        .collect()
}

/// Extracts the value of `"seed":N` from counterexample JSON.
fn parse_seed(json: &str) -> u64 {
    let start = json.find("\"seed\":").expect("seed key") + "\"seed\":".len();
    let end = start + json[start..].find(',').expect("seed end");
    json[start..end].trim().parse().expect("seed digits")
}

/// Regression (satellite: replay purity): a shrunk PCT counterexample must
/// replay byte-identically from its JSON alone — no scheduler or
/// exploration rng state involved. The parent finds and shrinks a
/// violation, serializes it, and hands the JSON plus the replayed state
/// fingerprint to a **fresh process** (re-invoking this test binary), which
/// re-parses, re-replays, and re-judges from scratch.
#[test]
fn shrunk_counterexample_replays_byte_identically_in_fresh_process() {
    use shm_explore::Oracle as _;

    if let Ok(path) = std::env::var("PCT_CX_REPLAY_FILE") {
        // Child: everything below runs with no memory of the finding run.
        let blob = std::fs::read_to_string(&path).expect("read handoff file");
        let (json, want_fp) = blob.split_once('\n').expect("json + fingerprint lines");
        let schedule = parse_schedule(json);
        let algo = SeededBuggy::new(parse_seed(json));
        let spec = scenario(&algo, None).build();
        let sim = shm_explore::replay(&spec, &schedule);
        let got_fp = format!("{:032x}", sim.state_fingerprint());
        assert_eq!(got_fp, want_fp.trim(), "replayed state fingerprint differs");
        let oracle = PollingSpecOracle {
            max_concurrent_waiters: algo.max_concurrent_waiters(),
        };
        assert!(oracle.check(&sim).is_err(), "replay must still violate");
        assert!(oracle.in_contract(&sim), "replay must stay in contract");
        assert!(sim.audit(&spec).is_clean(), "replay must audit clean");
        return;
    }

    // Parent: find, shrink, serialize, and record the replayed fingerprint.
    let algo = SeededBuggy::new(1);
    let s = scenario(&algo, Some(1));
    let out = check_random(
        &s,
        &RandomBounds::pct(BASE_SEED, BUDGET_SCHEDULES, BUDGET_DEPTH, BUDGET_STEPS),
    );
    let cx = out.counterexample.expect("negative control must be caught");
    assert!(cx.in_contract && cx.audit_clean);
    let json = cx.to_json();
    let fp = format!(
        "{:032x}",
        shm_explore::replay(&s.build(), &cx.schedule).state_fingerprint()
    );
    let dir = std::env::temp_dir();
    let path = dir.join(format!("pct_cx_replay_{}.json", std::process::id()));
    std::fs::write(&path, format!("{json}\n{fp}\n")).expect("write handoff file");

    let exe = std::env::current_exe().expect("current test binary");
    let status = std::process::Command::new(exe)
        .args([
            "--exact",
            "shrunk_counterexample_replays_byte_identically_in_fresh_process",
        ])
        .env("PCT_CX_REPLAY_FILE", &path)
        .status()
        .expect("spawn fresh replay process");
    std::fs::remove_file(&path).ok();
    assert!(status.success(), "fresh-process replay failed");
}
