//! Seeded randomized exploration: PCT priority sampling and plain random
//! walks at sizes exhaustive search cannot reach.
//!
//! The exhaustive explorer proves Specification 4.1 conformance at n ≤ 3;
//! the §6 adversary sweeps run at n = 256+. This module covers the gap with
//! probabilistic concurrency testing ([`shm_sim::PctScheduler`]): each
//! sampled schedule runs the scenario once under a freshly seeded priority
//! scheduler, the end state is judged by the same [`Oracle`]s the
//! exhaustive checker uses, and any violation goes through the identical
//! shrink → audit pipeline — so a PCT-found counterexample is exactly as
//! trustworthy as an exhaustive one.
//!
//! Judging the **end state** of each schedule is sound for the polling
//! spec: its violation conditions are facts about the recorded event
//! sequence (a poll that returned true before any signal began stays in
//! the history forever), so a verdict that held at any intermediate state
//! still holds at the end of the run.
//!
//! Schedules fan out over [`shm_pool`] one job per schedule, with
//! per-schedule seeds derived from the base seed by a splitmix64 stream
//! (`mix64(seed + (i+1)·φ)` — the job index alone decides the seed), and
//! results merge in submission-index order: reports are byte-identical at
//! any thread count.

use crate::check::{CheckOutcome, ScenarioSpec};
use crate::counterexample::{replay, shrink_schedule, Counterexample};
use crate::explorer::{ExploreReport, FoundViolation, ObjectiveResult};
use crate::oracle::{Objective, Oracle, PollingSpecOracle, ProcRmrs};
use crate::store::VisitedStore;
use shm_sim::rng::mix64;
use shm_sim::{model_tag, PctScheduler, ProcId, SeededRandom, SimSpec, Simulator};

/// Parameters of a randomized ([`check_random`]) exploration.
#[derive(Clone, Copy, Debug)]
pub struct RandomBounds {
    /// Base seed; every sampled schedule derives its own seed from this and
    /// its submission index, so the whole run is a pure function of the
    /// bounds and the scenario.
    pub seed: u64,
    /// Number of schedules to sample.
    pub schedules: u64,
    /// PCT bug depth `d`: `d − 1` priority-change points per schedule.
    /// `0` selects a plain seeded random walk ([`shm_sim::SeededRandom`])
    /// instead of priority scheduling.
    pub depth_d: usize,
    /// Per-schedule step budget `k`. With give-up scenario bounds the run
    /// usually terminates earlier; the budget also caps runaway schedules.
    pub steps: u64,
    /// Byte budget for the distinct-fingerprint coverage set (the one
    /// per-run structure that grows with `schedules`): beyond it,
    /// fingerprints spill to delta-compressed disk runs exactly like the
    /// exhaustive visited store ([`crate::store`]). `None` = unbounded.
    /// Never changes a count — only where fingerprints live.
    pub mem_budget: Option<usize>,
}

impl RandomBounds {
    /// PCT sampling: `schedules` runs at bug depth `d` over a `steps`
    /// budget.
    #[must_use]
    pub fn pct(seed: u64, schedules: u64, depth_d: usize, steps: u64) -> Self {
        assert!(depth_d >= 1, "PCT depth must be at least 1 (0 = walk mode)");
        RandomBounds {
            seed,
            schedules,
            depth_d,
            steps,
            mem_budget: None,
        }
    }

    /// Plain seeded random-walk sampling (uniform over runnable processes
    /// each step).
    #[must_use]
    pub fn walk(seed: u64, schedules: u64, steps: u64) -> Self {
        RandomBounds {
            seed,
            schedules,
            depth_d: 0,
            steps,
            mem_budget: None,
        }
    }
}

/// The i-th schedule's seed: position `i` of a splitmix64 stream starting
/// at `base`. Depends only on `(base, i)`, never on thread interleaving.
#[must_use]
pub fn schedule_seed(base: u64, i: u64) -> u64 {
    mix64(base.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Statistics of one randomized exploration, alongside the violation and
/// objective fields shared with [`ExploreReport`].
#[derive(Clone, Debug, Default)]
pub struct RandomReport {
    /// Schedules sampled (always `RandomBounds::schedules`).
    pub schedules_run: u64,
    /// Simulator steps taken across all schedules.
    pub steps_taken: u64,
    /// Schedules that ran every process to termination within the budget.
    pub terminals: u64,
    /// Distinct end-state fingerprints over all sampled schedules — a
    /// coverage proxy (how much of the space the sampling actually spread
    /// over).
    pub distinct_fingerprints: u64,
    /// Schedules whose end state violated an oracle.
    pub violations_found: u64,
    /// How many of those were within the participation contract.
    pub violations_in_contract: u64,
    /// Retained violation records in submission-index order (capped at
    /// [`RandomReport::KEEP_VIOLATIONS`]).
    pub violations: Vec<FoundViolation>,
    /// Maximum objective value over terminal schedules, with the earliest
    /// (by submission index) schedule reaching it.
    pub max_objective: Option<ObjectiveResult>,
    /// Peak logical bytes of the fingerprint coverage set (deterministic
    /// [`crate::store::SLOT_BYTES`]-per-key accounting, not an RSS
    /// reading).
    pub peak_visited_bytes: u64,
    /// Delta-compressed bytes the coverage set spilled to disk (0 when
    /// [`RandomBounds::mem_budget`] never forced a spill).
    pub spilled_bytes: u64,
}

impl RandomReport {
    /// Cap on retained violation records (matching
    /// [`crate::Bounds::exhaustive`]'s default).
    pub const KEEP_VIOLATIONS: usize = 16;

    /// Violations found outside the participation contract.
    #[must_use]
    pub fn out_of_contract_violations(&self) -> u64 {
        self.violations_found - self.violations_in_contract
    }

    /// Views the randomized run as an [`ExploreReport`] (never exhaustive;
    /// sampling-specific counters have no equivalent and are dropped) so
    /// report consumers can share code with the exhaustive checker.
    #[must_use]
    pub fn as_explore_report(&self) -> ExploreReport {
        ExploreReport {
            explored: self.schedules_run,
            terminals: self.terminals,
            violations_found: self.violations_found,
            violations_in_contract: self.violations_in_contract,
            violations: self.violations.clone(),
            max_objective: self.max_objective.clone(),
            exhaustive: false,
            peak_visited_bytes: self.peak_visited_bytes,
            spilled_bytes: self.spilled_bytes,
            ..ExploreReport::default()
        }
    }
}

/// The result of [`check_random`]: sampling statistics plus the same
/// contract classification and shrunk, audited counterexample that
/// [`crate::check`] produces.
pub struct RandomOutcome {
    /// Sampling statistics and retained findings.
    pub report: RandomReport,
    /// Violations within the algorithm's participation contract.
    pub in_contract_violations: u64,
    /// Violations outside the contract (recorded, not held against the
    /// algorithm).
    pub out_of_contract_violations: u64,
    /// The first violation in submission-index order, shrunk by greedy
    /// step-deletion (preserving the oracle verdict and the contract
    /// classification) and re-validated through the differential RMR audit.
    pub counterexample: Option<Counterexample>,
}

impl RandomOutcome {
    /// Whether sampling found no in-contract violation. Never a proof —
    /// randomized exploration is an under-approximation by construction.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.in_contract_violations == 0
    }

    /// The empirical maximum of the signaler's RMRs over terminal sampled
    /// schedules, if any schedule terminated.
    #[must_use]
    pub fn max_signaler_rmrs(&self) -> Option<u64> {
        self.report.max_objective.as_ref().map(|m| m.value)
    }

    /// Views this outcome as a [`CheckOutcome`] (via
    /// [`RandomReport::as_explore_report`]).
    #[must_use]
    pub fn as_check_outcome(&self) -> CheckOutcome {
        CheckOutcome {
            report: self.report.as_explore_report(),
            in_contract_violations: self.in_contract_violations,
            out_of_contract_violations: self.out_of_contract_violations,
            counterexample: self.counterexample.clone(),
        }
    }
}

/// What one sampled schedule contributes to the merge. Only violating jobs
/// carry their schedule; the objective argmax schedule is reconstructed
/// afterwards by re-running the winning seed (cheaper than shipping every
/// terminal schedule back).
struct ScheduleResult {
    steps: u64,
    terminal: bool,
    fingerprint: u128,
    objective: Option<u64>,
    violation: Option<(String, bool, Vec<ProcId>)>,
}

/// Runs schedule `i` of the sampling plan: one fresh simulator under a
/// scheduler seeded with [`schedule_seed`]`(bounds.seed, i)`.
fn run_schedule(spec: &SimSpec, n: usize, bounds: &RandomBounds, i: u64) -> (Simulator, u64) {
    let seed = schedule_seed(bounds.seed, i);
    let mut sim = Simulator::new(spec);
    let taken = if bounds.depth_d == 0 {
        let mut sched = SeededRandom::new(seed);
        shm_sim::run(&mut sim, &mut sched, bounds.steps)
    } else {
        let mut sched = PctScheduler::new(seed, n, bounds.depth_d, bounds.steps);
        shm_sim::run(&mut sim, &mut sched, bounds.steps)
    };
    (sim, taken)
}

/// Samples `bounds.schedules` randomized schedules of `scenario`, judging
/// each end state with the Specification 4.1 polling oracle (under the
/// algorithm's `max_concurrent_waiters` contract) and maximizing the
/// signaler's RMRs over terminal schedules — the randomized counterpart of
/// [`crate::check`]. Deterministic at any thread count: seeds derive from
/// submission indices and results merge in submission order.
#[must_use]
pub fn check_random(scenario: &ScenarioSpec<'_>, bounds: &RandomBounds) -> RandomOutcome {
    let spec = scenario.build();
    let oracle = PollingSpecOracle {
        max_concurrent_waiters: scenario.algorithm.max_concurrent_waiters(),
    };
    let objective = ProcRmrs(scenario.signaler());
    let n = scenario.n();

    let jobs: Vec<u64> = (0..bounds.schedules).collect();
    let results = shm_pool::map_indexed(shm_pool::threads(), jobs, |_, i| {
        shm_obs::counter!("pct.schedules");
        let (sim, taken) = run_schedule(&spec, n, bounds, i);
        shm_obs::counter!("pct.steps", taken);
        let terminal = sim.all_done();
        let violation = oracle.check(&sim).err().map(|desc| {
            shm_obs::counter!("pct.oracle_failures");
            (desc, oracle.in_contract(&sim), sim.schedule().to_vec())
        });
        ScheduleResult {
            steps: taken,
            terminal,
            fingerprint: sim.state_fingerprint(),
            objective: terminal.then(|| objective.measure(&sim)),
            violation,
        }
    });

    // Submission-index merge: every fold below visits results in job order.
    // The fingerprint coverage set is the one structure that grows with the
    // schedule count, so it takes the memory budget (spilling to compressed
    // disk runs beyond it, which changes no count — only where keys live).
    let mut report = RandomReport::default();
    let mut fingerprints = VisitedStore::new(bounds.mem_budget, None);
    let mut best: Option<(u64, u64)> = None; // (value, job index)
    for (i, r) in results.iter().enumerate() {
        report.schedules_run += 1;
        report.steps_taken += r.steps;
        report.terminals += u64::from(r.terminal);
        fingerprints.insert((r.fingerprint, 0, 0, 0), Vec::new);
        if let Some((desc, in_contract, schedule)) = &r.violation {
            report.violations_found += 1;
            report.violations_in_contract += u64::from(*in_contract);
            if report.violations.len() < RandomReport::KEEP_VIOLATIONS {
                report.violations.push(FoundViolation {
                    oracle: oracle.name(),
                    description: desc.clone(),
                    in_contract: *in_contract,
                    schedule: schedule.clone(),
                });
            }
        }
        if let Some(v) = r.objective {
            // Strict >: ties keep the earliest submission index.
            if best.is_none_or(|(bv, _)| v > bv) {
                best = Some((v, i as u64));
            }
        }
    }
    report.distinct_fingerprints = fingerprints.len();
    report.peak_visited_bytes = fingerprints.peak_bytes();
    report.spilled_bytes = fingerprints.spilled_bytes();
    shm_obs::counter!("pct.distinct_fingerprints", report.distinct_fingerprints);
    report.max_objective = best.map(|(value, i)| {
        let (sim, _) = run_schedule(&spec, n, bounds, i);
        ObjectiveResult {
            name: objective.name(),
            value,
            schedule: sim.schedule().to_vec(),
        }
    });

    // Identical packaging to `check`: shrink the first violation preserving
    // verdict + contract classification, then re-validate through the
    // differential RMR audit. Replay is a pure function of
    // `(spec, schedule)` — no scheduler or rng state is involved — so the
    // serialized counterexample alone reproduces the violating state.
    let counterexample = report.violations.first().map(|v| {
        let want_in_contract = v.in_contract;
        let keep = |sim: &Simulator| {
            oracle.check(sim).is_err() && oracle.in_contract(sim) == want_in_contract
        };
        let schedule = shrink_schedule(&spec, &v.schedule, keep);
        let audit_clean = replay(&spec, &schedule).audit(&spec).is_clean();
        Counterexample {
            algorithm: scenario.algorithm.name().to_owned(),
            oracle: v.oracle.to_owned(),
            description: v.description.clone(),
            in_contract: v.in_contract,
            model: model_tag(scenario.model),
            n: scenario.n(),
            seed: scenario.seed,
            schedule,
            shrunk_from: v.schedule.len(),
            max_depth: Some(bounds.steps as usize),
            max_preemptions: None,
            audit_clean,
        }
    });

    RandomOutcome {
        in_contract_violations: report.violations_in_contract,
        out_of_contract_violations: report.out_of_contract_violations(),
        counterexample,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shm_sim::CostModel;
    use signaling::algorithms::Broadcast;
    use signaling::SignalingAlgorithm;

    fn scenario<'a>(algo: &'a dyn SignalingAlgorithm, waiters: usize) -> ScenarioSpec<'a> {
        ScenarioSpec {
            algorithm: algo,
            waiters,
            max_polls: 2,
            signaler_polls_first: 1,
            model: CostModel::Dsm,
            seed: None,
        }
    }

    #[test]
    fn derived_seeds_are_index_pure_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| schedule_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| schedule_seed(42, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 64, "splitmix stream collides within 64 draws");
        assert_ne!(schedule_seed(42, 0), schedule_seed(43, 0));
    }

    #[test]
    fn broadcast_is_clean_under_pct_at_n8() {
        let out = check_random(&scenario(&Broadcast, 8), &RandomBounds::pct(7, 64, 3, 4000));
        assert!(out.is_clean(), "{:?}", out.report.violations);
        assert_eq!(out.report.schedules_run, 64);
        assert!(out.report.terminals > 0, "give-up bounds terminate runs");
        assert!(out.report.distinct_fingerprints > 1, "sampling spread out");
        assert!(out.max_signaler_rmrs().is_some());
    }

    #[test]
    fn walk_mode_is_clean_and_deterministic() {
        let run = || {
            let out = check_random(&scenario(&Broadcast, 4), &RandomBounds::walk(9, 32, 4000));
            (
                out.report.terminals,
                out.report.distinct_fingerprints,
                out.max_signaler_rmrs(),
                out.report
                    .max_objective
                    .as_ref()
                    .map(|m| m.schedule.clone()),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pct_outcome_views_as_check_outcome() {
        let out = check_random(&scenario(&Broadcast, 2), &RandomBounds::pct(3, 8, 2, 2000));
        let as_check = out.as_check_outcome();
        assert!(!as_check.report.exhaustive, "sampling is never a proof");
        assert_eq!(as_check.report.explored, 8);
        assert_eq!(as_check.is_clean(), out.is_clean());
    }
}
