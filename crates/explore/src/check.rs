//! High-level entry point: explore a signaling scenario, classify what was
//! found, and package the first violation as a shrunk, audited
//! counterexample.

use crate::bounds::Bounds;
use crate::counterexample::{replay, shrink_schedule, Counterexample};
use crate::explorer::{explore_carry, ExploreReport, ObjectiveResult};
use crate::oracle::{Oracle, PollingSpecOracle, ProcRmrs};
use crate::store::CarryBase;
use shm_sim::{model_tag, CostModel, ProcId, SimSpec};
use signaling::{Role, Scenario, SignalingAlgorithm};
use std::sync::Arc;

/// A signaling scenario suitable for exhaustive exploration: `waiters`
/// give-up waiters (processes `0..waiters`, each polling at most
/// `max_polls` times) plus one signaler (process `waiters`, optionally
/// polling before it signals). Give-up bounds keep the schedule space
/// finite without any depth bound, so verdicts at small n are proofs.
pub struct ScenarioSpec<'a> {
    /// The algorithm under test.
    pub algorithm: &'a dyn SignalingAlgorithm,
    /// Number of waiter processes.
    pub waiters: usize,
    /// Give-up bound: each waiter polls at most this many times.
    pub max_polls: u64,
    /// Unsuccessful polls the signaler makes before signaling.
    pub signaler_polls_first: u64,
    /// Cost model to price accesses under.
    pub model: CostModel,
    /// Seed recorded in counterexamples when a seeded component (e.g. a
    /// seeded-buggy algorithm variant) is part of the scenario; exploration
    /// itself is seedless.
    pub seed: Option<u64>,
}

impl ScenarioSpec<'_> {
    /// Total number of processes (waiters + the signaler).
    #[must_use]
    pub fn n(&self) -> usize {
        self.waiters + 1
    }

    /// The signaler's process ID.
    #[must_use]
    pub fn signaler(&self) -> ProcId {
        ProcId(self.waiters as u32)
    }

    /// Builds the executable spec via the §4 scenario harness.
    #[must_use]
    pub fn build(&self) -> SimSpec {
        let mut roles = vec![
            Role::Waiter {
                max_polls: Some(self.max_polls),
            };
            self.waiters
        ];
        roles.push(Role::Signaler {
            polls_first: self.signaler_polls_first,
        });
        Scenario {
            algorithm: self.algorithm,
            roles,
            model: self.model,
        }
        .build()
    }
}

/// The result of [`check`]: the raw exploration report plus the contract
/// classification and (when anything violated) a shrunk counterexample.
pub struct CheckOutcome {
    /// The underlying exploration report.
    pub report: ExploreReport,
    /// Violations within the algorithm's participation contract — these
    /// count against the algorithm.
    pub in_contract_violations: u64,
    /// Violations outside the contract — recorded, not held against the
    /// algorithm.
    pub out_of_contract_violations: u64,
    /// The first violation in deterministic exploration order, shrunk by
    /// greedy step-deletion (preserving the oracle verdict *and* the
    /// contract classification) and re-validated through the differential
    /// RMR audit.
    pub counterexample: Option<Counterexample>,
}

impl CheckOutcome {
    /// Whether the scenario is clean: no in-contract violation found. Only a
    /// proof when [`ExploreReport::exhaustive`] also holds.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.in_contract_violations == 0
    }

    /// The empirical maximum of the signaler's RMRs over all complete
    /// schedules, if any terminal state was reached.
    #[must_use]
    pub fn max_signaler_rmrs(&self) -> Option<u64> {
        self.report.max_objective.as_ref().map(|m| m.value)
    }
}

/// Explores every schedule of `scenario` under `bounds`, checking
/// Specification 4.1 (polling semantics) with the algorithm's
/// `max_concurrent_waiters` contract, and maximizing the signaler's RMRs
/// over terminal states. Deterministic at any thread count.
#[must_use]
pub fn check(scenario: &ScenarioSpec<'_>, bounds: &Bounds) -> CheckOutcome {
    check_carry(scenario, bounds, None, false).0
}

/// [`check`] plus cross-bound visited-store carry (see
/// [`crate::explorer::explore_carry`]): dedup hits against `base` prune as
/// reuse, and `collect` asks for the union store back for the next bound.
fn check_carry(
    scenario: &ScenarioSpec<'_>,
    bounds: &Bounds,
    base: Option<&Arc<CarryBase>>,
    collect: bool,
) -> (CheckOutcome, Option<Arc<CarryBase>>) {
    let spec = scenario.build();
    let oracle = PollingSpecOracle {
        max_concurrent_waiters: scenario.algorithm.max_concurrent_waiters(),
    };
    let objective = ProcRmrs(scenario.signaler());
    let (report, carry) = explore_carry(&spec, &[&oracle], Some(&objective), bounds, base, collect);
    let counterexample = report.violations.first().map(|v| {
        let want_in_contract = v.in_contract;
        let keep = |sim: &shm_sim::Simulator| {
            oracle.check(sim).is_err() && oracle.in_contract(sim) == want_in_contract
        };
        let schedule = shrink_schedule(&spec, &v.schedule, keep);
        let audit_clean = replay(&spec, &schedule).audit(&spec).is_clean();
        Counterexample {
            algorithm: scenario.algorithm.name().to_owned(),
            oracle: v.oracle.to_owned(),
            description: v.description.clone(),
            in_contract: v.in_contract,
            model: model_tag(scenario.model),
            n: scenario.n(),
            seed: scenario.seed,
            schedule,
            shrunk_from: v.schedule.len(),
            max_depth: bounds.max_depth,
            max_preemptions: bounds.max_preemptions,
            audit_clean,
        }
    });
    (
        CheckOutcome {
            in_contract_violations: report.violations_in_contract,
            out_of_contract_violations: report.out_of_contract_violations(),
            counterexample,
            report,
        },
        carry,
    )
}

/// CHESS-style iterative deepening over the preemption bound: runs [`check`]
/// with `max_preemptions = 0, 1, …, cap` (keeping the other fields of
/// `bounds`), stopping early as soon as a run finds any violation. Returns
/// the outcomes in order; the last one is either the first violating bound
/// or the `cap` run. Violations surface at the *smallest* preemption budget
/// that can produce them — the CHESS observation that most bugs need very
/// few preemptions.
///
/// The visited store **carries across bounds**: the dedup key's bound word
/// encodes the remaining preemption budget, so a key visited at an earlier
/// bound certifies its whole remaining-budget subtree was already explored
/// and judged — bound `p` skips it, counting the hit in
/// [`ExploreReport::reused`]. Per-bound reports therefore count the *new*
/// exploration each budget adds (and a carried subtree's violations were
/// judged at the earlier, clean bound), while
/// [`ExploreReport::max_objective`] is folded forward so every outcome
/// reports the running maximum over all budgets up to and including its
/// own — identical to what un-carried runs would report. Carry is skipped
/// after a state-capped run ([`ExploreReport::state_capped`]), whose keys
/// may front unexplored subtrees.
#[must_use]
pub fn check_iterative(
    scenario: &ScenarioSpec<'_>,
    bounds: &Bounds,
    cap: usize,
) -> Vec<CheckOutcome> {
    let mut outcomes = Vec::new();
    let mut base: Option<Arc<CarryBase>> = None;
    let mut best: Option<ObjectiveResult> = None;
    for p in 0..=cap {
        let b = Bounds {
            max_preemptions: Some(p),
            ..*bounds
        };
        let (mut out, next) = check_carry(scenario, &b, base.as_ref(), p < cap);
        base = next;
        // Fold the running argmax forward (strict >: the earliest bound
        // reaching a value keeps its schedule).
        if let Some(prev) = &best {
            let keep_prev = out
                .report
                .max_objective
                .as_ref()
                .is_none_or(|m| m.value <= prev.value);
            if keep_prev {
                out.report.max_objective = Some(prev.clone());
            }
        }
        best.clone_from(&out.report.max_objective);
        let found = out.report.violations_found > 0;
        outcomes.push(out);
        if found {
            break;
        }
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use signaling::algorithms::{Broadcast, CcFlag};

    fn scenario<'a>(algo: &'a dyn SignalingAlgorithm, model: CostModel) -> ScenarioSpec<'a> {
        ScenarioSpec {
            algorithm: algo,
            waiters: 2,
            max_polls: 1,
            signaler_polls_first: 0,
            model,
            seed: None,
        }
    }

    #[test]
    fn broadcast_is_clean_and_exhaustive_at_small_n() {
        let out = check(&scenario(&Broadcast, CostModel::Dsm), &Bounds::exhaustive());
        assert!(out.report.exhaustive);
        assert!(out.is_clean(), "{:?}", out.report.violations);
        assert_eq!(out.report.violations_found, 0);
        assert!(out.counterexample.is_none());
        assert!(out.max_signaler_rmrs().is_some());
    }

    #[test]
    fn cc_flag_is_clean_under_cc() {
        let out = check(
            &scenario(&CcFlag, CostModel::cc_default()),
            &Bounds::exhaustive(),
        );
        assert!(out.report.exhaustive);
        assert!(out.is_clean(), "{:?}", out.report.violations);
    }

    #[test]
    fn iterative_preemption_bounding_covers_budgets_in_order() {
        let outs = check_iterative(
            &scenario(&Broadcast, CostModel::Dsm),
            &Bounds::exhaustive(),
            2,
        );
        assert_eq!(outs.len(), 3, "clean algorithm runs every budget");
        assert!(outs.iter().all(CheckOutcome::is_clean));
        // With cross-bound carry each report counts the *new* exploration
        // its budget adds; the folded argmax must match a from-scratch run
        // at the same (final) budget.
        let plain = check(
            &scenario(&Broadcast, CostModel::Dsm),
            &Bounds {
                max_preemptions: Some(2),
                ..Bounds::exhaustive()
            },
        );
        assert_eq!(
            outs[2].max_signaler_rmrs(),
            plain.max_signaler_rmrs(),
            "folded objective equals the un-carried run's"
        );
        assert_eq!(outs[0].report.reused, 0, "no base at the first budget");
        assert!(
            outs[1].report.reused + outs[2].report.reused > 0,
            "later budgets reuse prior-bound subtrees: {:?}",
            outs.iter().map(|o| o.report.reused).collect::<Vec<_>>()
        );
    }

    #[test]
    fn iterative_carry_reports_are_memory_budget_invariant() {
        // Spilling moves keys between tiers but never changes answers: the
        // per-bound counts must be identical with a tiny forcing budget.
        let run = |mem: Option<usize>| {
            let b = Bounds {
                mem_budget: mem,
                ..Bounds::exhaustive()
            };
            check_iterative(&scenario(&Broadcast, CostModel::Dsm), &b, 2)
                .iter()
                .map(|o| {
                    let r = &o.report;
                    (r.explored, r.deduped, r.terminals, r.reused)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(None), run(Some(8 * 1024)));
    }
}
