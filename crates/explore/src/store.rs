//! The two-tier visited store and the spillable frontier queue: exploration
//! memory becomes a disk-budget question instead of a RAM wall.
//!
//! [`VisitedStore`] replaces the explorer's flat `HashSet<Key>`: a bounded
//! *hot* open-addressed table (the std `HashSet` with the multiply-fold
//! [`Key`] hasher — SwissTable is open addressing) absorbs inserts until it
//! reaches its byte budget, then flushes as one sorted, delta-compressed
//! run to a temporary file ([`crate::spill`]); runs merge log-structured
//! (at [`MAX_RUNS`] a streaming k-way merge rewrites them as one). Because
//! every insert probes the cold tier *before* landing in the hot table,
//! runs are pairwise disjoint and disjoint from the hot tier — the store is
//! an exact set at every moment, and membership answers are independent of
//! where a key happens to live. That is the determinism argument in one
//! line: **tiering moves keys, never answers**, so explored/deduped counts
//! and every verdict are byte-identical with any `mem_budget`, including
//! none.
//!
//! [`SpillQueue`] does the same for the breadth-first frontier: a hot ring
//! of live nodes backed by a FIFO file of packed entries (an encoded
//! schedule replays to the identical simulator state, so a node that takes
//! the disk detour expands exactly as a resident one would).
//!
//! [`CarryBase`] is the third, read-only tier: the visited keys of a
//! previous `check_iterative` preemption bound, delta-compressed in memory
//! and shared across workers by `Arc`, so iterative deepening stops
//! re-exploring subtrees the previous bound already covered (sound because
//! the bound word of a [`Key`] encodes the *remaining* preemption budget —
//! see `explorer::key_of`).

use crate::spill::{
    self, block_contains, fence_for, CompressedKeySet, Fence, Key, Prefilter, RunEncoder,
};
use std::collections::{HashSet, VecDeque};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Logical bytes charged per hot-tier key: 40 key bytes plus amortized
/// open-addressing overhead (load factor, control bytes, growth slack).
/// Budget accounting uses this *logical* figure, never allocator or RSS
/// numbers, so every memory metric in a report is a deterministic function
/// of the exploration itself.
pub const SLOT_BYTES: usize = 88;

/// Logical bytes charged per resident frontier node (a cloned simulator is
/// heavyweight: process machines, history, caches).
pub const NODE_SLOT_BYTES: usize = 4096;

/// Cold runs are merged down to one whenever this many accumulate.
const MAX_RUNS: usize = 4;

/// Staged spill writes flush to the file in chunks of this size.
const WBUF_FLUSH: usize = 1 << 20;

/// Fraction of the budget given to the visited hot tier (the rest backs
/// the frontier ring): 3/4, as the visited set dominates at depth.
fn split_visited(budget: usize) -> usize {
    budget / 4 * 3
}

/// Hot-tier key capacity for a visited budget. `None` = unbounded (the
/// store never spills). At least 64 keys stay resident no matter how small
/// the budget, so pathological budgets degrade to "spill often", not "fail".
#[must_use]
pub fn visited_hot_cap(budget: Option<usize>) -> usize {
    match budget {
        None => usize::MAX,
        Some(b) => (split_visited(b) / SLOT_BYTES).max(64),
    }
}

/// Hot-ring node capacity for a frontier budget. `None` = unbounded.
#[must_use]
pub fn frontier_hot_cap(budget: Option<usize>) -> usize {
    match budget {
        None => usize::MAX,
        Some(b) => (b / 4 / NODE_SLOT_BYTES).max(4),
    }
}

/// Hasher for [`Key`]s: the key already leads with a 128-bit polynomial
/// state fingerprint, so hashing it again through SipHash (the `HashSet`
/// default, resistant to adversarial keys these are not) only burns time in
/// the per-claimed-child dedup probe. One multiply-fold per word is plenty.
#[derive(Clone, Copy, Default)]
struct KeyHasher(u64);

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Keys are fixed-width word tuples; chunks are always full words.
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0 ^ u64::from_le_bytes(w)).wrapping_mul(0x9ddf_ea08_eb38_2d69);
            self.0 ^= self.0 >> 32;
        }
    }
}

type KeyHashBuilder = std::hash::BuildHasherDefault<KeyHasher>;

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique temp path for one spill file. The file is removed on
/// drop of its owner; the pid+sequence name keeps concurrent workers (and
/// concurrent test processes) from colliding.
fn spill_path(kind: &str) -> PathBuf {
    let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "shm-explore-{}-{}-{}.spill",
        kind,
        std::process::id(),
        seq
    ))
}

/// Which tier answered an insert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// The key was not present anywhere; it is now in the hot tier.
    New,
    /// Duplicate, found in the hot table.
    Hot,
    /// Duplicate, found in a cold on-disk run.
    Cold,
    /// Duplicate, found in the carried base of a previous iterative bound.
    Base,
}

/// One immutable sorted run spilled to a temp file: fences and prefilter
/// stay resident; the delta-compressed key blocks live on disk and are read
/// back one block per probe.
struct ColdRun {
    path: PathBuf,
    file: File,
    fences: Vec<Fence>,
    filter: Prefilter,
    count: u64,
    bytes: u64,
}

impl ColdRun {
    /// Encodes `keys` (strictly ascending) into a fresh temp file,
    /// streaming the encoder so at most [`WBUF_FLUSH`] encoded bytes are
    /// ever buffered.
    fn write(keys: impl Iterator<Item = Key>, approx: usize) -> std::io::Result<ColdRun> {
        let path = spill_path("run");
        let mut file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        let mut enc = RunEncoder::new();
        let mut filter = Prefilter::with_capacity(approx);
        for key in keys {
            enc.push(key);
            filter.insert(key.0);
            if enc.buffered() >= WBUF_FLUSH {
                file.write_all(&enc.drain())?;
            }
        }
        let (rest, fences, count, bytes) = enc.finish();
        file.write_all(&rest)?;
        Ok(ColdRun {
            path,
            file,
            fences,
            filter,
            count,
            bytes,
        })
    }

    /// Exact membership; reads at most one block from disk. The prefilter
    /// check happens in [`VisitedStore::lookup`] so a miss never gets here.
    fn contains(&mut self, key: &Key, block_buf: &mut Vec<u8>) -> std::io::Result<bool> {
        let Some(fi) = fence_for(&self.fences, key) else {
            return Ok(false);
        };
        let f = &self.fences[fi];
        block_buf.resize(f.len as usize, 0);
        self.file.seek(SeekFrom::Start(f.offset))?;
        self.file.read_exact(block_buf)?;
        Ok(block_contains(block_buf, f.count, key))
    }

    /// Resident index footprint (fences + prefilter); the key bytes are on
    /// disk and charge nothing.
    fn index_bytes(&self) -> usize {
        self.fences.len() * std::mem::size_of::<Fence>() + self.filter.resident_bytes()
    }
}

impl Drop for ColdRun {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A streaming decode cursor over one run, for k-way merges: holds one
/// decoded block at a time.
struct RunCursor {
    run: ColdRun,
    fi: usize,
    keys: Vec<Key>,
    pos: usize,
    block: Vec<u8>,
}

impl RunCursor {
    fn new(run: ColdRun) -> Self {
        RunCursor {
            run,
            fi: 0,
            keys: Vec::new(),
            pos: 0,
            block: Vec::new(),
        }
    }

    fn refill(&mut self) -> std::io::Result<()> {
        while self.pos >= self.keys.len() {
            if self.fi >= self.run.fences.len() {
                return Ok(());
            }
            let f = &self.run.fences[self.fi];
            self.fi += 1;
            self.block.resize(f.len as usize, 0);
            self.run.file.seek(SeekFrom::Start(f.offset))?;
            self.run.file.read_exact(&mut self.block)?;
            self.keys.clear();
            self.pos = 0;
            spill::decode_block_into(&self.block, f.count, &mut self.keys);
        }
        Ok(())
    }

    fn peek(&mut self) -> std::io::Result<Option<Key>> {
        self.refill()?;
        Ok(self.keys.get(self.pos).copied())
    }

    fn advance(&mut self) {
        self.pos += 1;
    }
}

/// The two-tier (plus optional carried base) visited set. Exact set
/// semantics at every budget; see the module docs for the tiering and the
/// determinism argument.
pub struct VisitedStore {
    hot: HashSet<Key, KeyHashBuilder>,
    hot_cap: usize,
    runs: Vec<ColdRun>,
    base: Option<Arc<CarryBase>>,
    len: u64,
    reused: u64,
    spilled_bytes: u64,
    peak_bytes: u64,
    block_buf: Vec<u8>,
    /// Exact-state fallback: fingerprint collisions would silently merge
    /// distinct states, so debug builds (and `exact-fingerprints` feature
    /// builds of shm-sim, via the same cfg) keep the full word encodings
    /// across *all* tiers — a key that spilled to disk still has its words
    /// here — and assert every dedup hit, whichever tier answered it.
    #[cfg(debug_assertions)]
    exact: std::collections::HashMap<Key, Vec<u64>>,
}

impl VisitedStore {
    /// An empty store. `budget` is the whole exploration memory budget
    /// ([`crate::Bounds::mem_budget`]); the visited tier takes its 3/4
    /// share via [`visited_hot_cap`]. `base` is the read-only key set of a
    /// previous iterative bound, if carrying.
    #[must_use]
    pub fn new(budget: Option<usize>, base: Option<Arc<CarryBase>>) -> Self {
        VisitedStore {
            hot: HashSet::default(),
            hot_cap: visited_hot_cap(budget),
            runs: Vec::new(),
            base,
            len: 0,
            reused: 0,
            spilled_bytes: 0,
            peak_bytes: 0,
            block_buf: Vec::new(),
            #[cfg(debug_assertions)]
            exact: std::collections::HashMap::new(),
        }
    }

    /// Keys inserted into *this* store (the carried base not included).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether this store holds no keys of its own.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dedup hits answered by the carried base (prior-bound reuse).
    #[must_use]
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Total delta-compressed bytes spilled to disk by this store.
    #[must_use]
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes
    }

    /// Peak logical resident footprint: hot keys at [`SLOT_BYTES`] each
    /// plus the resident run indexes. Deterministic (never an allocator or
    /// RSS reading).
    #[must_use]
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    fn note_peak(&mut self) {
        let cold_index: usize = self.runs.iter().map(ColdRun::index_bytes).sum();
        let now = (self.hot.len() * SLOT_BYTES + cold_index) as u64;
        self.peak_bytes = self.peak_bytes.max(now);
    }

    fn lookup(&mut self, key: &Key) -> Lookup {
        if self.hot.contains(key) {
            shm_obs::counter!("store.hot_hits");
            return Lookup::Hot;
        }
        if self.base.as_deref().is_some_and(|b| b.contains(key)) {
            return Lookup::Base;
        }
        if !self.runs.is_empty() {
            for run in &mut self.runs {
                if !run.filter.maybe_contains(key.0) {
                    continue;
                }
                shm_obs::counter!("store.cold_probes");
                let mut buf = std::mem::take(&mut self.block_buf);
                let hit = run.contains(key, &mut buf).expect("spill run read");
                self.block_buf = buf;
                if hit {
                    return Lookup::Cold;
                }
            }
        }
        Lookup::New
    }

    /// Inserts `key`, reporting which tier (if any) already had it. A
    /// duplicate is *not* re-inserted; a new key lands in the hot tier and
    /// may trigger a spill. `words` materializes the exact state encoding
    /// — only ever called in debug builds, where every duplicate hit is
    /// asserted against the encoding recorded at first insert (the
    /// collision cross-check, preserved across tiers).
    pub fn insert(&mut self, key: Key, words: impl FnOnce() -> Vec<u64>) -> Lookup {
        let found = self.lookup(&key);
        match found {
            Lookup::New => {
                #[cfg(debug_assertions)]
                self.exact.insert(key, words());
                #[cfg(not(debug_assertions))]
                let _ = &words;
                self.hot.insert(key);
                self.len += 1;
                self.note_peak();
                if self.hot.len() >= self.hot_cap {
                    self.flush();
                }
            }
            Lookup::Base => {
                self.reused += 1;
                #[cfg(debug_assertions)]
                self.assert_exact(&key, words());
            }
            Lookup::Hot | Lookup::Cold => {
                #[cfg(debug_assertions)]
                self.assert_exact(&key, words());
            }
        }
        found
    }

    #[cfg(debug_assertions)]
    fn assert_exact(&self, key: &Key, words: Vec<u64>) {
        let recorded = self
            .exact
            .get(key)
            .or_else(|| self.base.as_deref().and_then(|b| b.exact.get(key)));
        assert_eq!(
            recorded,
            Some(&words),
            "state-fingerprint collision: distinct states share a dedup key"
        );
    }

    /// Spills the hot tier as one sorted run, then merges runs down when
    /// [`MAX_RUNS`] have accumulated.
    fn flush(&mut self) {
        if self.hot.is_empty() {
            return;
        }
        let mut keys: Vec<Key> = self.hot.drain().collect();
        keys.sort_unstable();
        let n = keys.len();
        let run = ColdRun::write(keys.into_iter(), n).expect("spill run write");
        self.spilled_bytes += run.bytes;
        shm_obs::counter!("store.spilled_bytes", run.bytes);
        self.runs.push(run);
        if self.runs.len() >= MAX_RUNS {
            self.merge_runs();
        }
        self.note_peak();
    }

    /// Streaming k-way merge of every cold run into one. Runs are pairwise
    /// disjoint (inserts probe cold before going hot), so this is a pure
    /// minimum-selection merge; one block per input run is resident.
    fn merge_runs(&mut self) {
        let merged_in = self.runs.len() as u64;
        let total: u64 = self.runs.iter().map(|r| r.count).sum();
        let mut cursors: Vec<RunCursor> = self.runs.drain(..).map(RunCursor::new).collect();
        let merged = ColdRun::write(
            std::iter::from_fn(move || {
                let mut min: Option<(usize, Key)> = None;
                for (i, c) in cursors.iter_mut().enumerate() {
                    if let Some(k) = c.peek().expect("spill run read") {
                        if min.is_none_or(|(_, mk)| k < mk) {
                            min = Some((i, k));
                        }
                    }
                }
                min.map(|(i, k)| {
                    cursors[i].advance();
                    k
                })
            }),
            total as usize,
        )
        .expect("spill run merge");
        debug_assert_eq!(merged.count, total, "disjoint runs merge losslessly");
        // The merged file is a rewrite, not new spill volume: spilled_bytes
        // tracks what the exploration pushed out of RAM, so only flushes
        // count.
        shm_obs::counter!("store.runs_merged", merged_in);
        self.runs.push(merged);
    }

    /// Consumes the store, returning every key it holds (hot + cold, not
    /// the base) in ascending order. Feeds [`CarryBuilder`].
    #[must_use]
    pub fn into_sorted_keys(mut self) -> Vec<Key> {
        let mut keys: Vec<Key> = self.hot.drain().collect();
        for run in self.runs.drain(..) {
            let mut c = RunCursor::new(run);
            while let Some(k) = c.peek().expect("spill run read") {
                c.advance();
                keys.push(k);
            }
        }
        keys.sort_unstable();
        keys
    }

    /// Consumes the store for carry: sorted keys plus (debug) the exact
    /// word encodings backing the collision cross-check.
    #[cfg(debug_assertions)]
    fn into_carry_parts(mut self) -> (Vec<Key>, std::collections::HashMap<Key, Vec<u64>>) {
        let exact = std::mem::take(&mut self.exact);
        (self.into_sorted_keys(), exact)
    }
}

/// The read-only carried tier: every key visited by a previous
/// `check_iterative` bound, delta-compressed in memory and probed through
/// the same prefilter + fence + block path as a disk run. Shared across
/// workers by `Arc`.
pub struct CarryBase {
    set: CompressedKeySet,
    /// Exact encodings for the debug collision cross-check (the base is a
    /// tier too; a hit against it asserts like any other).
    #[cfg(debug_assertions)]
    exact: std::collections::HashMap<Key, Vec<u64>>,
}

impl CarryBase {
    /// Exact membership.
    #[must_use]
    pub fn contains(&self, key: &Key) -> bool {
        self.set.contains(key)
    }

    /// Number of carried keys.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.set.len()
    }

    /// Whether the base is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Resident footprint of the compressed base in bytes.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.set.resident_bytes()
    }
}

/// Accumulates visited stores (and the previous base) into the next
/// [`CarryBase`]. Workers explore overlapping subtrees, so the union
/// dedups.
#[derive(Default)]
pub struct CarryBuilder {
    keys: Vec<Key>,
    #[cfg(debug_assertions)]
    exact: std::collections::HashMap<Key, Vec<u64>>,
}

impl CarryBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        CarryBuilder::default()
    }

    /// Folds in the previous bound's base (its keys stay carried).
    pub fn absorb_base(&mut self, base: &CarryBase) {
        base.set.decode_into(&mut self.keys);
        #[cfg(debug_assertions)]
        self.exact
            .extend(base.exact.iter().map(|(k, v)| (*k, v.clone())));
    }

    /// Folds in one walker's visited store.
    pub fn absorb_store(&mut self, store: VisitedStore) {
        #[cfg(debug_assertions)]
        {
            let (keys, exact) = store.into_carry_parts();
            self.keys.extend_from_slice(&keys);
            self.exact.extend(exact);
        }
        #[cfg(not(debug_assertions))]
        self.keys.extend_from_slice(&store.into_sorted_keys());
    }

    /// Builds the compressed base for the next bound.
    #[must_use]
    pub fn build(mut self) -> CarryBase {
        self.keys.sort_unstable();
        self.keys.dedup();
        CarryBase {
            set: CompressedKeySet::from_sorted(&self.keys),
            #[cfg(debug_assertions)]
            exact: self.exact,
        }
    }
}

// ------------------------------------------------------------- frontier ----

/// What a [`SpillQueue`] pop yields: a still-resident item, or the packed
/// bytes of one that took the disk detour (the caller re-materializes it —
/// for frontier nodes, by replaying the packed schedule).
pub enum Popped<T> {
    /// The item never left the hot ring.
    Live(T),
    /// The packed encoding of a spilled item.
    Packed(Vec<u8>),
}

/// A FIFO queue with a bounded hot ring and a disk-backed cold tail.
///
/// Ordering invariant: once anything spills, *every* younger push spills
/// too (a push goes hot only while the cold tail is empty and the ring has
/// room), so `hot ++ cold-file-order` is exactly push order and pops are
/// globally FIFO — the breadth-first expansion order, and with it every
/// count in a report, is independent of the budget.
pub struct SpillQueue<T> {
    hot: VecDeque<T>,
    hot_cap: usize,
    path: Option<PathBuf>,
    file: Option<File>,
    /// Bytes of the logical cold stream already in the file.
    file_bytes: u64,
    /// Staged entries not yet written (flushed at [`WBUF_FLUSH`], or when a
    /// pop needs them).
    wbuf: Vec<u8>,
    /// Next read offset into the logical cold stream (file ++ wbuf).
    rpos: u64,
    cold_len: usize,
    len: usize,
    peak_len: usize,
    spilled_bytes: u64,
    scratch: Vec<u8>,
}

impl<T> SpillQueue<T> {
    /// An empty queue keeping at most `hot_cap` items resident.
    #[must_use]
    pub fn new(hot_cap: usize) -> Self {
        SpillQueue {
            hot: VecDeque::new(),
            hot_cap,
            path: None,
            file: None,
            file_bytes: 0,
            wbuf: Vec::new(),
            rpos: 0,
            cold_len: 0,
            len: 0,
            peak_len: 0,
            spilled_bytes: 0,
            scratch: Vec::new(),
        }
    }

    /// Items currently queued (hot + cold).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Peak queue length over the queue's lifetime (a logical count, not
    /// bytes — comparable across budgets).
    #[must_use]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Total packed bytes pushed through the cold tail.
    #[must_use]
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes
    }

    fn flush_wbuf(&mut self) {
        if self.wbuf.is_empty() {
            return;
        }
        if self.file.is_none() {
            let path = spill_path("frontier");
            let file = File::options()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)
                .expect("frontier spill create");
            self.path = Some(path);
            self.file = Some(file);
        }
        let file = self.file.as_mut().expect("just ensured");
        file.seek(SeekFrom::Start(self.file_bytes))
            .expect("frontier spill seek");
        file.write_all(&self.wbuf).expect("frontier spill write");
        self.file_bytes += self.wbuf.len() as u64;
        self.wbuf.clear();
    }

    /// Enqueues `item`. While the hot ring has room (and nothing is already
    /// cold) the item stays live; otherwise `pack` encodes it and the bytes
    /// join the cold tail.
    pub fn push(&mut self, item: T, pack: impl FnOnce(&T, &mut Vec<u8>)) {
        self.len += 1;
        self.peak_len = self.peak_len.max(self.len);
        if self.cold_len == 0 && self.hot.len() < self.hot_cap {
            self.hot.push_back(item);
            return;
        }
        let mut entry = std::mem::take(&mut self.scratch);
        entry.clear();
        pack(&item, &mut entry);
        let mut header = [0u8; 4];
        header.copy_from_slice(&(entry.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(&header);
        self.wbuf.extend_from_slice(&entry);
        self.spilled_bytes += 4 + entry.len() as u64;
        shm_obs::counter!("store.spilled_bytes", 4 + entry.len() as u64);
        self.cold_len += 1;
        self.scratch = entry;
        if self.wbuf.len() >= WBUF_FLUSH {
            self.flush_wbuf();
        }
    }

    /// Dequeues in global FIFO order.
    pub fn pop(&mut self) -> Option<Popped<T>> {
        if let Some(item) = self.hot.pop_front() {
            self.len -= 1;
            return Some(Popped::Live(item));
        }
        if self.cold_len == 0 {
            return None;
        }
        // The next entry may still be staged; land it first so the read
        // path is always "from the file".
        if self.rpos >= self.file_bytes {
            self.flush_wbuf();
        }
        let file = self.file.as_mut().expect("cold entries exist");
        let mut header = [0u8; 4];
        file.seek(SeekFrom::Start(self.rpos)).expect("spill seek");
        file.read_exact(&mut header).expect("spill read");
        let n = u32::from_le_bytes(header) as usize;
        let mut entry = vec![0u8; n];
        file.read_exact(&mut entry).expect("spill read");
        self.rpos += 4 + n as u64;
        self.cold_len -= 1;
        self.len -= 1;
        Some(Popped::Packed(entry))
    }
}

impl<T> Drop for SpillQueue<T> {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> Key {
        // Scrambled fingerprints so insertion order differs from sorted
        // order (exercises the flush sort).
        (
            u128::from(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            i % 3,
            0,
            i % 7,
        )
    }

    #[test]
    fn budgeted_store_matches_flat_hashset_semantics() {
        // Tiny budget → hot cap 64 → many flushes and at least one merge.
        let mut store = VisitedStore::new(Some(1024), None);
        let mut reference: std::collections::HashSet<Key> = Default::default();
        for round in 0..3 {
            for i in 0..400u64 {
                let key = k(i);
                let fresh = reference.insert(key);
                let got = store.insert(key, Vec::new);
                assert_eq!(
                    got == Lookup::New,
                    fresh,
                    "round {round} key {i}: store {got:?} vs reference {fresh}"
                );
            }
        }
        assert_eq!(store.len(), reference.len() as u64);
        assert!(store.spilled_bytes() > 0, "budget forced spilling");
        assert!(store.peak_bytes() > 0);
        let keys = store.into_sorted_keys();
        let mut want: Vec<Key> = reference.into_iter().collect();
        want.sort_unstable();
        assert_eq!(keys, want);
    }

    #[test]
    fn unbudgeted_store_never_spills() {
        let mut store = VisitedStore::new(None, None);
        for i in 0..10_000u64 {
            store.insert(k(i), Vec::new);
        }
        assert_eq!(store.spilled_bytes(), 0);
        assert_eq!(store.len(), 10_000);
    }

    #[test]
    fn base_hits_count_as_reuse_and_are_not_reinserted() {
        let mut b = CarryBuilder::new();
        let mut seed = VisitedStore::new(None, None);
        for i in 0..100u64 {
            seed.insert(k(i), Vec::new);
        }
        b.absorb_store(seed);
        let base = Arc::new(b.build());
        assert_eq!(base.len(), 100);
        let mut store = VisitedStore::new(Some(1024), Some(base));
        for i in 0..200u64 {
            let got = store.insert(k(i), Vec::new);
            assert_eq!(got, if i < 100 { Lookup::Base } else { Lookup::New });
        }
        assert_eq!(store.reused(), 100);
        assert_eq!(store.len(), 100, "only the new half landed in the store");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn collision_cross_check_fires_across_tiers() {
        // Insert a key with one exact encoding, force it to spill to the
        // cold tier, then hit the same key with a *different* encoding: the
        // debug cross-check must still fire even though the first copy now
        // lives on disk.
        let result = std::panic::catch_unwind(|| {
            let mut store = VisitedStore::new(Some(1024), None);
            let colliding = k(0);
            store.insert(colliding, || vec![1, 2, 3]);
            // 100 more keys blow the 64-key hot cap → flush to disk.
            for i in 1..=100u64 {
                store.insert(k(i), Vec::new);
            }
            assert!(store.spilled_bytes() > 0, "setup: key must be cold");
            store.insert(colliding, || vec![9, 9, 9]);
        });
        let err = result.expect_err("seeded collision must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("state-fingerprint collision"), "{msg}");
    }

    #[test]
    fn spill_queue_is_fifo_at_any_budget() {
        for cap in [0usize, 1, 3, 1000] {
            let mut q: SpillQueue<u64> = SpillQueue::new(cap);
            let pack = |v: &u64, out: &mut Vec<u8>| out.extend_from_slice(&v.to_le_bytes());
            let unpack = |buf: &[u8]| u64::from_le_bytes(buf.try_into().expect("8 bytes"));
            let mut popped = Vec::new();
            // Interleave pushes and pops so the hot→cold transition and the
            // staged-write path both get exercised.
            for v in 0..50u64 {
                q.push(v, pack);
                if v % 3 == 0 {
                    match q.pop().expect("non-empty") {
                        Popped::Live(x) => popped.push(x),
                        Popped::Packed(b) => popped.push(unpack(&b)),
                    }
                }
            }
            while let Some(p) = q.pop() {
                match p {
                    Popped::Live(x) => popped.push(x),
                    Popped::Packed(b) => popped.push(unpack(&b)),
                }
            }
            assert_eq!(popped, (0..50).collect::<Vec<_>>(), "cap {cap}");
            assert_eq!(q.len(), 0);
            assert!(q.peak_len() > 0);
            if cap < 50 {
                assert!(q.spilled_bytes() > 0, "cap {cap} must spill");
            } else {
                assert_eq!(q.spilled_bytes(), 0);
            }
        }
    }
}
