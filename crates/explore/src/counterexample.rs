//! Serializable counterexamples: replay, greedy shrinking, and JSON export.

use shm_sim::{run_exact, ProcId, SimSpec, Simulator};

/// A self-contained, replayable witness: the schedule that reaches a
/// violating (or objective-extremal) state, plus everything needed to
/// interpret it. Serializes to JSON with a stable key order (see
/// `EXPERIMENTS.md` for the schema).
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Algorithm under test.
    pub algorithm: String,
    /// Oracle that rejected the state (or objective name for extremal
    /// schedules).
    pub oracle: String,
    /// Human-readable violation description.
    pub description: String,
    /// Whether the history is within the algorithm's participation contract.
    pub in_contract: bool,
    /// Cost-model tag (`shm_sim::model_tag`).
    pub model: &'static str,
    /// Number of processes.
    pub n: usize,
    /// Seed of any seeded component of the scenario (`null` when the whole
    /// construction is seedless, as exhaustive exploration itself is).
    pub seed: Option<u64>,
    /// The (shrunk) schedule: process IDs in step order. Replayable with
    /// [`replay`].
    pub schedule: Vec<ProcId>,
    /// Length of the original schedule before shrinking.
    pub shrunk_from: usize,
    /// Depth bound active during the finding run, if any.
    pub max_depth: Option<usize>,
    /// Preemption bound active during the finding run, if any.
    pub max_preemptions: Option<usize>,
    /// Whether the differential RMR-accounting audit of the shrunk replay
    /// came back clean.
    pub audit_clean: bool,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |x| x.to_string())
}

impl Counterexample {
    /// Renders the counterexample as a single JSON object with stable keys.
    #[must_use]
    pub fn to_json(&self) -> String {
        let schedule: Vec<String> = self.schedule.iter().map(|p| p.0.to_string()).collect();
        format!(
            concat!(
                "{{\"algorithm\":\"{}\",\"oracle\":\"{}\",\"description\":\"{}\",",
                "\"in_contract\":{},\"model\":\"{}\",\"n\":{},\"seed\":{},",
                "\"schedule\":[{}],\"shrunk_from\":{},\"max_depth\":{},",
                "\"max_preemptions\":{},\"audit_clean\":{}}}"
            ),
            json_escape(&self.algorithm),
            json_escape(&self.oracle),
            json_escape(&self.description),
            self.in_contract,
            self.model,
            self.n,
            opt_u64(self.seed),
            schedule.join(","),
            self.shrunk_from,
            opt_u64(self.max_depth.map(|d| d as u64)),
            opt_u64(self.max_preemptions.map(|p| p as u64)),
            self.audit_clean,
        )
    }
}

/// Replays a recorded schedule against a fresh simulator built from `spec`.
/// Steps naming non-runnable processes are skipped (which makes replay
/// robust under shrinking); determinism of the step machines guarantees the
/// result is a pure function of `(spec, schedule)`.
#[must_use]
pub fn replay(spec: &SimSpec, schedule: &[ProcId]) -> Simulator {
    let mut sim = Simulator::new(spec);
    run_exact(&mut sim, schedule);
    sim
}

/// Greedy step-deletion shrinking: repeatedly tries to delete one step at a
/// time (scanning from the end, where deletions are most likely to stick)
/// and keeps any deletion after which `keep` still accepts the replayed
/// state. Runs passes to a fixpoint, so the result is 1-minimal — deleting
/// any single remaining step loses the property.
///
/// `keep` must re-check everything the caller cares about (the same oracle
/// violating *and* the same in-contract classification): shrinking a
/// schedule can change which processes participate, and an out-of-contract
/// violation that shrinks into a different contract regime would otherwise
/// silently change meaning.
#[must_use]
pub fn shrink_schedule(
    spec: &SimSpec,
    schedule: &[ProcId],
    keep: impl Fn(&Simulator) -> bool,
) -> Vec<ProcId> {
    let mut cur = schedule.to_vec();
    loop {
        let mut changed = false;
        let mut i = cur.len();
        while i > 0 {
            i -= 1;
            let mut cand = cur.clone();
            cand.remove(i);
            shm_obs::counter!("explore.shrink_replays");
            let sim = replay(spec, &cand);
            if keep(&sim) {
                cur = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use shm_sim::{
        CallKind, CostModel, MemLayout, Op, OpSequence, ProcedureCall, Script, ScriptedCall,
        SimSpec,
    };
    use std::sync::Arc;

    fn two_writers() -> SimSpec {
        let mut layout = MemLayout::new();
        let cells = layout.alloc_global_array(2, 0);
        let sources = (0..2)
            .map(|i| {
                let a = cells.at(i);
                let call = ScriptedCall::new(
                    CallKind(0),
                    "write",
                    Arc::new(move || {
                        Box::new(OpSequence::new(vec![Op::Write(a, 1)])) as Box<dyn ProcedureCall>
                    }),
                );
                Box::new(Script::new(vec![call])) as Box<dyn shm_sim::CallSource>
            })
            .collect();
        SimSpec {
            layout,
            sources,
            model: CostModel::Dsm,
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let spec = two_writers();
        let order: Vec<ProcId> = [0, 1, 0, 1, 0, 1].iter().map(|&i| ProcId(i)).collect();
        let a = replay(&spec, &order);
        let b = replay(&spec, &order);
        assert_eq!(a.state_words(), b.state_words());
    }

    #[test]
    fn shrink_removes_redundant_steps() {
        let spec = two_writers();
        // A heavily padded schedule; the property "process 0 completed its
        // call" needs only process 0's own steps.
        let order: Vec<ProcId> = [1, 1, 0, 1, 0, 1, 0, 0, 1, 0]
            .iter()
            .map(|&i| ProcId(i))
            .collect();
        let keep = |sim: &Simulator| sim.proc_stats(ProcId(0)).calls_completed == 1;
        assert!(keep(&replay(&spec, &order)));
        let small = shrink_schedule(&spec, &order, keep);
        assert!(small.len() < order.len());
        assert!(keep(&replay(&spec, &small)));
        assert!(small.iter().all(|&p| p == ProcId(0)), "{small:?}");
    }

    #[test]
    fn counterexample_json_has_stable_shape() {
        let cx = Counterexample {
            algorithm: "single-waiter".to_owned(),
            oracle: "spec4.1-polling".to_owned(),
            description: "TrueWithoutSignalBegun \"quoted\"".to_owned(),
            in_contract: false,
            model: "dsm",
            n: 3,
            seed: None,
            schedule: vec![ProcId(0), ProcId(2), ProcId(1)],
            shrunk_from: 11,
            max_depth: None,
            max_preemptions: Some(2),
            audit_clean: true,
        };
        assert_eq!(
            cx.to_json(),
            concat!(
                "{\"algorithm\":\"single-waiter\",\"oracle\":\"spec4.1-polling\",",
                "\"description\":\"TrueWithoutSignalBegun \\\"quoted\\\"\",",
                "\"in_contract\":false,\"model\":\"dsm\",\"n\":3,\"seed\":null,",
                "\"schedule\":[0,2,1],\"shrunk_from\":11,\"max_depth\":null,",
                "\"max_preemptions\":2,\"audit_clean\":true}"
            )
        );
    }
}
