//! Exploration bounds: the knobs that take the search from exhaustive to
//! CHESS-style bounded.

/// Limits and reductions applied to a schedule-space exploration.
///
/// The default ([`Bounds::exhaustive`]) explores the whole space with both
/// reductions on — sound and complete for terminating scenarios. Setting
/// [`Bounds::max_depth`] or [`Bounds::max_preemptions`] turns the run into a
/// bounded under-approximation (see the crate docs); [`ExploreReport::exhaustive`]
/// records whether any bound actually cut a branch.
///
/// [`ExploreReport::exhaustive`]: crate::ExploreReport::exhaustive
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// Maximum schedule length (steps from the initial state); `None` =
    /// unbounded. Needed for scenarios whose processes can take unboundedly
    /// many steps (e.g. spinning lock acquires): the projection-fingerprint
    /// dedup merges interleavings, not loops, so cyclic behaviors only
    /// terminate under a depth bound.
    pub max_depth: Option<usize>,
    /// Maximum number of preemptive context switches per schedule (a switch
    /// away from a process that is still runnable), CHESS-style. `None` =
    /// unbounded.
    pub max_preemptions: Option<usize>,
    /// Safety valve: stop after this many explored states, marking the
    /// report non-exhaustive. `None` = unbounded.
    pub max_states: Option<u64>,
    /// Deduplicate states on [`shm_sim::Simulator::state_fingerprint`]
    /// (keyed together with the sleep set and, when preemption bounding is
    /// active, the remaining budget — so dedup never prunes a state whose
    /// continuations could differ).
    pub dedup: bool,
    /// Sleep-set partial-order reduction.
    pub dpor: bool,
    /// Target frontier size for the parallel fan-out: the serial expansion
    /// phase stops once this many open nodes exist, and the rest of the
    /// space is explored as one pool job per frontier node. Thread-count
    /// independent (the frontier is fixed before any job runs); `0` or `1`
    /// forces a purely serial exploration.
    pub frontier: usize,
    /// Keep at most this many violation records (all violations are still
    /// *counted*; this only caps the retained schedules).
    pub keep_violations: usize,
    /// Byte budget for exploration memory: the visited hot tier and the
    /// resident frontier ring together stay under (a logical accounting of)
    /// this many bytes, spilling delta-compressed runs / packed nodes to
    /// disk beyond it (see [`crate::store`]). `None` = unbounded, fully
    /// in-memory. Spilling never changes any count, verdict, or schedule in
    /// the report — only where keys and nodes live.
    pub mem_budget: Option<usize>,
}

impl Bounds {
    /// Full exploration: no depth/preemption/state limits, both reductions
    /// on, default frontier.
    #[must_use]
    pub fn exhaustive() -> Self {
        Bounds {
            max_depth: None,
            max_preemptions: None,
            max_states: None,
            dedup: true,
            dpor: true,
            frontier: 64,
            keep_violations: 16,
            mem_budget: None,
        }
    }

    /// Bounded exploration: depth-limited (and optionally preemption-
    /// limited), both reductions on.
    #[must_use]
    pub fn bounded(max_depth: usize, max_preemptions: Option<usize>) -> Self {
        Bounds {
            max_depth: Some(max_depth),
            max_preemptions,
            ..Bounds::exhaustive()
        }
    }

    /// Naive enumeration: no partial-order reduction and no deduplication.
    /// Exponentially slower; exists as the differential reference the
    /// property tests compare DPOR against.
    #[must_use]
    pub fn naive() -> Self {
        Bounds {
            dedup: false,
            dpor: false,
            ..Bounds::exhaustive()
        }
    }
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds::exhaustive()
    }
}
