//! The bounded exhaustive scheduler: sleep-set DPOR over the simulator's
//! enabled steps, fingerprint deduplication, CHESS-style bounds, and a
//! deterministic parallel frontier fan-out.

use crate::bounds::Bounds;
use crate::counterexample::replay;
use crate::oracle::{Objective, Oracle};
use crate::spill::{self, Key};
use crate::store::{
    frontier_hot_cap, CarryBase, CarryBuilder, Lookup, Popped, SpillQueue, VisitedStore,
};
use shm_pool::map_indexed;
use shm_sim::{CallRecord, Checkpoint, Op, ProcId, SimSpec, Simulator, TransitionPeek};
use std::sync::Arc;

/// One violation found during exploration.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// Name of the oracle that rejected the state.
    pub oracle: &'static str,
    /// Human-readable violation description.
    pub description: String,
    /// Whether the violating history was within the algorithm's
    /// participation contract (PR 2's classification — out-of-contract
    /// violations say nothing about the algorithm).
    pub in_contract: bool,
    /// The schedule that reached the violating state.
    pub schedule: Vec<ProcId>,
}

/// The argmax schedule for an objective.
#[derive(Clone, Debug)]
pub struct ObjectiveResult {
    /// Objective label.
    pub name: String,
    /// Maximum value over all explored terminal states.
    pub value: u64,
    /// A schedule reaching that value (the first one in deterministic
    /// exploration order).
    pub schedule: Vec<ProcId>,
}

/// The outcome of one exploration. All counts and retained schedules are
/// byte-deterministic at any thread count: the frontier is fixed serially
/// and per-frontier results merge by submission index.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// States expanded (distinct under dedup; per-subtree distinct when the
    /// frontier fan-out splits the space).
    pub explored: u64,
    /// Child states pruned because their dedup key was already visited.
    pub deduped: u64,
    /// Transitions skipped by sleep sets (redundant orders of commuting
    /// steps).
    pub sleep_pruned: u64,
    /// Transitions cut by the depth or preemption bound.
    pub bound_pruned: u64,
    /// Terminal states reached (every process terminated).
    pub terminals: u64,
    /// Total violating states found. States are judged on their own path
    /// *before* deduplication (a verdict can depend on the event order, not
    /// just the state), so a violating state reachable along several
    /// non-commuting paths counts once per path.
    pub violations_found: u64,
    /// How many of [`ExploreReport::violations_found`] were within the
    /// algorithm's participation contract. Counted at find time for *every*
    /// violation (not just the retained records), so "zero in-contract
    /// violations" claims are exact.
    pub violations_in_contract: u64,
    /// Retained violation records, in deterministic exploration order
    /// (capped at [`Bounds::keep_violations`]).
    pub violations: Vec<FoundViolation>,
    /// Maximum objective value over terminal states, with its schedule.
    pub max_objective: Option<ObjectiveResult>,
    /// Number of frontier nodes handed to the pool (0 = the serial phase
    /// covered the whole space).
    pub frontier: usize,
    /// `true` iff no bound (depth, preemptions, or state cap) cut any
    /// branch: the report covers the entire schedule space and a clean
    /// verdict is a proof at this scenario size, not an under-approximation.
    pub exhaustive: bool,
    /// `true` iff [`Bounds::max_states`] specifically stopped the run
    /// (implies `!exhaustive`). Gates cross-bound carry: a capped run's
    /// visited keys may front unexplored subtrees, so they are never
    /// carried forward.
    pub state_capped: bool,
    /// Child states pruned because a *previous* iterative-deepening bound
    /// already explored them (dedup hits answered by the carried base; a
    /// subset of [`ExploreReport::deduped`]). Always 0 outside
    /// [`crate::check_iterative`].
    pub reused: u64,
    /// Peak number of nodes ever queued in the breadth-first frontier
    /// (hot + spilled). A logical count — identical at any `mem_budget`
    /// and thread count.
    pub peak_frontier: u64,
    /// Peak logical bytes of visited-store residency, summed over the
    /// serial phase and every frontier walker (each contributes its own
    /// peak: the aggregate footprint if all walkers peaked at once —
    /// conservative, and deterministic at any thread count). Logical
    /// accounting ([`crate::store::SLOT_BYTES`] per hot key + resident run
    /// indexes), never an allocator or RSS reading.
    pub peak_visited_bytes: u64,
    /// Total delta-compressed bytes spilled to disk (visited runs + packed
    /// frontier nodes). 0 whenever the budget never forced a spill.
    pub spilled_bytes: u64,
}

impl ExploreReport {
    /// Violations found *outside* the participation contract — recorded but
    /// not held against the algorithm (PR 2's classification).
    #[must_use]
    pub fn out_of_contract_violations(&self) -> u64 {
        self.violations_found - self.violations_in_contract
    }
}

/// What one `step(pid)` would do, reduced to the facts the dependency
/// relation needs: call-boundary-ness and the memory footprint.
#[derive(Clone, Copy, Debug)]
struct Class {
    /// The step emits an `Invoke` or `Return` event (call boundary). The
    /// spec checkers judge cross-process invoke/return order, so boundary
    /// steps of different processes never commute.
    boundary: bool,
    /// The step terminates the process (no event the oracles observe; no
    /// memory access) — independent of everything.
    terminate: bool,
    /// The memory access the step performs, if any.
    op: Option<Op>,
}

fn classify(sim: &Simulator, pid: ProcId) -> Option<Class> {
    match sim.peek_transition(pid) {
        TransitionPeek::NotRunnable => None,
        TransitionPeek::WillTerminate => Some(Class {
            boundary: false,
            terminate: true,
            op: None,
        }),
        TransitionPeek::Return { .. } => Some(Class {
            boundary: true,
            terminate: false,
            op: None,
        }),
        TransitionPeek::Access(op) => Some(Class {
            // A step on a process with no open call fetches the next call
            // (emitting Invoke) before its first access, within the same
            // step.
            boundary: !sim.has_pending_call(pid),
            terminate: false,
            op: Some(op),
        }),
    }
}

/// Two steps commute iff they touch disjoint locations or are both plain
/// reads, and they are not both call boundaries. Valid independence for both
/// cost models: per-location validity means disjoint-location and read-read
/// reorders leave every charge unchanged, and one process's step never
/// changes what another's next transition is (machine state is process-
/// local) nor whether it is enabled.
fn independent(a: Class, b: Class) -> bool {
    if a.terminate || b.terminate {
        return true;
    }
    if a.boundary && b.boundary {
        return false;
    }
    match (a.op, b.op) {
        (Some(x), Some(y)) => {
            x.addr() != y.addr() || (matches!(x, Op::Read(_)) && matches!(y, Op::Read(_)))
        }
        _ => true,
    }
}

/// A node of the exploration tree: a simulator state plus the path-dependent
/// context (sleep set, preemptions used so far).
struct Node {
    sim: Simulator,
    /// Bitmask of sleeping process IDs.
    sleep: u64,
    /// Preemptive context switches on the path to this node.
    preempts: u32,
}

// The dedup [`Key`] (state fingerprint + sleep set + bound word + oracle
// order-witness context) lives in `crate::spill`; two histories may only
// merge when every past fact that can sway a future verdict agrees. When
// preemption bounding is active the bound word carries the last-scheduled
// pid and the *remaining* preemption budget — within one run a bijection of
// the used count (so dedup behavior is unchanged), and across
// iterative-deepening runs the form that makes carried keys sound: equal
// remaining budget ⇒ equal explorable continuations.

/// Where the claim pass left the simulator relative to the node it expanded.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SimAt {
    /// At the node state itself (no rollback needed before stepping).
    Node,
    /// At the state of the *last* surviving child (the chain fast path).
    LastChild,
    /// At some other stepped-but-pruned state; restore before using.
    Stale,
}

struct Walker<'a> {
    oracles: &'a [&'a dyn Oracle],
    objective: Option<&'a dyn Objective>,
    bounds: &'a Bounds,
    /// The two-tier visited set (hot table + spilled cold runs + optional
    /// carried base). The debug exact-state collision cross-check lives
    /// inside the store, preserved across tiers.
    visited: VisitedStore,
    rep: ExploreReport,
    stopped: bool,
    /// Reusable call-record buffer: every judged state reconstructs the
    /// history's calls exactly once, shared between the oracle checks and
    /// the dedup contexts.
    calls_buf: Vec<CallRecord>,
    /// Open-call map paired with [`Walker::calls_buf`].
    open_buf: Vec<usize>,
    /// Node-state call records, computed once per expanded node; each
    /// claimed child copies them and applies only the events its step
    /// appended ([`shm_sim::History::calls_extend`]).
    node_calls: Vec<CallRecord>,
    /// Open-call map paired with [`Walker::node_calls`].
    node_open: Vec<usize>,
    /// Reusable state-word buffer for dedup-key fingerprints.
    words_buf: Vec<u64>,
    /// Recycled node checkpoints: [`Simulator::snapshot_reuse`] makes the
    /// per-node snapshot allocation-free at steady state.
    ckpt_pool: Vec<Checkpoint>,
    /// Recycled per-node class tables (see [`Walker::child_classes`]).
    class_pool: Vec<Vec<(ProcId, Class)>>,
}

impl<'a> Walker<'a> {
    fn new(
        oracles: &'a [&'a dyn Oracle],
        objective: Option<&'a dyn Objective>,
        bounds: &'a Bounds,
        base: Option<Arc<CarryBase>>,
    ) -> Self {
        Walker {
            oracles,
            objective,
            bounds,
            visited: VisitedStore::new(bounds.mem_budget, base),
            rep: ExploreReport {
                exhaustive: true,
                ..ExploreReport::default()
            },
            stopped: false,
            calls_buf: Vec::new(),
            open_buf: Vec::new(),
            node_calls: Vec::new(),
            node_open: Vec::new(),
            words_buf: Vec::new(),
            ckpt_pool: Vec::new(),
            class_pool: Vec::new(),
        }
    }

    fn key_of(
        &mut self,
        sim: &Simulator,
        sleep: u64,
        last: ProcId,
        preempts: u32,
        calls: &[CallRecord],
    ) -> Key {
        // The bound word encodes the *remaining* budget, not the used
        // count: within a run the two are bijective (identical dedup), but
        // only the remaining form is comparable across iterative-deepening
        // runs — a carried key with remaining budget r certifies the whole
        // r-budget subtree was explored, whatever cap produced it.
        let aux = if let Some(cap) = self.bounds.max_preemptions {
            (u64::from(last.0) + 1) << 32 | (cap as u64 - u64::from(preempts))
        } else {
            0
        };
        let mut ctx = 0u64;
        for oracle in self.oracles {
            ctx = ctx.rotate_left(7) ^ oracle.dedup_context_with(sim, calls);
        }
        let mut words = std::mem::take(&mut self.words_buf);
        let fp = sim.state_fingerprint_with(&mut words);
        self.words_buf = words;
        (fp, sleep, aux, ctx)
    }

    /// Marks `key` visited; returns `false` (and counts a dedup hit) when it
    /// already was — in any tier. Hits answered by a carried previous-bound
    /// base additionally count as reuse.
    fn visit(&mut self, key: Key, sim: &Simulator) -> bool {
        match self.visited.insert(key, || sim.state_words()) {
            Lookup::New => true,
            tier => {
                self.rep.deduped += 1;
                self.rep.reused += u64::from(tier == Lookup::Base);
                shm_obs::counter!("explore.dedup");
                false
            }
        }
    }

    /// Extracts the report, folding in the visited store's memory
    /// trajectory, and hands back the store (for cross-bound carry).
    fn into_parts(self) -> (ExploreReport, VisitedStore) {
        let mut rep = self.rep;
        rep.spilled_bytes += self.visited.spilled_bytes();
        rep.peak_visited_bytes = self.visited.peak_bytes();
        (rep, self.visited)
    }

    /// Expands one node *in place*: counts it, measures terminals, and
    /// claims every candidate child in deterministic ascending-pid order —
    /// stepping `sim`, judging and dedup-checking the stepped state, and
    /// rolling back through the snapshot lazily (only when the next
    /// candidate actually needs the node state). Returns the node's
    /// checkpoint, the surviving `(pid, sleep, preempts)` children to
    /// descend into, and whether `sim` was left sitting at the *last*
    /// surviving child's state (the chain fast path: a single-child node
    /// descends without a restore or a re-step); `None` when the node is
    /// terminal or the state cap was hit.
    ///
    /// Claiming *all* siblings before any descent keeps the visited-set
    /// insertion order — and with it every dedup, sleep, and bound count —
    /// identical to the historical clone-per-child expansion, while the
    /// snapshot/restore cycle replaces the per-candidate deep clone of the
    /// whole simulator (history and schedule rewind in place; process
    /// machines roll back by swapping refcounted pointers).
    #[allow(clippy::type_complexity)]
    fn expand(
        &mut self,
        sim: &mut Simulator,
        node_sleep: u64,
        node_preempts: u32,
        classes: &[(ProcId, Class)],
    ) -> Option<(Checkpoint, Vec<(ProcId, u64, u32)>, SimAt)> {
        self.rep.explored += 1;
        shm_obs::counter!("explore.states");
        if let Some(cap) = self.bounds.max_states {
            if self.rep.explored > cap {
                self.rep.exhaustive = false;
                self.rep.state_capped = true;
                self.stopped = true;
                return None;
            }
        }
        if classes.is_empty() {
            self.rep.terminals += 1;
            shm_obs::counter!("explore.terminals");
            if let Some(obj) = self.objective {
                let value = obj.measure(sim);
                let better = self
                    .rep
                    .max_objective
                    .as_ref()
                    .is_none_or(|m| value > m.value);
                if better {
                    self.rep.max_objective = Some(ObjectiveResult {
                        name: obj.name(),
                        value,
                        schedule: sim.schedule().to_vec(),
                    });
                }
            }
            return None;
        }
        let last = sim.schedule().last().copied();
        let depth = sim.schedule().len();
        let ckpt = sim.snapshot_reuse(self.ckpt_pool.pop());
        let node_len = sim.history().len();
        let mut node_calls = std::mem::take(&mut self.node_calls);
        let mut node_open = std::mem::take(&mut self.node_open);
        sim.history()
            .calls_into_open(&mut node_calls, &mut node_open);
        let mut children = Vec::new();
        // Pids already covered from this node (executed, deduped, or judged
        // violating): sleep-set candidates for later siblings.
        let mut done: u64 = 0;
        // Where `sim` currently sits relative to the checkpoint; stepped
        // states roll back lazily, only when the next candidate needs the
        // node state.
        let mut at = SimAt::Node;
        for &(pid, class) in classes {
            if node_sleep >> pid.0 & 1 == 1 {
                self.rep.sleep_pruned += 1;
                shm_obs::counter!("explore.sleep_pruned");
                continue;
            }
            if self.bounds.max_depth.is_some_and(|d| depth + 1 > d) {
                self.rep.bound_pruned += 1;
                self.rep.exhaustive = false;
                shm_obs::counter!("explore.bound_pruned");
                continue;
            }
            if at != SimAt::Node {
                sim.restore(&ckpt);
                at = SimAt::Node;
            }
            let preempt = last.is_some_and(|l| l != pid && sim.is_runnable(l));
            let preempts = node_preempts + u32::from(preempt);
            if self
                .bounds
                .max_preemptions
                .is_some_and(|m| preempts as usize > m)
            {
                self.rep.bound_pruned += 1;
                self.rep.exhaustive = false;
                shm_obs::counter!("explore.bound_pruned");
                continue;
            }
            // The child's sleep set: everything covered so far that commutes
            // with the step being taken (classic sleep-set propagation).
            let sleep = if self.bounds.dpor {
                let mut s = 0u64;
                for &(q, qc) in classes {
                    let covered = (node_sleep | done) >> q.0 & 1 == 1;
                    if covered && independent(qc, class) {
                        s |= 1 << q.0;
                    }
                }
                s
            } else {
                0
            };
            let _ = sim.step(pid);
            at = SimAt::Stale;
            // Judge *before* the dedup check: a verdict can depend on the
            // event order of the path, so a violating state must never be
            // skipped because a clean reordering of it was visited first.
            // The call records feed both the judging oracles and the dedup
            // contexts, so reconstruct them once per stepped state.
            let mut calls = std::mem::take(&mut self.calls_buf);
            let mut open = std::mem::take(&mut self.open_buf);
            calls.clear();
            calls.extend_from_slice(&node_calls);
            open.clear();
            open.extend_from_slice(&node_open);
            sim.history().calls_extend(node_len, &mut calls, &mut open);
            let verdict = self.judge(sim, &calls);
            let key = (verdict.is_none() && self.bounds.dedup)
                .then(|| self.key_of(sim, sleep, pid, preempts, &calls));
            self.calls_buf = calls;
            self.open_buf = open;
            if let Some(v) = verdict {
                // A violating state is a leaf: every extension carries the
                // same first violation, so descending would only re-report.
                self.rep.violations_found += 1;
                self.rep.violations_in_contract += u64::from(v.in_contract);
                shm_obs::counter!("explore.violations");
                if self.rep.violations.len() < self.bounds.keep_violations {
                    self.rep.violations.push(v);
                }
                done |= 1 << pid.0;
                continue;
            }
            if let Some(key) = key {
                if !self.visit(key, sim) {
                    done |= 1 << pid.0;
                    continue;
                }
            }
            done |= 1 << pid.0;
            children.push((pid, sleep, preempts));
            at = SimAt::LastChild;
        }
        self.node_calls = node_calls;
        self.node_open = node_open;
        Some((ckpt, children, at))
    }

    fn judge(&self, sim: &Simulator, calls: &[CallRecord]) -> Option<FoundViolation> {
        for oracle in self.oracles {
            if let Err(description) = oracle.check_with(sim, calls) {
                return Some(FoundViolation {
                    oracle: oracle.name(),
                    description,
                    in_contract: oracle.in_contract(sim),
                    schedule: sim.schedule().to_vec(),
                });
            }
        }
        None
    }

    /// Depth-first exploration of the whole subtree above `sim`'s current
    /// state, mutating `sim` in place: each surviving child is re-stepped
    /// from the node checkpoint and descended into. No simulator is ever
    /// cloned on this path, and a single-child node (the common chain case)
    /// descends directly into the state the claim pass left behind, with no
    /// rollback or re-step at all.
    ///
    /// On return `sim` sits at or below the entry state — callers that need
    /// the entry state back restore to their own checkpoint, which stays
    /// valid for any descendant state.
    fn dfs(
        &mut self,
        sim: &mut Simulator,
        sleep: u64,
        preempts: u32,
        classes: Vec<(ProcId, Class)>,
    ) {
        if self.stopped {
            return;
        }
        let Some((ckpt, children, at)) = self.expand(sim, sleep, preempts, &classes) else {
            self.class_pool.push(classes);
            return;
        };
        if let [(pid, child_sleep, child_preempts)] = children[..] {
            if at == SimAt::LastChild {
                let cc = self.child_classes(&classes, sim, pid);
                self.dfs(sim, child_sleep, child_preempts, cc);
                self.ckpt_pool.push(ckpt);
                self.class_pool.push(classes);
                return;
            }
        }
        let mut at_node = at == SimAt::Node;
        for (pid, child_sleep, child_preempts) in children {
            if self.stopped {
                return;
            }
            if !at_node {
                sim.restore(&ckpt);
            }
            let _ = sim.step(pid);
            let cc = self.child_classes(&classes, sim, pid);
            self.dfs(sim, child_sleep, child_preempts, cc);
            at_node = false;
        }
        self.ckpt_pool.push(ckpt);
        self.class_pool.push(classes);
    }

    /// The class table of the child reached by stepping `stepped` from the
    /// node whose table is `parent`. A step only mutates the stepped
    /// process's machine — every transition peek is process-local — so the
    /// child's table is the parent's with the one entry re-peeked (and
    /// dropped when the process terminated), not `n` fresh peeks, each of
    /// which deep-clones a machine.
    fn child_classes(
        &mut self,
        parent: &[(ProcId, Class)],
        sim: &Simulator,
        stepped: ProcId,
    ) -> Vec<(ProcId, Class)> {
        let mut out = self.class_pool.pop().unwrap_or_default();
        out.clear();
        out.extend_from_slice(parent);
        let idx = out
            .iter()
            .position(|&(p, _)| p == stepped)
            .expect("stepped pid was an enabled candidate");
        match classify(sim, stepped) {
            Some(c) => out[idx].1 = c,
            None => {
                out.remove(idx);
            }
        }
        out
    }
}

/// The full class table of `sim`'s current state: one entry per enabled
/// process, in ascending pid order. Used for exploration roots; interior
/// nodes derive their tables incrementally ([`Walker::child_classes`]).
fn full_classes(sim: &Simulator) -> Vec<(ProcId, Class)> {
    (0..sim.n())
        .filter_map(|i| {
            let pid = ProcId(i as u32);
            classify(sim, pid).map(|c| (pid, c))
        })
        .collect()
}

/// Merges sub-reports in submission-index order.
fn merge(into: &mut ExploreReport, part: ExploreReport, keep_violations: usize) {
    into.explored += part.explored;
    into.deduped += part.deduped;
    into.sleep_pruned += part.sleep_pruned;
    into.bound_pruned += part.bound_pruned;
    into.terminals += part.terminals;
    into.violations_found += part.violations_found;
    into.violations_in_contract += part.violations_in_contract;
    into.exhaustive &= part.exhaustive;
    into.state_capped |= part.state_capped;
    into.reused += part.reused;
    into.spilled_bytes += part.spilled_bytes;
    into.peak_visited_bytes += part.peak_visited_bytes;
    into.peak_frontier = into.peak_frontier.max(part.peak_frontier);
    for v in part.violations {
        if into.violations.len() < keep_violations {
            into.violations.push(v);
        }
    }
    // Strict `>` keeps the earliest (lowest submission index) argmax.
    if part.max_objective.as_ref().is_some_and(|p| {
        into.max_objective
            .as_ref()
            .is_none_or(|m| p.value > m.value)
    }) {
        into.max_objective = part.max_objective;
    }
}

/// Explores the schedule space of `spec` under `bounds`, checking `oracles`
/// on every reached state and maximizing `objective` over terminal states.
///
/// A serial breadth-first phase expands the root until [`Bounds::frontier`]
/// open nodes exist (or the space is exhausted); the frontier then fans out
/// across [`shm_pool`] workers, one job per node, and the sub-reports merge
/// by submission index — so every count, verdict, and retained schedule is
/// byte-identical at any thread count (`threads = 1` runs the identical
/// two-phase structure serially).
#[must_use]
pub fn explore(
    spec: &SimSpec,
    oracles: &[&dyn Oracle],
    objective: Option<&dyn Objective>,
    bounds: &Bounds,
) -> ExploreReport {
    explore_carry(spec, oracles, objective, bounds, None, false).0
}

/// Packs a frontier node for the spill queue: the schedule (which replays
/// to the identical simulator state) plus the path context. The simulator
/// itself is never serialized.
fn pack_node(node: &Node, out: &mut Vec<u8>) {
    spill::push_varint(out, node.sleep);
    spill::push_varint(out, u64::from(node.preempts));
    let schedule = node.sim.schedule();
    spill::push_varint(out, schedule.len() as u64);
    for pid in schedule {
        spill::push_varint(out, u64::from(pid.0));
    }
}

/// Re-materializes a popped frontier entry; packed nodes replay their
/// schedule from the root, which is deterministic, so a node that took the
/// disk detour expands exactly as a resident one would.
fn materialize(spec: &SimSpec, popped: Popped<Node>) -> Node {
    match popped {
        Popped::Live(node) => node,
        Popped::Packed(buf) => {
            let mut pos = 0usize;
            let sleep = spill::read_varint(&buf, &mut pos);
            let preempts = spill::read_varint(&buf, &mut pos) as u32;
            let len = spill::read_varint(&buf, &mut pos) as usize;
            let schedule: Vec<ProcId> = (0..len)
                .map(|_| ProcId(spill::read_varint(&buf, &mut pos) as u32))
                .collect();
            Node {
                sim: replay(spec, &schedule),
                sleep,
                preempts,
            }
        }
    }
}

/// [`explore`] plus cross-bound carry: `base` is the visited-key set of a
/// previous iterative-deepening bound (hits against it prune as reuse), and
/// when `collect` is set the returned [`CarryBase`] unions `base` with
/// everything this run visited — unless the run was state-capped, in which
/// case the input base passes through unchanged (a capped run's keys may
/// front unexplored subtrees; carrying them would be unsound).
pub(crate) fn explore_carry(
    spec: &SimSpec,
    oracles: &[&dyn Oracle],
    objective: Option<&dyn Objective>,
    bounds: &Bounds,
    base: Option<&Arc<CarryBase>>,
    collect: bool,
) -> (ExploreReport, Option<Arc<CarryBase>>) {
    let _span = shm_obs::Span::enter("explore.run");
    let target = bounds.frontier.max(1);
    let root = Node {
        sim: Simulator::new(spec),
        sleep: 0,
        preempts: 0,
    };
    let mut phase1 = Walker::new(oracles, objective, bounds, base.cloned());
    let mut queue: SpillQueue<Node> = SpillQueue::new(frontier_hot_cap(bounds.mem_budget));
    queue.push(root, pack_node);
    while queue.len() < target && !phase1.stopped {
        let Some(popped) = queue.pop() else {
            break;
        };
        let mut node = materialize(spec, popped);
        let classes = full_classes(&node.sim);
        let Some((ckpt, children, at)) =
            phase1.expand(&mut node.sim, node.sleep, node.preempts, &classes)
        else {
            continue;
        };
        if at != SimAt::Node {
            node.sim.restore(&ckpt);
        }
        for (pid, sleep, preempts) in children {
            // The breadth-first frontier needs materialized child states:
            // re-step the claimed child and clone it off before rolling
            // back. This phase touches at most `frontier` nodes (and the
            // queue spills the excess beyond the hot ring).
            let _ = node.sim.step(pid);
            let sim = node.sim.clone();
            node.sim.restore(&ckpt);
            queue.push(
                Node {
                    sim,
                    sleep,
                    preempts,
                },
                pack_node,
            );
        }
        phase1.ckpt_pool.push(ckpt);
    }
    let stopped = phase1.stopped;
    let (mut report, phase1_store) = phase1.into_parts();
    report.frontier = queue.len();
    report.peak_frontier = queue.peak_len() as u64;
    report.spilled_bytes += queue.spilled_bytes();
    let mut stores = vec![phase1_store];
    if !queue.is_empty() && !stopped {
        let mut jobs: Vec<Popped<Node>> = Vec::new();
        while let Some(popped) = queue.pop() {
            jobs.push(popped);
        }
        let carry_base = base.cloned();
        let parts = map_indexed(shm_pool::threads(), jobs, |_, popped| {
            let _span = shm_obs::Span::enter("explore.subtree");
            let mut w = Walker::new(oracles, objective, bounds, carry_base.clone());
            let Node {
                mut sim,
                sleep,
                preempts,
            } = materialize(spec, popped);
            let classes = full_classes(&sim);
            w.dfs(&mut sim, sleep, preempts, classes);
            w.into_parts()
        });
        for (part, store) in parts {
            merge(&mut report, part, bounds.keep_violations);
            if collect {
                stores.push(store);
            }
        }
    }
    drop(queue);
    let carry = if !collect {
        None
    } else if report.state_capped {
        base.cloned()
    } else {
        let mut builder = CarryBuilder::new();
        if let Some(b) = base {
            builder.absorb_base(b);
        }
        for store in stores {
            builder.absorb_store(store);
        }
        Some(Arc::new(builder.build()))
    };
    (report, carry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FnOracle, TotalRmrs};
    use shm_sim::{CallKind, CostModel, MemLayout, OpSequence, Script, ScriptedCall};
    use std::sync::Arc;

    /// `n` writers each write their pid to a private slot of a global array:
    /// all steps commute, so DPOR should collapse the n! orders.
    fn disjoint_writers(n: usize) -> SimSpec {
        let mut layout = MemLayout::new();
        let cells = layout.alloc_global_array(n, 0);
        let sources = (0..n)
            .map(|i| {
                let a = cells.at(i);
                let call = ScriptedCall::new(
                    CallKind(0),
                    "write",
                    Arc::new(move || {
                        Box::new(OpSequence::new(vec![Op::Write(a, 1)]))
                            as Box<dyn shm_sim::ProcedureCall>
                    }),
                );
                Box::new(Script::new(vec![call])) as Box<dyn shm_sim::CallSource>
            })
            .collect();
        SimSpec {
            layout,
            sources,
            model: CostModel::Dsm,
        }
    }

    #[test]
    fn explores_all_interleavings_of_two_writers() {
        let spec = disjoint_writers(2);
        let rep = explore(&spec, &[], Some(&TotalRmrs), &Bounds::naive());
        assert!(rep.exhaustive);
        assert_eq!(rep.violations_found, 0);
        assert!(rep.terminals >= 2, "{rep:?}");
        assert!(rep.max_objective.is_some());
    }

    #[test]
    fn dpor_explores_fewer_states_than_naive_on_commuting_writers() {
        let spec = disjoint_writers(3);
        let naive = explore(&spec, &[], None, &Bounds::naive());
        let dpor = explore(&spec, &[], None, &Bounds::exhaustive());
        assert!(naive.exhaustive && dpor.exhaustive);
        assert!(
            dpor.explored + dpor.deduped < naive.explored,
            "dpor {dpor:?} vs naive {naive:?}"
        );
    }

    #[test]
    fn fn_oracle_violations_are_found_and_counted() {
        let spec = disjoint_writers(2);
        // "Nobody may ever complete a call": violated as soon as any write
        // call returns.
        let oracle = FnOracle::new("no-completions", |sim: &Simulator| {
            if sim.history().calls().iter().any(|c| c.is_complete()) {
                Err("a call completed".to_owned())
            } else {
                Ok(())
            }
        });
        let rep = explore(&spec, &[&oracle], None, &Bounds::exhaustive());
        assert!(rep.violations_found > 0);
        assert!(!rep.violations.is_empty());
        assert_eq!(rep.violations[0].oracle, "no-completions");
        assert!(rep.violations[0].in_contract);
    }

    #[test]
    fn depth_bound_marks_report_non_exhaustive() {
        let spec = disjoint_writers(3);
        let rep = explore(&spec, &[], None, &Bounds::bounded(2, None));
        assert!(!rep.exhaustive);
        assert!(rep.bound_pruned > 0);
    }

    #[test]
    fn preemption_bound_zero_allows_only_run_to_completion_orders() {
        let spec = disjoint_writers(3);
        let mut b = Bounds::exhaustive();
        b.max_preemptions = Some(0);
        b.dpor = false;
        b.dedup = false;
        let rep = explore(&spec, &[], None, &b);
        // With zero preemptions each process runs to termination once
        // scheduled: 3! = 6 complete orders.
        assert_eq!(rep.terminals, 6, "{rep:?}");
        assert!(!rep.exhaustive);
    }
}
