//! The bounded exhaustive scheduler: sleep-set DPOR over the simulator's
//! enabled steps, fingerprint deduplication, CHESS-style bounds, and a
//! deterministic parallel frontier fan-out.

use crate::bounds::Bounds;
use crate::oracle::{Objective, Oracle};
use shm_pool::map_indexed;
use shm_sim::{Op, ProcId, SimSpec, Simulator, TransitionPeek};
use std::collections::HashSet;
use std::collections::VecDeque;

/// One violation found during exploration.
#[derive(Clone, Debug)]
pub struct FoundViolation {
    /// Name of the oracle that rejected the state.
    pub oracle: &'static str,
    /// Human-readable violation description.
    pub description: String,
    /// Whether the violating history was within the algorithm's
    /// participation contract (PR 2's classification — out-of-contract
    /// violations say nothing about the algorithm).
    pub in_contract: bool,
    /// The schedule that reached the violating state.
    pub schedule: Vec<ProcId>,
}

/// The argmax schedule for an objective.
#[derive(Clone, Debug)]
pub struct ObjectiveResult {
    /// Objective label.
    pub name: String,
    /// Maximum value over all explored terminal states.
    pub value: u64,
    /// A schedule reaching that value (the first one in deterministic
    /// exploration order).
    pub schedule: Vec<ProcId>,
}

/// The outcome of one exploration. All counts and retained schedules are
/// byte-deterministic at any thread count: the frontier is fixed serially
/// and per-frontier results merge by submission index.
#[derive(Clone, Debug, Default)]
pub struct ExploreReport {
    /// States expanded (distinct under dedup; per-subtree distinct when the
    /// frontier fan-out splits the space).
    pub explored: u64,
    /// Child states pruned because their dedup key was already visited.
    pub deduped: u64,
    /// Transitions skipped by sleep sets (redundant orders of commuting
    /// steps).
    pub sleep_pruned: u64,
    /// Transitions cut by the depth or preemption bound.
    pub bound_pruned: u64,
    /// Terminal states reached (every process terminated).
    pub terminals: u64,
    /// Total violating states found. States are judged on their own path
    /// *before* deduplication (a verdict can depend on the event order, not
    /// just the state), so a violating state reachable along several
    /// non-commuting paths counts once per path.
    pub violations_found: u64,
    /// How many of [`ExploreReport::violations_found`] were within the
    /// algorithm's participation contract. Counted at find time for *every*
    /// violation (not just the retained records), so "zero in-contract
    /// violations" claims are exact.
    pub violations_in_contract: u64,
    /// Retained violation records, in deterministic exploration order
    /// (capped at [`Bounds::keep_violations`]).
    pub violations: Vec<FoundViolation>,
    /// Maximum objective value over terminal states, with its schedule.
    pub max_objective: Option<ObjectiveResult>,
    /// Number of frontier nodes handed to the pool (0 = the serial phase
    /// covered the whole space).
    pub frontier: usize,
    /// `true` iff no bound (depth, preemptions, or state cap) cut any
    /// branch: the report covers the entire schedule space and a clean
    /// verdict is a proof at this scenario size, not an under-approximation.
    pub exhaustive: bool,
}

impl ExploreReport {
    /// Violations found *outside* the participation contract — recorded but
    /// not held against the algorithm (PR 2's classification).
    #[must_use]
    pub fn out_of_contract_violations(&self) -> u64 {
        self.violations_found - self.violations_in_contract
    }
}

/// What one `step(pid)` would do, reduced to the facts the dependency
/// relation needs: call-boundary-ness and the memory footprint.
#[derive(Clone, Copy, Debug)]
struct Class {
    /// The step emits an `Invoke` or `Return` event (call boundary). The
    /// spec checkers judge cross-process invoke/return order, so boundary
    /// steps of different processes never commute.
    boundary: bool,
    /// The step terminates the process (no event the oracles observe; no
    /// memory access) — independent of everything.
    terminate: bool,
    /// The memory access the step performs, if any.
    op: Option<Op>,
}

fn classify(sim: &Simulator, pid: ProcId) -> Option<Class> {
    match sim.peek_transition(pid) {
        TransitionPeek::NotRunnable => None,
        TransitionPeek::WillTerminate => Some(Class {
            boundary: false,
            terminate: true,
            op: None,
        }),
        TransitionPeek::Return { .. } => Some(Class {
            boundary: true,
            terminate: false,
            op: None,
        }),
        TransitionPeek::Access(op) => Some(Class {
            // A step on a process with no open call fetches the next call
            // (emitting Invoke) before its first access, within the same
            // step.
            boundary: !sim.has_pending_call(pid),
            terminate: false,
            op: Some(op),
        }),
    }
}

/// Two steps commute iff they touch disjoint locations or are both plain
/// reads, and they are not both call boundaries. Valid independence for both
/// cost models: per-location validity means disjoint-location and read-read
/// reorders leave every charge unchanged, and one process's step never
/// changes what another's next transition is (machine state is process-
/// local) nor whether it is enabled.
fn independent(a: Class, b: Class) -> bool {
    if a.terminate || b.terminate {
        return true;
    }
    if a.boundary && b.boundary {
        return false;
    }
    match (a.op, b.op) {
        (Some(x), Some(y)) => {
            x.addr() != y.addr() || (matches!(x, Op::Read(_)) && matches!(y, Op::Read(_)))
        }
        _ => true,
    }
}

/// A node of the exploration tree: a simulator state plus the path-dependent
/// context (sleep set, preemptions used so far).
struct Node {
    sim: Simulator,
    /// Bitmask of sleeping process IDs.
    sleep: u64,
    /// Preemptive context switches on the path to this node.
    preempts: u32,
}

/// Dedup key: state fingerprint + sleep set + (when preemption bounding is
/// active) the last-scheduled pid and the used budget, which then also
/// affect a node's continuations + the oracles' order-witness context
/// ([`Oracle::dedup_context`]) — two histories may only merge when every
/// past order fact that can sway a future verdict agrees.
type Key = (u128, u64, u64, u64);

struct Walker<'a> {
    oracles: &'a [&'a dyn Oracle],
    objective: Option<&'a dyn Objective>,
    bounds: &'a Bounds,
    visited: HashSet<Key>,
    /// Exact-state fallback: fingerprint collisions would silently merge
    /// distinct states, so debug builds (and the `exact-fingerprints`
    /// feature of shm-sim builds, via the same cfg) keep the full word
    /// encodings and assert every dedup hit.
    #[cfg(debug_assertions)]
    exact: std::collections::HashMap<Key, Vec<u64>>,
    rep: ExploreReport,
    stopped: bool,
}

impl<'a> Walker<'a> {
    fn new(
        oracles: &'a [&'a dyn Oracle],
        objective: Option<&'a dyn Objective>,
        bounds: &'a Bounds,
    ) -> Self {
        Walker {
            oracles,
            objective,
            bounds,
            visited: HashSet::new(),
            #[cfg(debug_assertions)]
            exact: std::collections::HashMap::new(),
            rep: ExploreReport {
                exhaustive: true,
                ..ExploreReport::default()
            },
            stopped: false,
        }
    }

    fn key_of(&self, sim: &Simulator, sleep: u64, last: ProcId, preempts: u32) -> Key {
        let aux = if self.bounds.max_preemptions.is_some() {
            (u64::from(last.0) + 1) << 32 | u64::from(preempts)
        } else {
            0
        };
        let mut ctx = 0u64;
        for oracle in self.oracles {
            ctx = ctx.rotate_left(7) ^ oracle.dedup_context(sim);
        }
        (sim.state_fingerprint(), sleep, aux, ctx)
    }

    /// Marks `key` visited; returns `false` (and counts a dedup hit) when it
    /// already was.
    fn visit(&mut self, key: Key, _sim: &Simulator) -> bool {
        if !self.visited.insert(key) {
            self.rep.deduped += 1;
            shm_obs::counter!("explore.dedup");
            #[cfg(debug_assertions)]
            {
                let words = _sim.state_words();
                assert_eq!(
                    self.exact.get(&key),
                    Some(&words),
                    "state-fingerprint collision: distinct states share a dedup key"
                );
            }
            return false;
        }
        #[cfg(debug_assertions)]
        self.exact.insert(key, _sim.state_words());
        true
    }

    /// Expands one node: counts it, measures terminals, and yields the
    /// children to descend into (in deterministic ascending-pid order).
    /// Bound-pruned, sleeping, deduped, and violating children are consumed
    /// here and not yielded.
    fn expand_children(&mut self, node: &Node) -> Vec<Node> {
        self.rep.explored += 1;
        shm_obs::counter!("explore.states");
        if let Some(cap) = self.bounds.max_states {
            if self.rep.explored > cap {
                self.rep.exhaustive = false;
                self.stopped = true;
                return Vec::new();
            }
        }
        let n = node.sim.n();
        let classes: Vec<(ProcId, Class)> = (0..n)
            .filter_map(|i| {
                let pid = ProcId(i as u32);
                classify(&node.sim, pid).map(|c| (pid, c))
            })
            .collect();
        if classes.is_empty() {
            self.rep.terminals += 1;
            shm_obs::counter!("explore.terminals");
            if let Some(obj) = self.objective {
                let value = obj.measure(&node.sim);
                let better = self
                    .rep
                    .max_objective
                    .as_ref()
                    .is_none_or(|m| value > m.value);
                if better {
                    self.rep.max_objective = Some(ObjectiveResult {
                        name: obj.name(),
                        value,
                        schedule: node.sim.schedule().to_vec(),
                    });
                }
            }
            return Vec::new();
        }
        let last = node.sim.schedule().last().copied();
        let depth = node.sim.schedule().len();
        let mut children = Vec::new();
        // Pids already covered from this node (executed, deduped, or judged
        // violating): sleep-set candidates for later siblings.
        let mut done: u64 = 0;
        for &(pid, class) in &classes {
            if node.sleep >> pid.0 & 1 == 1 {
                self.rep.sleep_pruned += 1;
                shm_obs::counter!("explore.sleep_pruned");
                continue;
            }
            if self.bounds.max_depth.is_some_and(|d| depth + 1 > d) {
                self.rep.bound_pruned += 1;
                self.rep.exhaustive = false;
                shm_obs::counter!("explore.bound_pruned");
                continue;
            }
            let preempt = last.is_some_and(|l| l != pid && node.sim.is_runnable(l));
            let preempts = node.preempts + u32::from(preempt);
            if self
                .bounds
                .max_preemptions
                .is_some_and(|m| preempts as usize > m)
            {
                self.rep.bound_pruned += 1;
                self.rep.exhaustive = false;
                shm_obs::counter!("explore.bound_pruned");
                continue;
            }
            // The child's sleep set: everything covered so far that commutes
            // with the step being taken (classic sleep-set propagation).
            let sleep = if self.bounds.dpor {
                let mut s = 0u64;
                for &(q, qc) in &classes {
                    let covered = (node.sleep | done) >> q.0 & 1 == 1;
                    if covered && independent(qc, class) {
                        s |= 1 << q.0;
                    }
                }
                s
            } else {
                0
            };
            let mut sim = node.sim.clone();
            let _ = sim.step(pid);
            // Judge *before* the dedup check: a verdict can depend on the
            // event order of the path, so a violating state must never be
            // skipped because a clean reordering of it was visited first.
            if let Some(v) = self.judge(&sim) {
                // A violating state is a leaf: every extension carries the
                // same first violation, so descending would only re-report.
                self.rep.violations_found += 1;
                self.rep.violations_in_contract += u64::from(v.in_contract);
                shm_obs::counter!("explore.violations");
                if self.rep.violations.len() < self.bounds.keep_violations {
                    self.rep.violations.push(v);
                }
                done |= 1 << pid.0;
                continue;
            }
            if self.bounds.dedup {
                let key = self.key_of(&sim, sleep, pid, preempts);
                if !self.visit(key, &sim) {
                    done |= 1 << pid.0;
                    continue;
                }
            }
            done |= 1 << pid.0;
            children.push(Node {
                sim,
                sleep,
                preempts,
            });
        }
        children
    }

    fn judge(&self, sim: &Simulator) -> Option<FoundViolation> {
        for oracle in self.oracles {
            if let Err(description) = oracle.check(sim) {
                return Some(FoundViolation {
                    oracle: oracle.name(),
                    description,
                    in_contract: oracle.in_contract(sim),
                    schedule: sim.schedule().to_vec(),
                });
            }
        }
        None
    }

    /// Depth-first exploration of the whole subtree under `node`.
    fn dfs(&mut self, node: &Node) {
        if self.stopped {
            return;
        }
        let children = self.expand_children(node);
        for child in children {
            self.dfs(&child);
        }
    }
}

/// Merges sub-reports in submission-index order.
fn merge(into: &mut ExploreReport, part: ExploreReport, keep_violations: usize) {
    into.explored += part.explored;
    into.deduped += part.deduped;
    into.sleep_pruned += part.sleep_pruned;
    into.bound_pruned += part.bound_pruned;
    into.terminals += part.terminals;
    into.violations_found += part.violations_found;
    into.violations_in_contract += part.violations_in_contract;
    into.exhaustive &= part.exhaustive;
    for v in part.violations {
        if into.violations.len() < keep_violations {
            into.violations.push(v);
        }
    }
    // Strict `>` keeps the earliest (lowest submission index) argmax.
    if part.max_objective.as_ref().is_some_and(|p| {
        into.max_objective
            .as_ref()
            .is_none_or(|m| p.value > m.value)
    }) {
        into.max_objective = part.max_objective;
    }
}

/// Explores the schedule space of `spec` under `bounds`, checking `oracles`
/// on every reached state and maximizing `objective` over terminal states.
///
/// A serial breadth-first phase expands the root until [`Bounds::frontier`]
/// open nodes exist (or the space is exhausted); the frontier then fans out
/// across [`shm_pool`] workers, one job per node, and the sub-reports merge
/// by submission index — so every count, verdict, and retained schedule is
/// byte-identical at any thread count (`threads = 1` runs the identical
/// two-phase structure serially).
#[must_use]
pub fn explore(
    spec: &SimSpec,
    oracles: &[&dyn Oracle],
    objective: Option<&dyn Objective>,
    bounds: &Bounds,
) -> ExploreReport {
    let _span = shm_obs::Span::enter("explore.run");
    let target = bounds.frontier.max(1);
    let root = Node {
        sim: Simulator::new(spec),
        sleep: 0,
        preempts: 0,
    };
    let mut phase1 = Walker::new(oracles, objective, bounds);
    let mut queue: VecDeque<Node> = VecDeque::new();
    queue.push_back(root);
    while queue.len() < target && !phase1.stopped {
        let Some(node) = queue.pop_front() else { break };
        for child in phase1.expand_children(&node) {
            queue.push_back(child);
        }
    }
    let mut report = phase1.rep;
    report.frontier = queue.len();
    if queue.is_empty() || phase1.stopped {
        return report;
    }
    let frontier: Vec<Node> = queue.into_iter().collect();
    let parts = map_indexed(shm_pool::threads(), frontier, |_, node| {
        let _span = shm_obs::Span::enter("explore.subtree");
        let mut w = Walker::new(oracles, objective, bounds);
        w.dfs(&node);
        w.rep
    });
    for part in parts {
        merge(&mut report, part, bounds.keep_violations);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{FnOracle, TotalRmrs};
    use shm_sim::{CallKind, CostModel, MemLayout, OpSequence, Script, ScriptedCall};
    use std::sync::Arc;

    /// `n` writers each write their pid to a private slot of a global array:
    /// all steps commute, so DPOR should collapse the n! orders.
    fn disjoint_writers(n: usize) -> SimSpec {
        let mut layout = MemLayout::new();
        let cells = layout.alloc_global_array(n, 0);
        let sources = (0..n)
            .map(|i| {
                let a = cells.at(i);
                let call = ScriptedCall::new(
                    CallKind(0),
                    "write",
                    Arc::new(move || {
                        Box::new(OpSequence::new(vec![Op::Write(a, 1)]))
                            as Box<dyn shm_sim::ProcedureCall>
                    }),
                );
                Box::new(Script::new(vec![call])) as Box<dyn shm_sim::CallSource>
            })
            .collect();
        SimSpec {
            layout,
            sources,
            model: CostModel::Dsm,
        }
    }

    #[test]
    fn explores_all_interleavings_of_two_writers() {
        let spec = disjoint_writers(2);
        let rep = explore(&spec, &[], Some(&TotalRmrs), &Bounds::naive());
        assert!(rep.exhaustive);
        assert_eq!(rep.violations_found, 0);
        assert!(rep.terminals >= 2, "{rep:?}");
        assert!(rep.max_objective.is_some());
    }

    #[test]
    fn dpor_explores_fewer_states_than_naive_on_commuting_writers() {
        let spec = disjoint_writers(3);
        let naive = explore(&spec, &[], None, &Bounds::naive());
        let dpor = explore(&spec, &[], None, &Bounds::exhaustive());
        assert!(naive.exhaustive && dpor.exhaustive);
        assert!(
            dpor.explored + dpor.deduped < naive.explored,
            "dpor {dpor:?} vs naive {naive:?}"
        );
    }

    #[test]
    fn fn_oracle_violations_are_found_and_counted() {
        let spec = disjoint_writers(2);
        // "Nobody may ever complete a call": violated as soon as any write
        // call returns.
        let oracle = FnOracle::new("no-completions", |sim: &Simulator| {
            if sim.history().calls().iter().any(|c| c.is_complete()) {
                Err("a call completed".to_owned())
            } else {
                Ok(())
            }
        });
        let rep = explore(&spec, &[&oracle], None, &Bounds::exhaustive());
        assert!(rep.violations_found > 0);
        assert!(!rep.violations.is_empty());
        assert_eq!(rep.violations[0].oracle, "no-completions");
        assert!(rep.violations[0].in_contract);
    }

    #[test]
    fn depth_bound_marks_report_non_exhaustive() {
        let spec = disjoint_writers(3);
        let rep = explore(&spec, &[], None, &Bounds::bounded(2, None));
        assert!(!rep.exhaustive);
        assert!(rep.bound_pruned > 0);
    }

    #[test]
    fn preemption_bound_zero_allows_only_run_to_completion_orders() {
        let spec = disjoint_writers(3);
        let mut b = Bounds::exhaustive();
        b.max_preemptions = Some(0);
        b.dpor = false;
        b.dedup = false;
        let rep = explore(&spec, &[], None, &b);
        // With zero preemptions each process runs to termination once
        // scheduled: 3! = 6 complete orders.
        assert_eq!(rep.terminals, 6, "{rep:?}");
        assert!(!rep.exhaustive);
    }
}
