//! Pluggable oracles (safety checkers) and objectives (schedule-space
//! maximization targets).

use shm_sim::{CallRecord, ProcId, Simulator};
use signaling::{
    check_blocking, check_blocking_calls, check_polling, check_polling_calls, kinds,
    waiter_processes,
};
use std::sync::Arc;

/// A safety oracle checked on every explored state.
///
/// The explorer judges every generated state on its own path (before any
/// deduplication) and treats a violating state as a leaf. That makes the
/// search sound for *history* properties — not just state predicates —
/// provided two contracts hold:
///
/// * **Earliest-witness detection**: every violating execution must pass
///   through a state at which `check` already rejects (the Specification
///   4.1 checkers satisfy this — a violation is visible the moment the
///   offending call returns — and so does a mutual-exclusion check phrased
///   as "two critical sections are open *now*").
/// * **Context completeness** ([`Oracle::dedup_context`]): any fact about
///   the *past event order* that can change the verdict of a *future*
///   state must be folded into the context word. States are merged only
///   when their fingerprints **and** contexts agree, so a clean history's
///   future verdicts become a function of (state, context, future steps).
pub trait Oracle: Send + Sync {
    /// Short identifier used in reports and counterexamples.
    fn name(&self) -> &'static str;

    /// `Ok(())` or a human-readable description of the first violation.
    ///
    /// # Errors
    ///
    /// Returns the violation description.
    fn check(&self, sim: &Simulator) -> Result<(), String>;

    /// Whether the history is within the algorithm's participation contract.
    /// Violations found out of contract are recorded but say nothing about
    /// the algorithm (PR 2's classification); defaults to `true`.
    fn in_contract(&self, _sim: &Simulator) -> bool {
        true
    }

    /// A word capturing every past order fact that can affect the verdict of
    /// a future state (see the trait docs). The default (0) is correct for
    /// oracles whose verdicts are functions of the current state alone.
    ///
    /// Example: `FalseAfterSignalCompleted` condemns a *pending* poll that
    /// was invoked after a completed signal once it returns false — whether
    /// the invoke came before or after the signal's return is invisible in
    /// the per-process state, so [`PollingSpecOracle`] encodes it here.
    fn dedup_context(&self, _sim: &Simulator) -> u64 {
        0
    }

    /// [`Oracle::check`] with the history's call records already
    /// reconstructed. The explorer judges *and* dedup-contexts every
    /// generated state; reconstructing [`History::calls`](shm_sim::History::calls)
    /// once per state and sharing it across both is its hottest saving.
    /// Defaults to the plain `check`, so record-oblivious oracles need not
    /// care.
    ///
    /// Implementations must agree with `check`: the slice is exactly
    /// `sim.history().calls()`.
    ///
    /// # Errors
    ///
    /// Returns the violation description.
    fn check_with(&self, sim: &Simulator, _calls: &[CallRecord]) -> Result<(), String> {
        self.check(sim)
    }

    /// [`Oracle::dedup_context`] with pre-reconstructed call records (see
    /// [`Oracle::check_with`]); must agree with `dedup_context`.
    fn dedup_context_with(&self, sim: &Simulator, _calls: &[CallRecord]) -> u64 {
        self.dedup_context(sim)
    }
}

/// Specification 4.1 (polling semantics), with the algorithm's
/// `max_concurrent_waiters` participation contract.
#[derive(Clone, Copy, Debug)]
pub struct PollingSpecOracle {
    /// The algorithm's contract ([`signaling::SignalingAlgorithm::max_concurrent_waiters`]);
    /// `None` = arbitrarily many waiters allowed.
    pub max_concurrent_waiters: Option<usize>,
}

impl Oracle for PollingSpecOracle {
    fn name(&self) -> &'static str {
        "spec4.1-polling"
    }

    fn check(&self, sim: &Simulator) -> Result<(), String> {
        check_polling(sim.history()).map_err(|v| format!("{v:?}"))
    }

    fn in_contract(&self, sim: &Simulator) -> bool {
        self.max_concurrent_waiters
            .is_none_or(|m| waiter_processes(sim.history()).len() <= m)
    }

    /// `FalseAfterSignalCompleted` is the one Specification 4.1 clause whose
    /// verdict hinges on an *invoke-time* order fact: a pending poll invoked
    /// after the earliest signal completion must not return false, while a
    /// state-identical pending poll invoked *before* it may. The context is
    /// the bitmask of processes holding such a condemned-if-false pending
    /// poll. (The other clauses compare against the *return* step, which is
    /// in the future for every pending call, so they need no witness.)
    fn dedup_context(&self, sim: &Simulator) -> u64 {
        polling_context(&sim.history().calls())
    }

    fn check_with(&self, _sim: &Simulator, calls: &[CallRecord]) -> Result<(), String> {
        check_polling_calls(calls).map_err(|v| format!("{v:?}"))
    }

    fn dedup_context_with(&self, _sim: &Simulator, calls: &[CallRecord]) -> u64 {
        polling_context(calls)
    }
}

/// The condemned-if-false pending-poll bitmask [`PollingSpecOracle`] uses as
/// its dedup context, over pre-reconstructed call records.
fn polling_context(calls: &[CallRecord]) -> u64 {
    let first_signal_complete = calls
        .iter()
        .filter(|c| c.kind == kinds::SIGNAL)
        .filter_map(|c| c.returned_at)
        .min();
    let Some(sc) = first_signal_complete else {
        return 0;
    };
    let mut mask = 0u64;
    for c in calls {
        if c.kind == kinds::POLL && c.returned_at.is_none() && c.invoked_at > sc {
            mask |= 1 << (c.pid.0 % 64);
        }
    }
    mask
}

/// The blocking-semantics contract ("`Wait()` returns only after some
/// `Signal()` has begun"), with the same participation contract.
#[derive(Clone, Copy, Debug)]
pub struct BlockingSpecOracle {
    /// The algorithm's participation contract; `None` = unbounded.
    pub max_concurrent_waiters: Option<usize>,
}

impl Oracle for BlockingSpecOracle {
    fn name(&self) -> &'static str {
        "spec4.1-blocking"
    }

    fn check(&self, sim: &Simulator) -> Result<(), String> {
        check_blocking(sim.history()).map_err(|v| format!("{v:?}"))
    }

    fn in_contract(&self, sim: &Simulator) -> bool {
        self.max_concurrent_waiters
            .is_none_or(|m| waiter_processes(sim.history()).len() <= m)
    }

    fn check_with(&self, _sim: &Simulator, calls: &[CallRecord]) -> Result<(), String> {
        check_blocking_calls(calls).map_err(|v| format!("{v:?}"))
    }
}

/// A user invariant hook: any `Fn(&Simulator) -> Result<(), String>`.
#[derive(Clone)]
pub struct FnOracle {
    name: &'static str,
    #[allow(clippy::type_complexity)]
    f: Arc<dyn Fn(&Simulator) -> Result<(), String> + Send + Sync>,
}

impl FnOracle {
    /// Wraps a closure as an oracle.
    pub fn new(
        name: &'static str,
        f: impl Fn(&Simulator) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        FnOracle {
            name,
            f: Arc::new(f),
        }
    }
}

impl Oracle for FnOracle {
    fn name(&self) -> &'static str {
        self.name
    }

    fn check(&self, sim: &Simulator) -> Result<(), String> {
        (self.f)(sim)
    }
}

/// A quantity maximized over all *terminal* states (states where every
/// process has terminated). Objectives must be functions of the state, which
/// makes the maximum invariant under both reductions: commuting reorders and
/// fingerprint-equal merges preserve every process's accumulated charges.
pub trait Objective: Send + Sync {
    /// Label used in reports (e.g. `rmrs(p2)`).
    fn name(&self) -> String;

    /// The value of this terminal state.
    fn measure(&self, sim: &Simulator) -> u64;
}

/// RMRs accumulated by one process — `ProcRmrs(signaler)` is the quantity
/// the §6 lower bound argues about.
#[derive(Clone, Copy, Debug)]
pub struct ProcRmrs(pub ProcId);

impl Objective for ProcRmrs {
    fn name(&self) -> String {
        format!("rmrs({})", self.0)
    }

    fn measure(&self, sim: &Simulator) -> u64 {
        sim.proc_stats(self.0).rmrs
    }
}

/// Total RMRs across all processes.
#[derive(Clone, Copy, Debug)]
pub struct TotalRmrs;

impl Objective for TotalRmrs {
    fn name(&self) -> String {
        "rmrs(total)".to_owned()
    }

    fn measure(&self, sim: &Simulator) -> u64 {
        sim.totals().rmrs
    }
}
