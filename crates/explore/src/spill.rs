//! Delta-compressed sorted key runs: the on-disk (and in-memory) format of
//! the cold tier of the visited store.
//!
//! A *run* is a strictly ascending sequence of dedup [`Key`]s encoded in
//! blocks of [`KEYS_PER_BLOCK`]. Each block opens with its first key in
//! absolute form and continues with per-key deltas: the 128-bit fingerprint
//! lead is varint-encoded as the difference from the previous key (sorted
//! runs make these small), and the three trailing words (sleep set, bound
//! word, oracle context) are varint-encoded XORed against their
//! predecessors (they repeat heavily across neighboring states, so the XOR
//! is usually a one-byte zero). Blocks decode independently, so a membership
//! probe touches exactly one block.
//!
//! Probing is a three-stage funnel:
//!
//! 1. a [`Prefilter`] (two-probe Bloom-style bitset over the fingerprint)
//!    rejects most absent keys without touching the fences or the backing
//!    bytes at all;
//! 2. in-memory *fence pointers* ([`Fence`]: first key + byte extent per
//!    block) binary-search to the single candidate block;
//! 3. the block is decoded (from an in-memory slice or one file read) and
//!    scanned with early exit on the sorted order.
//!
//! The encoding is exact — membership answers have no false positives or
//! negatives — so the visited-set *semantics* are identical with or without
//! spilling; only the byte location of the keys changes. That is the whole
//! determinism argument: tiering moves keys, never answers.

/// A dedup key: the 128-bit state fingerprint followed by the sleep set,
/// the preemption-bound word, and the oracle order-witness context (see
/// `explorer.rs` for the semantics of each word). Ordered
/// fingerprint-first, which keeps deltas small in sorted runs.
pub type Key = (u128, u64, u64, u64);

/// Logical size of a key in bytes (16 + 3 × 8).
pub const KEY_BYTES: usize = 40;

/// Keys per encoded block. Each block decodes independently from its fence.
pub const KEYS_PER_BLOCK: usize = 256;

pub(crate) fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn push_varint128(out: &mut Vec<u8>, mut v: u128) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

pub(crate) fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = buf[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

fn read_varint128(buf: &[u8], pos: &mut usize) -> u128 {
    let mut v = 0u128;
    let mut shift = 0u32;
    loop {
        let b = buf[*pos];
        *pos += 1;
        v |= u128::from(b & 0x7f) << shift;
        if b < 0x80 {
            return v;
        }
        shift += 7;
    }
}

/// In-memory index entry for one encoded block: its first key (absolute)
/// and the block's byte extent within the run.
#[derive(Clone, Debug)]
pub struct Fence {
    /// First key of the block (also the block's decode seed).
    pub first: Key,
    /// Byte offset of the block within the run stream.
    pub offset: u64,
    /// Encoded length of the block in bytes.
    pub len: u32,
    /// Number of keys in the block (≤ [`KEYS_PER_BLOCK`]).
    pub count: u32,
}

/// Streaming encoder: push strictly ascending keys, drain encoded bytes at
/// any point (the fences carry absolute offsets, so a run can be written to
/// a file incrementally without buffering the whole stream).
pub struct RunEncoder {
    buf: Vec<u8>,
    drained: u64,
    fences: Vec<Fence>,
    count: u64,
    in_block: u32,
    block_offset: u64,
    prev: Key,
    last: Option<Key>,
}

impl Default for RunEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RunEncoder {
    /// A fresh encoder with no keys.
    #[must_use]
    pub fn new() -> Self {
        RunEncoder {
            buf: Vec::new(),
            drained: 0,
            fences: Vec::new(),
            count: 0,
            in_block: 0,
            block_offset: 0,
            prev: (0, 0, 0, 0),
            last: None,
        }
    }

    fn abs_offset(&self) -> u64 {
        self.drained + self.buf.len() as u64
    }

    fn end_block(&mut self) {
        if self.in_block == 0 {
            return;
        }
        let len = (self.abs_offset() - self.block_offset) as u32;
        let f = self.fences.last_mut().expect("open block has a fence");
        f.len = len;
        f.count = self.in_block;
        self.in_block = 0;
    }

    /// Appends `key`, which must be strictly greater than every key pushed
    /// so far.
    pub fn push(&mut self, key: Key) {
        assert!(
            self.last.is_none_or(|l| l < key),
            "run keys must be strictly ascending"
        );
        if self.in_block as usize == KEYS_PER_BLOCK {
            self.end_block();
        }
        if self.in_block == 0 {
            self.block_offset = self.abs_offset();
            self.fences.push(Fence {
                first: key,
                offset: self.block_offset,
                len: 0,
                count: 0,
            });
            push_varint128(&mut self.buf, key.0);
            push_varint(&mut self.buf, key.1);
            push_varint(&mut self.buf, key.2);
            push_varint(&mut self.buf, key.3);
        } else {
            push_varint128(&mut self.buf, key.0 - self.prev.0);
            push_varint(&mut self.buf, key.1 ^ self.prev.1);
            push_varint(&mut self.buf, key.2 ^ self.prev.2);
            push_varint(&mut self.buf, key.3 ^ self.prev.3);
        }
        self.prev = key;
        self.last = Some(key);
        self.in_block += 1;
        self.count += 1;
    }

    /// Takes the encoded bytes accumulated since the last drain (for
    /// incremental file writes). Fence offsets remain valid: they are
    /// absolute within the concatenation of every drained chunk.
    pub fn drain(&mut self) -> Vec<u8> {
        self.drained += self.buf.len() as u64;
        std::mem::take(&mut self.buf)
    }

    /// Bytes currently buffered (not yet drained).
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Closes the final block and returns `(remaining bytes, fences, key
    /// count, total encoded bytes)`.
    #[must_use]
    pub fn finish(mut self) -> (Vec<u8>, Vec<Fence>, u64, u64) {
        self.end_block();
        let total = self.abs_offset();
        (self.buf, self.fences, self.count, total)
    }
}

/// Decodes the block starting at `block` (its fence said it holds `count`
/// keys) and appends the keys to `out`.
pub fn decode_block_into(block: &[u8], count: u32, out: &mut Vec<Key>) {
    let mut pos = 0usize;
    let mut prev: Key = (
        read_varint128(block, &mut pos),
        read_varint(block, &mut pos),
        read_varint(block, &mut pos),
        read_varint(block, &mut pos),
    );
    out.push(prev);
    for _ in 1..count {
        prev = (
            prev.0 + read_varint128(block, &mut pos),
            prev.1 ^ read_varint(block, &mut pos),
            prev.2 ^ read_varint(block, &mut pos),
            prev.3 ^ read_varint(block, &mut pos),
        );
        out.push(prev);
    }
}

/// Whether `key` occurs in the encoded block. Scans in sorted order with
/// early exit (fingerprints are non-decreasing within a block).
#[must_use]
pub fn block_contains(block: &[u8], count: u32, key: &Key) -> bool {
    let mut pos = 0usize;
    let mut prev: Key = (
        read_varint128(block, &mut pos),
        read_varint(block, &mut pos),
        read_varint(block, &mut pos),
        read_varint(block, &mut pos),
    );
    if prev == *key {
        return true;
    }
    for _ in 1..count {
        prev = (
            prev.0 + read_varint128(block, &mut pos),
            prev.1 ^ read_varint(block, &mut pos),
            prev.2 ^ read_varint(block, &mut pos),
            prev.3 ^ read_varint(block, &mut pos),
        );
        if prev == *key {
            return true;
        }
        if prev > *key {
            return false;
        }
    }
    false
}

/// Index of the fence whose block could contain `key` (the last fence with
/// `first <= key`), or `None` when `key` sorts before the whole run.
#[must_use]
pub fn fence_for(fences: &[Fence], key: &Key) -> Option<usize> {
    let idx = fences.partition_point(|f| f.first <= *key);
    idx.checked_sub(1)
}

// ------------------------------------------------------------ prefilter ----

/// Two-probe Bloom-style membership prefilter over the fingerprint lead of
/// the key. No false negatives: a clear probe proves absence, so most
/// absent-key lookups never touch the fences or the backing bytes. False
/// positives only cost a (still exact) block probe.
#[derive(Clone, Debug)]
pub struct Prefilter {
    bits: Vec<u64>,
    mask: u64,
}

impl Prefilter {
    /// A filter sized for about `n` keys (~8 bits per key, rounded up to a
    /// power of two, at least 512 bits).
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        let bits = (n.max(64) * 8).next_power_of_two();
        Prefilter {
            bits: vec![0u64; bits / 64],
            mask: (bits - 1) as u64,
        }
    }

    fn probes(&self, fp: u128) -> (u64, u64) {
        // Two independent multiplicative mixes of the two fingerprint
        // halves; the fingerprint is already a polynomial hash, so this is
        // cheap insurance, not real hashing.
        let lo = (fp as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let hi = ((fp >> 64) as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        ((lo >> 7) & self.mask, (hi >> 9) & self.mask)
    }

    /// Marks `fp` present.
    pub fn insert(&mut self, fp: u128) {
        let (a, b) = self.probes(fp);
        self.bits[(a / 64) as usize] |= 1 << (a % 64);
        self.bits[(b / 64) as usize] |= 1 << (b % 64);
    }

    /// `false` proves `fp` was never inserted; `true` means "probe the run".
    #[must_use]
    pub fn maybe_contains(&self, fp: u128) -> bool {
        let (a, b) = self.probes(fp);
        self.bits[(a / 64) as usize] >> (a % 64) & 1 == 1
            && self.bits[(b / 64) as usize] >> (b % 64) & 1 == 1
    }

    /// Resident size of the bit array in bytes.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

// ------------------------------------------------- in-memory key set ----

/// An immutable, delta-compressed sorted key set held in memory: the same
/// block encoding as a disk run, fronted by the same fences and prefilter.
/// Used as the shared cross-bound *base* tier of [`crate::store::CarryStore`]
/// (many workers probe one `Arc`'d set concurrently).
pub struct CompressedKeySet {
    bytes: Vec<u8>,
    fences: Vec<Fence>,
    filter: Prefilter,
    count: u64,
}

impl CompressedKeySet {
    /// Builds the set from strictly ascending `keys`.
    #[must_use]
    pub fn from_sorted(keys: &[Key]) -> Self {
        let mut enc = RunEncoder::new();
        let mut filter = Prefilter::with_capacity(keys.len());
        for &k in keys {
            enc.push(k);
            filter.insert(k.0);
        }
        let (bytes, fences, count, total) = enc.finish();
        debug_assert_eq!(bytes.len() as u64, total, "nothing drained");
        CompressedKeySet {
            bytes,
            fences,
            filter,
            count,
        }
    }

    /// Number of keys in the set.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact membership.
    #[must_use]
    pub fn contains(&self, key: &Key) -> bool {
        if !self.filter.maybe_contains(key.0) {
            return false;
        }
        let Some(fi) = fence_for(&self.fences, key) else {
            return false;
        };
        let f = &self.fences[fi];
        let start = f.offset as usize;
        block_contains(&self.bytes[start..start + f.len as usize], f.count, key)
    }

    /// Decodes every key, in ascending order, into `out`.
    pub fn decode_into(&self, out: &mut Vec<Key>) {
        for f in &self.fences {
            let start = f.offset as usize;
            decode_block_into(&self.bytes[start..start + f.len as usize], f.count, out);
        }
    }

    /// Resident size in bytes (encoded stream + fences + prefilter).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.bytes.len()
            + self.fences.len() * std::mem::size_of::<Fence>()
            + self.filter.resident_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64, stride: u128) -> Vec<Key> {
        (0..n)
            .map(|i| {
                (
                    u128::from(i) * stride + 7,
                    i % 5,
                    (i / 3) % 4,
                    i.wrapping_mul(0x9E37),
                )
            })
            .collect()
    }

    #[test]
    fn varints_round_trip_extremes() {
        let mut buf = Vec::new();
        for v in [0u64, 1, 127, 128, u64::MAX] {
            buf.clear();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
        for v in [0u128, 127, 128, u128::from(u64::MAX) + 1, u128::MAX] {
            buf.clear();
            push_varint128(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint128(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn encode_decode_round_trips_across_block_boundaries() {
        for n in [0u64, 1, 2, 255, 256, 257, 1000] {
            let ks = keys(n, 1 << 64);
            let set = CompressedKeySet::from_sorted(&ks);
            let mut out = Vec::new();
            set.decode_into(&mut out);
            assert_eq!(out, ks, "n={n}");
        }
    }

    #[test]
    fn membership_is_exact() {
        let ks = keys(700, 3);
        let set = CompressedKeySet::from_sorted(&ks);
        for k in &ks {
            assert!(set.contains(k));
        }
        for k in &ks {
            let absent = (k.0, k.1, k.2, k.3 ^ 1);
            assert!(!set.contains(&absent));
            let absent = (k.0 + 1, k.1, k.2, k.3);
            if ks.binary_search(&absent).is_err() {
                assert!(!set.contains(&absent));
            }
        }
        assert!(!set.contains(&(0, 0, 0, 0)), "before-the-run probe");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn encoder_rejects_unsorted_input() {
        let mut enc = RunEncoder::new();
        enc.push((5, 0, 0, 0));
        enc.push((4, 0, 0, 0));
    }
}
