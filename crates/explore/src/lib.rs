//! # shm-explore: a bounded schedule-space model checker for the simulator
//!
//! Every other crate in this workspace measures *constructed* schedules: the
//! §6 adversary's erase/roll-forward rounds, the §7 scenario harness, the
//! experiment binaries' scripted interleavings. This crate turns the
//! deterministic step-machine substrate into a verification tool: it drives
//! [`shm_sim::Simulator`] over **all** interleavings of a scenario's enabled
//! steps (up to configurable bounds) and checks pluggable oracles —
//! Specification 4.1, mutual exclusion, user invariants — on every path,
//! while simultaneously searching for the schedule that maximizes an
//! objective such as the signaler's RMR count. At small n this exhaustively
//! certifies the shipped algorithms and cross-validates that the wild-goose-
//! chase adversary's constructed cost is actually reachable-extremal.
//!
//! ## How the state space stays small
//!
//! * **Sleep-set partial-order reduction** ([`Bounds::dpor`]): two enabled
//!   steps commute iff they touch disjoint locations or are both reads, and
//!   neither pair is a call boundary (invoke/return ordering is what the
//!   spec checkers judge, so boundary steps never commute with each other).
//!   Redundant orders of commuting steps are pruned without loss: the
//!   oracles and the RMR objective are invariant across a Mazurkiewicz trace
//!   (disjoint-location and read-read reorders leave every DSM charge and CC
//!   validity transition unchanged).
//! * **State deduplication** ([`Bounds::dedup`]): states are keyed by
//!   [`shm_sim::Simulator::state_fingerprint`] — the per-process projection
//!   fingerprints of PR 1 plus memory, cost-model, and stats state — so
//!   different interleavings of the same per-process behaviors converge.
//!   Equal fingerprints certify identical *state* futures, but an oracle
//!   verdict can also depend on the cross-process invoke/return **order** of
//!   the path (e.g. `FalseAfterSignalCompleted` condemns a pending poll only
//!   if it was invoked after a signal completed — invisible in the state).
//!   Two guards make dedup sound for such history properties: every
//!   generated state is judged on its own path *before* the dedup check, and
//!   the key also carries each oracle's order-witness word
//!   ([`Oracle::dedup_context`]), so histories merge only when every past
//!   order fact that can sway a future verdict agrees. Merging is exact up
//!   to hash collision; debug builds keep the full
//!   [`shm_sim::Simulator::state_words`] encoding and assert every hit.
//! * **Iterative preemption bounding + depth limits** ([`Bounds`]): beyond
//!   the exhaustive regime, exploration degrades gracefully into a CHESS-
//!   style bounded search. Bounded runs are *under-approximations*: a clean
//!   verdict means no violation within the bound, not absence of one.
//!   [`check_iterative`] carries the visited store across bounds (the dedup
//!   key's bound word encodes the *remaining* preemption budget), so each
//!   budget only explores what the previous one could not reach.
//! * **Disk-backed memory bounding** ([`Bounds::mem_budget`], [`store`],
//!   [`spill`]): the visited set and the breadth-first frontier live in a
//!   bounded hot tier backed by sorted, delta-compressed runs (and packed
//!   replayable nodes) spilled to disk — deeper exhaustive verdicts become
//!   a disk-budget question instead of a RAM wall, and spilling never
//!   changes a count, verdict, or schedule.
//!
//! Frontiers fan out across [`shm_pool`] workers with submission-index
//! merging, so verdicts, explored-state counts, and the argmax schedule are
//! byte-deterministic at any thread count. Every violation (and the
//! RMR-extremal schedule) serializes as a JSON [`Counterexample`], shrinks
//! by greedy step-deletion against the replay engine, and re-validates
//! through [`shm_sim::Simulator::audit`].
//!
//! Beyond the exhaustive regime, [`check_random`] samples seeded PCT
//! priority schedules (or plain random walks) at adversary scale — n = 8,
//! 16, 32 and up — judging each run with the same oracles and feeding any
//! violation through the identical shrink/audit pipeline (see [`pct`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bounds;
pub mod check;
pub mod counterexample;
pub mod explorer;
pub mod oracle;
pub mod pct;
pub mod spill;
pub mod store;

pub use bounds::Bounds;
pub use check::{check, check_iterative, CheckOutcome, ScenarioSpec};
pub use counterexample::{replay, shrink_schedule, Counterexample};
pub use explorer::{explore, ExploreReport, FoundViolation, ObjectiveResult};
pub use oracle::{
    BlockingSpecOracle, FnOracle, Objective, Oracle, PollingSpecOracle, ProcRmrs, TotalRmrs,
};
pub use pct::{check_random, schedule_seed, RandomBounds, RandomOutcome, RandomReport};
pub use store::VisitedStore;
