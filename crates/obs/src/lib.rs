//! # shm-obs: spans, attributed counters, and deterministic sinks
//!
//! Dependency-free observability layer for the cc-dsm workspace. The design
//! constraints come from the repo's determinism contract:
//!
//! * **Zero-cost when disabled.** All instrumentation goes through free
//!   functions ([`count`], [`Span::enter`]) that check one relaxed atomic
//!   load and return immediately when no [`Recorder`] is installed. The
//!   default recorder is a no-op; hot loops pay one predictable branch.
//! * **Deterministic merging.** Recording threads write into *track*-local
//!   buffers. A track is a path of submission indices (`[2, 1]` = shard 1
//!   of row job 2) maintained by `shm-pool`: the pool pushes the job index
//!   on both its serial and parallel paths, so the set of tracks — and
//!   every deterministic counter in them — is byte-identical at every
//!   thread count. [`Collector::snapshot`] merges tracks in lexicographic
//!   path order, never in completion order.
//! * **Attributed counts, not just totals.** A [`CounterKey`] carries
//!   optional process / memory-location / cost-model / scope dimensions, so
//!   RMRs can be charged "to the signaler during the chase under DSM"
//!   rather than to a single global bucket (§8's RMR-vs-messages
//!   distinction needs exactly this).
//! * **Declared nondeterminism.** Scheduling-dependent counters (the
//!   pool's steal/idle counts) are registered as nondeterministic in
//!   [`registry`] and excluded from the deterministic sinks
//!   ([`MetricsReport`], the no-wall JSONL stream, `--canon` obs blocks).
//!
//! Three sinks consume a [`Collector`] snapshot: the in-memory
//! [`MetricsReport`] (canonical JSON, byte-identical across thread counts),
//! a JSONL event stream ([`jsonl`]), and a Chrome `trace_event` exporter
//! ([`chrome_trace`]) with one lane per pool worker.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod chrome;
mod report;

pub use chrome::chrome_trace;
pub use report::{jsonl, MetricsReport};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

// ------------------------------------------------------------------ keys ----

/// Identity of one counter cell: a static name plus optional attribution
/// dimensions. Totals are kept per distinct key; sinks aggregate over the
/// dimensions they care about.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CounterKey {
    /// Counter name from the [`registry`] (free-form names are allowed but
    /// get the registry's defaults: deterministic, no help text).
    pub name: &'static str,
    /// Phase scope, e.g. `part1` / `chase` / `discovery`.
    pub scope: Option<&'static str>,
    /// Cost-model tag, e.g. `dsm` / `cc-wt-dir`.
    pub model: Option<&'static str>,
    /// Process the count is attributed to.
    pub pid: Option<u32>,
    /// Memory location (cell address) the count is attributed to.
    pub loc: Option<u32>,
}

impl CounterKey {
    /// A key with no attribution dimensions.
    #[must_use]
    pub fn plain(name: &'static str) -> Self {
        CounterKey {
            name,
            scope: None,
            model: None,
            pid: None,
            loc: None,
        }
    }
}

/// One span boundary, as recorded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (static, from the instrumentation site).
    pub name: &'static str,
    /// `true` for the opening boundary, `false` for the closing one.
    pub begin: bool,
    /// Worker lane the event was recorded on (0 = main thread).
    pub lane: u32,
    /// Nanoseconds since the collector was created (wall clock).
    pub t_ns: u64,
}

/// Everything one track recorded: ordered span boundaries plus aggregated
/// counter cells.
#[derive(Clone, Debug, Default)]
pub struct TrackData {
    /// Span boundaries in recording order (properly nested per thread).
    pub spans: Vec<SpanEvent>,
    /// Counter totals by key.
    pub counters: BTreeMap<CounterKey, u64>,
}

/// A deterministic snapshot of a [`Collector`]: tracks in lexicographic
/// path order.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// `(track path, data)` pairs, sorted by path.
    pub tracks: Vec<(Vec<u32>, TrackData)>,
}

// ------------------------------------------------------------- registry ----

/// Static registry of the workspace's counters. Names not listed here are
/// accepted and treated as deterministic.
pub mod registry {
    /// One registered counter.
    pub struct CounterDef {
        /// Counter name.
        pub name: &'static str,
        /// Whether the counter's value is a pure function of the workload
        /// (thread-count and scheduling independent). Nondeterministic
        /// counters are excluded from the deterministic sinks.
        pub deterministic: bool,
        /// One-line description.
        pub help: &'static str,
    }

    /// The registered counters, in canonical order.
    pub const COUNTERS: &[CounterDef] = &[
        CounterDef {
            name: "sim.steps",
            deterministic: true,
            help: "simulator state-machine transitions executed (includes replay work)",
        },
        CounterDef {
            name: "sim.rmr",
            deterministic: true,
            help: "remote memory references in a flushed final history",
        },
        CounterDef {
            name: "sim.local",
            deterministic: true,
            help: "local (non-RMR) accesses in a flushed final history",
        },
        CounterDef {
            name: "sim.inval",
            deterministic: true,
            help: "cache invalidations in a flushed final history",
        },
        CounterDef {
            name: "ckpt.snapshot",
            deterministic: true,
            help: "checkpoints captured",
        },
        CounterDef {
            name: "ckpt.restore",
            deterministic: true,
            help: "checkpoint restores",
        },
        CounterDef {
            name: "replay.steps",
            deterministic: true,
            help: "schedule entries re-executed by replay_from",
        },
        CounterDef {
            name: "erase.surgery",
            deterministic: true,
            help: "erasures applied by DSM event-walk surgery",
        },
        CounterDef {
            name: "erase.replay",
            deterministic: true,
            help: "erasures applied by the CC replay fallback",
        },
        CounterDef {
            name: "erase.refused",
            deterministic: true,
            help: "erasures refused by projection certification",
        },
        CounterDef {
            name: "fingerprint.exact_check",
            deterministic: true,
            help: "exact projection cross-checks of the rolling-hash fingerprints",
        },
        CounterDef {
            name: "audit.shards",
            deterministic: true,
            help: "differential-audit shards walked",
        },
        CounterDef {
            name: "audit.steps",
            deterministic: true,
            help: "schedule steps shadow-executed by the audit",
        },
        CounterDef {
            name: "audit.events",
            deterministic: true,
            help: "recorded events diffed by the audit",
        },
        CounterDef {
            name: "audit.rmr",
            deterministic: true,
            help: "RMRs re-priced by the audit's naive shadow executor",
        },
        CounterDef {
            name: "part1.rounds",
            deterministic: true,
            help: "Part-1 adversary rounds executed",
        },
        CounterDef {
            name: "part1.rollforward",
            deterministic: true,
            help: "Part-1 rounds that hit the roll-forward case",
        },
        CounterDef {
            name: "part2.rmr.signaler",
            deterministic: true,
            help: "RMRs attributed to the signaler in a Part-2 phase",
        },
        CounterDef {
            name: "part2.rmr.waiters",
            deterministic: true,
            help: "RMRs attributed to waiters in a Part-2 phase",
        },
        CounterDef {
            name: "part2.erased",
            deterministic: true,
            help: "stable waiters erased during the wild goose chase",
        },
        CounterDef {
            name: "part2.blocked",
            deterministic: true,
            help: "chase erasures blocked by certification",
        },
        CounterDef {
            name: "explore.states",
            deterministic: true,
            help: "schedule-space states expanded by the explorer",
        },
        CounterDef {
            name: "explore.dedup",
            deterministic: true,
            help: "child states pruned by state-fingerprint deduplication",
        },
        CounterDef {
            name: "explore.sleep_pruned",
            deterministic: true,
            help: "transitions skipped by sleep-set partial-order reduction",
        },
        CounterDef {
            name: "explore.bound_pruned",
            deterministic: true,
            help: "transitions cut by the depth or preemption bound",
        },
        CounterDef {
            name: "explore.terminals",
            deterministic: true,
            help: "terminal (all-processes-done) states reached by the explorer",
        },
        CounterDef {
            name: "explore.violations",
            deterministic: true,
            help: "oracle-violating states found by the explorer",
        },
        CounterDef {
            name: "explore.shrink_replays",
            deterministic: true,
            help: "candidate replays tried by counterexample shrinking",
        },
        CounterDef {
            name: "store.hot_hits",
            deterministic: true,
            help: "visited-store dedup hits answered by the hot in-memory tier",
        },
        CounterDef {
            name: "store.cold_probes",
            deterministic: true,
            help: "visited-store disk-run probes (prefilter passes; includes false positives)",
        },
        CounterDef {
            name: "store.spilled_bytes",
            deterministic: true,
            help: "delta-compressed bytes spilled to disk (visited runs + packed frontier nodes)",
        },
        CounterDef {
            name: "store.runs_merged",
            deterministic: true,
            help: "cold runs consumed by log-structured k-way merges",
        },
        CounterDef {
            name: "pool.execute",
            deterministic: false,
            help: "jobs executed per worker lane",
        },
        CounterDef {
            name: "pool.steal",
            deterministic: false,
            help: "jobs stolen from another worker's queue",
        },
        CounterDef {
            name: "pool.idle",
            deterministic: false,
            help: "steal sweeps that found no work",
        },
    ];

    /// Whether `name` is registered as deterministic (unregistered names
    /// default to deterministic).
    #[must_use]
    pub fn is_deterministic(name: &str) -> bool {
        COUNTERS
            .iter()
            .find(|c| c.name == name)
            .is_none_or(|c| c.deterministic)
    }
}

// ------------------------------------------------------------- recorder ----

/// Consumer of instrumentation events. The default recorder is a no-op;
/// [`Collector`] is the buffering implementation behind every sink.
pub trait Recorder: Send + Sync {
    /// A span named `name` opened on the current thread.
    fn span_begin(&self, name: &'static str);
    /// The innermost open span named `name` closed on the current thread.
    fn span_end(&self, name: &'static str);
    /// `delta` added to the counter cell `key`.
    fn count(&self, key: CounterKey, delta: u64);
}

/// The no-op default recorder (every method does nothing).
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn span_begin(&self, _name: &'static str) {}
    fn span_end(&self, _name: &'static str) {}
    fn count(&self, _key: CounterKey, _delta: u64) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);

#[allow(clippy::type_complexity)]
fn recorder_slot() -> &'static RwLock<Option<Arc<dyn Recorder>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Recorder>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

fn collector_slot() -> &'static RwLock<Option<Arc<Collector>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<Collector>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Whether a recorder is installed. Instrumentation sites branch on this;
/// it is the *only* cost they pay when observability is off.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `r` as the process-wide recorder.
pub fn install(r: Arc<dyn Recorder>) {
    *recorder_slot().write().unwrap() = Some(r);
    *collector_slot().write().unwrap() = None;
    ENABLED.store(true, Ordering::SeqCst);
}

/// Installs a [`Collector`] as the process-wide recorder, keeping a typed
/// handle so sinks and [`totals_mark`] can reach it.
pub fn install_collector(c: &Arc<Collector>) {
    *recorder_slot().write().unwrap() = Some(Arc::clone(c) as Arc<dyn Recorder>);
    *collector_slot().write().unwrap() = Some(Arc::clone(c));
    ENABLED.store(true, Ordering::SeqCst);
}

/// Uninstalls any recorder (instrumentation reverts to the no-op default).
pub fn uninstall() {
    ENABLED.store(false, Ordering::SeqCst);
    *recorder_slot().write().unwrap() = None;
    *collector_slot().write().unwrap() = None;
}

/// The installed [`Collector`], if the recorder was installed via
/// [`install_collector`].
#[must_use]
pub fn collector() -> Option<Arc<Collector>> {
    collector_slot().read().unwrap().clone()
}

fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if suppressed() {
        return;
    }
    if let Some(r) = recorder_slot().read().unwrap().as_ref() {
        f(&**r);
    }
}

thread_local! {
    static SUPPRESS: Cell<bool> = const { Cell::new(false) };
}

fn suppressed() -> bool {
    SUPPRESS.with(Cell::get)
}

/// RAII guard restoring the recording state changed by [`suppress`].
pub struct SuppressGuard {
    saved: bool,
}

impl Drop for SuppressGuard {
    fn drop(&mut self) {
        SUPPRESS.with(|s| s.set(self.saved));
    }
}

/// Suppresses recording on the current thread until the guard drops.
///
/// For instrumented code that re-enters other instrumented code as a pure
/// cross-check (e.g. the replay engine's debug-build shadow verification):
/// the check's internal work would otherwise count double and make metrics
/// differ between debug and release builds.
#[must_use]
pub fn suppress() -> SuppressGuard {
    let saved = SUPPRESS.with(|s| s.replace(true));
    SuppressGuard { saved }
}

// ------------------------------------------------------- tracks & lanes ----

thread_local! {
    static TRACK: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
    static LANE: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard for one track segment (see [`enter_track`]).
pub struct TrackGuard {
    pushed: bool,
}

impl Drop for TrackGuard {
    fn drop(&mut self) {
        if self.pushed {
            TRACK.with(|t| {
                t.borrow_mut().pop();
            });
        }
    }
}

/// Pushes submission index `i` onto the current thread's track path until
/// the guard drops. No-op (and allocation-free) when recording is disabled.
#[must_use]
pub fn enter_track(i: u32) -> TrackGuard {
    if !enabled() {
        return TrackGuard { pushed: false };
    }
    TRACK.with(|t| t.borrow_mut().push(i));
    TrackGuard { pushed: true }
}

/// The current thread's track path.
#[must_use]
pub fn track_path() -> Vec<u32> {
    TRACK.with(|t| t.borrow().clone())
}

/// RAII guard restoring the track path replaced by [`adopt_track_path`].
pub struct AdoptGuard {
    saved: Option<Vec<u32>>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if let Some(saved) = self.saved.take() {
            TRACK.with(|t| *t.borrow_mut() = saved);
        }
    }
}

/// Replaces the current thread's track path with `path` (pool workers adopt
/// the submitting thread's path so nested fan-outs stay rooted correctly).
#[must_use]
pub fn adopt_track_path(path: Vec<u32>) -> AdoptGuard {
    if !enabled() {
        return AdoptGuard { saved: None };
    }
    let saved = TRACK.with(|t| std::mem::replace(&mut *t.borrow_mut(), path));
    AdoptGuard { saved: Some(saved) }
}

/// RAII guard restoring the lane set by [`set_lane`].
pub struct LaneGuard {
    saved: Option<u32>,
}

impl Drop for LaneGuard {
    fn drop(&mut self) {
        if let Some(saved) = self.saved.take() {
            LANE.with(|l| l.set(saved));
        }
    }
}

/// Sets the current thread's worker lane (0 = main; pool workers use
/// `worker index + 1`). Lanes only affect span events (Chrome trace rows).
#[must_use]
pub fn set_lane(lane: u32) -> LaneGuard {
    if !enabled() {
        return LaneGuard { saved: None };
    }
    let saved = LANE.with(|l| l.replace(lane));
    LaneGuard { saved: Some(saved) }
}

// ------------------------------------------------------- span & counter ----

/// RAII span: records a begin boundary on [`Span::enter`] and the matching
/// end boundary on drop. Inert (no recording, no clock reads) when
/// observability is disabled.
pub struct Span {
    name: Option<&'static str>,
}

impl Span {
    /// Opens a span named `name` on the current thread.
    #[must_use]
    pub fn enter(name: &'static str) -> Span {
        if !enabled() || suppressed() {
            return Span { name: None };
        }
        with_recorder(|r| r.span_begin(name));
        Span { name: Some(name) }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            with_recorder(|r| r.span_end(name));
        }
    }
}

/// Adds `delta` to the unattributed counter `name`. Zero deltas are
/// dropped (they would only materialize empty cells in the sinks).
#[inline]
pub fn count(name: &'static str, delta: u64) {
    if delta > 0 && enabled() {
        with_recorder(|r| r.count(CounterKey::plain(name), delta));
    }
}

/// Adds `delta` to the counter cell identified by `key`. Zero deltas are
/// dropped.
#[inline]
pub fn count_key(key: CounterKey, delta: u64) {
    if delta > 0 && enabled() {
        with_recorder(|r| r.count(key, delta));
    }
}

/// `counter!(name)`, `counter!(name, delta)`, or
/// `counter!(name, delta, scope: s, model: m, pid: p, loc: l)` with any
/// subset of dimensions — the `counter!`-style front end over [`count_key`].
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::count($name, 1)
    };
    ($name:expr, $delta:expr) => {
        $crate::count($name, $delta)
    };
    ($name:expr, $delta:expr $(, $dim:ident : $val:expr)+ $(,)?) => {{
        if $crate::enabled() {
            #[allow(clippy::needless_update)]
            let key = $crate::CounterKey {
                $($dim: Some($val),)+
                ..$crate::CounterKey::plain($name)
            };
            $crate::count_key(key, $delta);
        }
    }};
}

// ------------------------------------------------------------ collector ----

static COLLECTOR_EPOCH: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of the buffer for (collector epoch, track path) so
    /// steady-state recording takes one uncontended mutex, not the registry
    /// lock.
    #[allow(clippy::type_complexity)]
    static BUF_CACHE: RefCell<Option<(u64, Vec<u32>, Arc<Mutex<TrackData>>)>> =
        const { RefCell::new(None) };
}

/// The buffering recorder: track-local buffers, merged deterministically by
/// track path (submission-index order) at [`Collector::snapshot`] time.
pub struct Collector {
    epoch: u64,
    base: Instant,
    tracks: Mutex<BTreeMap<Vec<u32>, Arc<Mutex<TrackData>>>>,
}

impl Collector {
    /// Creates an empty collector. Install it with [`install_collector`].
    #[must_use]
    pub fn new() -> Arc<Collector> {
        Arc::new(Collector {
            epoch: COLLECTOR_EPOCH.fetch_add(1, Ordering::SeqCst),
            base: Instant::now(),
            tracks: Mutex::new(BTreeMap::new()),
        })
    }

    fn buffer(&self) -> Arc<Mutex<TrackData>> {
        BUF_CACHE.with(|cache| {
            // Hot path: compare the current track path against the cached one
            // in place (no allocation) before falling back to the registry.
            {
                let cache = cache.borrow();
                if let Some((epoch, cached_path, buf)) = cache.as_ref() {
                    if *epoch == self.epoch && TRACK.with(|t| *t.borrow() == *cached_path) {
                        return Arc::clone(buf);
                    }
                }
            }
            let path = track_path();
            let buf = Arc::clone(self.tracks.lock().unwrap().entry(path.clone()).or_default());
            *cache.borrow_mut() = Some((self.epoch, path, Arc::clone(&buf)));
            buf
        })
    }

    fn span_event(&self, name: &'static str, begin: bool) {
        let t_ns = u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let lane = LANE.with(Cell::get);
        self.buffer().lock().unwrap().spans.push(SpanEvent {
            name,
            begin,
            lane,
            t_ns,
        });
    }

    /// Deterministic snapshot: tracks in lexicographic path order, counters
    /// in key order. Non-destructive.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let tracks = self.tracks.lock().unwrap();
        Snapshot {
            tracks: tracks
                .iter()
                .map(|(path, buf)| (path.clone(), buf.lock().unwrap().clone()))
                .collect(),
        }
    }

    /// Clears all recorded data in place (buffers stay registered, so
    /// cached handles on other threads remain valid).
    pub fn clear(&self) {
        for buf in self.tracks.lock().unwrap().values() {
            let mut buf = buf.lock().unwrap();
            buf.spans.clear();
            buf.counters.clear();
        }
    }

    /// Per-name totals of the deterministic counters recorded under tracks
    /// with the given path prefix.
    #[must_use]
    pub fn subtree_totals(&self, prefix: &[u32]) -> BTreeMap<&'static str, u64> {
        let mut totals: BTreeMap<&'static str, u64> = BTreeMap::new();
        for (path, buf) in self.tracks.lock().unwrap().iter() {
            if !path.starts_with(prefix) {
                continue;
            }
            for (key, v) in &buf.lock().unwrap().counters {
                if registry::is_deterministic(key.name) {
                    *totals.entry(key.name).or_default() += v;
                }
            }
        }
        totals
    }
}

impl Recorder for Collector {
    fn span_begin(&self, name: &'static str) {
        self.span_event(name, true);
    }

    fn span_end(&self, name: &'static str) {
        self.span_event(name, false);
    }

    fn count(&self, key: CounterKey, delta: u64) {
        *self
            .buffer()
            .lock()
            .unwrap()
            .counters
            .entry(key)
            .or_default() += delta;
    }
}

// ---------------------------------------------------------- totals mark ----

/// A mark of the current track subtree's deterministic counter totals, for
/// computing a delta at the end of a unit of work (one `--canon` row).
pub struct TotalsMark {
    collector: Arc<Collector>,
    prefix: Vec<u32>,
    base: BTreeMap<&'static str, u64>,
}

/// Marks the current track subtree's totals, or `None` when no collector is
/// installed. Take the mark at the start of a job; [`TotalsMark::delta_json`]
/// at the end yields the job's own counter totals as canonical JSON.
#[must_use]
pub fn totals_mark() -> Option<TotalsMark> {
    let collector = collector()?;
    let prefix = track_path();
    let base = collector.subtree_totals(&prefix);
    Some(TotalsMark {
        collector,
        prefix,
        base,
    })
}

impl TotalsMark {
    /// Canonical JSON object (`{"name": total, ...}`, sorted by name) of the
    /// deterministic counters recorded under the marked subtree since the
    /// mark was taken.
    #[must_use]
    pub fn delta_json(&self) -> String {
        let now = self.collector.subtree_totals(&self.prefix);
        let mut out = String::from("{");
        let mut first = true;
        for (name, v) in now {
            let delta = v - self.base.get(name).copied().unwrap_or(0);
            if delta == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{name}\": {delta}"));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process-global lock: the recorder slot is process-wide state.
    static OBS_LOCK: Mutex<()> = Mutex::new(());

    fn with_collector<R>(f: impl FnOnce(&Arc<Collector>) -> R) -> R {
        let _guard = OBS_LOCK.lock().unwrap();
        let c = Collector::new();
        install_collector(&c);
        let r = f(&c);
        uninstall();
        r
    }

    #[test]
    fn disabled_recording_is_inert() {
        let _guard = OBS_LOCK.lock().unwrap();
        uninstall();
        assert!(!enabled());
        counter!("sim.rmr");
        let _span = Span::enter("phase");
        let _t = enter_track(3);
        assert!(
            track_path().is_empty(),
            "tracks are not maintained when off"
        );
        assert!(totals_mark().is_none());
    }

    #[test]
    fn counters_aggregate_by_key() {
        with_collector(|c| {
            counter!("sim.rmr", 2, pid: 1, model: "dsm");
            counter!("sim.rmr", 3, pid: 1, model: "dsm");
            counter!("sim.rmr", 5, pid: 2, model: "dsm");
            counter!("sim.steps");
            let snap = c.snapshot();
            assert_eq!(snap.tracks.len(), 1);
            let (path, data) = &snap.tracks[0];
            assert!(path.is_empty());
            let cell = |pid| {
                data.counters
                    .get(&CounterKey {
                        pid: Some(pid),
                        model: Some("dsm"),
                        ..CounterKey::plain("sim.rmr")
                    })
                    .copied()
            };
            assert_eq!(cell(1), Some(5));
            assert_eq!(cell(2), Some(5));
            assert_eq!(
                data.counters.get(&CounterKey::plain("sim.steps")).copied(),
                Some(1)
            );
        });
    }

    #[test]
    fn interleaved_thread_local_collectors_merge_canonically() {
        // Four threads record into distinct tracks in scrambled start/finish
        // order; the snapshot must come out in lexicographic track order with
        // per-track data intact, independent of scheduling.
        let run = || {
            with_collector(|c| {
                std::thread::scope(|scope| {
                    for i in [3u32, 1, 0, 2] {
                        scope.spawn(move || {
                            let _adopt = adopt_track_path(vec![7]);
                            let _t = enter_track(i);
                            let span = Span::enter("job");
                            for k in 0..=i {
                                counter!("sim.rmr", u64::from(k + 1), pid: i);
                            }
                            drop(span);
                        });
                    }
                });
                counter!("sim.steps", 9);
                c.snapshot()
            })
        };
        let snap = run();
        let paths: Vec<Vec<u32>> = snap.tracks.iter().map(|(p, _)| p.clone()).collect();
        assert_eq!(
            paths,
            vec![vec![], vec![7, 0], vec![7, 1], vec![7, 2], vec![7, 3]],
            "tracks merge in submission-index order, not completion order"
        );
        for (path, data) in &snap.tracks[1..] {
            let i = path[1];
            let expect: u64 = (1..=u64::from(i) + 1).sum();
            let got: u64 = data.counters.values().sum();
            assert_eq!(got, expect, "track {path:?}");
            assert_eq!(data.spans.len(), 2);
            assert!(data.spans[0].begin && !data.spans[1].begin);
        }
        // And the merged deterministic view is identical run to run.
        let again = run();
        let totals = |s: &Snapshot| {
            let mut m: BTreeMap<CounterKey, u64> = BTreeMap::new();
            for (_, d) in &s.tracks {
                for (k, v) in &d.counters {
                    *m.entry(k.clone()).or_default() += v;
                }
            }
            m
        };
        assert_eq!(totals(&snap), totals(&again));
    }

    #[test]
    fn subtree_totals_and_marks_are_scoped_and_deterministic_only() {
        with_collector(|c| {
            {
                let _t = enter_track(0);
                let mark = totals_mark().expect("collector installed");
                counter!("sim.rmr", 4);
                counter!("pool.steal", 2, pid: 0); // nondeterministic: excluded
                {
                    let _inner = enter_track(1);
                    counter!("audit.steps", 6);
                }
                assert_eq!(mark.delta_json(), "{\"audit.steps\": 6, \"sim.rmr\": 4}");
            }
            {
                let _t = enter_track(1);
                counter!("sim.rmr", 100);
            }
            assert_eq!(c.subtree_totals(&[0]).get("sim.rmr"), Some(&4));
            assert_eq!(c.subtree_totals(&[]).get("sim.rmr"), Some(&104));
            assert!(!c.subtree_totals(&[]).contains_key("pool.steal"));
        });
    }

    #[test]
    fn marks_measure_deltas_not_absolutes() {
        with_collector(|_c| {
            let _t = enter_track(5);
            counter!("sim.rmr", 7);
            let mark = totals_mark().expect("collector installed");
            counter!("sim.rmr", 2);
            assert_eq!(mark.delta_json(), "{\"sim.rmr\": 2}");
        });
    }

    #[test]
    fn suppression_hides_nested_recording() {
        with_collector(|c| {
            counter!("sim.rmr", 1);
            {
                let _s = suppress();
                counter!("sim.rmr", 10);
                let span = Span::enter("hidden");
                drop(span);
            }
            counter!("sim.rmr", 2);
            assert_eq!(c.subtree_totals(&[]).get("sim.rmr"), Some(&3));
            assert!(c.snapshot().tracks[0].1.spans.is_empty());
        });
    }

    #[test]
    fn clear_resets_but_keeps_buffers_live() {
        with_collector(|c| {
            counter!("sim.rmr", 3);
            c.clear();
            counter!("sim.rmr", 2);
            let snap = c.snapshot();
            let total: u64 = snap.tracks[0].1.counters.values().sum();
            assert_eq!(total, 2);
        });
    }

    #[test]
    fn registry_flags_pool_counters_nondeterministic() {
        assert!(registry::is_deterministic("sim.rmr"));
        assert!(registry::is_deterministic("some.unregistered.counter"));
        assert!(!registry::is_deterministic("pool.steal"));
        assert!(!registry::is_deterministic("pool.idle"));
        assert!(!registry::is_deterministic("pool.execute"));
    }
}
