//! Deterministic sinks: the in-memory [`MetricsReport`] (canonical JSON)
//! and the JSONL event stream.

use crate::{registry, CounterKey, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// In-memory aggregation of a snapshot's **deterministic** counters:
/// per-counter totals with per-scope, per-cost-model, per-process, and
/// per-location breakdowns (the RMR/local-access histograms of the
/// issue). Byte-identical across thread counts by construction, because
/// the underlying snapshot is.
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    cells: BTreeMap<CounterKey, u64>,
}

impl MetricsReport {
    /// Aggregates `snap` across tracks, keeping deterministic counters only.
    #[must_use]
    pub fn from_snapshot(snap: &Snapshot) -> MetricsReport {
        let mut cells: BTreeMap<CounterKey, u64> = BTreeMap::new();
        for (_path, data) in &snap.tracks {
            for (key, v) in &data.counters {
                if registry::is_deterministic(key.name) {
                    *cells.entry(key.clone()).or_default() += v;
                }
            }
        }
        MetricsReport { cells }
    }

    /// Counter names present in the report, in canonical order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.cells.keys().map(|k| k.name).collect();
        names.dedup();
        names
    }

    /// Total of counter `name` over all attribution dimensions.
    #[must_use]
    pub fn total(&self, name: &str) -> u64 {
        self.filtered(name, |_| true)
    }

    /// Total of counter `name` within phase `scope`.
    #[must_use]
    pub fn scoped(&self, name: &str, scope: &str) -> u64 {
        self.filtered(name, |k| k.scope == Some(scope))
    }

    /// Per-cost-model totals of counter `name`.
    #[must_use]
    pub fn by_model(&self, name: &str) -> BTreeMap<&'static str, u64> {
        self.marginal(name, |k| k.model)
    }

    /// Per-scope totals of counter `name`.
    #[must_use]
    pub fn by_scope(&self, name: &str) -> BTreeMap<&'static str, u64> {
        self.marginal(name, |k| k.scope)
    }

    /// Per-process totals of counter `name`.
    #[must_use]
    pub fn by_process(&self, name: &str) -> BTreeMap<u32, u64> {
        self.marginal(name, |k| k.pid)
    }

    /// Per-location totals of counter `name`.
    #[must_use]
    pub fn by_location(&self, name: &str) -> BTreeMap<u32, u64> {
        self.marginal(name, |k| k.loc)
    }

    fn filtered(&self, name: &str, pred: impl Fn(&CounterKey) -> bool) -> u64 {
        self.cells
            .iter()
            .filter(|(k, _)| k.name == name && pred(k))
            .map(|(_, v)| v)
            .sum()
    }

    fn marginal<D: Ord>(
        &self,
        name: &str,
        dim: impl Fn(&CounterKey) -> Option<D>,
    ) -> BTreeMap<D, u64> {
        let mut out = BTreeMap::new();
        for (k, v) in &self.cells {
            if k.name == name {
                if let Some(d) = dim(k) {
                    *out.entry(d).or_default() += v;
                }
            }
        }
        out
    }

    /// Canonical JSON: `schema` tag plus one object per counter with its
    /// total and the non-empty marginal breakdowns. Stable key order
    /// (BTreeMap everywhere), 2-space indentation, no timestamps —
    /// byte-identical across runs and thread counts.
    #[must_use]
    pub fn to_json(&self) -> String {
        fn map_block<K: std::fmt::Display>(
            out: &mut String,
            label: &str,
            m: &BTreeMap<K, u64>,
            trailing: bool,
        ) {
            if m.is_empty() {
                return;
            }
            let _ = write!(out, ",\n      \"{label}\": {{");
            for (i, (k, v)) in m.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}\n        \"{k}\": {v}");
            }
            out.push_str("\n      }");
            let _ = trailing;
        }

        let mut out = String::from("{\n  \"schema\": \"shm-obs/metrics/v1\",\n  \"counters\": {");
        let names = self.names();
        for (i, name) in names.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\n      \"total\": {}",
                json_escape(name),
                self.total(name)
            );
            map_block(&mut out, "by_scope", &self.by_scope(name), false);
            map_block(&mut out, "by_model", &self.by_model(name), false);
            map_block(&mut out, "by_process", &self.by_process(name), false);
            map_block(&mut out, "by_location", &self.by_location(name), false);
            out.push_str("\n    }");
        }
        if names.is_empty() {
            out.push_str("},\n");
        } else {
            out.push_str("\n  },\n");
        }
        let _ = write!(out, "  \"counter_count\": {}\n}}\n", self.cells.len());
        out
    }
}

/// JSONL event stream: one line per span boundary or counter cell, tracks
/// in canonical order, stable field order. Without `wall`, lanes,
/// timestamps, and nondeterministic counters are omitted so the stream is
/// byte-deterministic across runs and thread counts; with `wall`,
/// `t_ns`/`lane` fields and the scheduling-dependent counters appear.
#[must_use]
pub fn jsonl(snap: &Snapshot, wall: bool) -> String {
    fn path_json(path: &[u32]) -> String {
        let parts: Vec<String> = path.iter().map(u32::to_string).collect();
        format!("[{}]", parts.join(","))
    }

    let mut out = String::new();
    for (path, data) in &snap.tracks {
        let track = path_json(path);
        for ev in &data.spans {
            let ty = if ev.begin { "span_begin" } else { "span_end" };
            let _ = write!(
                out,
                "{{\"type\":\"{ty}\",\"track\":{track},\"name\":\"{}\"",
                json_escape(ev.name)
            );
            if wall {
                let _ = write!(out, ",\"lane\":{},\"t_ns\":{}", ev.lane, ev.t_ns);
            }
            out.push_str("}\n");
        }
        for (key, value) in &data.counters {
            if !wall && !registry::is_deterministic(key.name) {
                continue;
            }
            let _ = write!(
                out,
                "{{\"type\":\"counter\",\"track\":{track},\"name\":\"{}\"",
                json_escape(key.name)
            );
            if let Some(s) = key.scope {
                let _ = write!(out, ",\"scope\":\"{}\"", json_escape(s));
            }
            if let Some(m) = key.model {
                let _ = write!(out, ",\"model\":\"{}\"", json_escape(m));
            }
            if let Some(p) = key.pid {
                let _ = write!(out, ",\"pid\":{p}");
            }
            if let Some(l) = key.loc {
                let _ = write!(out, ",\"loc\":{l}");
            }
            let _ = writeln!(out, ",\"value\":{value}}}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanEvent, TrackData};

    fn sample() -> Snapshot {
        let mut t0 = TrackData::default();
        t0.spans.push(SpanEvent {
            name: "phase",
            begin: true,
            lane: 0,
            t_ns: 10,
        });
        t0.spans.push(SpanEvent {
            name: "phase",
            begin: false,
            lane: 0,
            t_ns: 90,
        });
        t0.counters.insert(
            CounterKey {
                scope: Some("part1"),
                model: Some("dsm"),
                pid: Some(3),
                loc: Some(1),
                ..CounterKey::plain("sim.rmr")
            },
            7,
        );
        t0.counters.insert(
            CounterKey {
                scope: Some("chase"),
                model: Some("dsm"),
                pid: Some(0),
                loc: Some(1),
                ..CounterKey::plain("sim.rmr")
            },
            5,
        );
        t0.counters.insert(CounterKey::plain("pool.steal"), 99); // nondeterministic
        Snapshot {
            tracks: vec![(vec![0], t0)],
        }
    }

    #[test]
    fn report_marginals_aggregate_correctly() {
        let r = MetricsReport::from_snapshot(&sample());
        assert_eq!(r.total("sim.rmr"), 12);
        assert_eq!(r.scoped("sim.rmr", "part1"), 7);
        assert_eq!(r.scoped("sim.rmr", "chase"), 5);
        assert_eq!(r.by_model("sim.rmr").get("dsm"), Some(&12));
        assert_eq!(r.by_process("sim.rmr").get(&3), Some(&7));
        assert_eq!(r.by_location("sim.rmr").get(&1), Some(&12));
        assert_eq!(r.total("pool.steal"), 0, "nondeterministic excluded");
    }

    #[test]
    fn json_is_stable_and_excludes_nondeterministic() {
        let r = MetricsReport::from_snapshot(&sample());
        let a = r.to_json();
        let b = MetricsReport::from_snapshot(&sample()).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"shm-obs/metrics/v1\""));
        assert!(a.contains("\"sim.rmr\""));
        assert!(a.contains("\"by_scope\""));
        assert!(!a.contains("pool.steal"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn jsonl_hides_wall_fields_unless_requested() {
        let snap = sample();
        let plain = jsonl(&snap, false);
        assert!(plain.contains("\"type\":\"span_begin\""));
        assert!(!plain.contains("t_ns"));
        assert!(!plain.contains("pool.steal"));
        let wall = jsonl(&snap, true);
        assert!(wall.contains("\"t_ns\":10"));
        assert!(wall.contains("\"lane\":0"));
        assert!(wall.contains("pool.steal"));
        // Every line parses as a braced object with stable leading field.
        for line in plain.lines() {
            assert!(line.starts_with("{\"type\":\""));
            assert!(line.ends_with('}'));
        }
    }
}
