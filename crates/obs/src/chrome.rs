//! Chrome `trace_event` / Perfetto exporter: phase timelines with one lane
//! (tid) per pool worker.
//!
//! Load the output at `chrome://tracing` or <https://ui.perfetto.dev>. The
//! format is the JSON Array Format of the Trace Event spec: `B`/`E`
//! duration events with microsecond timestamps, plus `thread_name`
//! metadata events naming lane 0 `main` and lane *w* `worker-w`. This sink
//! is intentionally wall-clock based and therefore *not* deterministic —
//! the deterministic sinks are `MetricsReport` and the JSONL stream.

use crate::Snapshot;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Renders `snap` as a Trace Event JSON document.
#[must_use]
pub fn chrome_trace(snap: &Snapshot) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }

    // (t_ns, lane, begin, name, track) — sorted so begins/ends nest sanely
    // for the viewer even though tracks are captured independently.
    let mut events: Vec<(u64, u32, bool, &'static str, String)> = Vec::new();
    let mut lanes: BTreeSet<u32> = BTreeSet::new();
    for (path, data) in &snap.tracks {
        let track: Vec<String> = path.iter().map(u32::to_string).collect();
        let track = track.join(".");
        for ev in &data.spans {
            lanes.insert(ev.lane);
            events.push((ev.t_ns, ev.lane, ev.begin, ev.name, track.clone()));
        }
    }
    events.sort_by(|a, b| (a.0, a.1, !a.2, a.3).cmp(&(b.0, b.1, !b.2, b.3)));

    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for lane in &lanes {
        let name = if *lane == 0 {
            "main".to_string()
        } else {
            format!("worker-{lane}")
        };
        let sep = if first { "" } else { "," };
        first = false;
        let _ = write!(
            out,
            "{sep}\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    for (t_ns, lane, begin, name, track) in &events {
        let ph = if *begin { "B" } else { "E" };
        let us_whole = t_ns / 1_000;
        let us_frac = t_ns % 1_000;
        let sep = if first { "" } else { "," };
        first = false;
        let _ = write!(
            out,
            "{sep}\n{{\"name\":\"{}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{lane},\
             \"ts\":{us_whole}.{us_frac:03},\"args\":{{\"track\":\"{}\"}}}}",
            esc(name),
            esc(track)
        );
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanEvent, TrackData};

    #[test]
    fn emits_metadata_and_nested_duration_events() {
        let mut t = TrackData::default();
        t.spans.push(SpanEvent {
            name: "round",
            begin: true,
            lane: 2,
            t_ns: 1_500,
        });
        t.spans.push(SpanEvent {
            name: "round",
            begin: false,
            lane: 2,
            t_ns: 4_000,
        });
        let snap = Snapshot {
            tracks: vec![(vec![1], t)],
        };
        let json = chrome_trace(&snap);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"worker-2\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ts\":4.000"));
        assert!(json.contains("\"track\":\"1\""));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn empty_snapshot_is_valid_document() {
        let json = chrome_trace(&Snapshot::default());
        assert_eq!(json, "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
    }
}
