//! Shared memory: allocation layout and the cell array with atomic semantics.
//!
//! The DSM model (§1–2 of the paper) partitions memory into modules tied to
//! processors; every cell therefore carries an optional *owner*. Ownership is
//! what makes an access remote in the DSM cost model; in the CC cost model it
//! is ignored.

use crate::ids::{Addr, AddrRange, ProcId, Word};
use crate::op::{Applied, Op};

/// Specification of one cell at initialization time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct CellSpec {
    init: Word,
    owner: Option<ProcId>,
}

/// A reusable allocation plan for shared memory.
///
/// Algorithms allocate their variables through a `MemLayout` once; the
/// simulator instantiates a fresh [`Memory`] from the layout for every run
/// and replay, which is what makes history replay (and hence the
/// lower-bound adversary's *erasing* strategy) deterministic.
///
/// # Examples
///
/// ```
/// use shm_sim::{MemLayout, ProcId};
///
/// let mut layout = MemLayout::new();
/// let flag = layout.alloc_global(0);
/// let mine = layout.alloc_local(ProcId(3), 7);
/// assert_eq!(layout.owner(flag), None);
/// assert_eq!(layout.owner(mine), Some(ProcId(3)));
/// ```
#[derive(Clone, Default, Debug)]
pub struct MemLayout {
    cells: Vec<CellSpec>,
    labels: crate::history_label::Labels,
}

impl MemLayout {
    /// Creates an empty layout.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a cell in no process's module (meaningful only in the CC
    /// model, where all memory is symmetric; in the DSM model a global cell
    /// is remote to *every* process).
    pub fn alloc_global(&mut self, init: Word) -> Addr {
        self.push(CellSpec { init, owner: None })
    }

    /// Allocates a cell in `owner`'s memory module.
    pub fn alloc_local(&mut self, owner: ProcId, init: Word) -> Addr {
        self.push(CellSpec {
            init,
            owner: Some(owner),
        })
    }

    /// Allocates a contiguous array of global cells.
    pub fn alloc_global_array(&mut self, len: usize, init: Word) -> AddrRange {
        let start = self.cells.len() as u32;
        for _ in 0..len {
            self.cells.push(CellSpec { init, owner: None });
        }
        AddrRange {
            start,
            len: len as u32,
        }
    }

    /// Allocates a contiguous array of cells all local to `owner`'s module
    /// (e.g. registration flags hosted by a fixed signaler so it can spin on
    /// them locally in the DSM model).
    pub fn alloc_local_array(&mut self, owner: ProcId, len: usize, init: Word) -> AddrRange {
        let start = self.cells.len() as u32;
        for _ in 0..len {
            self.cells.push(CellSpec {
                init,
                owner: Some(owner),
            });
        }
        AddrRange {
            start,
            len: len as u32,
        }
    }

    /// Allocates an array with one cell per process, element `i` local to
    /// process `ProcId(i)`. This is the paper's recurring `V[1..N]` pattern
    /// ("V\[i\] is local to process p_i").
    pub fn alloc_per_process_array(&mut self, n: usize, init: Word) -> AddrRange {
        let start = self.cells.len() as u32;
        for i in 0..n {
            self.cells.push(CellSpec {
                init,
                owner: Some(ProcId(i as u32)),
            });
        }
        AddrRange {
            start,
            len: n as u32,
        }
    }

    fn push(&mut self, spec: CellSpec) -> Addr {
        let a = Addr(self.cells.len() as u32);
        self.cells.push(spec);
        a
    }

    /// Number of allocated cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells have been allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The module owner of `addr` (`None` = global).
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not allocated by this layout.
    #[must_use]
    pub fn owner(&self, addr: Addr) -> Option<ProcId> {
        self.cells[addr.index()].owner
    }

    /// The initial value of `addr`.
    #[must_use]
    pub fn initial_value(&self, addr: Addr) -> Word {
        self.cells[addr.index()].init
    }

    /// Attaches a display name to a cell for trace rendering
    /// (see [`crate::trace`]).
    pub fn set_label(&mut self, addr: Addr, name: impl Into<String>) {
        self.labels.insert(addr, name.into());
    }

    /// Labels array elements as `name[0]`, `name[1]`, ….
    pub fn set_array_label(&mut self, range: AddrRange, name: &str) {
        for (i, addr) in range.iter().enumerate() {
            self.labels.insert(addr, format!("{name}[{i}]"));
        }
    }

    /// The label registry (cloned; cheap for the handful of labelled cells).
    #[must_use]
    pub fn labels(&self) -> crate::history_label::Labels {
        self.labels.clone()
    }
}

/// Runtime state of one memory cell.
#[derive(Clone, Debug)]
struct Cell {
    value: Word,
    owner: Option<ProcId>,
    /// Last process that performed a nontrivial operation on the cell.
    last_writer: Option<ProcId>,
    /// Distinct processes that have performed nontrivial operations
    /// (needed for regularity condition 3 of Definition 6.6). Kept sorted
    /// and deduplicated; in practice tiny.
    writers: Vec<ProcId>,
    /// Processes holding an unbroken LL reservation on this cell.
    reservations: Vec<ProcId>,
}

/// The flat cell array with atomic-operation semantics.
///
/// `Memory` implements *functional* semantics only; cost accounting (RMRs,
/// cache state, messages) lives in [`crate::model`]. This separation lets the
/// same execution be priced under both the CC and DSM models.
#[derive(Clone, Debug)]
pub struct Memory {
    cells: Vec<Cell>,
}

impl Memory {
    /// Instantiates memory in the initial state described by `layout`.
    #[must_use]
    pub fn from_layout(layout: &MemLayout) -> Self {
        Memory {
            cells: layout
                .cells
                .iter()
                .map(|spec| Cell {
                    value: spec.init,
                    owner: spec.owner,
                    last_writer: None,
                    writers: Vec::new(),
                    reservations: Vec::new(),
                })
                .collect(),
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memory has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Current value of `addr` (inspection only; does not count as a step).
    #[must_use]
    pub fn peek(&self, addr: Addr) -> Word {
        self.cells[addr.index()].value
    }

    /// Module owner of `addr`.
    #[must_use]
    pub fn owner(&self, addr: Addr) -> Option<ProcId> {
        self.cells[addr.index()].owner
    }

    /// Last process that performed a nontrivial operation on `addr`.
    #[must_use]
    pub fn last_writer(&self, addr: Addr) -> Option<ProcId> {
        self.cells[addr.index()].last_writer
    }

    /// Distinct processes that have performed nontrivial operations on `addr`.
    #[must_use]
    pub fn writers(&self, addr: Addr) -> &[ProcId] {
        &self.cells[addr.index()].writers
    }

    /// Processes currently holding an LL reservation on `addr`. The audit
    /// layer seeds and boundary-checks its naive shadow cells with these.
    pub(crate) fn reservations(&self, addr: Addr) -> &[ProcId] {
        &self.cells[addr.index()].reservations
    }

    /// Drops the LL reservations of the processes marked in `gone` (indexed
    /// by pid) from every cell. Used when erasing processes in place: an
    /// erased process's reservation is observable only by its own SC, but
    /// the filtered memory image should not carry state of processes that
    /// "never ran".
    pub(crate) fn purge_reservations(&mut self, gone: &[bool]) {
        for cell in &mut self.cells {
            cell.reservations
                .retain(|p| !gone.get(p.index()).copied().unwrap_or(false));
        }
    }

    /// Atomically applies `op` on behalf of `pid`.
    ///
    /// Returns the result word plus the trivial/nontrivial classification the
    /// cost models and the history log need.
    ///
    /// # Panics
    ///
    /// Panics if the operation addresses an unallocated cell.
    pub fn apply(&mut self, pid: ProcId, op: Op) -> Applied {
        let cell = &mut self.cells[op.addr().index()];
        match op {
            Op::Read(_) => Applied {
                result: cell.value,
                nontrivial: false,
                failed_comparison: false,
            },
            Op::Ll(_) => {
                if !cell.reservations.contains(&pid) {
                    cell.reservations.push(pid);
                }
                Applied {
                    result: cell.value,
                    nontrivial: false,
                    failed_comparison: false,
                }
            }
            Op::Write(_, w) => {
                cell.overwrite(pid, w);
                Applied {
                    result: w,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
            Op::Cas(_, expected, new) => {
                let old = cell.value;
                if old == expected {
                    cell.overwrite(pid, new);
                    Applied {
                        result: old,
                        nontrivial: true,
                        failed_comparison: false,
                    }
                } else {
                    Applied {
                        result: old,
                        nontrivial: false,
                        failed_comparison: true,
                    }
                }
            }
            Op::Sc(_, w) => {
                if cell.reservations.contains(&pid) {
                    cell.overwrite(pid, w);
                    Applied {
                        result: 1,
                        nontrivial: true,
                        failed_comparison: false,
                    }
                } else {
                    Applied {
                        result: 0,
                        nontrivial: false,
                        failed_comparison: true,
                    }
                }
            }
            Op::Faa(_, d) => {
                let old = cell.value;
                cell.overwrite(pid, old.wrapping_add(d));
                Applied {
                    result: old,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
            Op::Fas(_, w) => {
                let old = cell.value;
                cell.overwrite(pid, w);
                Applied {
                    result: old,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
            Op::Tas(_) => {
                let old = cell.value;
                cell.overwrite(pid, 1);
                Applied {
                    result: old,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
        }
    }
}

impl Cell {
    /// Performs a nontrivial update: sets the value, records the writer, and
    /// breaks all LL reservations (including the writer's own, per the usual
    /// LL/SC semantics where SC consumes the reservation).
    fn overwrite(&mut self, pid: ProcId, value: Word) {
        self.value = value;
        self.last_writer = Some(pid);
        if let Err(pos) = self.writers.binary_search(&pid) {
            self.writers.insert(pos, pid);
        }
        self.reservations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cell_memory() -> (Memory, Addr, Addr) {
        let mut layout = MemLayout::new();
        let a = layout.alloc_global(5);
        let b = layout.alloc_local(ProcId(1), 0);
        (Memory::from_layout(&layout), a, b)
    }

    #[test]
    fn read_and_write() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        assert_eq!(m.apply(p, Op::Read(a)).result, 5);
        let w = m.apply(p, Op::Write(a, 9));
        assert!(w.nontrivial);
        assert_eq!(m.peek(a), 9);
        assert_eq!(m.last_writer(a), Some(p));
    }

    #[test]
    fn write_of_same_value_is_nontrivial() {
        // The paper: "A nontrivial operation overwrites a memory location,
        // possibly with the same value as before."
        let (mut m, a, _) = two_cell_memory();
        let applied = m.apply(ProcId(0), Op::Write(a, 5));
        assert!(applied.nontrivial);
    }

    #[test]
    fn cas_success_and_failure() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(2);
        let ok = m.apply(p, Op::Cas(a, 5, 6));
        assert_eq!(ok.result, 5);
        assert!(ok.nontrivial && !ok.failed_comparison);
        let fail = m.apply(p, Op::Cas(a, 5, 7));
        assert_eq!(fail.result, 6);
        assert!(!fail.nontrivial && fail.failed_comparison);
        assert_eq!(m.peek(a), 6);
    }

    #[test]
    fn ll_sc_basic_success() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        assert_eq!(m.apply(p, Op::Ll(a)).result, 5);
        let sc = m.apply(p, Op::Sc(a, 8));
        assert_eq!(sc.result, 1);
        assert!(sc.nontrivial);
        assert_eq!(m.peek(a), 8);
    }

    #[test]
    fn sc_fails_after_intervening_write() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        let q = ProcId(1);
        m.apply(p, Op::Ll(a));
        m.apply(q, Op::Write(a, 6));
        let sc = m.apply(p, Op::Sc(a, 8));
        assert_eq!(sc.result, 0);
        assert!(sc.failed_comparison);
        assert_eq!(m.peek(a), 6);
    }

    #[test]
    fn sc_fails_even_if_value_restored_aba() {
        // LL/SC is immune to ABA: reservation is broken by *any* nontrivial op.
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        let q = ProcId(1);
        m.apply(p, Op::Ll(a));
        m.apply(q, Op::Write(a, 6));
        m.apply(q, Op::Write(a, 5)); // restore original value
        assert_eq!(m.apply(p, Op::Sc(a, 8)).result, 0);
    }

    #[test]
    fn sc_without_ll_fails() {
        let (mut m, a, _) = two_cell_memory();
        assert_eq!(m.apply(ProcId(0), Op::Sc(a, 3)).result, 0);
    }

    #[test]
    fn sc_consumes_reservation() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        m.apply(p, Op::Ll(a));
        assert_eq!(m.apply(p, Op::Sc(a, 8)).result, 1);
        assert_eq!(m.apply(p, Op::Sc(a, 9)).result, 0, "second SC must fail");
    }

    #[test]
    fn faa_wraps_and_returns_old() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        assert_eq!(m.apply(p, Op::Faa(a, 2)).result, 5);
        assert_eq!(m.peek(a), 7);
        m.apply(p, Op::Write(a, u64::MAX));
        assert_eq!(m.apply(p, Op::Faa(a, 1)).result, u64::MAX);
        assert_eq!(m.peek(a), 0, "FAA wraps");
    }

    #[test]
    fn fas_and_tas() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        assert_eq!(m.apply(p, Op::Fas(a, 11)).result, 5);
        assert_eq!(m.peek(a), 11);
        m.apply(p, Op::Write(a, 0));
        assert_eq!(m.apply(p, Op::Tas(a)).result, 0);
        assert_eq!(m.apply(p, Op::Tas(a)).result, 1);
        assert_eq!(m.peek(a), 1);
    }

    #[test]
    fn writer_tracking_is_deduplicated() {
        let (mut m, a, _) = two_cell_memory();
        m.apply(ProcId(2), Op::Write(a, 1));
        m.apply(ProcId(0), Op::Write(a, 2));
        m.apply(ProcId(2), Op::Write(a, 3));
        assert_eq!(m.writers(a), &[ProcId(0), ProcId(2)]);
        assert_eq!(m.last_writer(a), Some(ProcId(2)));
    }

    #[test]
    fn failed_cas_does_not_record_writer() {
        let (mut m, a, _) = two_cell_memory();
        m.apply(ProcId(0), Op::Cas(a, 99, 1));
        assert!(m.writers(a).is_empty());
        assert_eq!(m.last_writer(a), None);
    }

    #[test]
    fn per_process_array_ownership() {
        let mut layout = MemLayout::new();
        let v = layout.alloc_per_process_array(4, 0);
        for i in 0..4 {
            assert_eq!(layout.owner(v.at(i)), Some(ProcId(i as u32)));
        }
        let g = layout.alloc_global_array(2, 3);
        assert_eq!(layout.owner(g.at(1)), None);
        assert_eq!(layout.initial_value(g.at(0)), 3);
    }
}
