//! Shared memory: allocation layout and the cell array with atomic semantics.
//!
//! The DSM model (§1–2 of the paper) partitions memory into modules tied to
//! processors; every cell therefore carries an optional *owner*. Ownership is
//! what makes an access remote in the DSM cost model; in the CC cost model it
//! is ignored.

use crate::ids::{Addr, AddrRange, ProcId, Word};
use crate::op::{Applied, Op};

/// Specification of one cell at initialization time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct CellSpec {
    init: Word,
    owner: Option<ProcId>,
}

/// A reusable allocation plan for shared memory.
///
/// Algorithms allocate their variables through a `MemLayout` once; the
/// simulator instantiates a fresh [`Memory`] from the layout for every run
/// and replay, which is what makes history replay (and hence the
/// lower-bound adversary's *erasing* strategy) deterministic.
///
/// # Examples
///
/// ```
/// use shm_sim::{MemLayout, ProcId};
///
/// let mut layout = MemLayout::new();
/// let flag = layout.alloc_global(0);
/// let mine = layout.alloc_local(ProcId(3), 7);
/// assert_eq!(layout.owner(flag), None);
/// assert_eq!(layout.owner(mine), Some(ProcId(3)));
/// ```
#[derive(Clone, Default, Debug)]
pub struct MemLayout {
    cells: Vec<CellSpec>,
    labels: crate::history_label::Labels,
}

impl MemLayout {
    /// Creates an empty layout.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a cell in no process's module (meaningful only in the CC
    /// model, where all memory is symmetric; in the DSM model a global cell
    /// is remote to *every* process).
    pub fn alloc_global(&mut self, init: Word) -> Addr {
        self.push(CellSpec { init, owner: None })
    }

    /// Allocates a cell in `owner`'s memory module.
    pub fn alloc_local(&mut self, owner: ProcId, init: Word) -> Addr {
        self.push(CellSpec {
            init,
            owner: Some(owner),
        })
    }

    /// Allocates a contiguous array of global cells.
    pub fn alloc_global_array(&mut self, len: usize, init: Word) -> AddrRange {
        let start = self.cells.len() as u32;
        for _ in 0..len {
            self.cells.push(CellSpec { init, owner: None });
        }
        AddrRange {
            start,
            len: len as u32,
        }
    }

    /// Allocates a contiguous array of cells all local to `owner`'s module
    /// (e.g. registration flags hosted by a fixed signaler so it can spin on
    /// them locally in the DSM model).
    pub fn alloc_local_array(&mut self, owner: ProcId, len: usize, init: Word) -> AddrRange {
        let start = self.cells.len() as u32;
        for _ in 0..len {
            self.cells.push(CellSpec {
                init,
                owner: Some(owner),
            });
        }
        AddrRange {
            start,
            len: len as u32,
        }
    }

    /// Allocates an array with one cell per process, element `i` local to
    /// process `ProcId(i)`. This is the paper's recurring `V[1..N]` pattern
    /// ("V\[i\] is local to process p_i").
    pub fn alloc_per_process_array(&mut self, n: usize, init: Word) -> AddrRange {
        let start = self.cells.len() as u32;
        for i in 0..n {
            self.cells.push(CellSpec {
                init,
                owner: Some(ProcId(i as u32)),
            });
        }
        AddrRange {
            start,
            len: n as u32,
        }
    }

    fn push(&mut self, spec: CellSpec) -> Addr {
        let a = Addr(self.cells.len() as u32);
        self.cells.push(spec);
        a
    }

    /// Number of allocated cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells have been allocated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The module owner of `addr` (`None` = global).
    ///
    /// # Panics
    ///
    /// Panics if `addr` was not allocated by this layout.
    #[must_use]
    pub fn owner(&self, addr: Addr) -> Option<ProcId> {
        self.cells[addr.index()].owner
    }

    /// The initial value of `addr`.
    #[must_use]
    pub fn initial_value(&self, addr: Addr) -> Word {
        self.cells[addr.index()].init
    }

    /// Attaches a display name to a cell for trace rendering
    /// (see [`crate::trace`]).
    pub fn set_label(&mut self, addr: Addr, name: impl Into<String>) {
        self.labels.insert(addr, name.into());
    }

    /// Labels array elements as `name[0]`, `name[1]`, ….
    pub fn set_array_label(&mut self, range: AddrRange, name: &str) {
        for (i, addr) in range.iter().enumerate() {
            self.labels.insert(addr, format!("{name}[{i}]"));
        }
    }

    /// The label registry (borrowed; clone it only if it must outlive the
    /// layout — replay loops reuse one layout and should not copy label
    /// maps per run).
    #[must_use]
    pub fn labels(&self) -> &crate::history_label::Labels {
        &self.labels
    }
}

/// A dense `(cell, pid)` bit table: one fixed-width stripe of `u64` words
/// per cell, indexed `cell * stride + pid/64`.
///
/// This is the structure-of-arrays replacement for the per-cell
/// `Vec<ProcId>` writer/reservation lists: membership tests and inserts on
/// the step path are a shift and a mask with no heap traffic, clearing a
/// cell's set (every nontrivial op breaks all LL reservations) is a short
/// word fill, and cloning the whole table — which the explorer does for
/// every snapshot — is one flat memcpy.
///
/// The stride starts at one word (pids 0..64, every current workload) and
/// regrows on demand the first time a larger pid appears: [`MemLayout`]
/// does not know the process count, so the table restrides dynamically
/// instead of being sized up front.
#[derive(Clone, Debug, Default)]
struct PidTable {
    cells: usize,
    /// `u64` words per cell; pids `0..stride*64` are representable.
    stride: usize,
    bits: Vec<u64>,
}

impl PidTable {
    fn new(cells: usize) -> Self {
        PidTable {
            cells,
            stride: 1,
            bits: vec![0; cells],
        }
    }

    /// Copies `src`'s contents into `self`, reusing the bit buffer.
    fn copy_from(&mut self, src: &PidTable) {
        self.cells = src.cells;
        self.stride = src.stride;
        self.bits.clone_from(&src.bits);
    }

    #[inline]
    fn contains(&self, cell: usize, pid: ProcId) -> bool {
        let w = (pid.0 / 64) as usize;
        w < self.stride && (self.bits[cell * self.stride + w] >> (pid.0 % 64)) & 1 == 1
    }

    #[inline]
    fn insert(&mut self, cell: usize, pid: ProcId) {
        let w = (pid.0 / 64) as usize;
        if w >= self.stride {
            self.restride(w + 1);
        }
        self.bits[cell * self.stride + w] |= 1 << (pid.0 % 64);
    }

    /// Cold path: widen every cell's stripe to `stride` words.
    fn restride(&mut self, stride: usize) {
        let mut bits = vec![0u64; self.cells * stride];
        for c in 0..self.cells {
            bits[c * stride..c * stride + self.stride]
                .copy_from_slice(&self.bits[c * self.stride..(c + 1) * self.stride]);
        }
        self.stride = stride;
        self.bits = bits;
    }

    #[inline]
    fn clear_cell(&mut self, cell: usize) {
        self.bits[cell * self.stride..(cell + 1) * self.stride].fill(0);
    }

    /// Members of `cell`'s set in ascending pid order.
    fn iter_cell(&self, cell: usize) -> impl Iterator<Item = ProcId> + '_ {
        let stripe = &self.bits[cell * self.stride..(cell + 1) * self.stride];
        stripe.iter().enumerate().flat_map(|(w, &word)| {
            let base = w as u32 * 64;
            BitIter(word).map(move |b| ProcId(base + b))
        })
    }

    /// Removes every pid marked in `gone` (indexed by pid) from every cell.
    fn remove_marked(&mut self, gone: &[bool]) {
        let mut mask = vec![!0u64; self.stride];
        for (pid, &g) in gone.iter().enumerate() {
            if g && pid / 64 < self.stride {
                mask[pid / 64] &= !(1u64 << (pid % 64));
            }
        }
        for (i, word) in self.bits.iter_mut().enumerate() {
            *word &= mask[i % self.stride];
        }
    }
}

/// Iterator over the set bit positions of one `u64`.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = u32;
    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros();
        self.0 &= self.0 - 1;
        Some(b)
    }
}

/// Sentinel in the dense owner / last-writer columns: no process.
const NO_PROC: u32 = u32::MAX;

/// The flat cell array with atomic-operation semantics.
///
/// `Memory` implements *functional* semantics only; cost accounting (RMRs,
/// cache state, messages) lives in [`crate::model`]. This separation lets the
/// same execution be priced under both the CC and DSM models.
///
/// The representation is structure-of-arrays: parallel dense columns
/// indexed by [`Addr`] (values, owners, last writers) plus one
/// [`PidTable`] each for the writer sets and the live LL reservations.
/// A step touches a handful of adjacent flat slots instead of a 100-byte
/// `Cell` struct with two heap vectors, and cloning — the unit of work of
/// checkpoints and explorer snapshots — is a few flat memcpys with no
/// per-cell allocations.
#[derive(Clone, Debug)]
pub struct Memory {
    values: Vec<Word>,
    /// Module owner per cell (`NO_PROC` = global).
    owners: Vec<u32>,
    /// Last process that performed a nontrivial operation per cell
    /// (`NO_PROC` = none yet).
    last_writer: Vec<u32>,
    /// Distinct processes that have performed nontrivial operations
    /// (needed for regularity condition 3 of Definition 6.6).
    writers: PidTable,
    /// Processes holding an unbroken LL reservation per cell.
    reservations: PidTable,
}

impl Memory {
    /// Instantiates memory in the initial state described by `layout`.
    #[must_use]
    pub fn from_layout(layout: &MemLayout) -> Self {
        let cells = layout.cells.len();
        Memory {
            values: layout.cells.iter().map(|spec| spec.init).collect(),
            owners: layout
                .cells
                .iter()
                .map(|spec| spec.owner.map_or(NO_PROC, |p| p.0))
                .collect(),
            last_writer: vec![NO_PROC; cells],
            writers: PidTable::new(cells),
            reservations: PidTable::new(cells),
        }
    }

    /// Copies `src`'s state into `self`, reusing every table's allocation —
    /// the checkpoint-restore hot path rolls memory back without touching
    /// the allocator.
    pub(crate) fn copy_from(&mut self, src: &Memory) {
        self.values.clone_from(&src.values);
        self.owners.clone_from(&src.owners);
        self.last_writer.clone_from(&src.last_writer);
        self.writers.copy_from(&src.writers);
        self.reservations.copy_from(&src.reservations);
    }

    /// Number of cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the memory has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Current value of `addr` (inspection only; does not count as a step).
    #[must_use]
    pub fn peek(&self, addr: Addr) -> Word {
        self.values[addr.index()]
    }

    /// Module owner of `addr`.
    #[must_use]
    pub fn owner(&self, addr: Addr) -> Option<ProcId> {
        match self.owners[addr.index()] {
            NO_PROC => None,
            p => Some(ProcId(p)),
        }
    }

    /// Last process that performed a nontrivial operation on `addr`.
    #[must_use]
    pub fn last_writer(&self, addr: Addr) -> Option<ProcId> {
        match self.last_writer[addr.index()] {
            NO_PROC => None,
            p => Some(ProcId(p)),
        }
    }

    /// Distinct processes that have performed nontrivial operations on
    /// `addr`, in ascending pid order.
    pub fn writers(&self, addr: Addr) -> impl Iterator<Item = ProcId> + '_ {
        self.writers.iter_cell(addr.index())
    }

    /// Processes currently holding an LL reservation on `addr` (ascending
    /// pid order). The audit layer seeds and boundary-checks its naive
    /// shadow cells with these.
    pub(crate) fn reservations(&self, addr: Addr) -> impl Iterator<Item = ProcId> + '_ {
        self.reservations.iter_cell(addr.index())
    }

    /// Drops the LL reservations of the processes marked in `gone` (indexed
    /// by pid) from every cell. Used when erasing processes in place: an
    /// erased process's reservation is observable only by its own SC, but
    /// the filtered memory image should not carry state of processes that
    /// "never ran".
    pub(crate) fn purge_reservations(&mut self, gone: &[bool]) {
        self.reservations.remove_marked(gone);
    }

    /// Performs a nontrivial update: sets the value, records the writer, and
    /// breaks all LL reservations (including the writer's own, per the usual
    /// LL/SC semantics where SC consumes the reservation).
    #[inline]
    fn overwrite(&mut self, cell: usize, pid: ProcId, value: Word) {
        self.values[cell] = value;
        self.last_writer[cell] = pid.0;
        self.writers.insert(cell, pid);
        self.reservations.clear_cell(cell);
    }

    /// Atomically applies `op` on behalf of `pid`.
    ///
    /// Returns the result word plus the trivial/nontrivial classification the
    /// cost models and the history log need.
    ///
    /// # Panics
    ///
    /// Panics if the operation addresses an unallocated cell.
    pub fn apply(&mut self, pid: ProcId, op: Op) -> Applied {
        let cell = op.addr().index();
        match op {
            Op::Read(_) => Applied {
                result: self.values[cell],
                nontrivial: false,
                failed_comparison: false,
            },
            Op::Ll(_) => {
                self.reservations.insert(cell, pid);
                Applied {
                    result: self.values[cell],
                    nontrivial: false,
                    failed_comparison: false,
                }
            }
            Op::Write(_, w) => {
                self.overwrite(cell, pid, w);
                Applied {
                    result: w,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
            Op::Cas(_, expected, new) => {
                let old = self.values[cell];
                if old == expected {
                    self.overwrite(cell, pid, new);
                    Applied {
                        result: old,
                        nontrivial: true,
                        failed_comparison: false,
                    }
                } else {
                    Applied {
                        result: old,
                        nontrivial: false,
                        failed_comparison: true,
                    }
                }
            }
            Op::Sc(_, w) => {
                if self.reservations.contains(cell, pid) {
                    self.overwrite(cell, pid, w);
                    Applied {
                        result: 1,
                        nontrivial: true,
                        failed_comparison: false,
                    }
                } else {
                    Applied {
                        result: 0,
                        nontrivial: false,
                        failed_comparison: true,
                    }
                }
            }
            Op::Faa(_, d) => {
                let old = self.values[cell];
                self.overwrite(cell, pid, old.wrapping_add(d));
                Applied {
                    result: old,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
            Op::Fas(_, w) => {
                let old = self.values[cell];
                self.overwrite(cell, pid, w);
                Applied {
                    result: old,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
            Op::Tas(_) => {
                let old = self.values[cell];
                self.overwrite(cell, pid, 1);
                Applied {
                    result: old,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cell_memory() -> (Memory, Addr, Addr) {
        let mut layout = MemLayout::new();
        let a = layout.alloc_global(5);
        let b = layout.alloc_local(ProcId(1), 0);
        (Memory::from_layout(&layout), a, b)
    }

    #[test]
    fn read_and_write() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        assert_eq!(m.apply(p, Op::Read(a)).result, 5);
        let w = m.apply(p, Op::Write(a, 9));
        assert!(w.nontrivial);
        assert_eq!(m.peek(a), 9);
        assert_eq!(m.last_writer(a), Some(p));
    }

    #[test]
    fn write_of_same_value_is_nontrivial() {
        // The paper: "A nontrivial operation overwrites a memory location,
        // possibly with the same value as before."
        let (mut m, a, _) = two_cell_memory();
        let applied = m.apply(ProcId(0), Op::Write(a, 5));
        assert!(applied.nontrivial);
    }

    #[test]
    fn cas_success_and_failure() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(2);
        let ok = m.apply(p, Op::Cas(a, 5, 6));
        assert_eq!(ok.result, 5);
        assert!(ok.nontrivial && !ok.failed_comparison);
        let fail = m.apply(p, Op::Cas(a, 5, 7));
        assert_eq!(fail.result, 6);
        assert!(!fail.nontrivial && fail.failed_comparison);
        assert_eq!(m.peek(a), 6);
    }

    #[test]
    fn ll_sc_basic_success() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        assert_eq!(m.apply(p, Op::Ll(a)).result, 5);
        let sc = m.apply(p, Op::Sc(a, 8));
        assert_eq!(sc.result, 1);
        assert!(sc.nontrivial);
        assert_eq!(m.peek(a), 8);
    }

    #[test]
    fn sc_fails_after_intervening_write() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        let q = ProcId(1);
        m.apply(p, Op::Ll(a));
        m.apply(q, Op::Write(a, 6));
        let sc = m.apply(p, Op::Sc(a, 8));
        assert_eq!(sc.result, 0);
        assert!(sc.failed_comparison);
        assert_eq!(m.peek(a), 6);
    }

    #[test]
    fn sc_fails_even_if_value_restored_aba() {
        // LL/SC is immune to ABA: reservation is broken by *any* nontrivial op.
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        let q = ProcId(1);
        m.apply(p, Op::Ll(a));
        m.apply(q, Op::Write(a, 6));
        m.apply(q, Op::Write(a, 5)); // restore original value
        assert_eq!(m.apply(p, Op::Sc(a, 8)).result, 0);
    }

    #[test]
    fn sc_without_ll_fails() {
        let (mut m, a, _) = two_cell_memory();
        assert_eq!(m.apply(ProcId(0), Op::Sc(a, 3)).result, 0);
    }

    #[test]
    fn sc_consumes_reservation() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        m.apply(p, Op::Ll(a));
        assert_eq!(m.apply(p, Op::Sc(a, 8)).result, 1);
        assert_eq!(m.apply(p, Op::Sc(a, 9)).result, 0, "second SC must fail");
    }

    #[test]
    fn faa_wraps_and_returns_old() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        assert_eq!(m.apply(p, Op::Faa(a, 2)).result, 5);
        assert_eq!(m.peek(a), 7);
        m.apply(p, Op::Write(a, u64::MAX));
        assert_eq!(m.apply(p, Op::Faa(a, 1)).result, u64::MAX);
        assert_eq!(m.peek(a), 0, "FAA wraps");
    }

    #[test]
    fn fas_and_tas() {
        let (mut m, a, _) = two_cell_memory();
        let p = ProcId(0);
        assert_eq!(m.apply(p, Op::Fas(a, 11)).result, 5);
        assert_eq!(m.peek(a), 11);
        m.apply(p, Op::Write(a, 0));
        assert_eq!(m.apply(p, Op::Tas(a)).result, 0);
        assert_eq!(m.apply(p, Op::Tas(a)).result, 1);
        assert_eq!(m.peek(a), 1);
    }

    #[test]
    fn writer_tracking_is_deduplicated() {
        let (mut m, a, _) = two_cell_memory();
        m.apply(ProcId(2), Op::Write(a, 1));
        m.apply(ProcId(0), Op::Write(a, 2));
        m.apply(ProcId(2), Op::Write(a, 3));
        assert_eq!(m.writers(a).collect::<Vec<_>>(), vec![ProcId(0), ProcId(2)]);
        assert_eq!(m.last_writer(a), Some(ProcId(2)));
    }

    #[test]
    fn failed_cas_does_not_record_writer() {
        let (mut m, a, _) = two_cell_memory();
        m.apply(ProcId(0), Op::Cas(a, 99, 1));
        assert_eq!(m.writers(a).count(), 0);
        assert_eq!(m.last_writer(a), None);
    }

    #[test]
    fn per_process_array_ownership() {
        let mut layout = MemLayout::new();
        let v = layout.alloc_per_process_array(4, 0);
        for i in 0..4 {
            assert_eq!(layout.owner(v.at(i)), Some(ProcId(i as u32)));
        }
        let g = layout.alloc_global_array(2, 3);
        assert_eq!(layout.owner(g.at(1)), None);
        assert_eq!(layout.initial_value(g.at(0)), 3);
    }

    /// Straightforward one-struct-per-cell reference semantics, against
    /// which the dense pid-indexed tables are property-checked below.
    #[derive(Clone, Default)]
    struct RefCell_ {
        value: Word,
        last_writer: Option<ProcId>,
        writers: std::collections::BTreeSet<u32>,
        reservations: std::collections::BTreeSet<u32>,
    }

    impl RefCell_ {
        fn overwrite(&mut self, pid: ProcId, value: Word) {
            self.value = value;
            self.last_writer = Some(pid);
            self.writers.insert(pid.0);
            self.reservations.clear();
        }

        fn apply(&mut self, pid: ProcId, op: Op) -> (Word, bool, bool) {
            match op {
                Op::Read(_) => (self.value, false, false),
                Op::Ll(_) => {
                    self.reservations.insert(pid.0);
                    (self.value, false, false)
                }
                Op::Write(_, w) => {
                    self.overwrite(pid, w);
                    (w, true, false)
                }
                Op::Cas(_, expected, new) => {
                    let old = self.value;
                    if old == expected {
                        self.overwrite(pid, new);
                        (old, true, false)
                    } else {
                        (old, false, true)
                    }
                }
                Op::Sc(_, w) => {
                    if self.reservations.contains(&pid.0) {
                        self.overwrite(pid, w);
                        (1, true, false)
                    } else {
                        (0, false, true)
                    }
                }
                Op::Faa(_, d) => {
                    let old = self.value;
                    self.overwrite(pid, old.wrapping_add(d));
                    (old, true, false)
                }
                Op::Fas(_, w) => {
                    let old = self.value;
                    self.overwrite(pid, w);
                    (old, true, false)
                }
                Op::Tas(_) => {
                    let old = self.value;
                    self.overwrite(pid, 1);
                    (old, true, false)
                }
            }
        }
    }

    /// Splitmix64: tiny deterministic generator for the property test.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Property: the dense pid-indexed tables ([`PidTable`]) behave exactly
    /// like per-cell struct semantics on random operation sequences — every
    /// applied result and every observable (value, last writer, writer set,
    /// reservation set) agrees after every step, across several seeds.
    #[test]
    fn dense_tables_match_reference_cells_on_random_ops() {
        for seed in 0..8u64 {
            let n_procs = 5u32;
            let n_cells = 4usize;
            let mut layout = MemLayout::new();
            let mut addrs = Vec::new();
            for i in 0..n_cells {
                addrs.push(if i % 2 == 0 {
                    layout.alloc_global(i as Word)
                } else {
                    layout.alloc_local(ProcId(i as u32 % n_procs), i as Word)
                });
            }
            let mut mem = Memory::from_layout(&layout);
            let mut reference: Vec<RefCell_> = addrs
                .iter()
                .map(|&a| RefCell_ {
                    value: layout.initial_value(a),
                    ..RefCell_::default()
                })
                .collect();

            let mut rng = seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1;
            for _ in 0..600 {
                let pid = ProcId(splitmix(&mut rng) as u32 % n_procs);
                let a = addrs[splitmix(&mut rng) as usize % n_cells];
                let w = splitmix(&mut rng) % 4;
                let op = match splitmix(&mut rng) % 8 {
                    0 => Op::Read(a),
                    1 => Op::Write(a, w),
                    2 => Op::Cas(a, splitmix(&mut rng) % 4, w),
                    3 => Op::Ll(a),
                    4 => Op::Sc(a, w),
                    5 => Op::Faa(a, w),
                    6 => Op::Fas(a, w),
                    _ => Op::Tas(a),
                };
                let got = mem.apply(pid, op);
                let want = reference[a.index()].apply(pid, op);
                assert_eq!(
                    (got.result, got.nontrivial, got.failed_comparison),
                    want,
                    "seed {seed}: result mismatch for {op:?} by {pid:?}"
                );
                for (&addr, cell) in addrs.iter().zip(&reference) {
                    assert_eq!(mem.peek(addr), cell.value, "seed {seed}");
                    assert_eq!(mem.last_writer(addr), cell.last_writer, "seed {seed}");
                    assert_eq!(
                        mem.writers(addr).map(|p| p.0).collect::<Vec<_>>(),
                        cell.writers.iter().copied().collect::<Vec<_>>(),
                        "seed {seed}"
                    );
                    assert_eq!(
                        mem.reservations(addr).map(|p| p.0).collect::<Vec<_>>(),
                        cell.reservations.iter().copied().collect::<Vec<_>>(),
                        "seed {seed}"
                    );
                }
            }
        }
    }
}
