//! Call sources: what sequence of procedure calls each process makes.
//!
//! The paper specifies a process "by defining the possible sequences of
//! procedure calls a process may make before terminating" (§2). A
//! [`CallSource`] is exactly that, in executable and deterministic form: the
//! simulator asks it for the next call whenever the previous one returns.

use crate::ids::Word;
use crate::machine::{Call, CallKind, ProcedureCall};
use std::fmt;
use std::sync::Arc;

/// Factory producing a fresh state machine for one procedure call.
///
/// Factories capture the shared-memory layout and the calling process's ID;
/// they must be deterministic so replays reconstruct identical calls.
pub type CallFactory = Arc<dyn Fn() -> Box<dyn ProcedureCall> + Send + Sync>;

/// Deterministic generator of a process's procedure-call sequence.
///
/// `Send + Sync` so whole [`crate::SimSpec`]s (and simulators built from
/// them) can be fanned out across the `shm_pool` workers.
pub trait CallSource: Send + Sync {
    /// The next call to make, given the return value of the previous call
    /// (`None` before the first call). Returning `None` terminates the
    /// process.
    fn next_call(&mut self, prev_return: Option<Word>) -> Option<Call>;

    /// Clones the source's state (object-safe `Clone`).
    fn clone_source(&self) -> Box<dyn CallSource>;
}

impl Clone for Box<dyn CallSource> {
    fn clone(&self) -> Self {
        self.clone_source()
    }
}

impl fmt::Debug for Box<dyn CallSource> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Box<dyn CallSource>")
    }
}

/// A source that never makes any call: the process does not participate.
#[derive(Clone, Copy, Debug, Default)]
pub struct Idle;

impl CallSource for Idle {
    fn next_call(&mut self, _prev: Option<Word>) -> Option<Call> {
        None
    }
    fn clone_source(&self) -> Box<dyn CallSource> {
        Box::new(*self)
    }
}

/// One scripted call: a labelled factory.
#[derive(Clone)]
pub struct ScriptedCall {
    /// Domain tag of the call.
    pub kind: CallKind,
    /// Procedure name for traces.
    pub name: &'static str,
    /// Factory constructing the call's state machine.
    pub factory: CallFactory,
}

impl ScriptedCall {
    /// Creates a scripted call.
    pub fn new(kind: CallKind, name: &'static str, factory: CallFactory) -> Self {
        ScriptedCall {
            kind,
            name,
            factory,
        }
    }

    fn instantiate(&self) -> Call {
        Call::new(self.kind, self.name, (self.factory)())
    }
}

impl fmt::Debug for ScriptedCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScriptedCall")
            .field("kind", &self.kind)
            .field("name", &self.name)
            .finish()
    }
}

/// Makes a fixed list of calls in order, then terminates.
#[derive(Clone, Debug, Default)]
pub struct Script {
    calls: Vec<ScriptedCall>,
    next: usize,
}

impl Script {
    /// Creates a script from the given calls.
    #[must_use]
    pub fn new(calls: Vec<ScriptedCall>) -> Self {
        Script { calls, next: 0 }
    }
}

impl CallSource for Script {
    fn next_call(&mut self, _prev: Option<Word>) -> Option<Call> {
        let c = self.calls.get(self.next)?;
        self.next += 1;
        Some(c.instantiate())
    }
    fn clone_source(&self) -> Box<dyn CallSource> {
        Box::new(self.clone())
    }
}

/// Repeats one call until it returns `stop_value`, then (optionally, if
/// `max_calls` is not hit first) terminates.
///
/// This is the canonical *waiter*: `Poll()` until it returns true. The
/// variation exploited by the lower bound — "waiters can terminate after a
/// finite number of calls to `Poll()` even if no such call returned true"
/// (§4) — is expressed with a finite `max_calls`.
#[derive(Clone, Debug)]
pub struct RepeatUntil {
    call: ScriptedCall,
    stop_value: Word,
    /// Give up (terminate) after this many calls even without `stop_value`.
    /// `None` repeats forever (terminating-progress histories only).
    max_calls: Option<u64>,
    made: u64,
}

impl RepeatUntil {
    /// Repeats `call` until it returns `stop_value` (no call cap).
    #[must_use]
    pub fn new(call: ScriptedCall, stop_value: Word) -> Self {
        RepeatUntil {
            call,
            stop_value,
            max_calls: None,
            made: 0,
        }
    }

    /// Repeats `call` until it returns `stop_value` or `max_calls` calls have
    /// completed, whichever comes first.
    #[must_use]
    pub fn with_max_calls(call: ScriptedCall, stop_value: Word, max_calls: u64) -> Self {
        RepeatUntil {
            call,
            stop_value,
            max_calls: Some(max_calls),
            made: 0,
        }
    }
}

impl CallSource for RepeatUntil {
    fn next_call(&mut self, prev: Option<Word>) -> Option<Call> {
        if prev == Some(self.stop_value) {
            return None;
        }
        if let Some(max) = self.max_calls {
            if self.made >= max {
                return None;
            }
        }
        self.made += 1;
        Some(self.call.instantiate())
    }
    fn clone_source(&self) -> Box<dyn CallSource> {
        Box::new(self.clone())
    }
}

/// Chains two sources: runs `first` to exhaustion, then `second`.
///
/// The return value that terminated `first` is *not* forwarded to `second`
/// (the second source starts fresh, as if the process began a new phase).
#[derive(Clone, Debug)]
pub struct Chain {
    first: Box<dyn CallSource>,
    second: Box<dyn CallSource>,
    in_second: bool,
}

impl Chain {
    /// Creates the chained source.
    #[must_use]
    pub fn new(first: Box<dyn CallSource>, second: Box<dyn CallSource>) -> Self {
        Chain {
            first,
            second,
            in_second: false,
        }
    }
}

impl CallSource for Chain {
    fn next_call(&mut self, prev: Option<Word>) -> Option<Call> {
        if !self.in_second {
            if let Some(c) = self.first.next_call(prev) {
                return Some(c);
            }
            self.in_second = true;
            return self.second.next_call(None);
        }
        self.second.next_call(prev)
    }
    fn clone_source(&self) -> Box<dyn CallSource> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::ReturnConst;

    fn const_call(kind: u32, v: Word) -> ScriptedCall {
        ScriptedCall::new(
            CallKind(kind),
            "const",
            Arc::new(move || Box::new(ReturnConst(v))),
        )
    }

    #[test]
    fn idle_never_calls() {
        let mut s = Idle;
        assert!(s.next_call(None).is_none());
        assert!(s.next_call(Some(1)).is_none());
    }

    #[test]
    fn script_runs_in_order_then_stops() {
        let mut s = Script::new(vec![const_call(1, 0), const_call(2, 0)]);
        assert_eq!(s.next_call(None).unwrap().kind, CallKind(1));
        assert_eq!(s.next_call(Some(0)).unwrap().kind, CallKind(2));
        assert!(s.next_call(Some(0)).is_none());
    }

    #[test]
    fn repeat_until_stops_on_value() {
        let mut s = RepeatUntil::new(const_call(1, 0), 7);
        assert!(s.next_call(None).is_some());
        assert!(s.next_call(Some(0)).is_some());
        assert!(s.next_call(Some(7)).is_none());
    }

    #[test]
    fn repeat_until_respects_max_calls() {
        let mut s = RepeatUntil::with_max_calls(const_call(1, 0), 7, 2);
        assert!(s.next_call(None).is_some());
        assert!(s.next_call(Some(0)).is_some());
        assert!(s.next_call(Some(0)).is_none(), "cap of 2 calls reached");
    }

    #[test]
    fn repeat_until_stop_value_beats_cap() {
        let mut s = RepeatUntil::with_max_calls(const_call(1, 0), 7, 10);
        assert!(s.next_call(None).is_some());
        assert!(s.next_call(Some(7)).is_none());
    }

    #[test]
    fn chain_switches_sources() {
        let first = Script::new(vec![const_call(1, 0)]);
        let second = Script::new(vec![const_call(2, 0), const_call(3, 0)]);
        let mut s = Chain::new(Box::new(first), Box::new(second));
        assert_eq!(s.next_call(None).unwrap().kind, CallKind(1));
        assert_eq!(s.next_call(Some(0)).unwrap().kind, CallKind(2));
        assert_eq!(s.next_call(Some(0)).unwrap().kind, CallKind(3));
        assert!(s.next_call(Some(0)).is_none());
    }

    #[test]
    fn cloned_source_resumes_independently() {
        let mut s = Script::new(vec![const_call(1, 0), const_call(2, 0)]);
        let _ = s.next_call(None);
        let mut c = s.clone_source();
        assert_eq!(c.next_call(Some(0)).unwrap().kind, CallKind(2));
        assert_eq!(s.next_call(Some(0)).unwrap().kind, CallKind(2));
    }
}
