//! A small, in-tree, seedable PRNG.
//!
//! The repository must build and test with no network access, so external
//! RNG crates are out. Everything here is deterministic for a fixed seed —
//! the property the schedulers, workload generators, and property-style
//! tests actually rely on; statistical quality beyond "not obviously
//! patterned" is irrelevant for them.

/// Xorshift64* generator, seeded through a SplitMix64 scramble so that
/// small or zero seeds still produce well-mixed streams.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

/// SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.
#[inline]
#[must_use]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl XorShift64 {
    /// Creates a generator from a seed. Any seed (including 0) is fine.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // xorshift's state must be nonzero; mix64 maps 0x9E37..-related
        // inputs near-uniformly, and we guard the measure-zero collision.
        let state = mix64(seed).max(1);
        XorShift64 { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses the multiply-shift reduction; the modulo bias is at most
    /// `bound / 2^64`, far below anything these tests can observe.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`. `lo < hi` required.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`. `lo < hi` required.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `num / den` (`den` nonzero).
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniformly chosen element of a nonempty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_works() {
        let mut r = XorShift64::new(0);
        let v: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = XorShift64::new(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.below(5) as usize;
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn range_usize_respects_bounds() {
        let mut r = XorShift64::new(3);
        for _ in 0..100 {
            let v = r.range_usize(4, 12);
            assert!((4..12).contains(&v));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = XorShift64::new(11);
        let hits = (0..1000).filter(|_| r.chance(3, 10)).count();
        assert!((200..400).contains(&hits), "3/10 chance hit {hits}/1000");
    }
}
