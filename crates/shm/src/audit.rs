//! Differential audit layer: naive shadow re-execution of a recorded run.
//!
//! The incremental replay engine ([`crate::sim`]) earns its speed from
//! checkpoints, rolling-hash fingerprints and event-walk surgery — three
//! mechanisms that could each hide a silent divergence between the fast path
//! and ground truth. This module is the ground truth: [`Simulator::audit`]
//! re-runs a recorded schedule step by step under a *naive* reference
//! implementation of memory semantics and of each of the four standard cost
//! models — no checkpoints, no fingerprints, no surgery, no shared code with
//! the incremental path beyond the type definitions — and diffs, per step,
//! every operation result, RMR/message/invalidation charge and cache-validity
//! set, plus the final memory image, [`Totals`] and per-process stats,
//! against what the fast path recorded.
//!
//! The walk under the recording's own cost model is a *full* diff (events,
//! charges, end state); the walks under the remaining standard models check
//! that the functional stream is model-independent and that the production
//! [`CostState`] agrees with the naive pricing rules under every model, not
//! just the one the run happened to use.
//!
//! On the first divergence the audit stops and reports an
//! [`AuditDivergence`] naming the schedule step, the process, the memory
//! location (by label) and the expected vs. actual value — renderable as
//! JSON for machine consumption by `--audit` drivers.
//!
//! # Parallel sharding
//!
//! The audit's work — four independent model walks, and within the full walk
//! a linear scan of the schedule — is sharded across the `shm_pool` workers:
//! one shard per cross-check model, plus one shard per checkpoint-delimited
//! schedule chunk of the full walk (chunks seed their naive state from the
//! recording's own [`Checkpoint`]s and re-verify the observable state —
//! memory image, reservations, cache validity, stats, totals — at the next
//! checkpoint boundary). The shard list is fixed by the recording alone, every
//! shard runs to its own completion or first divergence, and the canonical
//! divergence is chosen by fixed shard order (full-walk chunks in ascending
//! schedule order — i.e. lowest step — then cross models in standard order),
//! so the report is identical for every thread count, including `threads=1`.

use crate::event::Event;
use crate::history_label::Labels;
use crate::ids::{Addr, ProcId, Word};
use crate::machine::{Call, CallKind, Step};
use crate::mem::Memory;
use crate::model::{AccessCost, CcConfig, CostModel, CostState, Interconnect, Protocol};
use crate::op::{Applied, Op};
use crate::sim::{Checkpoint, ProcStats, SimSpec, Simulator, Status, Totals};
use crate::source::CallSource;
use std::collections::BTreeSet;
use std::fmt;

/// Structured diagnostic for the first point where the fast path and the
/// naive reference disagree.
///
/// `expected` is the naive reference's value; `actual` is what the fast
/// incremental path recorded (or computed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditDivergence {
    /// Label of the cost model being audited when the divergence appeared
    /// (e.g. `"dsm"`, `"cc-wt-dir"`).
    pub model: String,
    /// Schedule index of the divergent step (= the schedule length for
    /// end-state divergences).
    pub step: usize,
    /// Index into the recorded event log (= the log length for end-state
    /// divergences).
    pub event: usize,
    /// The process involved, if the divergence is attributable to one.
    pub pid: Option<ProcId>,
    /// The memory location involved, by layout label (or `"-"`).
    pub location: String,
    /// Which audited quantity diverged (e.g. `"result"`, `"cost.rmr"`,
    /// `"model.messages"`, `"cache.holders"`, `"totals.rmrs"`).
    pub field: String,
    /// The naive reference's value, rendered as text.
    pub expected: String,
    /// The fast path's value, rendered as text.
    pub actual: String,
}

impl AuditDivergence {
    /// Renders the diagnostic as a single JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let pid = self
            .pid
            .map_or_else(|| "null".to_string(), |p| p.0.to_string());
        format!(
            "{{\"model\": \"{}\", \"step\": {}, \"event\": {}, \"pid\": {}, \"location\": \"{}\", \"field\": \"{}\", \"expected\": \"{}\", \"actual\": \"{}\"}}",
            json_escape(&self.model),
            self.step,
            self.event,
            pid,
            json_escape(&self.location),
            json_escape(&self.field),
            json_escape(&self.expected),
            json_escape(&self.actual),
        )
    }
}

impl fmt::Display for AuditDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pid = self.pid.map_or_else(|| "-".to_string(), |p| p.to_string());
        write!(
            f,
            "audit divergence [{}] at step {} (event {}, {} @ {}): {} expected {}, got {}",
            self.model,
            self.step,
            self.event,
            pid,
            self.location,
            self.field,
            self.expected,
            self.actual
        )
    }
}

/// Outcome of one [`Simulator::audit`] run.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Cost models the audit walked (the recording's own model plus the
    /// remaining standard models; a divergence stops the walk early).
    pub models_checked: usize,
    /// Schedule steps shadow-executed, summed over all model walks.
    pub steps_checked: usize,
    /// Recorded events compared, summed over all model walks.
    pub events_checked: usize,
    /// The first divergence found, if any.
    pub divergence: Option<AuditDivergence>,
}

impl AuditReport {
    /// Whether the fast path matched the naive reference everywhere.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }

    /// Renders the report as a single JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clean\": {}, \"models_checked\": {}, \"steps_checked\": {}, \"events_checked\": {}, \"divergence\": {}}}",
            self.is_clean(),
            self.models_checked,
            self.steps_checked,
            self.events_checked,
            self.divergence
                .as_ref()
                .map_or_else(|| "null".to_string(), AuditDivergence::to_json),
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The four standard cost-model configurations every audit walks (the same
/// set the determinism-contract tests sweep).
fn standard_models() -> [CostModel; 4] {
    [
        CostModel::Dsm,
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteThrough,
            lfcu: false,
            interconnect: Interconnect::IdealDirectory,
        }),
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteBack,
            lfcu: false,
            interconnect: Interconnect::Bus,
        }),
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteBack,
            lfcu: true,
            interconnect: Interconnect::IdealDirectory,
        }),
    ]
}

fn model_label(model: CostModel) -> String {
    crate::model::model_tag(model).to_string()
}

/// One naive memory cell: value, last nontrivial writer, LL reservations.
/// Deliberately re-implemented with plain collections, independent of
/// [`crate::mem::Memory`].
#[derive(Clone)]
struct NaiveCell {
    value: Word,
    last_writer: Option<ProcId>,
    reserved: BTreeSet<ProcId>,
}

impl NaiveCell {
    fn overwrite(&mut self, pid: ProcId, value: Word) {
        self.value = value;
        self.last_writer = Some(pid);
        self.reserved.clear();
    }
}

/// Naive re-implementation of the atomic operation semantics of §2.
/// Returns `(result, nontrivial, failed_comparison)`.
fn naive_apply(cell: &mut NaiveCell, pid: ProcId, op: Op) -> (Word, bool, bool) {
    match op {
        Op::Read(_) => (cell.value, false, false),
        Op::Ll(_) => {
            cell.reserved.insert(pid);
            (cell.value, false, false)
        }
        Op::Write(_, w) => {
            cell.overwrite(pid, w);
            (w, true, false)
        }
        Op::Cas(_, expected, new) => {
            let old = cell.value;
            if old == expected {
                cell.overwrite(pid, new);
                (old, true, false)
            } else {
                (old, false, true)
            }
        }
        Op::Sc(_, w) => {
            if cell.reserved.contains(&pid) {
                cell.overwrite(pid, w);
                (1, true, false)
            } else {
                (0, false, true)
            }
        }
        Op::Faa(_, d) => {
            let old = cell.value;
            cell.overwrite(pid, old.wrapping_add(d));
            (old, true, false)
        }
        Op::Fas(_, w) => {
            let old = cell.value;
            cell.overwrite(pid, w);
            (old, true, false)
        }
        Op::Tas(_) => {
            let old = cell.value;
            cell.overwrite(pid, 1);
            (old, true, false)
        }
    }
}

/// Naive re-implementation of the pricing rules of §2/§8, straight from the
/// definitions, with a plain `BTreeSet` as the cache-validity set.
fn naive_charge(
    model: CostModel,
    n_procs: usize,
    owner: Option<ProcId>,
    valid: &mut BTreeSet<ProcId>,
    pid: ProcId,
    nontrivial: bool,
    failed_comparison: bool,
) -> AccessCost {
    let cfg = match model {
        CostModel::Dsm => {
            // DSM: remote iff the cell lives in another module. Stateless.
            let rmr = owner != Some(pid);
            return AccessCost {
                rmr,
                messages: u64::from(rmr),
                invalidations: 0,
            };
        }
        CostModel::Cc(cfg) => cfg,
    };
    if failed_comparison && cfg.lfcu {
        // LFCU: failed comparison primitives are applied locally, for free.
        return AccessCost::default();
    }
    if !nontrivial {
        // Trivial access: a cache hit if this process holds a valid copy,
        // otherwise one fetch that installs a copy.
        let rmr = !valid.contains(&pid);
        valid.insert(pid);
        return AccessCost {
            rmr,
            messages: u64::from(rmr),
            invalidations: 0,
        };
    }
    // Nontrivial access.
    let holders_elsewhere = valid.iter().filter(|&&q| q != pid).count() as u64;
    let rmr = match cfg.protocol {
        Protocol::WriteThrough => true,
        Protocol::WriteBack => !(valid.contains(&pid) && holders_elsewhere == 0),
    };
    let coherence = match cfg.interconnect {
        Interconnect::Bus => u64::from(holders_elsewhere > 0),
        Interconnect::IdealDirectory => holders_elsewhere,
        Interconnect::StatelessBroadcast => {
            if rmr {
                n_procs as u64 - 1
            } else {
                0
            }
        }
    };
    let invalidations = if cfg.lfcu { 0 } else { holders_elsewhere };
    if cfg.lfcu {
        // Write-update: remote copies are refreshed, not destroyed.
        valid.insert(pid);
    } else {
        valid.clear();
        valid.insert(pid);
    }
    AccessCost {
        rmr,
        messages: u64::from(rmr) + coherence,
        invalidations,
    }
}

/// Per-process shadow executor state (mirrors the simulator's private
/// `ProcState`, rebuilt independently from the spec's call sources).
struct ShadowProc {
    source: Box<dyn CallSource>,
    current: Option<Call>,
    last_op_result: Option<Word>,
    last_return: Option<Word>,
    runnable: bool,
    stats: ProcStats,
}

/// One shadow walk of a schedule range under one cost model — either the
/// whole recording, or one checkpoint-delimited chunk of the full walk.
struct Walk<'a> {
    sim: &'a Simulator,
    spec: &'a SimSpec,
    labels: Labels,
    model: CostModel,
    mlabel: String,
    /// Full diff (events + charges + end state) vs. charge-only cross-check.
    full: bool,
    /// First schedule index this walk covers.
    sched_start: usize,
    /// One past the last schedule index this walk covers.
    sched_end: usize,
    /// One past the last recorded-event index this walk may consume.
    event_end: usize,
    cursor: usize,
    step: usize,
    /// Schedule steps actually shadow-executed by this walk.
    steps_walked: usize,
    events_checked: usize,
    cells: Vec<NaiveCell>,
    valid: Vec<BTreeSet<ProcId>>,
    /// Production cost-model state driven in parallel with the naive one, so
    /// a pricing divergence is localized to the `CostState` implementation
    /// (`model.*` fields) rather than to the replay engine (`cost.*` fields).
    fast: CostState,
    procs: Vec<ShadowProc>,
    totals: Totals,
}

impl<'a> Walk<'a> {
    fn new(sim: &'a Simulator, spec: &'a SimSpec, model: CostModel, full: bool) -> Self {
        let cells = (0..spec.layout.len())
            .map(|a| NaiveCell {
                value: spec.layout.initial_value(Addr(a as u32)),
                last_writer: None,
                reserved: BTreeSet::new(),
            })
            .collect();
        let procs = spec
            .sources
            .iter()
            .map(|s| ShadowProc {
                source: s.clone(),
                current: None,
                last_op_result: None,
                last_return: None,
                runnable: true,
                stats: ProcStats::default(),
            })
            .collect();
        Walk {
            sim,
            spec,
            labels: spec.layout.labels().clone(),
            model,
            mlabel: model_label(model),
            full,
            sched_start: 0,
            sched_end: sim.schedule().len(),
            event_end: sim.history().len(),
            cursor: 0,
            step: 0,
            steps_walked: 0,
            events_checked: 0,
            cells,
            valid: vec![BTreeSet::new(); spec.layout.len()],
            fast: CostState::new(model, spec.n(), spec.layout.len()),
            procs,
            totals: Totals::default(),
        }
    }

    /// A walk over one chunk of the full walk: schedule `[range.0, range.1)`,
    /// events `[range.2, range.3)`, state seeded from `seed` (the checkpoint
    /// closing the previous chunk) or fresh for the first chunk.
    fn chunk(
        sim: &'a Simulator,
        spec: &'a SimSpec,
        model: CostModel,
        full: bool,
        range: (usize, usize, usize, usize),
        seed: Option<&Checkpoint>,
    ) -> Self {
        let mut w = Walk::new(sim, spec, model, full);
        w.sched_start = range.0;
        w.sched_end = range.1;
        w.cursor = range.2;
        w.event_end = range.3;
        w.step = range.0;
        if let Some(c) = seed {
            w.seed_from(c);
        }
        w
    }

    /// Seeds the naive shadow state from a recorded checkpoint. The seed is
    /// not taken on faith: the chunk that *ends* at this checkpoint
    /// re-derived the same observable state independently and diffed it via
    /// [`Walk::check_boundary`], so trust chains inductively from the fresh
    /// first chunk.
    fn seed_from(&mut self, ckpt: &Checkpoint) {
        let mem = ckpt.memory();
        for a in 0..self.spec.layout.len() {
            let addr = Addr(a as u32);
            self.cells[a] = NaiveCell {
                value: mem.peek(addr),
                last_writer: mem.last_writer(addr),
                reserved: mem.reservations(addr).collect(),
            };
            self.valid[a] = ckpt.cost().holders(addr).iter().copied().collect();
        }
        self.fast = ckpt.cost().clone();
        self.procs = ckpt
            .procs()
            .iter()
            .map(|p| ShadowProc {
                source: p.source.clone(),
                current: p.current.clone(),
                last_op_result: p.last_op_result,
                last_return: p.last_return,
                runnable: p.status == Status::Runnable,
                stats: p.stats,
            })
            .collect();
        self.totals = ckpt.totals();
    }

    fn diverge(
        &self,
        event: usize,
        pid: Option<ProcId>,
        location: &str,
        field: &str,
        expected: impl fmt::Display,
        actual: impl fmt::Display,
    ) -> AuditDivergence {
        AuditDivergence {
            model: self.mlabel.clone(),
            step: self.step,
            event,
            pid,
            location: location.to_string(),
            field: field.to_string(),
            expected: expected.to_string(),
            actual: actual.to_string(),
        }
    }

    /// Consumes and returns the next recorded event within this walk's event
    /// range, skipping `Crash` events (crashes are external actions with no
    /// schedule entry, outside the audit's re-execution scope). `None` when
    /// the range is exhausted.
    fn take_recorded(&mut self) -> Option<(usize, Event)> {
        while self.cursor < self.event_end {
            let idx = self.cursor;
            self.cursor += 1;
            let e = self.sim.history().event(idx);
            if matches!(e, Event::Crash { .. }) {
                continue;
            }
            self.events_checked += 1;
            return Some((idx, e.clone()));
        }
        None
    }

    fn recording_exhausted(&self, pid: ProcId, wanted: &str) -> AuditDivergence {
        self.diverge(
            self.event_end,
            Some(pid),
            "-",
            "events",
            format!("{wanted} event for {pid}"),
            "recorded history ended early",
        )
    }

    fn expect_invoke(
        &mut self,
        pid: ProcId,
        kind: CallKind,
        name: &str,
    ) -> Option<AuditDivergence> {
        let Some((idx, ev)) = self.take_recorded() else {
            return Some(self.recording_exhausted(pid, "invoke"));
        };
        match ev {
            Event::Invoke {
                pid: rp,
                kind: rk,
                name: rn,
            } if rp == pid && rk == kind && rn == name => None,
            other => Some(self.diverge(
                idx,
                Some(pid),
                "-",
                "event",
                format!("Invoke {{ {pid}, kind {}, {name:?} }}", kind.0),
                format!("{other:?}"),
            )),
        }
    }

    fn expect_return(
        &mut self,
        pid: ProcId,
        kind: CallKind,
        value: Word,
    ) -> Option<AuditDivergence> {
        let Some((idx, ev)) = self.take_recorded() else {
            return Some(self.recording_exhausted(pid, "return"));
        };
        match ev {
            Event::Return {
                pid: rp,
                kind: rk,
                value: rv,
            } if rp == pid && rk == kind => {
                if rv == value {
                    None
                } else {
                    Some(self.diverge(idx, Some(pid), "-", "return.value", value, rv))
                }
            }
            other => Some(self.diverge(
                idx,
                Some(pid),
                "-",
                "event",
                format!("Return {{ {pid}, kind {}, {value} }}", kind.0),
                format!("{other:?}"),
            )),
        }
    }

    fn expect_terminate(&mut self, pid: ProcId) -> Option<AuditDivergence> {
        let Some((idx, ev)) = self.take_recorded() else {
            return Some(self.recording_exhausted(pid, "terminate"));
        };
        match ev {
            Event::Terminate { pid: rp } if rp == pid => None,
            other => Some(self.diverge(
                idx,
                Some(pid),
                "-",
                "event",
                format!("Terminate {{ {pid} }}"),
                format!("{other:?}"),
            )),
        }
    }

    /// Re-applies one recorded injection (mirrors `Simulator::inject_call`).
    fn apply_injection(&mut self, pid: ProcId, call: Call) -> Option<AuditDivergence> {
        if self.procs[pid.index()].current.is_some() {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                "-",
                "injection",
                "no call in progress",
                "recorded injection into a process mid-call",
            ));
        }
        if let Some(d) = self.expect_invoke(pid, call.kind, call.name) {
            return Some(d);
        }
        let p = &mut self.procs[pid.index()];
        p.runnable = true;
        p.current = Some(call);
        p.last_op_result = None;
        None
    }

    /// Shadow-executes one memory access and diffs it against the recording.
    fn shadow_access(&mut self, pid: ProcId, op: Op) -> Option<AuditDivergence> {
        let addr = op.addr();
        let owner = self.spec.layout.owner(addr);
        let cell = &mut self.cells[addr.index()];
        let sees = if matches!(op, Op::Write(..)) {
            None
        } else {
            cell.last_writer.filter(|&q| q != pid)
        };
        let touches = owner.filter(|&q| q != pid);
        let (result, nontrivial, failed_comparison) = naive_apply(cell, pid, op);
        let naive = naive_charge(
            self.model,
            self.spec.n(),
            owner,
            &mut self.valid[addr.index()],
            pid,
            nontrivial,
            failed_comparison,
        );
        let fastc = self.fast.charge(
            pid,
            addr,
            owner,
            &Applied {
                result,
                nontrivial,
                failed_comparison,
            },
        );
        let st = &mut self.procs[pid.index()].stats;
        st.accesses += 1;
        st.rmrs += u64::from(naive.rmr);
        st.messages += naive.messages;
        self.totals.accesses += 1;
        self.totals.rmrs += u64::from(naive.rmr);
        self.totals.messages += naive.messages;
        self.totals.invalidations += naive.invalidations;
        self.procs[pid.index()].last_op_result = Some(result);

        let loc = self.labels.name(addr);
        // Production cost model vs. naive pricing rules (all model walks).
        if fastc.rmr != naive.rmr {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                &loc,
                "model.rmr",
                naive.rmr,
                fastc.rmr,
            ));
        }
        if fastc.messages != naive.messages {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                &loc,
                "model.messages",
                naive.messages,
                fastc.messages,
            ));
        }
        if fastc.invalidations != naive.invalidations {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                &loc,
                "model.invalidations",
                naive.invalidations,
                fastc.invalidations,
            ));
        }
        // Cache-validity state: naive set vs. production holders.
        let fast_holders = self.fast.holders(addr);
        let naive_holders: Vec<ProcId> = self.valid[addr.index()].iter().copied().collect();
        if fast_holders != naive_holders {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                &loc,
                "cache.holders",
                format!("{naive_holders:?}"),
                format!("{fast_holders:?}"),
            ));
        }

        // The recorded event (functional fields are model-independent, so
        // they are diffed in every walk; costs only in the full walk).
        let Some((idx, ev)) = self.take_recorded() else {
            return Some(self.recording_exhausted(pid, "access"));
        };
        let Event::Access {
            pid: rp,
            op: rop,
            result: rres,
            wrote: rwrote,
            cost: rcost,
            sees: rsees,
            touches: rtouches,
        } = ev
        else {
            return Some(self.diverge(
                idx,
                Some(pid),
                &loc,
                "event",
                format!("Access {{ {pid}, {op} }}"),
                format!("{ev:?}"),
            ));
        };
        if rp != pid || rop != op {
            return Some(self.diverge(
                idx,
                Some(pid),
                &loc,
                "event",
                format!("Access {{ {pid}, {op} }}"),
                format!("Access {{ {rp}, {rop} }}"),
            ));
        }
        if rres != result {
            return Some(self.diverge(idx, Some(pid), &loc, "result", result, rres));
        }
        if rwrote != nontrivial {
            return Some(self.diverge(idx, Some(pid), &loc, "wrote", nontrivial, rwrote));
        }
        if rsees != sees {
            return Some(self.diverge(
                idx,
                Some(pid),
                &loc,
                "sees",
                format!("{sees:?}"),
                format!("{rsees:?}"),
            ));
        }
        if rtouches != touches {
            return Some(self.diverge(
                idx,
                Some(pid),
                &loc,
                "touches",
                format!("{touches:?}"),
                format!("{rtouches:?}"),
            ));
        }
        if self.full {
            if rcost.rmr != naive.rmr {
                return Some(self.diverge(idx, Some(pid), &loc, "cost.rmr", naive.rmr, rcost.rmr));
            }
            if rcost.messages != naive.messages {
                return Some(self.diverge(
                    idx,
                    Some(pid),
                    &loc,
                    "cost.messages",
                    naive.messages,
                    rcost.messages,
                ));
            }
            if rcost.invalidations != naive.invalidations {
                return Some(self.diverge(
                    idx,
                    Some(pid),
                    &loc,
                    "cost.invalidations",
                    naive.invalidations,
                    rcost.invalidations,
                ));
            }
        }
        None
    }

    /// Shadow-executes one schedule step (mirrors `Simulator::step` +
    /// `transition`).
    fn shadow_step(&mut self, pid: ProcId) -> Option<AuditDivergence> {
        if !self.procs[pid.index()].runnable {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                "-",
                "schedule",
                format!("{pid} runnable"),
                "recorded step by a non-runnable process",
            ));
        }
        self.totals.steps += 1;
        self.procs[pid.index()].stats.steps += 1;
        if self.procs[pid.index()].current.is_none() {
            let prev = self.procs[pid.index()].last_return;
            match self.procs[pid.index()].source.next_call(prev) {
                None => {
                    self.procs[pid.index()].runnable = false;
                    return self.expect_terminate(pid);
                }
                Some(call) => {
                    if let Some(d) = self.expect_invoke(pid, call.kind, call.name) {
                        return Some(d);
                    }
                    self.procs[pid.index()].current = Some(call);
                    self.procs[pid.index()].last_op_result = None;
                }
            }
        }
        let last = self.procs[pid.index()].last_op_result;
        let step = self.procs[pid.index()]
            .current
            .as_mut()
            .expect("current call set above")
            .machine
            .step(last);
        match step {
            Step::Op(op) => self.shadow_access(pid, op),
            Step::Return(value) => {
                let call = self.procs[pid.index()]
                    .current
                    .take()
                    .expect("current call");
                if let Some(d) = self.expect_return(pid, call.kind, value) {
                    return Some(d);
                }
                let p = &mut self.procs[pid.index()];
                p.last_return = Some(value);
                p.stats.calls_completed += 1;
                None
            }
        }
    }

    /// End-state diff (full walk only): totals, per-process stats, memory
    /// image and cache-validity table.
    fn check_end_state(&mut self) -> Option<AuditDivergence> {
        let evlen = self.sim.history().len();
        let totals = self.sim.totals();
        let stats: Vec<ProcStats> = (0..self.spec.n())
            .map(|i| self.sim.proc_stats(ProcId(i as u32)))
            .collect();
        self.diff_state(
            evlen,
            totals,
            &stats,
            self.sim.memory(),
            self.sim.cost_state(),
            false,
        )
    }

    /// Boundary diff for a non-final chunk: the naive state re-derived over
    /// `[sched_start, sched_end)` must match the checkpoint that closes the
    /// chunk — the same snapshot the *next* chunk seeds from. Reservations
    /// are included (the end-state diff skips them only because nothing is
    /// seeded from the final state).
    fn check_boundary(&mut self, ckpt: &Checkpoint) -> Option<AuditDivergence> {
        self.step = ckpt.schedule_len();
        let stats: Vec<ProcStats> = ckpt.procs().iter().map(|p| p.stats).collect();
        self.diff_state(
            ckpt.history_len(),
            ckpt.totals(),
            &stats,
            ckpt.memory(),
            ckpt.cost(),
            true,
        )
    }

    /// Diffs the walk's naive shadow state against an expected observable
    /// state (the live simulator's final state, or a checkpoint's).
    fn diff_state(
        &self,
        evlen: usize,
        t: Totals,
        stats: &[ProcStats],
        mem: &Memory,
        cost: &CostState,
        check_reservations: bool,
    ) -> Option<AuditDivergence> {
        if t.steps != self.totals.steps {
            return Some(self.diverge(
                evlen,
                None,
                "-",
                "totals.steps",
                self.totals.steps,
                t.steps,
            ));
        }
        if t.accesses != self.totals.accesses {
            return Some(self.diverge(
                evlen,
                None,
                "-",
                "totals.accesses",
                self.totals.accesses,
                t.accesses,
            ));
        }
        if t.rmrs != self.totals.rmrs {
            return Some(self.diverge(evlen, None, "-", "totals.rmrs", self.totals.rmrs, t.rmrs));
        }
        if t.messages != self.totals.messages {
            return Some(self.diverge(
                evlen,
                None,
                "-",
                "totals.messages",
                self.totals.messages,
                t.messages,
            ));
        }
        if t.invalidations != self.totals.invalidations {
            return Some(self.diverge(
                evlen,
                None,
                "-",
                "totals.invalidations",
                self.totals.invalidations,
                t.invalidations,
            ));
        }
        for (i, &got) in stats.iter().enumerate() {
            let p = ProcId(i as u32);
            let want = self.procs[i].stats;
            if want != got {
                return Some(self.diverge(
                    evlen,
                    Some(p),
                    "-",
                    "stats",
                    format!("{want:?}"),
                    format!("{got:?}"),
                ));
            }
        }
        for a in 0..self.spec.layout.len() {
            let addr = Addr(a as u32);
            let loc = self.labels.name(addr);
            let cell = &self.cells[a];
            if mem.peek(addr) != cell.value {
                return Some(self.diverge(
                    evlen,
                    None,
                    &loc,
                    "memory.value",
                    cell.value,
                    mem.peek(addr),
                ));
            }
            if mem.last_writer(addr) != cell.last_writer {
                return Some(self.diverge(
                    evlen,
                    None,
                    &loc,
                    "memory.last_writer",
                    format!("{:?}", cell.last_writer),
                    format!("{:?}", mem.last_writer(addr)),
                ));
            }
            if check_reservations {
                let live_rsv: BTreeSet<ProcId> = mem.reservations(addr).collect();
                if live_rsv != cell.reserved {
                    return Some(self.diverge(
                        evlen,
                        None,
                        &loc,
                        "memory.reservations",
                        format!("{:?}", cell.reserved),
                        format!("{live_rsv:?}"),
                    ));
                }
            }
            let live_holders = cost.holders(addr);
            let naive_holders: Vec<ProcId> = self.valid[a].iter().copied().collect();
            if live_holders != naive_holders {
                return Some(self.diverge(
                    evlen,
                    None,
                    &loc,
                    "cache.holders",
                    format!("{naive_holders:?}"),
                    format!("{live_holders:?}"),
                ));
            }
        }
        None
    }

    /// Walks this walk's schedule range, re-applying injections at their
    /// recorded positions (same loop as the replay engine's `run_filtered`,
    /// but with no erasure and no fingerprints).
    ///
    /// `end_ckpt` is `Some` for a non-final chunk: instead of the end-of-run
    /// checks, the chunk verifies its re-derived state against the closing
    /// checkpoint. Injections with `at == sched_end` belong to the next chunk
    /// (they were recorded after the closing checkpoint was taken, and apply
    /// before that chunk's first step).
    fn run(&mut self, end_ckpt: Option<&Checkpoint>) -> Option<AuditDivergence> {
        let injections = self.sim.injections();
        let mut next_inj = injections.partition_point(|inj| inj.at < self.sched_start);
        for i in self.sched_start..self.sched_end {
            self.step = i;
            loop {
                let inj = match injections.get(next_inj) {
                    Some(inj) if inj.at <= i => (inj.pid, inj.call.clone()),
                    _ => break,
                };
                next_inj += 1;
                if let Some(d) = self.apply_injection(inj.0, inj.1) {
                    return Some(d);
                }
            }
            let pid = self.sim.schedule()[i];
            self.steps_walked += 1;
            if let Some(d) = self.shadow_step(pid) {
                return Some(d);
            }
        }
        self.step = self.sched_end;
        if let Some(ckpt) = end_ckpt {
            // Non-final chunk: nothing but crashes may remain in the chunk's
            // event range, and the state must match the closing checkpoint.
            if let Some((idx, ev)) = self.take_recorded() {
                return Some(self.diverge(
                    idx,
                    Some(ev.pid()),
                    "-",
                    "events",
                    "checkpoint boundary",
                    format!("{ev:?} beyond chunk"),
                ));
            }
            return self.check_boundary(ckpt);
        }
        while let Some(inj) = injections.get(next_inj) {
            let (ipid, icall) = (inj.pid, inj.call.clone());
            next_inj += 1;
            if let Some(d) = self.apply_injection(ipid, icall) {
                return Some(d);
            }
        }
        // The shadow execution is over: nothing but crashes may remain in
        // the recorded log.
        if let Some((idx, ev)) = self.take_recorded() {
            return Some(self.diverge(
                idx,
                Some(ev.pid()),
                "-",
                "events",
                "end of execution",
                format!("{ev:?} beyond shadow execution"),
            ));
        }
        if self.full {
            self.check_end_state()
        } else {
            None
        }
    }
}

/// One unit of parallel audit work: a chunk of the full walk, or a whole
/// cross-model walk. The shard list is a pure function of the recording, so
/// it is identical for every thread count.
struct ShardSpec {
    model: CostModel,
    full: bool,
    sched_start: usize,
    sched_end: usize,
    event_start: usize,
    event_end: usize,
    /// Checkpoint index to seed the chunk's state from (`None` = fresh).
    seed: Option<usize>,
    /// Checkpoint index closing a non-final chunk (`None` = run to the end).
    end_ckpt: Option<usize>,
}

/// Runs the full differential audit for [`Simulator::audit`] on up to
/// `threads` pool workers. The report — counts and canonical divergence — is
/// deterministic and thread-count independent: shards are fixed by the
/// recording, every shard runs to its own completion or first divergence, and
/// the canonical divergence is the first one in fixed shard order (full-walk
/// chunks ascending by schedule position, so the lowest step wins, then the
/// cross-check models in standard order).
pub(crate) fn run_audit(sim: &Simulator, spec: &SimSpec, threads: usize) -> AuditReport {
    let mut models = vec![spec.model];
    for m in standard_models() {
        if m != spec.model {
            models.push(m);
        }
    }
    let schedule_len = sim.schedule().len();
    let event_len = sim.history().len();
    let ckpts = sim.checkpoints();
    // Chunk boundaries for the full walk: interior checkpoints, in schedule
    // order. (Checkpoints are recorded in increasing schedule_len order;
    // dedup defensively in case of repeats.)
    let mut interior: Vec<usize> = (0..ckpts.len())
        .filter(|&c| ckpts[c].schedule_len() > 0 && ckpts[c].schedule_len() < schedule_len)
        .collect();
    interior.sort_by_key(|&c| ckpts[c].schedule_len());
    interior.dedup_by_key(|c| ckpts[*c].schedule_len());

    let mut shards = Vec::with_capacity(interior.len() + models.len());
    let full_model = models[0];
    let (mut sched_start, mut event_start, mut seed) = (0usize, 0usize, None);
    for &c in &interior {
        shards.push(ShardSpec {
            model: full_model,
            full: true,
            sched_start,
            sched_end: ckpts[c].schedule_len(),
            event_start,
            event_end: ckpts[c].history_len(),
            seed,
            end_ckpt: Some(c),
        });
        sched_start = ckpts[c].schedule_len();
        event_start = ckpts[c].history_len();
        seed = Some(c);
    }
    shards.push(ShardSpec {
        model: full_model,
        full: true,
        sched_start,
        sched_end: schedule_len,
        event_start,
        event_end: event_len,
        seed,
        end_ckpt: None,
    });
    for &model in &models[1..] {
        shards.push(ShardSpec {
            model,
            full: false,
            sched_start: 0,
            sched_end: schedule_len,
            event_start: 0,
            event_end: event_len,
            seed: None,
            end_ckpt: None,
        });
    }

    let results = shm_pool::map_indexed(threads, shards, |_, s| {
        let _span = shm_obs::Span::enter("audit.shard");
        // Seeded chunks start from the checkpoint's accumulated totals; the
        // shard's own re-priced charge is the delta past that seed.
        let seed_rmrs = s.seed.map_or(0, |c| ckpts[c].totals().rmrs);
        let mtag = crate::model::model_tag(s.model);
        let mut walk = Walk::chunk(
            sim,
            spec,
            s.model,
            s.full,
            (s.sched_start, s.sched_end, s.event_start, s.event_end),
            s.seed.map(|c| ckpts[c].as_ref()),
        );
        let d = walk.run(s.end_ckpt.map(|c| ckpts[c].as_ref()));
        shm_obs::counter!("audit.shards");
        shm_obs::counter!("audit.steps", walk.steps_walked as u64);
        shm_obs::counter!("audit.events", walk.events_checked as u64);
        shm_obs::counter!("audit.rmr", walk.totals.rmrs - seed_rmrs, model: mtag);
        (walk.steps_walked, walk.events_checked, d)
    });

    let mut report = AuditReport {
        models_checked: models.len(),
        steps_checked: 0,
        events_checked: 0,
        divergence: None,
    };
    for (steps, events, d) in results {
        report.steps_checked += steps;
        report.events_checked += events;
        if report.divergence.is_none() {
            report.divergence = d;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::OpSequence;
    use crate::sched::{run_to_completion, SeededRandom};
    use crate::source::{Script, ScriptedCall};
    use std::sync::Arc;

    fn mixed_spec(n: usize, calls: usize, model: CostModel) -> SimSpec {
        let mut layout = MemLayout::new();
        let a = layout.alloc_global(0);
        layout.set_label(a, "A");
        let b = layout.alloc_global(5);
        layout.set_label(b, "B");
        let mine = layout.alloc_per_process_array(n, 0);
        layout.set_array_label(mine, "M");
        let sources = (0..n)
            .map(|i| {
                let pid = ProcId(i as u32);
                let mut cs = Vec::new();
                for k in 0..calls {
                    let ops = match (i + k) % 5 {
                        0 => vec![Op::Read(a), Op::Write(mine.at(pid.index()), k as Word)],
                        1 => vec![Op::Faa(a, 1), Op::Read(b)],
                        2 => vec![Op::Cas(b, 5, 6), Op::Read(mine.at(pid.index()))],
                        3 => vec![Op::Ll(b), Op::Sc(b, 9)],
                        _ => vec![Op::Tas(a), Op::Fas(b, 7)],
                    };
                    cs.push(ScriptedCall::new(
                        CallKind(k as u32),
                        "mix",
                        Arc::new(move || {
                            Box::new(OpSequence::new(ops.clone()))
                                as Box<dyn crate::machine::ProcedureCall>
                        }),
                    ));
                }
                Box::new(Script::new(cs)) as Box<dyn CallSource>
            })
            .collect();
        SimSpec {
            layout,
            sources,
            model,
        }
    }

    use crate::mem::MemLayout;

    #[test]
    fn clean_recording_audits_clean_under_all_models() {
        for model in standard_models() {
            let spec = mixed_spec(4, 3, model);
            let mut sim = Simulator::new(&spec);
            assert!(run_to_completion(
                &mut sim,
                &mut SeededRandom::new(11),
                1_000_000
            ));
            let report = sim.audit(&spec);
            assert!(
                report.is_clean(),
                "{model:?}: {}",
                report.divergence.unwrap()
            );
            assert_eq!(report.models_checked, 4);
            assert!(report.steps_checked > 0 && report.events_checked > 0);
            assert!(report.to_json().contains("\"clean\": true"));
        }
    }

    #[test]
    fn audit_covers_injected_calls() {
        let spec = mixed_spec(3, 2, CostModel::cc_default());
        let mut sim = Simulator::new(&spec);
        assert!(run_to_completion(
            &mut sim,
            &mut SeededRandom::new(4),
            1_000_000
        ));
        sim.inject_call(
            ProcId(1),
            Call::new(
                CallKind(50),
                "sig",
                Box::new(OpSequence::new(vec![Op::Write(Addr(0), 42)])),
            ),
        );
        while sim.is_runnable(ProcId(1)) {
            let _ = sim.step(ProcId(1));
        }
        let report = sim.audit(&spec);
        assert!(report.is_clean(), "{}", report.divergence.unwrap());
    }

    #[test]
    fn tampered_rmr_charge_is_caught_and_localized() {
        let spec = mixed_spec(3, 2, CostModel::Dsm);
        let mut sim = Simulator::new(&spec);
        assert!(run_to_completion(
            &mut sim,
            &mut SeededRandom::new(7),
            1_000_000
        ));
        // Flip the RMR flag of the first recorded global-cell access.
        let mut want_pid = None;
        for e in sim.history_mut().events_mut() {
            if let Event::Access { pid, op, cost, .. } = e {
                if op.addr() == Addr(0) {
                    want_pid = Some(*pid);
                    cost.rmr = !cost.rmr;
                    break;
                }
            }
        }
        let want_pid = want_pid.expect("workload accesses cell A");
        let report = sim.audit(&spec);
        let d = report.divergence.expect("tamper must be caught");
        assert_eq!(d.field, "cost.rmr");
        assert_eq!(d.pid, Some(want_pid));
        assert_eq!(d.location, "A", "diagnostic names the tampered location");
        assert_eq!(d.model, "dsm");
        assert!(d.step < sim.schedule().len(), "step index is localized");
        let json = d.to_json();
        for key in ["\"step\"", "\"pid\"", "\"location\"", "\"field\""] {
            assert!(json.contains(key), "JSON diagnostic has {key}: {json}");
        }
    }

    #[test]
    fn tampered_result_is_caught_in_cross_model_walks_too() {
        let spec = mixed_spec(3, 2, CostModel::cc_default());
        let mut sim = Simulator::new(&spec);
        assert!(run_to_completion(
            &mut sim,
            &mut SeededRandom::new(9),
            1_000_000
        ));
        for e in sim.history_mut().events_mut() {
            if let Event::Access { op, result, .. } = e {
                if matches!(op, Op::Faa(..)) {
                    *result = result.wrapping_add(1000);
                    break;
                }
            }
        }
        let report = sim.audit(&spec);
        let d = report.divergence.expect("tampered result must be caught");
        assert_eq!(d.field, "result");
    }

    #[test]
    fn tampered_totals_are_caught_by_end_state_diff() {
        let spec = mixed_spec(3, 2, CostModel::Dsm);
        let sim = Simulator::new(&spec);
        // A fresh simulator with a recorded history from a *different* run
        // cannot happen through the public API; instead tamper with totals
        // indirectly by auditing a stepped sim against a spec whose layout
        // matches but whose recording we corrupt at the totals level is not
        // reachable either — so assert the trivial case: an empty run is
        // clean, and the end-state diff sees the initial memory image.
        let report = sim.audit(&spec);
        assert!(report.is_clean());
        assert_eq!(report.steps_checked, 0);
    }

    #[test]
    fn model_labels_are_stable() {
        assert_eq!(model_label(CostModel::Dsm), "dsm");
        assert_eq!(
            model_label(CostModel::Cc(CcConfig {
                protocol: Protocol::WriteBack,
                lfcu: true,
                interconnect: Interconnect::IdealDirectory,
            })),
            "cc-wb-lfcu-dir"
        );
    }
}
