//! Differential audit layer: naive shadow re-execution of a recorded run.
//!
//! The incremental replay engine ([`crate::sim`]) earns its speed from
//! checkpoints, rolling-hash fingerprints and event-walk surgery — three
//! mechanisms that could each hide a silent divergence between the fast path
//! and ground truth. This module is the ground truth: [`Simulator::audit`]
//! re-runs a recorded schedule step by step under a *naive* reference
//! implementation of memory semantics and of each of the four standard cost
//! models — no checkpoints, no fingerprints, no surgery, no shared code with
//! the incremental path beyond the type definitions — and diffs, per step,
//! every operation result, RMR/message/invalidation charge and cache-validity
//! set, plus the final memory image, [`Totals`] and per-process stats,
//! against what the fast path recorded.
//!
//! The walk under the recording's own cost model is a *full* diff (events,
//! charges, end state); the walks under the remaining standard models check
//! that the functional stream is model-independent and that the production
//! [`CostState`] agrees with the naive pricing rules under every model, not
//! just the one the run happened to use.
//!
//! On the first divergence the audit stops and reports an
//! [`AuditDivergence`] naming the schedule step, the process, the memory
//! location (by label) and the expected vs. actual value — renderable as
//! JSON for machine consumption by `--audit` drivers.

use crate::event::Event;
use crate::history_label::Labels;
use crate::ids::{Addr, ProcId, Word};
use crate::machine::{Call, CallKind, Step};
use crate::model::{AccessCost, CcConfig, CostModel, CostState, Interconnect, Protocol};
use crate::op::{Applied, Op};
use crate::sim::{ProcStats, SimSpec, Simulator, Totals};
use crate::source::CallSource;
use std::collections::BTreeSet;
use std::fmt;

/// Structured diagnostic for the first point where the fast path and the
/// naive reference disagree.
///
/// `expected` is the naive reference's value; `actual` is what the fast
/// incremental path recorded (or computed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuditDivergence {
    /// Label of the cost model being audited when the divergence appeared
    /// (e.g. `"dsm"`, `"cc-wt-dir"`).
    pub model: String,
    /// Schedule index of the divergent step (= the schedule length for
    /// end-state divergences).
    pub step: usize,
    /// Index into the recorded event log (= the log length for end-state
    /// divergences).
    pub event: usize,
    /// The process involved, if the divergence is attributable to one.
    pub pid: Option<ProcId>,
    /// The memory location involved, by layout label (or `"-"`).
    pub location: String,
    /// Which audited quantity diverged (e.g. `"result"`, `"cost.rmr"`,
    /// `"model.messages"`, `"cache.holders"`, `"totals.rmrs"`).
    pub field: String,
    /// The naive reference's value, rendered as text.
    pub expected: String,
    /// The fast path's value, rendered as text.
    pub actual: String,
}

impl AuditDivergence {
    /// Renders the diagnostic as a single JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let pid = self
            .pid
            .map_or_else(|| "null".to_string(), |p| p.0.to_string());
        format!(
            "{{\"model\": \"{}\", \"step\": {}, \"event\": {}, \"pid\": {}, \"location\": \"{}\", \"field\": \"{}\", \"expected\": \"{}\", \"actual\": \"{}\"}}",
            json_escape(&self.model),
            self.step,
            self.event,
            pid,
            json_escape(&self.location),
            json_escape(&self.field),
            json_escape(&self.expected),
            json_escape(&self.actual),
        )
    }
}

impl fmt::Display for AuditDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pid = self.pid.map_or_else(|| "-".to_string(), |p| p.to_string());
        write!(
            f,
            "audit divergence [{}] at step {} (event {}, {} @ {}): {} expected {}, got {}",
            self.model,
            self.step,
            self.event,
            pid,
            self.location,
            self.field,
            self.expected,
            self.actual
        )
    }
}

/// Outcome of one [`Simulator::audit`] run.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Cost models the audit walked (the recording's own model plus the
    /// remaining standard models; a divergence stops the walk early).
    pub models_checked: usize,
    /// Schedule steps shadow-executed, summed over all model walks.
    pub steps_checked: usize,
    /// Recorded events compared, summed over all model walks.
    pub events_checked: usize,
    /// The first divergence found, if any.
    pub divergence: Option<AuditDivergence>,
}

impl AuditReport {
    /// Whether the fast path matched the naive reference everywhere.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergence.is_none()
    }

    /// Renders the report as a single JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"clean\": {}, \"models_checked\": {}, \"steps_checked\": {}, \"events_checked\": {}, \"divergence\": {}}}",
            self.is_clean(),
            self.models_checked,
            self.steps_checked,
            self.events_checked,
            self.divergence
                .as_ref()
                .map_or_else(|| "null".to_string(), AuditDivergence::to_json),
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The four standard cost-model configurations every audit walks (the same
/// set the determinism-contract tests sweep).
fn standard_models() -> [CostModel; 4] {
    [
        CostModel::Dsm,
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteThrough,
            lfcu: false,
            interconnect: Interconnect::IdealDirectory,
        }),
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteBack,
            lfcu: false,
            interconnect: Interconnect::Bus,
        }),
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteBack,
            lfcu: true,
            interconnect: Interconnect::IdealDirectory,
        }),
    ]
}

fn model_label(model: CostModel) -> String {
    match model {
        CostModel::Dsm => "dsm".to_string(),
        CostModel::Cc(cfg) => {
            let proto = match cfg.protocol {
                Protocol::WriteThrough => "wt",
                Protocol::WriteBack => "wb",
            };
            let ic = match cfg.interconnect {
                Interconnect::Bus => "bus",
                Interconnect::IdealDirectory => "dir",
                Interconnect::StatelessBroadcast => "bcast",
            };
            let lfcu = if cfg.lfcu { "-lfcu" } else { "" };
            format!("cc-{proto}{lfcu}-{ic}")
        }
    }
}

/// One naive memory cell: value, last nontrivial writer, LL reservations.
/// Deliberately re-implemented with plain collections, independent of
/// [`crate::mem::Memory`].
#[derive(Clone)]
struct NaiveCell {
    value: Word,
    last_writer: Option<ProcId>,
    reserved: BTreeSet<ProcId>,
}

impl NaiveCell {
    fn overwrite(&mut self, pid: ProcId, value: Word) {
        self.value = value;
        self.last_writer = Some(pid);
        self.reserved.clear();
    }
}

/// Naive re-implementation of the atomic operation semantics of §2.
/// Returns `(result, nontrivial, failed_comparison)`.
fn naive_apply(cell: &mut NaiveCell, pid: ProcId, op: Op) -> (Word, bool, bool) {
    match op {
        Op::Read(_) => (cell.value, false, false),
        Op::Ll(_) => {
            cell.reserved.insert(pid);
            (cell.value, false, false)
        }
        Op::Write(_, w) => {
            cell.overwrite(pid, w);
            (w, true, false)
        }
        Op::Cas(_, expected, new) => {
            let old = cell.value;
            if old == expected {
                cell.overwrite(pid, new);
                (old, true, false)
            } else {
                (old, false, true)
            }
        }
        Op::Sc(_, w) => {
            if cell.reserved.contains(&pid) {
                cell.overwrite(pid, w);
                (1, true, false)
            } else {
                (0, false, true)
            }
        }
        Op::Faa(_, d) => {
            let old = cell.value;
            cell.overwrite(pid, old.wrapping_add(d));
            (old, true, false)
        }
        Op::Fas(_, w) => {
            let old = cell.value;
            cell.overwrite(pid, w);
            (old, true, false)
        }
        Op::Tas(_) => {
            let old = cell.value;
            cell.overwrite(pid, 1);
            (old, true, false)
        }
    }
}

/// Naive re-implementation of the pricing rules of §2/§8, straight from the
/// definitions, with a plain `BTreeSet` as the cache-validity set.
fn naive_charge(
    model: CostModel,
    n_procs: usize,
    owner: Option<ProcId>,
    valid: &mut BTreeSet<ProcId>,
    pid: ProcId,
    nontrivial: bool,
    failed_comparison: bool,
) -> AccessCost {
    let cfg = match model {
        CostModel::Dsm => {
            // DSM: remote iff the cell lives in another module. Stateless.
            let rmr = owner != Some(pid);
            return AccessCost {
                rmr,
                messages: u64::from(rmr),
                invalidations: 0,
            };
        }
        CostModel::Cc(cfg) => cfg,
    };
    if failed_comparison && cfg.lfcu {
        // LFCU: failed comparison primitives are applied locally, for free.
        return AccessCost::default();
    }
    if !nontrivial {
        // Trivial access: a cache hit if this process holds a valid copy,
        // otherwise one fetch that installs a copy.
        let rmr = !valid.contains(&pid);
        valid.insert(pid);
        return AccessCost {
            rmr,
            messages: u64::from(rmr),
            invalidations: 0,
        };
    }
    // Nontrivial access.
    let holders_elsewhere = valid.iter().filter(|&&q| q != pid).count() as u64;
    let rmr = match cfg.protocol {
        Protocol::WriteThrough => true,
        Protocol::WriteBack => !(valid.contains(&pid) && holders_elsewhere == 0),
    };
    let coherence = match cfg.interconnect {
        Interconnect::Bus => u64::from(holders_elsewhere > 0),
        Interconnect::IdealDirectory => holders_elsewhere,
        Interconnect::StatelessBroadcast => {
            if rmr {
                n_procs as u64 - 1
            } else {
                0
            }
        }
    };
    let invalidations = if cfg.lfcu { 0 } else { holders_elsewhere };
    if cfg.lfcu {
        // Write-update: remote copies are refreshed, not destroyed.
        valid.insert(pid);
    } else {
        valid.clear();
        valid.insert(pid);
    }
    AccessCost {
        rmr,
        messages: u64::from(rmr) + coherence,
        invalidations,
    }
}

/// Per-process shadow executor state (mirrors the simulator's private
/// `ProcState`, rebuilt independently from the spec's call sources).
struct ShadowProc {
    source: Box<dyn CallSource>,
    current: Option<Call>,
    last_op_result: Option<Word>,
    last_return: Option<Word>,
    runnable: bool,
    stats: ProcStats,
}

/// One shadow walk of the recorded schedule under one cost model.
struct Walk<'a> {
    sim: &'a Simulator,
    spec: &'a SimSpec,
    labels: Labels,
    model: CostModel,
    mlabel: String,
    /// Full diff (events + charges + end state) vs. charge-only cross-check.
    full: bool,
    cursor: usize,
    step: usize,
    events_checked: usize,
    cells: Vec<NaiveCell>,
    valid: Vec<BTreeSet<ProcId>>,
    /// Production cost-model state driven in parallel with the naive one, so
    /// a pricing divergence is localized to the `CostState` implementation
    /// (`model.*` fields) rather than to the replay engine (`cost.*` fields).
    fast: CostState,
    procs: Vec<ShadowProc>,
    totals: Totals,
}

impl<'a> Walk<'a> {
    fn new(sim: &'a Simulator, spec: &'a SimSpec, model: CostModel, full: bool) -> Self {
        let cells = (0..spec.layout.len())
            .map(|a| NaiveCell {
                value: spec.layout.initial_value(Addr(a as u32)),
                last_writer: None,
                reserved: BTreeSet::new(),
            })
            .collect();
        let procs = spec
            .sources
            .iter()
            .map(|s| ShadowProc {
                source: s.clone(),
                current: None,
                last_op_result: None,
                last_return: None,
                runnable: true,
                stats: ProcStats::default(),
            })
            .collect();
        Walk {
            sim,
            spec,
            labels: spec.layout.labels(),
            model,
            mlabel: model_label(model),
            full,
            cursor: 0,
            step: 0,
            events_checked: 0,
            cells,
            valid: vec![BTreeSet::new(); spec.layout.len()],
            fast: CostState::new(model, spec.n(), spec.layout.len()),
            procs,
            totals: Totals::default(),
        }
    }

    fn diverge(
        &self,
        event: usize,
        pid: Option<ProcId>,
        location: &str,
        field: &str,
        expected: impl fmt::Display,
        actual: impl fmt::Display,
    ) -> AuditDivergence {
        AuditDivergence {
            model: self.mlabel.clone(),
            step: self.step,
            event,
            pid,
            location: location.to_string(),
            field: field.to_string(),
            expected: expected.to_string(),
            actual: actual.to_string(),
        }
    }

    /// Consumes and returns the next recorded event, skipping `Crash` events
    /// (crashes are external actions with no schedule entry, outside the
    /// audit's re-execution scope). `None` when the recording is exhausted.
    fn take_recorded(&mut self) -> Option<(usize, Event)> {
        let events = self.sim.history().events();
        while self.cursor < events.len() {
            let idx = self.cursor;
            self.cursor += 1;
            if matches!(events[idx], Event::Crash { .. }) {
                continue;
            }
            self.events_checked += 1;
            return Some((idx, events[idx].clone()));
        }
        None
    }

    fn recording_exhausted(&self, pid: ProcId, wanted: &str) -> AuditDivergence {
        self.diverge(
            self.sim.history().events().len(),
            Some(pid),
            "-",
            "events",
            format!("{wanted} event for {pid}"),
            "recorded history ended early",
        )
    }

    fn expect_invoke(
        &mut self,
        pid: ProcId,
        kind: CallKind,
        name: &str,
    ) -> Option<AuditDivergence> {
        let Some((idx, ev)) = self.take_recorded() else {
            return Some(self.recording_exhausted(pid, "invoke"));
        };
        match ev {
            Event::Invoke {
                pid: rp,
                kind: rk,
                name: rn,
            } if rp == pid && rk == kind && rn == name => None,
            other => Some(self.diverge(
                idx,
                Some(pid),
                "-",
                "event",
                format!("Invoke {{ {pid}, kind {}, {name:?} }}", kind.0),
                format!("{other:?}"),
            )),
        }
    }

    fn expect_return(
        &mut self,
        pid: ProcId,
        kind: CallKind,
        value: Word,
    ) -> Option<AuditDivergence> {
        let Some((idx, ev)) = self.take_recorded() else {
            return Some(self.recording_exhausted(pid, "return"));
        };
        match ev {
            Event::Return {
                pid: rp,
                kind: rk,
                value: rv,
            } if rp == pid && rk == kind => {
                if rv == value {
                    None
                } else {
                    Some(self.diverge(idx, Some(pid), "-", "return.value", value, rv))
                }
            }
            other => Some(self.diverge(
                idx,
                Some(pid),
                "-",
                "event",
                format!("Return {{ {pid}, kind {}, {value} }}", kind.0),
                format!("{other:?}"),
            )),
        }
    }

    fn expect_terminate(&mut self, pid: ProcId) -> Option<AuditDivergence> {
        let Some((idx, ev)) = self.take_recorded() else {
            return Some(self.recording_exhausted(pid, "terminate"));
        };
        match ev {
            Event::Terminate { pid: rp } if rp == pid => None,
            other => Some(self.diverge(
                idx,
                Some(pid),
                "-",
                "event",
                format!("Terminate {{ {pid} }}"),
                format!("{other:?}"),
            )),
        }
    }

    /// Re-applies one recorded injection (mirrors `Simulator::inject_call`).
    fn apply_injection(&mut self, pid: ProcId, call: Call) -> Option<AuditDivergence> {
        if self.procs[pid.index()].current.is_some() {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                "-",
                "injection",
                "no call in progress",
                "recorded injection into a process mid-call",
            ));
        }
        if let Some(d) = self.expect_invoke(pid, call.kind, call.name) {
            return Some(d);
        }
        let p = &mut self.procs[pid.index()];
        p.runnable = true;
        p.current = Some(call);
        p.last_op_result = None;
        None
    }

    /// Shadow-executes one memory access and diffs it against the recording.
    fn shadow_access(&mut self, pid: ProcId, op: Op) -> Option<AuditDivergence> {
        let addr = op.addr();
        let owner = self.spec.layout.owner(addr);
        let cell = &mut self.cells[addr.index()];
        let sees = if matches!(op, Op::Write(..)) {
            None
        } else {
            cell.last_writer.filter(|&q| q != pid)
        };
        let touches = owner.filter(|&q| q != pid);
        let (result, nontrivial, failed_comparison) = naive_apply(cell, pid, op);
        let naive = naive_charge(
            self.model,
            self.spec.n(),
            owner,
            &mut self.valid[addr.index()],
            pid,
            nontrivial,
            failed_comparison,
        );
        let fastc = self.fast.charge(
            pid,
            addr,
            owner,
            &Applied {
                result,
                nontrivial,
                failed_comparison,
            },
        );
        let st = &mut self.procs[pid.index()].stats;
        st.accesses += 1;
        st.rmrs += u64::from(naive.rmr);
        st.messages += naive.messages;
        self.totals.accesses += 1;
        self.totals.rmrs += u64::from(naive.rmr);
        self.totals.messages += naive.messages;
        self.totals.invalidations += naive.invalidations;
        self.procs[pid.index()].last_op_result = Some(result);

        let loc = self.labels.name(addr);
        // Production cost model vs. naive pricing rules (all model walks).
        if fastc.rmr != naive.rmr {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                &loc,
                "model.rmr",
                naive.rmr,
                fastc.rmr,
            ));
        }
        if fastc.messages != naive.messages {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                &loc,
                "model.messages",
                naive.messages,
                fastc.messages,
            ));
        }
        if fastc.invalidations != naive.invalidations {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                &loc,
                "model.invalidations",
                naive.invalidations,
                fastc.invalidations,
            ));
        }
        // Cache-validity state: naive set vs. production holders.
        let fast_holders = self.fast.holders(addr);
        let naive_holders: Vec<ProcId> = self.valid[addr.index()].iter().copied().collect();
        if fast_holders != naive_holders {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                &loc,
                "cache.holders",
                format!("{naive_holders:?}"),
                format!("{fast_holders:?}"),
            ));
        }

        // The recorded event (functional fields are model-independent, so
        // they are diffed in every walk; costs only in the full walk).
        let Some((idx, ev)) = self.take_recorded() else {
            return Some(self.recording_exhausted(pid, "access"));
        };
        let Event::Access {
            pid: rp,
            op: rop,
            result: rres,
            wrote: rwrote,
            cost: rcost,
            sees: rsees,
            touches: rtouches,
        } = ev
        else {
            return Some(self.diverge(
                idx,
                Some(pid),
                &loc,
                "event",
                format!("Access {{ {pid}, {op} }}"),
                format!("{ev:?}"),
            ));
        };
        if rp != pid || rop != op {
            return Some(self.diverge(
                idx,
                Some(pid),
                &loc,
                "event",
                format!("Access {{ {pid}, {op} }}"),
                format!("Access {{ {rp}, {rop} }}"),
            ));
        }
        if rres != result {
            return Some(self.diverge(idx, Some(pid), &loc, "result", result, rres));
        }
        if rwrote != nontrivial {
            return Some(self.diverge(idx, Some(pid), &loc, "wrote", nontrivial, rwrote));
        }
        if rsees != sees {
            return Some(self.diverge(
                idx,
                Some(pid),
                &loc,
                "sees",
                format!("{sees:?}"),
                format!("{rsees:?}"),
            ));
        }
        if rtouches != touches {
            return Some(self.diverge(
                idx,
                Some(pid),
                &loc,
                "touches",
                format!("{touches:?}"),
                format!("{rtouches:?}"),
            ));
        }
        if self.full {
            if rcost.rmr != naive.rmr {
                return Some(self.diverge(idx, Some(pid), &loc, "cost.rmr", naive.rmr, rcost.rmr));
            }
            if rcost.messages != naive.messages {
                return Some(self.diverge(
                    idx,
                    Some(pid),
                    &loc,
                    "cost.messages",
                    naive.messages,
                    rcost.messages,
                ));
            }
            if rcost.invalidations != naive.invalidations {
                return Some(self.diverge(
                    idx,
                    Some(pid),
                    &loc,
                    "cost.invalidations",
                    naive.invalidations,
                    rcost.invalidations,
                ));
            }
        }
        None
    }

    /// Shadow-executes one schedule step (mirrors `Simulator::step` +
    /// `transition`).
    fn shadow_step(&mut self, pid: ProcId) -> Option<AuditDivergence> {
        if !self.procs[pid.index()].runnable {
            return Some(self.diverge(
                self.cursor,
                Some(pid),
                "-",
                "schedule",
                format!("{pid} runnable"),
                "recorded step by a non-runnable process",
            ));
        }
        self.totals.steps += 1;
        self.procs[pid.index()].stats.steps += 1;
        if self.procs[pid.index()].current.is_none() {
            let prev = self.procs[pid.index()].last_return;
            match self.procs[pid.index()].source.next_call(prev) {
                None => {
                    self.procs[pid.index()].runnable = false;
                    return self.expect_terminate(pid);
                }
                Some(call) => {
                    if let Some(d) = self.expect_invoke(pid, call.kind, call.name) {
                        return Some(d);
                    }
                    self.procs[pid.index()].current = Some(call);
                    self.procs[pid.index()].last_op_result = None;
                }
            }
        }
        let last = self.procs[pid.index()].last_op_result;
        let step = self.procs[pid.index()]
            .current
            .as_mut()
            .expect("current call set above")
            .machine
            .step(last);
        match step {
            Step::Op(op) => self.shadow_access(pid, op),
            Step::Return(value) => {
                let call = self.procs[pid.index()]
                    .current
                    .take()
                    .expect("current call");
                if let Some(d) = self.expect_return(pid, call.kind, value) {
                    return Some(d);
                }
                let p = &mut self.procs[pid.index()];
                p.last_return = Some(value);
                p.stats.calls_completed += 1;
                None
            }
        }
    }

    /// End-state diff (full walk only): totals, per-process stats, memory
    /// image and cache-validity table.
    fn check_end_state(&mut self) -> Option<AuditDivergence> {
        let evlen = self.sim.history().events().len();
        let t = self.sim.totals();
        if t.steps != self.totals.steps {
            return Some(self.diverge(
                evlen,
                None,
                "-",
                "totals.steps",
                self.totals.steps,
                t.steps,
            ));
        }
        if t.accesses != self.totals.accesses {
            return Some(self.diverge(
                evlen,
                None,
                "-",
                "totals.accesses",
                self.totals.accesses,
                t.accesses,
            ));
        }
        if t.rmrs != self.totals.rmrs {
            return Some(self.diverge(evlen, None, "-", "totals.rmrs", self.totals.rmrs, t.rmrs));
        }
        if t.messages != self.totals.messages {
            return Some(self.diverge(
                evlen,
                None,
                "-",
                "totals.messages",
                self.totals.messages,
                t.messages,
            ));
        }
        if t.invalidations != self.totals.invalidations {
            return Some(self.diverge(
                evlen,
                None,
                "-",
                "totals.invalidations",
                self.totals.invalidations,
                t.invalidations,
            ));
        }
        for i in 0..self.spec.n() {
            let p = ProcId(i as u32);
            let want = self.procs[i].stats;
            let got = self.sim.proc_stats(p);
            if want != got {
                return Some(self.diverge(
                    evlen,
                    Some(p),
                    "-",
                    "stats",
                    format!("{want:?}"),
                    format!("{got:?}"),
                ));
            }
        }
        for a in 0..self.spec.layout.len() {
            let addr = Addr(a as u32);
            let loc = self.labels.name(addr);
            let cell = &self.cells[a];
            if self.sim.memory().peek(addr) != cell.value {
                return Some(self.diverge(
                    evlen,
                    None,
                    &loc,
                    "memory.value",
                    cell.value,
                    self.sim.memory().peek(addr),
                ));
            }
            if self.sim.memory().last_writer(addr) != cell.last_writer {
                return Some(self.diverge(
                    evlen,
                    None,
                    &loc,
                    "memory.last_writer",
                    format!("{:?}", cell.last_writer),
                    format!("{:?}", self.sim.memory().last_writer(addr)),
                ));
            }
            let live_holders = self.sim.cost_state().holders(addr);
            let naive_holders: Vec<ProcId> = self.valid[a].iter().copied().collect();
            if live_holders != naive_holders {
                return Some(self.diverge(
                    evlen,
                    None,
                    &loc,
                    "cache.holders",
                    format!("{naive_holders:?}"),
                    format!("{live_holders:?}"),
                ));
            }
        }
        None
    }

    /// Walks the whole recorded schedule, re-applying injections at their
    /// recorded positions (same loop as the replay engine's `run_filtered`,
    /// but with no erasure, no checkpoints and no fingerprints).
    fn run(&mut self) -> Option<AuditDivergence> {
        let schedule_len = self.sim.schedule().len();
        let mut next_inj = 0usize;
        for i in 0..schedule_len {
            self.step = i;
            loop {
                let inj = match self.sim.injections().get(next_inj) {
                    Some(inj) if inj.at <= i => (inj.pid, inj.call.clone()),
                    _ => break,
                };
                next_inj += 1;
                if let Some(d) = self.apply_injection(inj.0, inj.1) {
                    return Some(d);
                }
            }
            let pid = self.sim.schedule()[i];
            if let Some(d) = self.shadow_step(pid) {
                return Some(d);
            }
        }
        self.step = schedule_len;
        while let Some(inj) = self.sim.injections().get(next_inj) {
            let (ipid, icall) = (inj.pid, inj.call.clone());
            next_inj += 1;
            if let Some(d) = self.apply_injection(ipid, icall) {
                return Some(d);
            }
        }
        // The shadow execution is over: nothing but crashes may remain in
        // the recorded log.
        if let Some((idx, ev)) = self.take_recorded() {
            return Some(self.diverge(
                idx,
                Some(ev.pid()),
                "-",
                "events",
                "end of execution",
                format!("{ev:?} beyond shadow execution"),
            ));
        }
        if self.full {
            self.check_end_state()
        } else {
            None
        }
    }
}

/// Runs the full differential audit for [`Simulator::audit`].
pub(crate) fn run_audit(sim: &Simulator, spec: &SimSpec) -> AuditReport {
    let mut report = AuditReport {
        models_checked: 0,
        steps_checked: 0,
        events_checked: 0,
        divergence: None,
    };
    let mut models = vec![spec.model];
    for m in standard_models() {
        if m != spec.model {
            models.push(m);
        }
    }
    for (k, model) in models.into_iter().enumerate() {
        let mut walk = Walk::new(sim, spec, model, k == 0);
        let d = walk.run();
        report.models_checked += 1;
        report.steps_checked += walk.step;
        report.events_checked += walk.events_checked;
        if d.is_some() {
            report.divergence = d;
            break;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::OpSequence;
    use crate::sched::{run_to_completion, SeededRandom};
    use crate::source::{Script, ScriptedCall};
    use std::sync::Arc;

    fn mixed_spec(n: usize, calls: usize, model: CostModel) -> SimSpec {
        let mut layout = MemLayout::new();
        let a = layout.alloc_global(0);
        layout.set_label(a, "A");
        let b = layout.alloc_global(5);
        layout.set_label(b, "B");
        let mine = layout.alloc_per_process_array(n, 0);
        layout.set_array_label(mine, "M");
        let sources = (0..n)
            .map(|i| {
                let pid = ProcId(i as u32);
                let mut cs = Vec::new();
                for k in 0..calls {
                    let ops = match (i + k) % 5 {
                        0 => vec![Op::Read(a), Op::Write(mine.at(pid.index()), k as Word)],
                        1 => vec![Op::Faa(a, 1), Op::Read(b)],
                        2 => vec![Op::Cas(b, 5, 6), Op::Read(mine.at(pid.index()))],
                        3 => vec![Op::Ll(b), Op::Sc(b, 9)],
                        _ => vec![Op::Tas(a), Op::Fas(b, 7)],
                    };
                    cs.push(ScriptedCall::new(
                        CallKind(k as u32),
                        "mix",
                        Arc::new(move || {
                            Box::new(OpSequence::new(ops.clone()))
                                as Box<dyn crate::machine::ProcedureCall>
                        }),
                    ));
                }
                Box::new(Script::new(cs)) as Box<dyn CallSource>
            })
            .collect();
        SimSpec {
            layout,
            sources,
            model,
        }
    }

    use crate::mem::MemLayout;

    #[test]
    fn clean_recording_audits_clean_under_all_models() {
        for model in standard_models() {
            let spec = mixed_spec(4, 3, model);
            let mut sim = Simulator::new(&spec);
            assert!(run_to_completion(
                &mut sim,
                &mut SeededRandom::new(11),
                1_000_000
            ));
            let report = sim.audit(&spec);
            assert!(
                report.is_clean(),
                "{model:?}: {}",
                report.divergence.unwrap()
            );
            assert_eq!(report.models_checked, 4);
            assert!(report.steps_checked > 0 && report.events_checked > 0);
            assert!(report.to_json().contains("\"clean\": true"));
        }
    }

    #[test]
    fn audit_covers_injected_calls() {
        let spec = mixed_spec(3, 2, CostModel::cc_default());
        let mut sim = Simulator::new(&spec);
        assert!(run_to_completion(
            &mut sim,
            &mut SeededRandom::new(4),
            1_000_000
        ));
        sim.inject_call(
            ProcId(1),
            Call::new(
                CallKind(50),
                "sig",
                Box::new(OpSequence::new(vec![Op::Write(Addr(0), 42)])),
            ),
        );
        while sim.is_runnable(ProcId(1)) {
            let _ = sim.step(ProcId(1));
        }
        let report = sim.audit(&spec);
        assert!(report.is_clean(), "{}", report.divergence.unwrap());
    }

    #[test]
    fn tampered_rmr_charge_is_caught_and_localized() {
        let spec = mixed_spec(3, 2, CostModel::Dsm);
        let mut sim = Simulator::new(&spec);
        assert!(run_to_completion(
            &mut sim,
            &mut SeededRandom::new(7),
            1_000_000
        ));
        // Flip the RMR flag of the first recorded global-cell access.
        let mut want_pid = None;
        for e in sim.history_mut().events_mut() {
            if let Event::Access { pid, op, cost, .. } = e {
                if op.addr() == Addr(0) {
                    want_pid = Some(*pid);
                    cost.rmr = !cost.rmr;
                    break;
                }
            }
        }
        let want_pid = want_pid.expect("workload accesses cell A");
        let report = sim.audit(&spec);
        let d = report.divergence.expect("tamper must be caught");
        assert_eq!(d.field, "cost.rmr");
        assert_eq!(d.pid, Some(want_pid));
        assert_eq!(d.location, "A", "diagnostic names the tampered location");
        assert_eq!(d.model, "dsm");
        assert!(d.step < sim.schedule().len(), "step index is localized");
        let json = d.to_json();
        for key in ["\"step\"", "\"pid\"", "\"location\"", "\"field\""] {
            assert!(json.contains(key), "JSON diagnostic has {key}: {json}");
        }
    }

    #[test]
    fn tampered_result_is_caught_in_cross_model_walks_too() {
        let spec = mixed_spec(3, 2, CostModel::cc_default());
        let mut sim = Simulator::new(&spec);
        assert!(run_to_completion(
            &mut sim,
            &mut SeededRandom::new(9),
            1_000_000
        ));
        for e in sim.history_mut().events_mut() {
            if let Event::Access { op, result, .. } = e {
                if matches!(op, Op::Faa(..)) {
                    *result = result.wrapping_add(1000);
                    break;
                }
            }
        }
        let report = sim.audit(&spec);
        let d = report.divergence.expect("tampered result must be caught");
        assert_eq!(d.field, "result");
    }

    #[test]
    fn tampered_totals_are_caught_by_end_state_diff() {
        let spec = mixed_spec(3, 2, CostModel::Dsm);
        let sim = Simulator::new(&spec);
        // A fresh simulator with a recorded history from a *different* run
        // cannot happen through the public API; instead tamper with totals
        // indirectly by auditing a stepped sim against a spec whose layout
        // matches but whose recording we corrupt at the totals level is not
        // reachable either — so assert the trivial case: an empty run is
        // clean, and the end-state diff sees the initial memory image.
        let report = sim.audit(&spec);
        assert!(report.is_clean());
        assert_eq!(report.steps_checked, 0);
    }

    #[test]
    fn model_labels_are_stable() {
        assert_eq!(model_label(CostModel::Dsm), "dsm");
        assert_eq!(
            model_label(CostModel::Cc(CcConfig {
                protocol: Protocol::WriteBack,
                lfcu: true,
                interconnect: Interconnect::IdealDirectory,
            })),
            "cc-wb-lfcu-dir"
        );
    }
}
