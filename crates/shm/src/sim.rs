//! The simulator: deterministic execution of step machines over shared
//! memory with exact cost accounting, schedule recording, and replay.

use crate::event::{Event, History};
use crate::ids::{ProcId, Word};
use crate::machine::{Call, CallKind, Step};
use crate::mem::{MemLayout, Memory};
use crate::model::{AccessCost, CostModel, CostState};
use crate::op::Op;
use crate::source::CallSource;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Everything needed to (re)start an execution from the initial state.
///
/// Replaying a recorded schedule against a fresh simulator built from the
/// same spec reproduces the execution exactly; replaying it with some
/// processes *erased* implements Lemma 6.7's history surgery.
#[derive(Clone, Debug)]
pub struct SimSpec {
    /// The shared-memory allocation plan.
    pub layout: MemLayout,
    /// Per-process call sources; `sources.len()` is the number of processes.
    pub sources: Vec<Box<dyn CallSource>>,
    /// The cost model to price accesses under.
    pub model: CostModel,
}

impl SimSpec {
    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.sources.len()
    }
}

/// Execution status of a process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Still able to take steps.
    Runnable,
    /// Call source exhausted; the process terminated normally.
    Terminated,
    /// Stopped while performing a procedure call.
    Crashed,
}

/// Per-process statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProcStats {
    /// Steps taken (state-machine transitions, including returns).
    pub steps: u64,
    /// Memory accesses performed.
    pub accesses: u64,
    /// Remote memory references incurred.
    pub rmrs: u64,
    /// Interconnect messages generated.
    pub messages: u64,
    /// Procedure calls completed.
    pub calls_completed: u64,
}

/// Aggregate statistics for the whole execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Totals {
    /// Steps taken by all processes.
    pub steps: u64,
    /// Memory accesses performed by all processes.
    pub accesses: u64,
    /// Total RMRs.
    pub rmrs: u64,
    /// Total interconnect messages.
    pub messages: u64,
    /// Total cache invalidations (CC models only).
    pub invalidations: u64,
}

/// What one `step` call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepReport {
    /// The process performed a memory access.
    Access {
        /// The operation performed.
        op: Op,
        /// The operation's result word.
        result: Word,
        /// The access's price.
        cost: AccessCost,
    },
    /// The process's current call returned.
    Returned {
        /// Domain tag of the completed call.
        kind: CallKind,
        /// Returned word.
        value: Word,
    },
    /// The process terminated (its source is exhausted).
    Terminated,
    /// The process was not runnable; nothing happened and the step was not
    /// recorded in the schedule.
    NotRunnable,
}

/// What one *single* `step` call would do next (see
/// [`Simulator::peek_transition`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionPeek {
    /// The step will perform this memory access.
    Access(Op),
    /// The step will complete the current (or immediately invoked) call.
    Return {
        /// Domain tag of the completing call.
        kind: CallKind,
        /// The value it will return.
        value: Word,
    },
    /// The step will terminate the process.
    WillTerminate,
    /// The process is not runnable.
    NotRunnable,
}

/// What the next effective step of a process will be (computed without
/// touching shared memory; see [`Simulator::peek_next_op`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Peek {
    /// The next memory access the process will perform (possibly after one
    /// or more intervening return/invoke steps).
    Access(Op),
    /// The process will terminate without performing another access.
    WillTerminate,
    /// The process is not runnable.
    NotRunnable,
}

#[derive(Clone, Debug)]
pub(crate) struct ProcState {
    pub(crate) source: Box<dyn CallSource>,
    pub(crate) current: Option<Call>,
    pub(crate) last_op_result: Option<Word>,
    pub(crate) last_return: Option<Word>,
    pub(crate) status: Status,
    pub(crate) stats: ProcStats,
}

/// An injected call, recorded so filtered replay can re-apply it.
///
/// `at` is the schedule position the injection preceded: the call was
/// injected after schedule entry `at - 1` executed and before entry `at`.
#[derive(Clone, Debug)]
pub(crate) struct Injection {
    pub(crate) at: usize,
    pub(crate) pid: ProcId,
    pub(crate) call: Call,
}

/// An O(live-state) snapshot of a [`Simulator`] mid-execution: memory
/// cells, cost-model validity state, per-process call state and stats,
/// aggregate totals, and the per-process projection fingerprints — but
/// *not* the event log or the schedule (both stay in the recording
/// simulator).
///
/// Taken every [`Simulator::enable_checkpoints`] interval during recording,
/// checkpoints let an erasure replay only the schedule suffix after the
/// erased process's first step ([`Simulator::filtered_replay`]) instead of
/// the whole execution — the incremental replay engine the lower-bound
/// adversary runs on.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    schedule_len: usize,
    history_len: usize,
    memory: Memory,
    cost: CostState,
    procs: Vec<Arc<ProcState>>,
    totals: Totals,
    injected: u64,
    proj_hash: Vec<u128>,
    first_touch: Vec<Option<usize>>,
    first_write: Vec<Option<usize>>,
    injections_len: usize,
}

impl Checkpoint {
    /// Number of schedule entries the checkpoint covers.
    #[must_use]
    pub fn schedule_len(&self) -> usize {
        self.schedule_len
    }

    /// Number of history events the checkpoint covers.
    #[must_use]
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    /// The snapshotted memory image (audit chunk seeding).
    pub(crate) fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The snapshotted cost-model state (audit chunk seeding).
    pub(crate) fn cost(&self) -> &CostState {
        &self.cost
    }

    /// The snapshotted per-process machines (audit chunk seeding).
    pub(crate) fn procs(&self) -> &[Arc<ProcState>] {
        &self.procs
    }

    /// The snapshotted aggregate totals (audit chunk seeding).
    pub(crate) fn totals(&self) -> Totals {
        self.totals
    }
}

/// Deterministic shared-memory simulator.
///
/// A `Simulator` advances processes one step at a time under the control of
/// a scheduler (or the lower-bound adversary), records the schedule and a
/// typed [`History`], and prices every access under its [`CostModel`].
///
/// Cloning a simulator snapshots the *entire* execution state — memory,
/// caches, process machines, history — which the adversary uses for
/// tentative exploration.
///
/// # Examples
///
/// ```
/// use shm_sim::{CostModel, MemLayout, Op, OpSequence, Script, ScriptedCall, CallKind, SimSpec, Simulator, ProcId};
/// use std::sync::Arc;
///
/// let mut layout = MemLayout::new();
/// let flag = layout.alloc_global(0);
/// let writer = Script::new(vec![ScriptedCall::new(
///     CallKind(0),
///     "set",
///     Arc::new(move || Box::new(OpSequence::new(vec![Op::Write(flag, 1)]))),
/// )]);
/// let spec = SimSpec { layout, sources: vec![Box::new(writer)], model: CostModel::Dsm };
/// let mut sim = Simulator::new(&spec);
/// while sim.step(ProcId(0)) != shm_sim::StepReport::NotRunnable {}
/// assert_eq!(sim.memory().peek(flag), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    memory: Memory,
    cost: CostState,
    /// Per-process machines, copy-on-write: snapshots and replays share
    /// them by refcount, and [`Arc::make_mut`] clones a process's state
    /// only when it actually steps. An early-aborting certification replay
    /// therefore deep-clones just the processes that move before the
    /// divergence, not all `n`.
    procs: Vec<Arc<ProcState>>,
    history: History,
    schedule: Vec<ProcId>,
    totals: Totals,
    injected: u64,
    /// `first_touch[p]` = schedule index of p's first step, if any.
    first_touch: Vec<Option<usize>>,
    /// `first_write[p]` = schedule index of p's first *nontrivial* (memory-
    /// mutating) access, if any. Trivial accesses touch no survivor-visible
    /// state, so a certification replay only needs to re-execute from here
    /// rather than from the process's first step (see `replay_tail`).
    first_write: Vec<Option<usize>>,
    /// Injected calls in injection order (`at` is nondecreasing).
    injections: Vec<Injection>,
    /// Periodic snapshots in increasing `schedule_len` order. `Rc` so
    /// replayed simulators can carry the prefix checkpoints by reference
    /// instead of deep-cloning O(checkpoints x live state) per erasure.
    checkpoints: Vec<Arc<Checkpoint>>,
    /// Steps between snapshots; 0 = checkpointing disabled.
    ckpt_interval: usize,
}

impl Simulator {
    /// Maximum internal transitions `peek_next_op` will look through before
    /// concluding the process loops forever without accessing memory.
    const PEEK_LIMIT: usize = 65_536;

    /// Builds a fresh simulator in the initial state of `spec`.
    #[must_use]
    pub fn new(spec: &SimSpec) -> Self {
        let memory = Memory::from_layout(&spec.layout);
        let cost = CostState::new(spec.model, spec.n(), spec.layout.len());
        let procs = spec
            .sources
            .iter()
            .map(|s| {
                Arc::new(ProcState {
                    source: s.clone(),
                    current: None,
                    last_op_result: None,
                    last_return: None,
                    status: Status::Runnable,
                    stats: ProcStats::default(),
                })
            })
            .collect();
        let n = spec.n();
        Simulator {
            memory,
            cost,
            procs,
            history: History::new(),
            schedule: Vec::new(),
            totals: Totals::default(),
            injected: 0,
            first_touch: vec![None; n],
            first_write: vec![None; n],
            injections: Vec::new(),
            checkpoints: Vec::new(),
            ckpt_interval: 0,
        }
    }

    /// Replays `schedule` against a fresh simulator built from `spec`,
    /// skipping all steps of processes in `erased`.
    ///
    /// This is the executable form of *erasing* (Lemma 6.7): because step
    /// machines are deterministic and only communicate through memory, the
    /// filtered replay is a legal history, and it is identical (from every
    /// surviving process's point of view) whenever no survivor saw an erased
    /// process.
    #[must_use]
    pub fn replay(
        spec: &SimSpec,
        schedule: &[ProcId],
        erased: &std::collections::BTreeSet<ProcId>,
    ) -> Self {
        let mut sim = Simulator::new(spec);
        for &pid in schedule {
            if !erased.contains(&pid) {
                let _ = sim.step(pid);
            }
        }
        sim
    }

    /// Maximum checkpoints retained before thinning (drop every other one and
    /// double the interval). Bounds checkpoint memory to O(96 × live state).
    const MAX_CHECKPOINTS: usize = 96;

    /// Turns on periodic checkpointing every `interval` steps (0 disables).
    ///
    /// An initial checkpoint of the *current* state is taken immediately, so
    /// incremental replay always has a base to start from even when the
    /// erased process's first step predates every periodic snapshot.
    pub fn enable_checkpoints(&mut self, interval: usize) {
        self.ckpt_interval = interval;
        if interval > 0 && self.checkpoints.is_empty() {
            let snap = self.snapshot();
            self.checkpoints.push(Arc::new(snap));
        }
    }

    /// The configured checkpoint interval (0 = disabled).
    #[must_use]
    pub fn checkpoint_interval(&self) -> usize {
        self.ckpt_interval
    }

    /// Number of checkpoints currently retained.
    #[must_use]
    pub fn checkpoint_count(&self) -> usize {
        self.checkpoints.len()
    }

    /// Schedule index of `pid`'s first step, if it has taken one.
    #[must_use]
    pub fn first_step_of(&self, pid: ProcId) -> Option<usize> {
        self.first_touch[pid.index()]
    }

    /// Captures the current execution state as an O(live-state) checkpoint.
    ///
    /// The checkpoint holds memory, cost state, process machines, totals and
    /// the history's per-process fingerprints — everything needed to resume
    /// stepping — but not the event log or schedule, which remain in `self`.
    #[must_use]
    pub fn snapshot(&self) -> Checkpoint {
        let _span = shm_obs::Span::enter("sim.snapshot");
        shm_obs::counter!("ckpt.snapshot");
        Checkpoint {
            schedule_len: self.schedule.len(),
            history_len: self.history.len(),
            memory: self.memory.clone(),
            cost: self.cost.clone(),
            procs: self.procs.clone(),
            totals: self.totals,
            injected: self.injected,
            proj_hash: self.history.fingerprints(),
            first_touch: self.first_touch.clone(),
            first_write: self.first_write.clone(),
            injections_len: self.injections.len(),
        }
    }

    /// [`Simulator::snapshot`] recycling a previously returned checkpoint's
    /// allocations. Exploration loops snapshot every expanded node; pooling
    /// the checkpoints makes that allocation-free at steady state.
    #[must_use]
    pub fn snapshot_reuse(&self, prev: Option<Checkpoint>) -> Checkpoint {
        let Some(mut c) = prev else {
            return self.snapshot();
        };
        let _span = shm_obs::Span::enter("sim.snapshot");
        shm_obs::counter!("ckpt.snapshot");
        c.schedule_len = self.schedule.len();
        c.history_len = self.history.len();
        c.memory.copy_from(&self.memory);
        c.cost.copy_from(&self.cost);
        if c.procs.len() == self.procs.len() {
            for (dst, src) in c.procs.iter_mut().zip(&self.procs) {
                if !Arc::ptr_eq(dst, src) {
                    *dst = Arc::clone(src);
                }
            }
        } else {
            c.procs.clone_from(&self.procs);
        }
        c.totals = self.totals;
        c.injected = self.injected;
        self.history.fingerprints_into(&mut c.proj_hash);
        c.first_touch.clone_from(&self.first_touch);
        c.first_write.clone_from(&self.first_write);
        c.injections_len = self.injections.len();
        c
    }

    /// Rolls this simulator back to `ckpt`, which must have been taken from
    /// this simulator (or an ancestor clone): the schedule and event log up
    /// to the checkpoint must be the ones the checkpoint was taken under.
    ///
    /// The schedule and history are truncated to the checkpoint; checkpoints
    /// newer than `ckpt` are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `ckpt` is from a longer execution than `self` currently
    /// holds (i.e. it does not describe a prefix of this simulator).
    pub fn restore(&mut self, ckpt: &Checkpoint) {
        let _span = shm_obs::Span::enter("sim.restore");
        shm_obs::counter!("ckpt.restore");
        assert!(
            ckpt.schedule_len <= self.schedule.len() && ckpt.history_len <= self.history.len(),
            "restore: checkpoint does not describe a prefix of this execution"
        );
        self.memory.copy_from(&ckpt.memory);
        self.cost.copy_from(&ckpt.cost);
        if self.procs.len() == ckpt.procs.len() {
            // Fast path for the explorer's step/rollback cycle: only the
            // processes that actually stepped since the checkpoint hold
            // diverged machines; everyone else still shares the snapshot's
            // `Arc` and needs no refcount traffic at all.
            for (dst, src) in self.procs.iter_mut().zip(&ckpt.procs) {
                if !Arc::ptr_eq(dst, src) {
                    *dst = Arc::clone(src);
                }
            }
        } else {
            self.procs.clone_from(&ckpt.procs);
        }
        self.totals = ckpt.totals;
        self.injected = ckpt.injected;
        self.schedule.truncate(ckpt.schedule_len);
        self.history.rewind(ckpt.history_len, &ckpt.proj_hash);
        self.first_touch.clone_from(&ckpt.first_touch);
        self.first_write.clone_from(&ckpt.first_write);
        self.injections.truncate(ckpt.injections_len);
        self.checkpoints
            .retain(|c| c.schedule_len <= ckpt.schedule_len);
    }

    fn maybe_checkpoint(&mut self) {
        if self.ckpt_interval == 0 || self.schedule.len() % self.ckpt_interval != 0 {
            return;
        }
        if self.checkpoints.len() >= Self::MAX_CHECKPOINTS {
            // Thin: keep every other checkpoint and double the interval so
            // memory stays bounded while coverage stays roughly uniform.
            let mut keep = 0usize;
            self.checkpoints.retain(|_| {
                keep += 1;
                (keep - 1) % 2 == 0
            });
            self.ckpt_interval *= 2;
            if self.schedule.len() % self.ckpt_interval != 0 {
                return;
            }
        }
        let snap = self.snapshot();
        self.checkpoints.push(Arc::new(snap));
    }

    /// Builds a simulator resuming from `ckpt`, with this simulator's
    /// schedule prefix and per-checkpoint bookkeeping carried over.
    fn resume_at(&self, ckpt: &Checkpoint) -> Simulator {
        Simulator {
            memory: ckpt.memory.clone(),
            cost: ckpt.cost.clone(),
            procs: ckpt.procs.clone(),
            history: History::seeded(ckpt.proj_hash.clone()),
            schedule: self.schedule[..ckpt.schedule_len].to_vec(),
            totals: ckpt.totals,
            injected: ckpt.injected,
            first_touch: ckpt.first_touch.clone(),
            first_write: ckpt.first_write.clone(),
            injections: self.injections[..ckpt.injections_len].to_vec(),
            checkpoints: self
                .checkpoints
                .iter()
                .filter(|c| c.schedule_len <= ckpt.schedule_len)
                .cloned()
                .collect(),
            ckpt_interval: self.ckpt_interval,
        }
    }

    /// Replays this simulator's recorded schedule with `erased` filtered
    /// out, starting from the latest checkpoint that precedes every erased
    /// process's first step (and every injection targeting an erased
    /// process). Injections into surviving processes are re-applied at their
    /// recorded positions.
    ///
    /// Returns `(replayed, start, prefix_events)`: the replayed simulator,
    /// the schedule position it resumed from, and the length (in events) of
    /// the shared history prefix it did *not* re-execute. The returned
    /// simulator's history holds only suffix events, with fingerprints
    /// covering prefix + suffix. Use [`Simulator::filtered_replay`] for a
    /// spliced full history.
    ///
    /// With `certify`, the replay additionally checks — online, event by
    /// event — that every surviving process reproduces its recorded
    /// projection, returning `None` at the *first* divergent event. This is
    /// what makes refused erasures cheap: an FAA-entangled survivor
    /// diverges within a few steps of the splice point, so the adversary
    /// pays O(divergence) instead of O(history) to learn the erasure is
    /// unsound.
    fn replay_tail(
        &self,
        spec: &SimSpec,
        erased: &BTreeSet<ProcId>,
        certify: bool,
    ) -> Option<(Simulator, usize, usize)> {
        // The replay diverges from the recorded execution at the first
        // schedule position where an erased process acted or was injected
        // into; any checkpoint at or before that point is still valid.
        let mut splice = self.schedule.len();
        for &pid in erased {
            if let Some(t) = self.first_touch[pid.index()] {
                splice = splice.min(t);
            }
        }
        for inj in &self.injections {
            if erased.contains(&inj.pid) {
                splice = splice.min(inj.at);
            }
        }
        let base = self
            .checkpoints
            .iter()
            .rev()
            .find(|c| c.schedule_len <= splice);
        if certify {
            // Survivor-visible state can only diverge at an erased process's
            // first *nontrivial* access: trivial accesses change no value,
            // writer, or other process's reservation. So the certification
            // verdict from any checkpoint at or before that point is exact.
            // When such a checkpoint is strictly later than `base`, run a
            // throwaway certification probe from it first — a refusal then
            // costs a fraction of the full suffix — and re-execute the real
            // suffix (which must start before the erased processes' first
            // steps so their events vanish from the log) only on acceptance.
            let mut wsplice = self.schedule.len();
            for &pid in erased {
                if let Some(t) = self.first_write[pid.index()] {
                    wsplice = wsplice.min(t);
                }
            }
            let wbase = self
                .checkpoints
                .iter()
                .rev()
                .find(|c| c.schedule_len <= wsplice);
            if wbase.map_or(0, |c| c.schedule_len) > base.map_or(0, |c| c.schedule_len) {
                self.run_filtered(spec, wbase.map(Arc::as_ref), erased, true, true)?;
                return self.run_filtered(spec, base.map(Arc::as_ref), erased, false, false);
            }
        }
        self.run_filtered(spec, base.map(Arc::as_ref), erased, certify, false)
    }

    /// The filtered-replay loop behind [`Simulator::replay_tail`]: replays
    /// this simulator's recorded schedule from `base` (or from scratch) with
    /// `erased` filtered out, re-applying injections into survivors at their
    /// recorded positions. With `certify`, every emitted event is compared
    /// online against the recorded log and the first divergence returns
    /// `None`. With `probe`, the replayed simulator skips checkpointing
    /// (used for throwaway certification passes whose state is discarded).
    fn run_filtered(
        &self,
        spec: &SimSpec,
        base: Option<&Checkpoint>,
        erased: &BTreeSet<ProcId>,
        certify: bool,
        probe: bool,
    ) -> Option<(Simulator, usize, usize)> {
        let mut sim = match base {
            Some(c) => self.resume_at(c),
            None => {
                let mut fresh = Simulator::new(spec);
                fresh.enable_checkpoints(self.ckpt_interval);
                fresh
            }
        };
        if probe {
            sim.ckpt_interval = 0;
        }
        let start = sim.schedule.len();
        let prefix_events = base.map_or(0, |c| c.history_len);
        let recorded = &self.history;
        // Certification cursors: `produced` into the replayed suffix log,
        // `expect` into the recorded log (skipping erased processes'
        // events, which the filtered replay must not reproduce).
        let mut produced = 0usize;
        let mut expect = prefix_events;
        // `at` is nondecreasing, so the first injection to re-apply is the
        // first one at position >= start.
        let mut next_inj = self.injections.partition_point(|inj| inj.at < start);
        for i in start..self.schedule.len() {
            while next_inj < self.injections.len() && self.injections[next_inj].at <= i {
                let inj = &self.injections[next_inj];
                next_inj += 1;
                if !erased.contains(&inj.pid) {
                    sim.inject_call(inj.pid, inj.call.clone());
                }
            }
            let pid = self.schedule[i];
            if !erased.contains(&pid) {
                let _ = sim.step(pid);
            }
            if certify
                && !Self::certify_drain(recorded, erased, &sim.history, &mut produced, &mut expect)
            {
                return None;
            }
        }
        // Injections recorded after the last schedule entry.
        while next_inj < self.injections.len() {
            let inj = &self.injections[next_inj];
            next_inj += 1;
            if !erased.contains(&inj.pid) {
                sim.inject_call(inj.pid, inj.call.clone());
            }
        }
        if certify {
            if !Self::certify_drain(recorded, erased, &sim.history, &mut produced, &mut expect) {
                return None;
            }
            // The replay consumed the whole filtered schedule; any surviving
            // projected event still unmatched in the recording means the
            // replay produced *fewer* events than recorded — divergence.
            while expect < recorded.len() {
                let e = recorded.event(expect);
                if !erased.contains(&e.pid()) && Self::event_projects(e) {
                    return None;
                }
                expect += 1;
            }
        }
        Some((sim, start, prefix_events))
    }

    /// Whether an event contributes to a process's projection (mirrors
    /// [`History::projection`]: `Terminate`/`Crash` do not project).
    fn event_projects(e: &Event) -> bool {
        !matches!(e, Event::Terminate { .. } | Event::Crash { .. })
    }

    /// Projection-level equality of two events: same process and same
    /// projected content. Cost, `sees`/`touches` attribution and the
    /// `wrote` flag may legitimately differ under erasure (they depend on
    /// the erased processes' accesses, not on the survivor's own view), so
    /// they are excluded — exactly as in [`History::projection`].
    fn same_projected(a: &Event, b: &Event) -> bool {
        match (a, b) {
            (
                Event::Invoke {
                    pid: p1, kind: k1, ..
                },
                Event::Invoke {
                    pid: p2, kind: k2, ..
                },
            ) => p1 == p2 && k1 == k2,
            (
                Event::Return {
                    pid: p1,
                    kind: k1,
                    value: v1,
                },
                Event::Return {
                    pid: p2,
                    kind: k2,
                    value: v2,
                },
            ) => p1 == p2 && k1 == k2 && v1 == v2,
            (
                Event::Access {
                    pid: p1,
                    op: o1,
                    result: r1,
                    ..
                },
                Event::Access {
                    pid: p2,
                    op: o2,
                    result: r2,
                    ..
                },
            ) => p1 == p2 && o1 == o2 && r1 == r2,
            _ => false,
        }
    }

    /// Advances the online certification cursors over events the replay
    /// emitted since the last drain, matching each against the next
    /// surviving projected event of the recording. Returns `false` on the
    /// first mismatch.
    fn certify_drain(
        recorded: &History,
        erased: &BTreeSet<ProcId>,
        suffix: &History,
        produced: &mut usize,
        expect: &mut usize,
    ) -> bool {
        while *produced < suffix.len() {
            let e = suffix.event(*produced);
            *produced += 1;
            if !Self::event_projects(e) {
                continue;
            }
            while *expect < recorded.len()
                && (erased.contains(&recorded.event(*expect).pid())
                    || !Self::event_projects(recorded.event(*expect)))
            {
                *expect += 1;
            }
            if *expect >= recorded.len() || !Self::same_projected(e, recorded.event(*expect)) {
                return false;
            }
            *expect += 1;
        }
        true
    }

    /// After a suffix replay is spliced onto a prefix of `prefix_events`
    /// events, checkpoints created *during* the suffix replay (those past
    /// `start`) recorded history lengths relative to the seeded (empty)
    /// suffix log; rebase them onto the spliced log.
    fn rebase_suffix_checkpoints(sim: &mut Simulator, start: usize, prefix_events: usize) {
        for c in &mut sim.checkpoints {
            if c.schedule_len > start {
                Arc::make_mut(c).history_len += prefix_events;
            }
        }
    }

    /// Incremental form of [`Simulator::replay`]: replays this simulator's
    /// own recorded schedule (and injections) with `erased` filtered out,
    /// reusing the longest valid checkpointed prefix instead of starting
    /// from scratch.
    ///
    /// The returned simulator's history is the full spliced event log
    /// (prefix events verbatim + re-executed suffix), and its state is
    /// exactly what [`Simulator::replay`] would produce — verified by the
    /// determinism-contract tests.
    #[must_use]
    pub fn filtered_replay(&self, spec: &SimSpec, erased: &BTreeSet<ProcId>) -> Simulator {
        let (mut sim, start, prefix_events) = self
            .replay_tail(spec, erased, false)
            .expect("uncertified replay cannot fail");
        if prefix_events > 0 {
            let suffix = std::mem::take(&mut sim.history);
            sim.history = History::spliced(&self.history, prefix_events, suffix);
            Self::rebase_suffix_checkpoints(&mut sim, start, prefix_events);
        }
        sim
    }

    /// Attempts to erase `batch` from this execution, certifying that every
    /// surviving process's projection is unchanged (Lemma 6.7's soundness
    /// condition). Returns the replayed simulator on success, `None` if any
    /// survivor's projection differs.
    ///
    /// Certification is streamed: the replay compares every event it emits
    /// against the recorded log as it goes and aborts at the first
    /// divergence, so a refused erasure costs O(steps to divergence), not
    /// O(history). The per-process rolling-hash fingerprints double-check
    /// the accepted result in O(1) per process, and an exact projection
    /// cross-check runs in debug builds (or in release builds when the
    /// `exact-fingerprints` cargo feature is enabled).
    #[must_use]
    pub fn erase_certified(&self, spec: &SimSpec, batch: &BTreeSet<ProcId>) -> Option<Simulator> {
        let (tail, start, prefix_events) = self.replay_tail(spec, batch, true)?;
        let survives = (0..self.n()).map(|i| ProcId(i as u32)).all(|p| {
            batch.contains(&p) || tail.history.fingerprint(p) == self.history.fingerprint(p)
        });
        if !survives {
            return None;
        }
        let mut sim = tail;
        if prefix_events > 0 {
            let suffix = std::mem::take(&mut sim.history);
            sim.history = History::spliced(&self.history, prefix_events, suffix);
            Self::rebase_suffix_checkpoints(&mut sim, start, prefix_events);
        }
        #[cfg(any(debug_assertions, feature = "exact-fingerprints"))]
        for i in 0..self.n() {
            let p = ProcId(i as u32);
            if !batch.contains(&p) {
                assert_eq!(
                    sim.history.projection(p),
                    self.history.projection(p),
                    "fingerprint collision: projection of {p} changed under erasure"
                );
            }
        }
        Some(sim)
    }

    /// In-place form of [`Simulator::erase_certified`], the one the
    /// adversary's hot loop uses. On success the erasure is applied to
    /// `self`; on refusal (`false`) `self` is unchanged.
    ///
    /// Under the DSM model this runs entirely at the event level — no step
    /// machine is re-executed. A survivor's machine state is a function of
    /// the results it has observed, so it suffices to re-apply the recorded
    /// `Access` ops of survivors against a filtered memory image (seeded
    /// from the latest checkpoint preceding the erased processes' first
    /// nontrivial write) and compare each result with the recording: the
    /// first mismatch is exactly the first projection divergence, and a
    /// mismatch-free walk proves every surviving projection is unchanged
    /// (Lemma 6.7's condition). Acceptance is then applied by surgery —
    /// memory takes the walk's image, the erased events/steps are filtered
    /// out of the log and schedule, and the erased machines reset — instead
    /// of replaying the execution. DSM access costs depend only on the
    /// static cell placement, so survivor stats are reused verbatim; under
    /// CC models (where erasure changes cache-validity history) this falls
    /// back to the replay-based path.
    pub fn erase_certified_in_place(&mut self, spec: &SimSpec, batch: &BTreeSet<ProcId>) -> bool {
        let _span = shm_obs::Span::enter("sim.erase");
        if self.cost.model() != CostModel::Dsm {
            let ok = self.erase_certified_in_place_replay(spec, batch);
            shm_obs::count(if ok { "erase.replay" } else { "erase.refused" }, 1);
            return ok;
        }
        #[cfg(any(debug_assertions, feature = "exact-fingerprints"))]
        let mut shadow = self.clone();
        #[cfg(any(debug_assertions, feature = "exact-fingerprints"))]
        shm_obs::counter!("fingerprint.exact_check");

        let n = self.n();
        let mut gone = vec![false; n];
        for &pid in batch {
            gone[pid.index()] = true;
        }
        // First schedule position an erased process acted on or was injected
        // into: checkpoints at or before it stay valid after the surgery.
        let mut splice = self.schedule.len();
        for &pid in batch {
            if let Some(t) = self.first_touch[pid.index()] {
                splice = splice.min(t);
            }
        }
        let mut first_gone_inj = self.injections.len();
        for (k, inj) in self.injections.iter().enumerate() {
            if gone[inj.pid.index()] {
                splice = splice.min(inj.at);
                first_gone_inj = first_gone_inj.min(k);
            }
        }
        // Survivor-visible values can only diverge at an erased process's
        // first nontrivial access; walk from the latest checkpoint before
        // that point.
        let mut wsplice = self.schedule.len();
        for &pid in batch {
            if let Some(t) = self.first_write[pid.index()] {
                wsplice = wsplice.min(t);
            }
        }
        let wbase = self
            .checkpoints
            .iter()
            .rev()
            .find(|c| c.schedule_len <= wsplice);
        let (mut mem, start_events) = match wbase {
            Some(c) => (c.memory.clone(), c.history_len),
            None => (Memory::from_layout(&spec.layout), 0),
        };
        // Certification walk: re-apply survivors' recorded accesses against
        // the filtered memory. Invoke/Return/Terminate events are machine-
        // internal — they cannot change while every observed result is
        // unchanged — so only Access events are checked.
        for e in self.history.events_from(start_events) {
            if let Event::Access {
                pid, op, result, ..
            } = e
            {
                if gone[pid.index()] {
                    continue;
                }
                let applied = mem.apply(*pid, *op);
                if applied.result != *result {
                    #[cfg(any(debug_assertions, feature = "exact-fingerprints"))]
                    {
                        // Suppress recording: the shadow replay is a pure
                        // cross-check, not part of the execution's cost.
                        let _quiet = shm_obs::suppress();
                        assert!(
                            !shadow.erase_certified_in_place_replay(spec, batch),
                            "event-walk refused an erasure the replay path accepts"
                        );
                    }
                    shm_obs::counter!("erase.refused");
                    return false;
                }
            }
        }

        // Accepted: apply the erasure by surgery.
        mem.purge_reservations(&gone);
        self.memory = mem;
        for &pid in batch {
            let st = self.procs[pid.index()].stats;
            self.totals.steps -= st.steps;
            self.totals.accesses -= st.accesses;
            self.totals.rmrs -= st.rmrs;
            self.totals.messages -= st.messages;
            self.procs[pid.index()] = Arc::new(ProcState {
                source: spec.sources[pid.index()].clone(),
                current: None,
                last_op_result: None,
                last_return: None,
                status: Status::Runnable,
                stats: ProcStats::default(),
            });
        }
        // Filter the schedule, remembering how many erased steps precede
        // each position so recorded indices can be shifted.
        let old_sched = std::mem::take(&mut self.schedule);
        let mut removed_before: Vec<u32> = Vec::with_capacity(old_sched.len() + 1);
        let mut removed = 0u32;
        let mut new_sched = Vec::with_capacity(old_sched.len());
        for &pid in &old_sched {
            removed_before.push(removed);
            if gone[pid.index()] {
                removed += 1;
            } else {
                new_sched.push(pid);
            }
        }
        removed_before.push(removed);
        self.schedule = new_sched;
        for (i, &g) in gone.iter().enumerate().take(n) {
            if g {
                self.first_touch[i] = None;
                self.first_write[i] = None;
            } else {
                if let Some(t) = self.first_touch[i] {
                    self.first_touch[i] = Some(t - removed_before[t] as usize);
                }
                if let Some(t) = self.first_write[i] {
                    self.first_write[i] = Some(t - removed_before[t] as usize);
                }
            }
        }
        let mut dropped_inj = 0u64;
        self.injections.retain_mut(|inj| {
            if gone[inj.pid.index()] {
                dropped_inj += 1;
                false
            } else {
                inj.at -= removed_before[inj.at] as usize;
                true
            }
        });
        self.injected -= dropped_inj;
        self.history.erase_pids(&gone);
        // Checkpoints past the splice captured erased-process state; drop
        // them (recording rebuilds coverage as stepping continues). The
        // retained ones precede every erased step and injection, so their
        // recorded lengths and indices need no shifting.
        self.checkpoints
            .retain(|c| c.schedule_len <= splice && c.injections_len <= first_gone_inj);

        #[cfg(any(debug_assertions, feature = "exact-fingerprints"))]
        {
            // Suppress recording: the shadow replay is a pure cross-check.
            let _quiet = shm_obs::suppress();
            assert!(
                shadow.erase_certified_in_place_replay(spec, batch),
                "event-walk accepted an erasure the replay path refuses"
            );
            assert_eq!(
                shadow.history.to_vec(),
                self.history.to_vec(),
                "surgery: history mismatch"
            );
            assert_eq!(shadow.schedule, self.schedule, "surgery: schedule mismatch");
            assert_eq!(shadow.totals, self.totals, "surgery: totals mismatch");
            assert_eq!(
                shadow.first_touch, self.first_touch,
                "surgery: first_touch mismatch"
            );
            assert_eq!(
                shadow.first_write, self.first_write,
                "surgery: first_write mismatch"
            );
            for i in 0..n {
                let p = ProcId(i as u32);
                assert_eq!(
                    shadow.history.fingerprint(p),
                    self.history.fingerprint(p),
                    "surgery: fingerprint mismatch for {p}"
                );
            }
            for a in 0..spec.layout.len() {
                let addr = crate::ids::Addr(a as u32);
                assert_eq!(
                    shadow.memory.peek(addr),
                    self.memory.peek(addr),
                    "surgery: memory value mismatch at cell {a}"
                );
                assert_eq!(
                    shadow.memory.last_writer(addr),
                    self.memory.last_writer(addr),
                    "surgery: last-writer mismatch at cell {a}"
                );
            }
        }
        shm_obs::counter!("erase.surgery");
        true
    }

    /// Replay-based fallback behind [`Simulator::erase_certified_in_place`]:
    /// certifies by checkpointed filtered re-execution, then keeps the
    /// untouched history prefix in place and adopts only the re-executed
    /// suffix — O(n + suffix), with *no* O(history) splice copy. Used under
    /// CC cost models, where erasing a process rewrites cache-validity
    /// history and per-access costs must be re-derived.
    fn erase_certified_in_place_replay(
        &mut self,
        spec: &SimSpec,
        batch: &BTreeSet<ProcId>,
    ) -> bool {
        #[cfg(any(debug_assertions, feature = "exact-fingerprints"))]
        shm_obs::counter!("fingerprint.exact_check");
        #[cfg(any(debug_assertions, feature = "exact-fingerprints"))]
        let before: Vec<Vec<crate::event::ProjectedEvent>> = (0..self.n())
            .map(|i| self.history.projection(ProcId(i as u32)))
            .collect();
        let Some((tail, start, prefix_events)) = self.replay_tail(spec, batch, true) else {
            return false;
        };
        let survives = (0..self.n()).map(|i| ProcId(i as u32)).all(|p| {
            batch.contains(&p) || tail.history.fingerprint(p) == self.history.fingerprint(p)
        });
        if !survives {
            return false;
        }
        let mut tail = tail;
        Self::rebase_suffix_checkpoints(&mut tail, start, prefix_events);
        self.memory = tail.memory;
        self.cost = tail.cost;
        self.procs = tail.procs;
        self.totals = tail.totals;
        self.injected = tail.injected;
        self.first_touch = tail.first_touch;
        self.first_write = tail.first_write;
        self.injections = tail.injections;
        self.schedule = tail.schedule;
        self.checkpoints = tail.checkpoints;
        self.history.splice_tail(prefix_events, tail.history);
        #[cfg(any(debug_assertions, feature = "exact-fingerprints"))]
        for (i, recorded) in before.iter().enumerate().take(self.n()) {
            let p = ProcId(i as u32);
            if !batch.contains(&p) {
                assert_eq!(
                    &self.history.projection(p),
                    recorded,
                    "fingerprint collision: projection of {p} changed under erasure"
                );
            }
        }
        true
    }

    /// Replays from an explicit checkpoint: restores `ckpt`'s state and then
    /// executes `suffix` (schedule entries recorded after the checkpoint),
    /// skipping processes in `erased`. Injections recorded between the
    /// checkpoint and the end of the original execution are re-applied at
    /// their positions (unless targeting an erased process).
    ///
    /// The returned simulator's history covers only the replayed suffix; its
    /// fingerprints cover the whole (prefix + suffix) projection, seeded
    /// from the checkpoint.
    #[must_use]
    pub fn replay_from(
        &self,
        ckpt: &Checkpoint,
        suffix: &[ProcId],
        erased: &BTreeSet<ProcId>,
    ) -> Simulator {
        let _span = shm_obs::Span::enter("sim.replay_from");
        let mut replayed = 0u64;
        let mut sim = self.resume_at(ckpt);
        let start = ckpt.schedule_len;
        let mut next_inj = self.injections.partition_point(|inj| inj.at < start);
        for (k, &pid) in suffix.iter().enumerate() {
            let i = start + k;
            while next_inj < self.injections.len() && self.injections[next_inj].at <= i {
                let inj = &self.injections[next_inj];
                next_inj += 1;
                if !erased.contains(&inj.pid) {
                    sim.inject_call(inj.pid, inj.call.clone());
                }
            }
            if !erased.contains(&pid) {
                let _ = sim.step(pid);
                replayed += 1;
            }
        }
        shm_obs::counter!("replay.steps", replayed);
        while next_inj < self.injections.len() {
            let inj = &self.injections[next_inj];
            next_inj += 1;
            if !erased.contains(&inj.pid) {
                sim.inject_call(inj.pid, inj.call.clone());
            }
        }
        sim
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Read access to shared memory (inspection; not a step).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The recorded history so far.
    #[must_use]
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The recorded schedule: one entry per effective step, in order.
    #[must_use]
    pub fn schedule(&self) -> &[ProcId] {
        &self.schedule
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn totals(&self) -> Totals {
        self.totals
    }

    /// Statistics of one process.
    #[must_use]
    pub fn proc_stats(&self, pid: ProcId) -> ProcStats {
        self.procs[pid.index()].stats
    }

    /// Execution status of one process.
    #[must_use]
    pub fn status(&self, pid: ProcId) -> Status {
        self.procs[pid.index()].status
    }

    /// Whether the process can still take steps.
    #[must_use]
    pub fn is_runnable(&self, pid: ProcId) -> bool {
        self.procs[pid.index()].status == Status::Runnable
    }

    /// IDs of all runnable processes.
    #[must_use]
    pub fn runnable(&self) -> Vec<ProcId> {
        let mut out = Vec::new();
        self.runnable_into(&mut out);
        out
    }

    /// Fills `out` with the IDs of all runnable processes (ascending),
    /// reusing its allocation — the per-step form of
    /// [`Simulator::runnable`] for schedulers and explorers that query the
    /// runnable set on every step.
    pub fn runnable_into(&self, out: &mut Vec<ProcId>) {
        out.clear();
        out.extend(
            self.procs
                .iter()
                .enumerate()
                .filter(|(_, p)| p.status == Status::Runnable)
                .map(|(i, _)| ProcId(i as u32)),
        );
    }

    /// Whether every process has terminated or crashed.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.procs.iter().all(|p| p.status != Status::Runnable)
    }

    /// Number of calls injected via [`Simulator::inject_call`]. When nonzero,
    /// the recorded schedule alone no longer reconstructs this execution;
    /// callers doing replay-based surgery must re-inject manually.
    #[must_use]
    pub fn injected_calls(&self) -> u64 {
        self.injected
    }

    /// The recorded injections, in injection order (`at` nondecreasing).
    pub(crate) fn injections(&self) -> &[Injection] {
        &self.injections
    }

    /// The live cost-model state (cache validity under CC).
    pub(crate) fn cost_state(&self) -> &CostState {
        &self.cost
    }

    /// The recorded checkpoints, in increasing `schedule_len` order. The
    /// audit layer uses them as shard boundaries for parallel re-pricing.
    pub(crate) fn checkpoints(&self) -> &[Arc<Checkpoint>] {
        &self.checkpoints
    }

    /// Mutable access to the recorded event log, bypassing fingerprint
    /// maintenance. For audit-layer tamper tests only.
    #[cfg(test)]
    pub(crate) fn history_mut(&mut self) -> &mut History {
        &mut self.history
    }

    /// Differentially audits this execution against a naive shadow executor:
    /// the recorded schedule (and injections) are re-run step by step under
    /// an independent reference implementation of memory semantics and of
    /// each of the four standard cost models — no checkpoints, no
    /// fingerprints, no event-walk surgery — and every per-step result,
    /// RMR/message/invalidation charge, cache-validity set, the final memory
    /// image and the final [`Totals`]/per-process stats are diffed against
    /// the fast incremental path. See [`crate::audit`] for the report format.
    ///
    /// `spec` must be the spec this simulator was built from. The audit is
    /// read-only and returns on the *first* divergence found.
    #[must_use]
    pub fn audit(&self, spec: &SimSpec) -> crate::audit::AuditReport {
        crate::audit::run_audit(self, spec, shm_pool::threads())
    }

    /// [`Simulator::audit`] with an explicit worker-thread count instead of
    /// the process-wide `shm_pool` default. `threads == 1` is the exact
    /// serial audit; any thread count yields an identical report (shards are
    /// fixed by the recording, and the canonical divergence is the one with
    /// the lowest step regardless of completion order).
    #[must_use]
    pub fn audit_with_threads(&self, spec: &SimSpec, threads: usize) -> crate::audit::AuditReport {
        crate::audit::run_audit(self, spec, threads)
    }

    /// Flushes the **final** history's per-access cost attribution to the
    /// installed `shm-obs` recorder under phase `scope`: `sim.rmr`,
    /// `sim.local`, and `sim.inval` counter cells keyed by process, memory
    /// location, and the cost-model tag.
    ///
    /// Counting at access time could never reconcile with
    /// [`Simulator::totals`]: erasure subtracts erased processes'
    /// statistics, and replay re-executes steps. Flushing the *surviving*
    /// history once the execution is final makes the flushed totals equal
    /// `totals()` by construction — `sim.rmr + sim.local == accesses`,
    /// `sim.rmr == rmrs`, `sim.inval == invalidations` — which the metrics
    /// tests pin exactly. No-op when recording is disabled.
    pub fn obs_flush(&self, scope: &'static str) {
        if !shm_obs::enabled() {
            return;
        }
        let model = crate::model::model_tag(self.cost.model());
        for e in self.history.events() {
            if let Event::Access { pid, op, cost, .. } = e {
                let (p, loc) = (pid.0, op.addr().0);
                let name = if cost.rmr { "sim.rmr" } else { "sim.local" };
                shm_obs::counter!(name, 1, scope: scope, model: model, pid: p, loc: loc);
                shm_obs::counter!(
                    "sim.inval",
                    cost.invalidations,
                    scope: scope,
                    model: model,
                    pid: p,
                    loc: loc
                );
            }
        }
    }

    /// Advances `pid` by one step.
    ///
    /// One step is one state-machine transition: it performs exactly one
    /// memory access, or completes a call, or terminates the process. If the
    /// process has no call in progress, the next call is fetched from its
    /// source (and its first transition executed) within the same step.
    pub fn step(&mut self, pid: ProcId) -> StepReport {
        if self.procs[pid.index()].status != Status::Runnable {
            return StepReport::NotRunnable;
        }
        if self.first_touch[pid.index()].is_none() {
            self.first_touch[pid.index()] = Some(self.schedule.len());
        }
        self.schedule.push(pid);
        self.totals.steps += 1;
        shm_obs::counter!("sim.steps");
        let report = self.transition(pid);
        self.maybe_checkpoint();
        report
    }

    /// The body of one step after schedule/stat bookkeeping: fetch a call if
    /// needed, then run exactly one machine transition.
    fn transition(&mut self, pid: ProcId) -> StepReport {
        // Split-borrow the process entry alongside the shared state so the
        // whole step pays exactly one COW fault (`Arc::make_mut` locks the
        // weak count with a CAS — doing it three or four times per step was
        // the single largest fixed cost on the hot loop).
        let Simulator {
            procs,
            memory,
            cost,
            history,
            totals,
            first_write,
            schedule,
            ..
        } = self;
        let p = Arc::make_mut(&mut procs[pid.index()]);
        p.stats.steps += 1;

        // Fetch the next call if none is in progress.
        if p.current.is_none() {
            match p.source.next_call(p.last_return) {
                None => {
                    p.status = Status::Terminated;
                    history.push(Event::Terminate { pid });
                    return StepReport::Terminated;
                }
                Some(call) => {
                    history.push(Event::Invoke {
                        pid,
                        kind: call.kind,
                        name: call.name,
                    });
                    p.current = Some(call);
                    p.last_op_result = None;
                }
            }
        }

        // One machine transition.
        let last = p.last_op_result;
        let step = p
            .current
            .as_mut()
            .expect("current call set above")
            .machine
            .step(last);
        match step {
            Step::Op(op) => {
                // `sees` must be computed from the cell's last writer
                // *before* the access mutates it.
                let addr = op.addr();
                let observes_value = !matches!(op, Op::Write(..));
                let sees = if observes_value {
                    memory.last_writer(addr).filter(|&q| q != pid)
                } else {
                    None
                };
                let touches = memory.owner(addr).filter(|&q| q != pid);
                let applied = memory.apply(pid, op);
                if applied.nontrivial && first_write[pid.index()].is_none() {
                    first_write[pid.index()] = Some(schedule.len() - 1);
                }
                let acost = cost.charge(pid, addr, memory.owner(addr), &applied);
                p.stats.accesses += 1;
                p.stats.rmrs += u64::from(acost.rmr);
                p.stats.messages += acost.messages;
                totals.accesses += 1;
                totals.rmrs += u64::from(acost.rmr);
                totals.messages += acost.messages;
                totals.invalidations += acost.invalidations;
                history.push(Event::Access {
                    pid,
                    op,
                    result: applied.result,
                    wrote: applied.nontrivial,
                    cost: acost,
                    sees,
                    touches,
                });
                p.last_op_result = Some(applied.result);
                StepReport::Access {
                    op,
                    result: applied.result,
                    cost: acost,
                }
            }
            Step::Return(value) => {
                let call = p.current.take().expect("current call");
                history.push(Event::Return {
                    pid,
                    kind: call.kind,
                    value,
                });
                p.last_return = Some(value);
                p.stats.calls_completed += 1;
                StepReport::Returned {
                    kind: call.kind,
                    value,
                }
            }
        }
    }

    /// Computes the next memory access `pid` will perform, without executing
    /// anything and without touching shared memory.
    ///
    /// Step machines receive values only through their `last` argument, so
    /// the next operation is a pure function of the process's private state;
    /// this method clones that state (source + current call) and runs it
    /// forward through any non-access transitions (returns, call fetches).
    ///
    /// # Panics
    ///
    /// Panics if the process makes more than an internal limit of
    /// transitions without either accessing memory or terminating (which
    /// would mean a livelocked call source).
    #[must_use]
    pub fn peek_next_op(&self, pid: ProcId) -> Peek {
        let p = &self.procs[pid.index()];
        if p.status != Status::Runnable {
            return Peek::NotRunnable;
        }
        let mut source = p.source.clone();
        let mut current = p.current.clone();
        let mut last_op_result = p.last_op_result;
        let mut last_return = p.last_return;
        for _ in 0..Self::PEEK_LIMIT {
            if current.is_none() {
                match source.next_call(last_return) {
                    None => return Peek::WillTerminate,
                    Some(call) => {
                        current = Some(call);
                        last_op_result = None;
                    }
                }
            }
            match current
                .as_mut()
                .expect("set above")
                .machine
                .step(last_op_result)
            {
                Step::Op(op) => return Peek::Access(op),
                Step::Return(v) => {
                    current = None;
                    last_return = Some(v);
                }
            }
        }
        panic!(
            "peek_next_op: {pid} made {} transitions without accessing memory",
            Self::PEEK_LIMIT
        );
    }

    /// Computes what the next *single* `step(pid)` call would do, without
    /// executing it. Unlike [`Simulator::peek_next_op`], this does not look
    /// through return/invoke transitions — it reports exactly the next
    /// step's effect, which the lower-bound adversary needs to stop a
    /// process precisely "just before" an access.
    #[must_use]
    pub fn peek_transition(&self, pid: ProcId) -> TransitionPeek {
        let p = &self.procs[pid.index()];
        if p.status != Status::Runnable {
            return TransitionPeek::NotRunnable;
        }
        let (mut current, last_op_result) = match &p.current {
            Some(call) => (call.clone(), p.last_op_result),
            None => {
                let mut source = p.source.clone();
                match source.next_call(p.last_return) {
                    None => return TransitionPeek::WillTerminate,
                    Some(call) => (call, None),
                }
            }
        };
        match current.machine.step(last_op_result) {
            Step::Op(op) => TransitionPeek::Access(op),
            Step::Return(value) => TransitionPeek::Return {
                kind: current.kind,
                value,
            },
        }
    }

    /// Whether executing `op` right now on behalf of `pid` would be an RMR.
    ///
    /// Exact for every operation: CAS/SC success is decided against current
    /// memory contents, so the trivial/nontrivial distinction is resolved
    /// precisely.
    #[must_use]
    pub fn op_would_be_rmr(&self, pid: ProcId, op: &Op) -> bool {
        let addr = op.addr();
        let nontrivial = match *op {
            Op::Read(_) | Op::Ll(_) => false,
            Op::Write(..) | Op::Faa(..) | Op::Fas(..) | Op::Tas(_) => true,
            Op::Cas(a, expected, _) => self.memory.peek(a) == expected,
            // Conservative: we cannot inspect reservations cheaply here, but
            // a successful SC requires a prior LL by the same process, whose
            // reservation state is in memory; treat as nontrivial iff it
            // would succeed is not observable, so price as nontrivial (the
            // more expensive case) — exact for DSM where it is irrelevant.
            Op::Sc(..) => true,
        };
        crate::model::would_be_rmr(&self.cost, pid, addr, self.memory.owner(addr), nontrivial)
    }

    /// Observation footprint of executing `op` as `pid` right now:
    /// `(sees, touches)` per Definitions 6.4/6.5. Used by the adversary to
    /// decide whether to erase a process *before* letting a step happen.
    #[must_use]
    pub fn op_observation(&self, pid: ProcId, op: &Op) -> (Option<ProcId>, Option<ProcId>) {
        let addr = op.addr();
        let sees = if matches!(op, Op::Write(..)) {
            None
        } else {
            self.memory.last_writer(addr).filter(|&q| q != pid)
        };
        let touches = self.memory.owner(addr).filter(|&q| q != pid);
        (sees, touches)
    }

    /// Injects a procedure call into `pid`, reviving it if it had terminated.
    ///
    /// Used by the lower-bound adversary (proof Part 2) to direct a chosen
    /// process to call `Signal()` after the waiter population has stabilized:
    /// in the history family `H_A` (Definition 6.1) every process may make
    /// calls in arbitrary order before terminating, so injection just selects
    /// a longer call sequence for that process. Replay via the recorded
    /// schedule does **not** reproduce injected calls — callers replay the
    /// pre-injection prefix and re-inject (see [`Simulator::injected_calls`]).
    ///
    /// # Panics
    ///
    /// Panics if the process currently has a call in progress or crashed.
    pub fn inject_call(&mut self, pid: ProcId, call: Call) {
        let p = Arc::make_mut(&mut self.procs[pid.index()]);
        assert!(
            p.current.is_none(),
            "inject_call: {pid} has a call in progress"
        );
        assert!(p.status != Status::Crashed, "inject_call: {pid} crashed");
        p.status = Status::Runnable;
        self.history.push(Event::Invoke {
            pid,
            kind: call.kind,
            name: call.name,
        });
        p.current = Some(call.clone());
        p.last_op_result = None;
        self.injected += 1;
        self.injections.push(Injection {
            at: self.schedule.len(),
            pid,
            call,
        });
    }

    /// Whether `pid` has a procedure call in progress.
    #[must_use]
    pub fn has_pending_call(&self, pid: ProcId) -> bool {
        self.procs[pid.index()].current.is_some()
    }

    /// A canonical word encoding of everything that determines this
    /// simulator's *future* behavior and pricing: per-process projection
    /// fingerprints (which pin each process's local history — call sequence,
    /// operations, and results — and therefore its opaque machine state),
    /// statuses, pending-call flags, last results, per-process stats, the
    /// memory image with last-writer attribution, and the cost-model state.
    ///
    /// Two simulators with equal encodings are behaviorally identical from
    /// here on (every continuation produces the same events, charges, and
    /// verdicts), because a step machine's state is a deterministic function
    /// of its local history. The schedule-space explorer deduplicates on
    /// [`Simulator::state_fingerprint`] and uses this encoding as the exact
    /// fallback that rules out hash collisions in debug builds.
    #[must_use]
    pub fn state_words(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(16 * self.procs.len() + 2 * self.memory.len());
        self.state_words_into(&mut out);
        out
    }

    /// [`Simulator::state_words`] into a caller-owned buffer (cleared first),
    /// so per-state dedup keys in hot exploration loops allocate nothing.
    pub fn state_words_into(&self, out: &mut Vec<u64>) {
        out.clear();
        for (i, p) in self.procs.iter().enumerate() {
            let pid = ProcId(i as u32);
            let fp = self.history.fingerprint(pid);
            out.push((fp >> 64) as u64);
            out.push(fp as u64);
            out.push(match p.status {
                Status::Runnable => 0,
                Status::Terminated => 1,
                Status::Crashed => 2,
            });
            out.push(u64::from(p.current.is_some()));
            // Option<Word> as (presence, value) pairs: Word is the full u64
            // range (NIL = u64::MAX), so a +1 offset encoding would overflow.
            out.push(u64::from(p.last_op_result.is_some()));
            out.push(p.last_op_result.unwrap_or(0));
            out.push(u64::from(p.last_return.is_some()));
            out.push(p.last_return.unwrap_or(0));
            out.extend([
                p.stats.steps,
                p.stats.accesses,
                p.stats.rmrs,
                p.stats.messages,
                p.stats.calls_completed,
            ]);
        }
        for a in 0..self.memory.len() {
            let addr = crate::ids::Addr(a as u32);
            out.push(self.memory.peek(addr));
            out.push(
                self.memory
                    .last_writer(addr)
                    .map_or(0, |p| 1 + u64::from(p.0)),
            );
        }
        self.cost.encode_state(out);
    }

    /// A 128-bit fingerprint of [`Simulator::state_words`] (same polynomial
    /// family as the history projection fingerprints). Equal fingerprints
    /// certify behaviorally identical simulator states up to hash collision;
    /// the explorer's debug fallback compares the full word encodings.
    #[must_use]
    pub fn state_fingerprint(&self) -> u128 {
        crate::event::fingerprint_words(&self.state_words())
    }

    /// [`Simulator::state_fingerprint`] computed through a caller-owned
    /// scratch buffer, avoiding the per-call word-vector allocation.
    #[must_use]
    pub fn state_fingerprint_with(&self, scratch: &mut Vec<u64>) -> u128 {
        self.state_words_into(scratch);
        crate::event::fingerprint_words(scratch)
    }

    /// Crashes `pid`: it stops taking steps, mid-call or not.
    ///
    /// Models the paper's crash (§2: a process crashes if it terminates while
    /// performing a procedure call). Used for failure-injection tests.
    pub fn crash(&mut self, pid: ProcId) {
        let p = Arc::make_mut(&mut self.procs[pid.index()]);
        if p.status == Status::Runnable {
            p.status = Status::Crashed;
            self.history.push(Event::Crash { pid });
        }
    }

    /// Runs `pid` alone until its current call completes (or it terminates),
    /// up to `max_steps`. Returns the number of steps taken, or `None` if the
    /// budget was exhausted first.
    pub fn run_solo_until_call_boundary(&mut self, pid: ProcId, max_steps: u64) -> Option<u64> {
        let mut taken = 0;
        while taken < max_steps {
            if !self.has_pending_call(pid) || !self.is_runnable(pid) {
                return Some(taken);
            }
            let _ = self.step(pid);
            taken += 1;
        }
        if !self.has_pending_call(pid) || !self.is_runnable(pid) {
            Some(taken)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::OpSequence;
    use crate::source::{RepeatUntil, Script, ScriptedCall};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    /// The parallel orchestration (pool-sharded audits, row fan-outs)
    /// depends on whole simulators being shareable across scoped workers.
    #[test]
    fn simulator_state_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimSpec>();
        assert_send_sync::<Simulator>();
        assert_send_sync::<Checkpoint>();
    }

    fn write_then_read_spec() -> (SimSpec, crate::ids::Addr) {
        let mut layout = MemLayout::new();
        let flag = layout.alloc_global(0);
        let writer = Script::new(vec![ScriptedCall::new(
            CallKind(0),
            "set",
            Arc::new(move || Box::new(OpSequence::new(vec![Op::Write(flag, 1)]))),
        )]);
        let reader = Script::new(vec![ScriptedCall::new(
            CallKind(1),
            "get",
            Arc::new(move || Box::new(OpSequence::new(vec![Op::Read(flag)]))),
        )]);
        (
            SimSpec {
                layout,
                sources: vec![Box::new(writer), Box::new(reader)],
                model: CostModel::Dsm,
            },
            flag,
        )
    }

    fn drain(sim: &mut Simulator, pid: ProcId) {
        while sim.step(pid) != StepReport::NotRunnable {}
    }

    #[test]
    fn basic_execution_and_accounting() {
        let (spec, flag) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        drain(&mut sim, ProcId(0));
        drain(&mut sim, ProcId(1));
        assert_eq!(sim.memory().peek(flag), 1);
        assert!(sim.all_done());
        // Both accesses hit a global cell: 2 RMRs in DSM.
        assert_eq!(sim.totals().rmrs, 2);
        assert_eq!(sim.proc_stats(ProcId(0)).calls_completed, 1);
        assert_eq!(sim.history().calls().len(), 2);
    }

    #[test]
    fn reader_sees_writer() {
        let (spec, _) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        drain(&mut sim, ProcId(0));
        drain(&mut sim, ProcId(1));
        assert!(sim.history().sees_pairs().contains(&(ProcId(1), ProcId(0))));
    }

    #[test]
    fn replay_reproduces_execution() {
        let (spec, _) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        // Interleave.
        let _ = sim.step(ProcId(0));
        let _ = sim.step(ProcId(1));
        let _ = sim.step(ProcId(0));
        let _ = sim.step(ProcId(1));
        let replayed = Simulator::replay(&spec, sim.schedule(), &BTreeSet::new());
        assert_eq!(replayed.history().to_vec(), sim.history().to_vec());
        assert_eq!(replayed.totals(), sim.totals());
    }

    #[test]
    fn replay_with_erasure_removes_process() {
        let (spec, flag) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        drain(&mut sim, ProcId(0));
        drain(&mut sim, ProcId(1));
        let erased = BTreeSet::from([ProcId(0)]);
        let replayed = Simulator::replay(&spec, sim.schedule(), &erased);
        assert_eq!(replayed.memory().peek(flag), 0, "writer erased");
        assert!(!replayed.history().participants().contains(&ProcId(0)));
        // The reader now reads 0 instead of 1 — erasure is only *legal* when
        // nobody saw the erased process; here it changes the outcome, which
        // is exactly why the adversary must check visibility first.
        let calls = replayed.history().calls();
        assert_eq!(calls[0].return_value, Some(0));
    }

    #[test]
    fn peek_next_op_sees_through_call_boundaries() {
        let (spec, flag) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        // p0's first effective action is the write.
        assert_eq!(
            sim.peek_next_op(ProcId(0)),
            Peek::Access(Op::Write(flag, 1))
        );
        // Peeking does not advance anything.
        assert_eq!(sim.totals().steps, 0);
        drain(&mut sim, ProcId(0));
        assert_eq!(sim.peek_next_op(ProcId(0)), Peek::NotRunnable);
    }

    #[test]
    fn peek_detects_termination() {
        let (spec, _) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        let _ = sim.step(ProcId(0)); // write (invoke + op)
        let _ = sim.step(ProcId(0)); // return
        assert_eq!(sim.peek_next_op(ProcId(0)), Peek::WillTerminate);
    }

    #[test]
    fn op_would_be_rmr_in_dsm() {
        let mut layout = MemLayout::new();
        let mine = layout.alloc_local(ProcId(0), 0);
        let theirs = layout.alloc_local(ProcId(1), 0);
        let spec = SimSpec {
            layout,
            sources: vec![Box::new(crate::source::Idle), Box::new(crate::source::Idle)],
            model: CostModel::Dsm,
        };
        let sim = Simulator::new(&spec);
        assert!(!sim.op_would_be_rmr(ProcId(0), &Op::Read(mine)));
        assert!(sim.op_would_be_rmr(ProcId(0), &Op::Read(theirs)));
    }

    #[test]
    fn inject_call_revives_terminated_process() {
        let (spec, flag) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        drain(&mut sim, ProcId(0));
        assert_eq!(sim.status(ProcId(0)), Status::Terminated);
        sim.inject_call(
            ProcId(0),
            Call::new(
                CallKind(9),
                "extra",
                Box::new(OpSequence::new(vec![Op::Write(flag, 7)])),
            ),
        );
        assert!(sim.is_runnable(ProcId(0)));
        let _ = sim.step(ProcId(0));
        assert_eq!(sim.memory().peek(flag), 7);
        assert_eq!(sim.injected_calls(), 1);
    }

    #[test]
    fn crash_mid_call_is_recorded() {
        let (spec, _) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        let _ = sim.step(ProcId(0)); // in the middle of "set"
        assert!(sim.has_pending_call(ProcId(0)));
        sim.crash(ProcId(0));
        assert_eq!(sim.status(ProcId(0)), Status::Crashed);
        assert!(sim.history().finished().contains(&ProcId(0)));
        assert_eq!(sim.step(ProcId(0)), StepReport::NotRunnable);
    }

    #[test]
    fn run_solo_until_call_boundary_completes_call() {
        let (spec, _) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        let _ = sim.step(ProcId(0)); // invoke + write
        assert!(sim.has_pending_call(ProcId(0)));
        let taken = sim.run_solo_until_call_boundary(ProcId(0), 100).unwrap();
        assert_eq!(taken, 1, "one more step to return");
        assert!(!sim.has_pending_call(ProcId(0)));
    }

    #[test]
    fn repeat_until_source_busy_waits() {
        let mut layout = MemLayout::new();
        let flag = layout.alloc_global(0);
        let poll = ScriptedCall::new(
            CallKind(1),
            "poll",
            Arc::new(move || Box::new(OpSequence::new(vec![Op::Read(flag)]))),
        );
        let waiter = RepeatUntil::new(poll, 1);
        let setter = Script::new(vec![ScriptedCall::new(
            CallKind(0),
            "set",
            Arc::new(move || Box::new(OpSequence::new(vec![Op::Write(flag, 1)]))),
        )]);
        let spec = SimSpec {
            layout,
            sources: vec![Box::new(waiter), Box::new(setter)],
            model: CostModel::Dsm,
        };
        let mut sim = Simulator::new(&spec);
        // Waiter polls three times (sees 0 each time).
        for _ in 0..6 {
            let _ = sim.step(ProcId(0));
        }
        assert!(sim.is_runnable(ProcId(0)));
        drain(&mut sim, ProcId(1));
        drain(&mut sim, ProcId(0));
        assert_eq!(sim.status(ProcId(0)), Status::Terminated);
        assert_eq!(sim.proc_stats(ProcId(0)).calls_completed, 4);
    }

    #[test]
    fn cloned_simulator_diverges_independently() {
        let (spec, flag) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        let mut snap = sim.clone();
        drain(&mut sim, ProcId(0));
        assert_eq!(sim.memory().peek(flag), 1);
        assert_eq!(snap.memory().peek(flag), 0);
        drain(&mut snap, ProcId(1));
        assert_eq!(snap.history().calls()[0].return_value, Some(0));
    }
}
