//! The simulator: deterministic execution of step machines over shared
//! memory with exact cost accounting, schedule recording, and replay.

use crate::event::{Event, History};
use crate::ids::{ProcId, Word};
use crate::machine::{Call, CallKind, Step};
use crate::mem::{MemLayout, Memory};
use crate::model::{AccessCost, CostModel, CostState};
use crate::op::Op;
use crate::source::CallSource;

/// Everything needed to (re)start an execution from the initial state.
///
/// Replaying a recorded schedule against a fresh simulator built from the
/// same spec reproduces the execution exactly; replaying it with some
/// processes *erased* implements Lemma 6.7's history surgery.
#[derive(Clone, Debug)]
pub struct SimSpec {
    /// The shared-memory allocation plan.
    pub layout: MemLayout,
    /// Per-process call sources; `sources.len()` is the number of processes.
    pub sources: Vec<Box<dyn CallSource>>,
    /// The cost model to price accesses under.
    pub model: CostModel,
}

impl SimSpec {
    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.sources.len()
    }
}

/// Execution status of a process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Status {
    /// Still able to take steps.
    Runnable,
    /// Call source exhausted; the process terminated normally.
    Terminated,
    /// Stopped while performing a procedure call.
    Crashed,
}

/// Per-process statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProcStats {
    /// Steps taken (state-machine transitions, including returns).
    pub steps: u64,
    /// Memory accesses performed.
    pub accesses: u64,
    /// Remote memory references incurred.
    pub rmrs: u64,
    /// Interconnect messages generated.
    pub messages: u64,
    /// Procedure calls completed.
    pub calls_completed: u64,
}

/// Aggregate statistics for the whole execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Totals {
    /// Steps taken by all processes.
    pub steps: u64,
    /// Memory accesses performed by all processes.
    pub accesses: u64,
    /// Total RMRs.
    pub rmrs: u64,
    /// Total interconnect messages.
    pub messages: u64,
    /// Total cache invalidations (CC models only).
    pub invalidations: u64,
}

/// What one `step` call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepReport {
    /// The process performed a memory access.
    Access {
        /// The operation performed.
        op: Op,
        /// The operation's result word.
        result: Word,
        /// The access's price.
        cost: AccessCost,
    },
    /// The process's current call returned.
    Returned {
        /// Domain tag of the completed call.
        kind: CallKind,
        /// Returned word.
        value: Word,
    },
    /// The process terminated (its source is exhausted).
    Terminated,
    /// The process was not runnable; nothing happened and the step was not
    /// recorded in the schedule.
    NotRunnable,
}

/// What one *single* `step` call would do next (see
/// [`Simulator::peek_transition`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionPeek {
    /// The step will perform this memory access.
    Access(Op),
    /// The step will complete the current (or immediately invoked) call.
    Return {
        /// Domain tag of the completing call.
        kind: CallKind,
        /// The value it will return.
        value: Word,
    },
    /// The step will terminate the process.
    WillTerminate,
    /// The process is not runnable.
    NotRunnable,
}

/// What the next effective step of a process will be (computed without
/// touching shared memory; see [`Simulator::peek_next_op`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Peek {
    /// The next memory access the process will perform (possibly after one
    /// or more intervening return/invoke steps).
    Access(Op),
    /// The process will terminate without performing another access.
    WillTerminate,
    /// The process is not runnable.
    NotRunnable,
}

#[derive(Clone, Debug)]
struct ProcState {
    source: Box<dyn CallSource>,
    current: Option<Call>,
    last_op_result: Option<Word>,
    last_return: Option<Word>,
    status: Status,
    stats: ProcStats,
}

/// Deterministic shared-memory simulator.
///
/// A `Simulator` advances processes one step at a time under the control of
/// a scheduler (or the lower-bound adversary), records the schedule and a
/// typed [`History`], and prices every access under its [`CostModel`].
///
/// Cloning a simulator snapshots the *entire* execution state — memory,
/// caches, process machines, history — which the adversary uses for
/// tentative exploration.
///
/// # Examples
///
/// ```
/// use shm_sim::{CostModel, MemLayout, Op, OpSequence, Script, ScriptedCall, CallKind, SimSpec, Simulator, ProcId};
/// use std::sync::Arc;
///
/// let mut layout = MemLayout::new();
/// let flag = layout.alloc_global(0);
/// let writer = Script::new(vec![ScriptedCall::new(
///     CallKind(0),
///     "set",
///     Arc::new(move || Box::new(OpSequence::new(vec![Op::Write(flag, 1)]))),
/// )]);
/// let spec = SimSpec { layout, sources: vec![Box::new(writer)], model: CostModel::Dsm };
/// let mut sim = Simulator::new(&spec);
/// while sim.step(ProcId(0)) != shm_sim::StepReport::NotRunnable {}
/// assert_eq!(sim.memory().peek(flag), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Simulator {
    memory: Memory,
    cost: CostState,
    procs: Vec<ProcState>,
    history: History,
    schedule: Vec<ProcId>,
    totals: Totals,
    injected: u64,
}

impl Simulator {
    /// Maximum internal transitions `peek_next_op` will look through before
    /// concluding the process loops forever without accessing memory.
    const PEEK_LIMIT: usize = 65_536;

    /// Builds a fresh simulator in the initial state of `spec`.
    #[must_use]
    pub fn new(spec: &SimSpec) -> Self {
        let memory = Memory::from_layout(&spec.layout);
        let cost = CostState::new(spec.model, spec.n(), spec.layout.len());
        let procs = spec
            .sources
            .iter()
            .map(|s| ProcState {
                source: s.clone(),
                current: None,
                last_op_result: None,
                last_return: None,
                status: Status::Runnable,
                stats: ProcStats::default(),
            })
            .collect();
        Simulator {
            memory,
            cost,
            procs,
            history: History::new(),
            schedule: Vec::new(),
            totals: Totals::default(),
            injected: 0,
        }
    }

    /// Replays `schedule` against a fresh simulator built from `spec`,
    /// skipping all steps of processes in `erased`.
    ///
    /// This is the executable form of *erasing* (Lemma 6.7): because step
    /// machines are deterministic and only communicate through memory, the
    /// filtered replay is a legal history, and it is identical (from every
    /// surviving process's point of view) whenever no survivor saw an erased
    /// process.
    #[must_use]
    pub fn replay(spec: &SimSpec, schedule: &[ProcId], erased: &std::collections::BTreeSet<ProcId>) -> Self {
        let mut sim = Simulator::new(spec);
        for &pid in schedule {
            if !erased.contains(&pid) {
                let _ = sim.step(pid);
            }
        }
        sim
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.procs.len()
    }

    /// Read access to shared memory (inspection; not a step).
    #[must_use]
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The recorded history so far.
    #[must_use]
    pub fn history(&self) -> &History {
        &self.history
    }

    /// The recorded schedule: one entry per effective step, in order.
    #[must_use]
    pub fn schedule(&self) -> &[ProcId] {
        &self.schedule
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn totals(&self) -> Totals {
        self.totals
    }

    /// Statistics of one process.
    #[must_use]
    pub fn proc_stats(&self, pid: ProcId) -> ProcStats {
        self.procs[pid.index()].stats
    }

    /// Execution status of one process.
    #[must_use]
    pub fn status(&self, pid: ProcId) -> Status {
        self.procs[pid.index()].status
    }

    /// Whether the process can still take steps.
    #[must_use]
    pub fn is_runnable(&self, pid: ProcId) -> bool {
        self.procs[pid.index()].status == Status::Runnable
    }

    /// IDs of all runnable processes.
    #[must_use]
    pub fn runnable(&self) -> Vec<ProcId> {
        (0..self.n())
            .map(|i| ProcId(i as u32))
            .filter(|&p| self.is_runnable(p))
            .collect()
    }

    /// Whether every process has terminated or crashed.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.procs.iter().all(|p| p.status != Status::Runnable)
    }

    /// Number of calls injected via [`Simulator::inject_call`]. When nonzero,
    /// the recorded schedule alone no longer reconstructs this execution;
    /// callers doing replay-based surgery must re-inject manually.
    #[must_use]
    pub fn injected_calls(&self) -> u64 {
        self.injected
    }

    /// Advances `pid` by one step.
    ///
    /// One step is one state-machine transition: it performs exactly one
    /// memory access, or completes a call, or terminates the process. If the
    /// process has no call in progress, the next call is fetched from its
    /// source (and its first transition executed) within the same step.
    pub fn step(&mut self, pid: ProcId) -> StepReport {
        if self.procs[pid.index()].status != Status::Runnable {
            return StepReport::NotRunnable;
        }
        self.schedule.push(pid);
        self.totals.steps += 1;
        self.procs[pid.index()].stats.steps += 1;

        // Fetch the next call if none is in progress.
        if self.procs[pid.index()].current.is_none() {
            let prev = self.procs[pid.index()].last_return;
            match self.procs[pid.index()].source.next_call(prev) {
                None => {
                    self.procs[pid.index()].status = Status::Terminated;
                    self.history.push(Event::Terminate { pid });
                    return StepReport::Terminated;
                }
                Some(call) => {
                    self.history.push(Event::Invoke { pid, kind: call.kind, name: call.name });
                    self.procs[pid.index()].current = Some(call);
                    self.procs[pid.index()].last_op_result = None;
                }
            }
        }

        // One machine transition.
        let last = self.procs[pid.index()].last_op_result;
        let step = self.procs[pid.index()]
            .current
            .as_mut()
            .expect("current call set above")
            .machine
            .step(last);
        match step {
            Step::Op(op) => {
                let (result, cost) = self.apply_access(pid, op);
                self.procs[pid.index()].last_op_result = Some(result);
                StepReport::Access { op, result, cost }
            }
            Step::Return(value) => {
                let call = self.procs[pid.index()].current.take().expect("current call");
                self.history.push(Event::Return { pid, kind: call.kind, value });
                self.procs[pid.index()].last_return = Some(value);
                self.procs[pid.index()].stats.calls_completed += 1;
                StepReport::Returned { kind: call.kind, value }
            }
        }
    }

    fn apply_access(&mut self, pid: ProcId, op: Op) -> (Word, AccessCost) {
        // `sees` must be computed from the cell's last writer *before* the
        // access mutates it.
        let addr = op.addr();
        let observes_value = !matches!(op, Op::Write(..));
        let sees = if observes_value {
            self.memory.last_writer(addr).filter(|&q| q != pid)
        } else {
            None
        };
        let touches = self.memory.owner(addr).filter(|&q| q != pid);
        let applied = self.memory.apply(pid, op);
        let cost = self.cost.charge(pid, addr, self.memory.owner(addr), &applied);
        let st = &mut self.procs[pid.index()].stats;
        st.accesses += 1;
        st.rmrs += u64::from(cost.rmr);
        st.messages += cost.messages;
        self.totals.accesses += 1;
        self.totals.rmrs += u64::from(cost.rmr);
        self.totals.messages += cost.messages;
        self.totals.invalidations += cost.invalidations;
        self.history.push(Event::Access {
            pid,
            op,
            result: applied.result,
            wrote: applied.nontrivial,
            cost,
            sees,
            touches,
        });
        (applied.result, cost)
    }

    /// Computes the next memory access `pid` will perform, without executing
    /// anything and without touching shared memory.
    ///
    /// Step machines receive values only through their `last` argument, so
    /// the next operation is a pure function of the process's private state;
    /// this method clones that state (source + current call) and runs it
    /// forward through any non-access transitions (returns, call fetches).
    ///
    /// # Panics
    ///
    /// Panics if the process makes more than an internal limit of
    /// transitions without either accessing memory or terminating (which
    /// would mean a livelocked call source).
    #[must_use]
    pub fn peek_next_op(&self, pid: ProcId) -> Peek {
        let p = &self.procs[pid.index()];
        if p.status != Status::Runnable {
            return Peek::NotRunnable;
        }
        let mut source = p.source.clone();
        let mut current = p.current.clone();
        let mut last_op_result = p.last_op_result;
        let mut last_return = p.last_return;
        for _ in 0..Self::PEEK_LIMIT {
            if current.is_none() {
                match source.next_call(last_return) {
                    None => return Peek::WillTerminate,
                    Some(call) => {
                        current = Some(call);
                        last_op_result = None;
                    }
                }
            }
            match current.as_mut().expect("set above").machine.step(last_op_result) {
                Step::Op(op) => return Peek::Access(op),
                Step::Return(v) => {
                    current = None;
                    last_return = Some(v);
                }
            }
        }
        panic!("peek_next_op: {pid} made {} transitions without accessing memory", Self::PEEK_LIMIT);
    }

    /// Computes what the next *single* `step(pid)` call would do, without
    /// executing it. Unlike [`Simulator::peek_next_op`], this does not look
    /// through return/invoke transitions — it reports exactly the next
    /// step's effect, which the lower-bound adversary needs to stop a
    /// process precisely "just before" an access.
    #[must_use]
    pub fn peek_transition(&self, pid: ProcId) -> TransitionPeek {
        let p = &self.procs[pid.index()];
        if p.status != Status::Runnable {
            return TransitionPeek::NotRunnable;
        }
        let (mut current, last_op_result) = match &p.current {
            Some(call) => (call.clone(), p.last_op_result),
            None => {
                let mut source = p.source.clone();
                match source.next_call(p.last_return) {
                    None => return TransitionPeek::WillTerminate,
                    Some(call) => (call, None),
                }
            }
        };
        match current.machine.step(last_op_result) {
            Step::Op(op) => TransitionPeek::Access(op),
            Step::Return(value) => TransitionPeek::Return { kind: current.kind, value },
        }
    }

    /// Whether executing `op` right now on behalf of `pid` would be an RMR.
    ///
    /// Exact for every operation: CAS/SC success is decided against current
    /// memory contents, so the trivial/nontrivial distinction is resolved
    /// precisely.
    #[must_use]
    pub fn op_would_be_rmr(&self, pid: ProcId, op: &Op) -> bool {
        let addr = op.addr();
        let nontrivial = match *op {
            Op::Read(_) | Op::Ll(_) => false,
            Op::Write(..) | Op::Faa(..) | Op::Fas(..) | Op::Tas(_) => true,
            Op::Cas(a, expected, _) => self.memory.peek(a) == expected,
            // Conservative: we cannot inspect reservations cheaply here, but
            // a successful SC requires a prior LL by the same process, whose
            // reservation state is in memory; treat as nontrivial iff it
            // would succeed is not observable, so price as nontrivial (the
            // more expensive case) — exact for DSM where it is irrelevant.
            Op::Sc(..) => true,
        };
        crate::model::would_be_rmr(&self.cost, pid, addr, self.memory.owner(addr), nontrivial)
    }

    /// Observation footprint of executing `op` as `pid` right now:
    /// `(sees, touches)` per Definitions 6.4/6.5. Used by the adversary to
    /// decide whether to erase a process *before* letting a step happen.
    #[must_use]
    pub fn op_observation(&self, pid: ProcId, op: &Op) -> (Option<ProcId>, Option<ProcId>) {
        let addr = op.addr();
        let sees = if matches!(op, Op::Write(..)) {
            None
        } else {
            self.memory.last_writer(addr).filter(|&q| q != pid)
        };
        let touches = self.memory.owner(addr).filter(|&q| q != pid);
        (sees, touches)
    }

    /// Injects a procedure call into `pid`, reviving it if it had terminated.
    ///
    /// Used by the lower-bound adversary (proof Part 2) to direct a chosen
    /// process to call `Signal()` after the waiter population has stabilized:
    /// in the history family `H_A` (Definition 6.1) every process may make
    /// calls in arbitrary order before terminating, so injection just selects
    /// a longer call sequence for that process. Replay via the recorded
    /// schedule does **not** reproduce injected calls — callers replay the
    /// pre-injection prefix and re-inject (see [`Simulator::injected_calls`]).
    ///
    /// # Panics
    ///
    /// Panics if the process currently has a call in progress or crashed.
    pub fn inject_call(&mut self, pid: ProcId, call: Call) {
        let p = &mut self.procs[pid.index()];
        assert!(p.current.is_none(), "inject_call: {pid} has a call in progress");
        assert!(p.status != Status::Crashed, "inject_call: {pid} crashed");
        p.status = Status::Runnable;
        self.history.push(Event::Invoke { pid, kind: call.kind, name: call.name });
        p.current = Some(call);
        p.last_op_result = None;
        self.injected += 1;
    }

    /// Whether `pid` has a procedure call in progress.
    #[must_use]
    pub fn has_pending_call(&self, pid: ProcId) -> bool {
        self.procs[pid.index()].current.is_some()
    }

    /// Crashes `pid`: it stops taking steps, mid-call or not.
    ///
    /// Models the paper's crash (§2: a process crashes if it terminates while
    /// performing a procedure call). Used for failure-injection tests.
    pub fn crash(&mut self, pid: ProcId) {
        let p = &mut self.procs[pid.index()];
        if p.status == Status::Runnable {
            p.status = Status::Crashed;
            self.history.push(Event::Crash { pid });
        }
    }

    /// Runs `pid` alone until its current call completes (or it terminates),
    /// up to `max_steps`. Returns the number of steps taken, or `None` if the
    /// budget was exhausted first.
    pub fn run_solo_until_call_boundary(&mut self, pid: ProcId, max_steps: u64) -> Option<u64> {
        let mut taken = 0;
        while taken < max_steps {
            if !self.has_pending_call(pid) || !self.is_runnable(pid) {
                return Some(taken);
            }
            let _ = self.step(pid);
            taken += 1;
        }
        if !self.has_pending_call(pid) || !self.is_runnable(pid) {
            Some(taken)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::OpSequence;
    use crate::source::{RepeatUntil, Script, ScriptedCall};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn write_then_read_spec() -> (SimSpec, crate::ids::Addr) {
        let mut layout = MemLayout::new();
        let flag = layout.alloc_global(0);
        let writer = Script::new(vec![ScriptedCall::new(
            CallKind(0),
            "set",
            Arc::new(move || Box::new(OpSequence::new(vec![Op::Write(flag, 1)]))),
        )]);
        let reader = Script::new(vec![ScriptedCall::new(
            CallKind(1),
            "get",
            Arc::new(move || Box::new(OpSequence::new(vec![Op::Read(flag)]))),
        )]);
        (
            SimSpec {
                layout,
                sources: vec![Box::new(writer), Box::new(reader)],
                model: CostModel::Dsm,
            },
            flag,
        )
    }

    fn drain(sim: &mut Simulator, pid: ProcId) {
        while sim.step(pid) != StepReport::NotRunnable {}
    }

    #[test]
    fn basic_execution_and_accounting() {
        let (spec, flag) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        drain(&mut sim, ProcId(0));
        drain(&mut sim, ProcId(1));
        assert_eq!(sim.memory().peek(flag), 1);
        assert!(sim.all_done());
        // Both accesses hit a global cell: 2 RMRs in DSM.
        assert_eq!(sim.totals().rmrs, 2);
        assert_eq!(sim.proc_stats(ProcId(0)).calls_completed, 1);
        assert_eq!(sim.history().calls().len(), 2);
    }

    #[test]
    fn reader_sees_writer() {
        let (spec, _) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        drain(&mut sim, ProcId(0));
        drain(&mut sim, ProcId(1));
        assert!(sim.history().sees_pairs().contains(&(ProcId(1), ProcId(0))));
    }

    #[test]
    fn replay_reproduces_execution() {
        let (spec, _) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        // Interleave.
        let _ = sim.step(ProcId(0));
        let _ = sim.step(ProcId(1));
        let _ = sim.step(ProcId(0));
        let _ = sim.step(ProcId(1));
        let replayed = Simulator::replay(&spec, sim.schedule(), &BTreeSet::new());
        assert_eq!(replayed.history().events(), sim.history().events());
        assert_eq!(replayed.totals(), sim.totals());
    }

    #[test]
    fn replay_with_erasure_removes_process() {
        let (spec, flag) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        drain(&mut sim, ProcId(0));
        drain(&mut sim, ProcId(1));
        let erased = BTreeSet::from([ProcId(0)]);
        let replayed = Simulator::replay(&spec, sim.schedule(), &erased);
        assert_eq!(replayed.memory().peek(flag), 0, "writer erased");
        assert!(!replayed.history().participants().contains(&ProcId(0)));
        // The reader now reads 0 instead of 1 — erasure is only *legal* when
        // nobody saw the erased process; here it changes the outcome, which
        // is exactly why the adversary must check visibility first.
        let calls = replayed.history().calls();
        assert_eq!(calls[0].return_value, Some(0));
    }

    #[test]
    fn peek_next_op_sees_through_call_boundaries() {
        let (spec, flag) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        // p0's first effective action is the write.
        assert_eq!(sim.peek_next_op(ProcId(0)), Peek::Access(Op::Write(flag, 1)));
        // Peeking does not advance anything.
        assert_eq!(sim.totals().steps, 0);
        drain(&mut sim, ProcId(0));
        assert_eq!(sim.peek_next_op(ProcId(0)), Peek::NotRunnable);
    }

    #[test]
    fn peek_detects_termination() {
        let (spec, _) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        let _ = sim.step(ProcId(0)); // write (invoke + op)
        let _ = sim.step(ProcId(0)); // return
        assert_eq!(sim.peek_next_op(ProcId(0)), Peek::WillTerminate);
    }

    #[test]
    fn op_would_be_rmr_in_dsm() {
        let mut layout = MemLayout::new();
        let mine = layout.alloc_local(ProcId(0), 0);
        let theirs = layout.alloc_local(ProcId(1), 0);
        let spec = SimSpec {
            layout,
            sources: vec![Box::new(crate::source::Idle), Box::new(crate::source::Idle)],
            model: CostModel::Dsm,
        };
        let sim = Simulator::new(&spec);
        assert!(!sim.op_would_be_rmr(ProcId(0), &Op::Read(mine)));
        assert!(sim.op_would_be_rmr(ProcId(0), &Op::Read(theirs)));
    }

    #[test]
    fn inject_call_revives_terminated_process() {
        let (spec, flag) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        drain(&mut sim, ProcId(0));
        assert_eq!(sim.status(ProcId(0)), Status::Terminated);
        sim.inject_call(
            ProcId(0),
            Call::new(CallKind(9), "extra", Box::new(OpSequence::new(vec![Op::Write(flag, 7)]))),
        );
        assert!(sim.is_runnable(ProcId(0)));
        let _ = sim.step(ProcId(0));
        assert_eq!(sim.memory().peek(flag), 7);
        assert_eq!(sim.injected_calls(), 1);
    }

    #[test]
    fn crash_mid_call_is_recorded() {
        let (spec, _) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        let _ = sim.step(ProcId(0)); // in the middle of "set"
        assert!(sim.has_pending_call(ProcId(0)));
        sim.crash(ProcId(0));
        assert_eq!(sim.status(ProcId(0)), Status::Crashed);
        assert!(sim.history().finished().contains(&ProcId(0)));
        assert_eq!(sim.step(ProcId(0)), StepReport::NotRunnable);
    }

    #[test]
    fn run_solo_until_call_boundary_completes_call() {
        let (spec, _) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        let _ = sim.step(ProcId(0)); // invoke + write
        assert!(sim.has_pending_call(ProcId(0)));
        let taken = sim.run_solo_until_call_boundary(ProcId(0), 100).unwrap();
        assert_eq!(taken, 1, "one more step to return");
        assert!(!sim.has_pending_call(ProcId(0)));
    }

    #[test]
    fn repeat_until_source_busy_waits() {
        let mut layout = MemLayout::new();
        let flag = layout.alloc_global(0);
        let poll = ScriptedCall::new(
            CallKind(1),
            "poll",
            Arc::new(move || Box::new(OpSequence::new(vec![Op::Read(flag)]))),
        );
        let waiter = RepeatUntil::new(poll, 1);
        let setter = Script::new(vec![ScriptedCall::new(
            CallKind(0),
            "set",
            Arc::new(move || Box::new(OpSequence::new(vec![Op::Write(flag, 1)]))),
        )]);
        let spec = SimSpec {
            layout,
            sources: vec![Box::new(waiter), Box::new(setter)],
            model: CostModel::Dsm,
        };
        let mut sim = Simulator::new(&spec);
        // Waiter polls three times (sees 0 each time).
        for _ in 0..6 {
            let _ = sim.step(ProcId(0));
        }
        assert!(sim.is_runnable(ProcId(0)));
        drain(&mut sim, ProcId(1));
        drain(&mut sim, ProcId(0));
        assert_eq!(sim.status(ProcId(0)), Status::Terminated);
        assert_eq!(sim.proc_stats(ProcId(0)).calls_completed, 4);
    }

    #[test]
    fn cloned_simulator_diverges_independently() {
        let (spec, flag) = write_then_read_spec();
        let mut sim = Simulator::new(&spec);
        let mut snap = sim.clone();
        drain(&mut sim, ProcId(0));
        assert_eq!(sim.memory().peek(flag), 1);
        assert_eq!(snap.memory().peek(flag), 0);
        drain(&mut snap, ProcId(1));
        assert_eq!(snap.history().calls()[0].return_value, Some(0));
    }
}
