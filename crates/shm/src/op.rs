//! Atomic shared-memory operations.
//!
//! The paper's machine model (§2) provides atomic reads, writes,
//! Compare-And-Swap and Load-Linked/Store-Conditional. We additionally
//! implement Fetch-And-Add, Fetch-And-Store and Test-And-Set, which §7 uses
//! to close the complexity gap and which the mutual-exclusion substrate
//! needs (Anderson and MCS locks).

use crate::ids::{Addr, Word};
use std::fmt;

/// One atomic operation on a shared-memory cell.
///
/// Every operation returns a single [`Word`]; see [`Op::describe_result`] for
/// the per-variant meaning.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// Atomic read; returns the cell value.
    Read(Addr),
    /// Atomic write of the given word; returns the written word.
    Write(Addr, Word),
    /// `Cas(a, expected, new)`: if the cell holds `expected`, replace it with
    /// `new`. Returns the *old* value (success iff old == expected).
    Cas(Addr, Word, Word),
    /// Load-Linked: read the value and establish a reservation that is broken
    /// by any subsequent nontrivial operation on the cell.
    Ll(Addr),
    /// Store-Conditional: write the word iff the caller's reservation from a
    /// prior [`Op::Ll`] is still intact. Returns 1 on success and 0 on failure.
    Sc(Addr, Word),
    /// Fetch-And-Add (wrapping); returns the old value.
    Faa(Addr, Word),
    /// Fetch-And-Store (atomic swap); returns the old value.
    Fas(Addr, Word),
    /// Test-And-Set: write 1; returns the old value.
    Tas(Addr),
}

impl Op {
    /// The address the operation accesses.
    #[must_use]
    pub fn addr(&self) -> Addr {
        match *self {
            Op::Read(a)
            | Op::Write(a, _)
            | Op::Cas(a, _, _)
            | Op::Ll(a)
            | Op::Sc(a, _)
            | Op::Faa(a, _)
            | Op::Fas(a, _)
            | Op::Tas(a) => a,
        }
    }

    /// Whether this is a comparison primitive (CAS or SC), whose *failed*
    /// applications are trivial and, on LFCU cache-coherent systems, local.
    #[must_use]
    pub fn is_comparison(&self) -> bool {
        matches!(self, Op::Cas(..) | Op::Sc(..))
    }

    /// Whether this operation belongs to the reads/writes-only class studied
    /// by Theorem 6.2 before Corollary 6.14 extends it.
    #[must_use]
    pub fn is_read_write(&self) -> bool {
        matches!(self, Op::Read(_) | Op::Write(..))
    }

    /// Human-oriented description of the result word, for traces.
    #[must_use]
    pub fn describe_result(&self) -> &'static str {
        match self {
            Op::Read(_) | Op::Ll(_) => "value read",
            Op::Write(..) => "value written",
            Op::Cas(..) | Op::Faa(..) | Op::Fas(..) | Op::Tas(_) => "old value",
            Op::Sc(..) => "1 iff stored",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Op::Read(a) => write!(f, "read({a})"),
            Op::Write(a, w) => write!(f, "write({a}, {w})"),
            Op::Cas(a, e, n) => write!(f, "cas({a}, {e}, {n})"),
            Op::Ll(a) => write!(f, "ll({a})"),
            Op::Sc(a, w) => write!(f, "sc({a}, {w})"),
            Op::Faa(a, d) => write!(f, "faa({a}, {d})"),
            Op::Fas(a, w) => write!(f, "fas({a}, {w})"),
            Op::Tas(a) => write!(f, "tas({a})"),
        }
    }
}

/// Outcome of applying an [`Op`] to memory.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Applied {
    /// The word returned to the caller.
    pub result: Word,
    /// Whether the operation was *nontrivial* in the paper's sense (§2): it
    /// overwrote the cell, possibly with the same value. Failed CAS/SC are
    /// trivial; everything except `Read`/`Ll` and failed comparisons is
    /// nontrivial.
    pub nontrivial: bool,
    /// Whether this was a comparison primitive that failed (used by the LFCU
    /// cache model, which makes failed comparisons local).
    pub failed_comparison: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_extraction_covers_all_variants() {
        let a = Addr(7);
        let ops = [
            Op::Read(a),
            Op::Write(a, 1),
            Op::Cas(a, 0, 1),
            Op::Ll(a),
            Op::Sc(a, 1),
            Op::Faa(a, 1),
            Op::Fas(a, 1),
            Op::Tas(a),
        ];
        for op in ops {
            assert_eq!(op.addr(), a, "{op}");
        }
    }

    #[test]
    fn classification() {
        let a = Addr(0);
        assert!(Op::Cas(a, 0, 1).is_comparison());
        assert!(Op::Sc(a, 1).is_comparison());
        assert!(!Op::Faa(a, 1).is_comparison());
        assert!(Op::Read(a).is_read_write());
        assert!(Op::Write(a, 0).is_read_write());
        assert!(!Op::Tas(a).is_read_write());
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Op::Cas(Addr(2), 0, 5).to_string(), "cas(@2, 0, 5)");
        assert_eq!(Op::Read(Addr(1)).to_string(), "read(@1)");
    }
}
