//! The step-machine framework in which all algorithms are written.
//!
//! A *procedure call* (the paper's `Signal()`, `Poll()`, `Wait()`, or a
//! lock's `acquire`) is a deterministic state machine that is advanced one
//! step at a time by the simulator. Each step either issues one atomic
//! memory operation or returns a value and ends the call.
//!
//! Determinism plus cloneability is what makes the lower-bound adversary's
//! techniques executable: *erasing* a process is a replay of the schedule
//! without its steps, and *peeking* at a process's next memory operation
//! clones only its machine state (a step machine never touches memory
//! directly — it sees values exclusively through the `last` argument).

use crate::ids::Word;
use crate::op::Op;
use std::fmt;

/// What a procedure call does in one step.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// Issue one atomic memory operation; its result is passed to the next
    /// `step` invocation.
    Op(Op),
    /// Finish the call, returning a word to the caller (Booleans are encoded
    /// as 0/1; procedures without a result return 0).
    Return(Word),
}

/// A single procedure call as a deterministic, cloneable state machine.
///
/// # Contract
///
/// * `step` is called with `None` first, then with `Some(result)` of the
///   operation issued by the previous step.
/// * After returning [`Step::Return`], `step` is never called again.
/// * `step` must be deterministic: equal state and inputs give equal outputs.
///   (No clocks, no randomness — randomized algorithms would take their coins
///   as explicit construction parameters.)
///
/// # Examples
///
/// A call that reads one cell and returns its value:
///
/// ```
/// use shm_sim::{Addr, Op, ProcedureCall, Step, Word};
///
/// #[derive(Clone)]
/// struct ReadCell { addr: Addr, issued: bool }
///
/// impl ProcedureCall for ReadCell {
///     fn step(&mut self, last: Option<Word>) -> Step {
///         if self.issued {
///             Step::Return(last.expect("read result"))
///         } else {
///             self.issued = true;
///             Step::Op(Op::Read(self.addr))
///         }
///     }
///     fn clone_call(&self) -> Box<dyn ProcedureCall> { Box::new(self.clone()) }
/// }
/// ```
pub trait ProcedureCall: Send + Sync {
    /// Advances the call by one step. See the trait-level contract.
    fn step(&mut self, last: Option<Word>) -> Step;

    /// Clones the call's state (object-safe `Clone`).
    fn clone_call(&self) -> Box<dyn ProcedureCall>;
}

impl Clone for Box<dyn ProcedureCall> {
    fn clone(&self) -> Self {
        self.clone_call()
    }
}

impl fmt::Debug for Box<dyn ProcedureCall> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Box<dyn ProcedureCall>")
    }
}

/// Domain tag identifying what kind of procedure a call is.
///
/// The simulator treats this as opaque; domain crates define constants (e.g.
/// the signaling crate uses `SIGNAL`, `POLL`, `WAIT`) and their history
/// checkers dispatch on it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CallKind(pub u32);

/// A labelled procedure call ready to be run by the simulator.
#[derive(Clone, Debug)]
pub struct Call {
    /// Domain tag (see [`CallKind`]).
    pub kind: CallKind,
    /// Human-readable procedure name for traces (e.g. `"Poll"`).
    pub name: &'static str,
    /// The state machine implementing the call.
    pub machine: Box<dyn ProcedureCall>,
}

impl Call {
    /// Creates a labelled call.
    #[must_use]
    pub fn new(kind: CallKind, name: &'static str, machine: Box<dyn ProcedureCall>) -> Self {
        Call {
            kind,
            name,
            machine,
        }
    }
}

/// A ready-made call that immediately returns a constant. Useful in tests
/// and as a no-op procedure.
#[derive(Clone, Copy, Debug)]
pub struct ReturnConst(pub Word);

impl ProcedureCall for ReturnConst {
    fn step(&mut self, _last: Option<Word>) -> Step {
        Step::Return(self.0)
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(*self)
    }
}

/// A call that executes a fixed straight-line sequence of operations and
/// returns the result of the last one (or 0 if the sequence is empty).
///
/// Handy for tests and for simple registration procedures.
#[derive(Clone, Debug)]
pub struct OpSequence {
    ops: Vec<Op>,
    next: usize,
}

impl OpSequence {
    /// Creates a straight-line call from the given operations.
    #[must_use]
    pub fn new(ops: Vec<Op>) -> Self {
        OpSequence { ops, next: 0 }
    }
}

impl ProcedureCall for OpSequence {
    fn step(&mut self, last: Option<Word>) -> Step {
        if self.next < self.ops.len() {
            let op = self.ops[self.next];
            self.next += 1;
            Step::Op(op)
        } else {
            Step::Return(last.unwrap_or(0))
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Addr;

    #[test]
    fn return_const_returns_immediately() {
        let mut c = ReturnConst(42);
        assert_eq!(c.step(None), Step::Return(42));
    }

    #[test]
    fn op_sequence_runs_in_order_then_returns_last_result() {
        let mut c = OpSequence::new(vec![Op::Write(Addr(0), 1), Op::Read(Addr(1))]);
        assert_eq!(c.step(None), Step::Op(Op::Write(Addr(0), 1)));
        assert_eq!(c.step(Some(1)), Step::Op(Op::Read(Addr(1))));
        assert_eq!(c.step(Some(99)), Step::Return(99));
    }

    #[test]
    fn empty_op_sequence_returns_zero() {
        let mut c = OpSequence::new(vec![]);
        assert_eq!(c.step(None), Step::Return(0));
    }

    #[test]
    fn boxed_clone_preserves_state() {
        let mut c = OpSequence::new(vec![Op::Read(Addr(0)), Op::Read(Addr(1))]);
        let _ = c.step(None);
        let mut copy: Box<dyn ProcedureCall> = c.clone_call();
        // The clone resumes exactly where the original was.
        assert_eq!(copy.step(Some(7)), Step::Op(Op::Read(Addr(1))));
        assert_eq!(c.step(Some(7)), Step::Op(Op::Read(Addr(1))));
    }
}
