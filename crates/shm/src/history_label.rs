//! Cell labels for trace rendering.

use crate::ids::Addr;
use std::collections::BTreeMap;

/// A registry of human-readable names for allocated cells.
///
/// Produced by [`crate::mem::MemLayout::labels`]; unlabelled cells render
/// as their raw address.
#[derive(Clone, Debug, Default)]
pub struct Labels {
    names: BTreeMap<u32, String>,
}

impl Labels {
    pub(crate) fn insert(&mut self, addr: Addr, name: String) {
        self.names.insert(addr.0, name);
    }

    /// The display name of `addr`.
    #[must_use]
    pub fn name(&self, addr: Addr) -> String {
        self.names
            .get(&addr.0)
            .cloned()
            .unwrap_or_else(|| format!("{addr}"))
    }

    /// Number of labelled cells.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no cells are labelled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}
