//! Histories: the typed event log of an execution, with the queries the
//! paper's definitions need (participation, *sees*, *touches*, regularity).

use crate::ids::{Addr, ProcId, Word};
use crate::machine::CallKind;
use crate::model::AccessCost;
use crate::op::Op;
use std::collections::{BTreeMap, BTreeSet};

/// One event in a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A process began a procedure call.
    Invoke {
        /// Calling process.
        pid: ProcId,
        /// Domain tag of the procedure.
        kind: CallKind,
        /// Procedure name for traces.
        name: &'static str,
    },
    /// A procedure call returned.
    Return {
        /// Calling process.
        pid: ProcId,
        /// Domain tag of the procedure.
        kind: CallKind,
        /// The returned word.
        value: Word,
    },
    /// A process performed one atomic memory access.
    Access {
        /// Acting process.
        pid: ProcId,
        /// The operation performed.
        op: Op,
        /// The word returned by the operation.
        result: Word,
        /// Whether the operation was nontrivial (overwrote the cell).
        wrote: bool,
        /// Price of the access under the simulation's cost model.
        cost: AccessCost,
        /// `Some(q)` iff this access *sees* q: it observed a value last
        /// written by the distinct process q (Definition 6.4; we apply it to
        /// every value-returning operation, i.e. everything except `Write`).
        sees: Option<ProcId>,
        /// `Some(q)` iff this access *touches* q: the cell is local to the
        /// distinct process q (Definition 6.5).
        touches: Option<ProcId>,
    },
    /// A process terminated (its call source was exhausted).
    Terminate {
        /// The terminating process.
        pid: ProcId,
    },
    /// A process crashed: it was stopped while performing a procedure call.
    Crash {
        /// The crashed process.
        pid: ProcId,
    },
}

impl Event {
    /// The process the event belongs to.
    #[must_use]
    pub fn pid(&self) -> ProcId {
        match *self {
            Event::Invoke { pid, .. }
            | Event::Return { pid, .. }
            | Event::Access { pid, .. }
            | Event::Terminate { pid }
            | Event::Crash { pid } => pid,
        }
    }
}

/// A completed or pending procedure call reconstructed from a history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallRecord {
    /// Calling process.
    pub pid: ProcId,
    /// Domain tag.
    pub kind: CallKind,
    /// Index of the `Invoke` event in the history.
    pub invoked_at: usize,
    /// Index of the `Return` event, if the call completed.
    pub returned_at: Option<usize>,
    /// Return value, if the call completed.
    pub return_value: Option<Word>,
}

impl CallRecord {
    /// Whether the call completed within the history.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.returned_at.is_some()
    }
}

/// A violation of history regularity (Definition 6.6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegularityViolation {
    /// Condition 1: `seer` sees `seen`, but `seen` is not finished.
    SeesActive {
        /// The reading process.
        seer: ProcId,
        /// The unfinished process whose write was observed.
        seen: ProcId,
        /// History index of the offending access.
        at: usize,
    },
    /// Condition 2: `toucher` touches `touched`, but `touched` is not finished.
    TouchesActive {
        /// The accessing process.
        toucher: ProcId,
        /// The unfinished owner of the touched cell.
        touched: ProcId,
        /// History index of the offending access.
        at: usize,
    },
    /// Condition 3: a multi-writer cell's last write is by an unfinished process.
    MultiWriterLastWriteActive {
        /// The cell in question.
        addr: Addr,
        /// The unfinished last writer.
        last_writer: ProcId,
    },
}

/// A history event as one process experiences it: cost metadata stripped,
/// identities of other processes invisible. See [`History::projection`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProjectedEvent {
    /// The process invoked a call of this kind.
    Invoke(CallKind),
    /// The process's call of this kind returned this value.
    Return(CallKind, Word),
    /// The process performed this operation and received this result.
    Access(Op, Word),
}

/// The event log of one execution.
///
/// A `History` corresponds to the paper's history `H`: a finite sequence of
/// steps from well-defined initial conditions (§2). Queries implement the
/// definitions of §6 so the adversary and the test suite can check the
/// constructions mechanically.
#[derive(Clone, Debug, Default)]
pub struct History {
    events: Vec<Event>,
}

impl History {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (used by the simulator).
    pub(crate) fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// All events in order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `Par(H)`: processes that take at least one step in the history.
    #[must_use]
    pub fn participants(&self) -> BTreeSet<ProcId> {
        self.events.iter().map(Event::pid).collect()
    }

    /// `Fin(H)`: participating processes that have terminated (or crashed)
    /// by the end of the history.
    #[must_use]
    pub fn finished(&self) -> BTreeSet<ProcId> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Terminate { pid } | Event::Crash { pid } => Some(pid),
                _ => None,
            })
            .collect()
    }

    /// `Act(H) = Par(H) \ Fin(H)`.
    #[must_use]
    pub fn active(&self) -> BTreeSet<ProcId> {
        let fin = self.finished();
        self.participants().into_iter().filter(|p| !fin.contains(p)).collect()
    }

    /// All (seer, seen) pairs: p sees q if p observed a value last written by
    /// the distinct process q (Definition 6.4).
    #[must_use]
    pub fn sees_pairs(&self) -> BTreeSet<(ProcId, ProcId)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Access { pid, sees: Some(q), .. } => Some((pid, q)),
                _ => None,
            })
            .collect()
    }

    /// All (toucher, touched) pairs: p touches q if p accessed a cell local
    /// to the distinct process q (Definition 6.5).
    #[must_use]
    pub fn touches_pairs(&self) -> BTreeSet<(ProcId, ProcId)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Access { pid, touches: Some(q), .. } => Some((pid, q)),
                _ => None,
            })
            .collect()
    }

    /// Total RMRs across all accesses.
    #[must_use]
    pub fn total_rmrs(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Access { cost, .. } => u64::from(cost.rmr),
                _ => 0,
            })
            .sum()
    }

    /// RMRs incurred by one process.
    #[must_use]
    pub fn rmrs_of(&self, pid: ProcId) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Access { pid: p, cost, .. } if *p == pid => u64::from(cost.rmr),
                _ => 0,
            })
            .sum()
    }

    /// Reconstructs per-call records by matching `Invoke`/`Return` events.
    #[must_use]
    pub fn calls(&self) -> Vec<CallRecord> {
        let mut out: Vec<CallRecord> = Vec::new();
        let mut open: BTreeMap<ProcId, usize> = BTreeMap::new();
        for (i, e) in self.events.iter().enumerate() {
            match *e {
                Event::Invoke { pid, kind, .. } => {
                    let idx = out.len();
                    out.push(CallRecord {
                        pid,
                        kind,
                        invoked_at: i,
                        returned_at: None,
                        return_value: None,
                    });
                    open.insert(pid, idx);
                }
                Event::Return { pid, value, .. } => {
                    let idx = open.remove(&pid).expect("return without matching invoke");
                    out[idx].returned_at = Some(i);
                    out[idx].return_value = Some(value);
                }
                _ => {}
            }
        }
        out
    }

    /// The semantic projection of the history onto one process: its invokes,
    /// returns, and accesses (operation + result), with cost metadata
    /// stripped. Two executions are indistinguishable to a process iff its
    /// projections are equal — the criterion the lower-bound adversary uses
    /// to certify that *erasing* other processes was transparent
    /// (Lemma 6.7's conclusion, checked mechanically).
    #[must_use]
    pub fn projection(&self, pid: ProcId) -> Vec<ProjectedEvent> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Invoke { pid: p, kind, .. } if p == pid => Some(ProjectedEvent::Invoke(kind)),
                Event::Return { pid: p, kind, value } if p == pid => {
                    Some(ProjectedEvent::Return(kind, value))
                }
                Event::Access { pid: p, op, result, .. } if p == pid => {
                    Some(ProjectedEvent::Access(op, result))
                }
                _ => None,
            })
            .collect()
    }

    /// Checks regularity (Definition 6.6). Conditions 1 and 2 require every
    /// seen/touched process to be in `Fin(H)`; condition 3 requires the last
    /// writer of every multi-writer cell to be in `Fin(H)`.
    ///
    /// Returns all violations (empty = regular).
    #[must_use]
    pub fn regularity_violations(&self) -> Vec<RegularityViolation> {
        self.regularity_violations_given_fin(&self.finished())
    }

    /// Like [`History::regularity_violations`], but with the finished set
    /// supplied by the caller. The lower-bound adversary manages termination
    /// as bookkeeping (a rolled-forward waiter "completes its pending
    /// `Poll()` and terminates" without the simulator recording a
    /// `Terminate` event), so it checks regularity against its own `Fin`.
    #[must_use]
    pub fn regularity_violations_given_fin(&self, fin: &BTreeSet<ProcId>) -> Vec<RegularityViolation> {
        let mut violations = Vec::new();
        // Definition 6.6 quantifies over p, q ∈ Par(H): seeing or touching a
        // process that never takes a step (e.g. the owner of a memory module
        // who was erased) constrains nothing.
        let participants = self.participants();
        // Conditions 1 and 2, checked against end-of-history Fin (the
        // definition quantifies over the whole history).
        for (i, e) in self.events.iter().enumerate() {
            if let Event::Access { pid, sees, touches, .. } = *e {
                if let Some(q) = sees {
                    if participants.contains(&q) && !fin.contains(&q) {
                        violations.push(RegularityViolation::SeesActive { seer: pid, seen: q, at: i });
                    }
                }
                if let Some(q) = touches {
                    if participants.contains(&q) && !fin.contains(&q) {
                        violations.push(RegularityViolation::TouchesActive { toucher: pid, touched: q, at: i });
                    }
                }
            }
        }
        // Condition 3: reconstruct per-cell writer sets from the log.
        let mut writers: BTreeMap<Addr, (BTreeSet<ProcId>, ProcId)> = BTreeMap::new();
        for e in &self.events {
            if let Event::Access { pid, op, wrote: true, .. } = *e {
                let entry = writers.entry(op.addr()).or_insert_with(|| (BTreeSet::new(), pid));
                entry.0.insert(pid);
                entry.1 = pid;
            }
        }
        for (addr, (set, last)) in writers {
            if set.len() > 1 && !fin.contains(&last) {
                violations.push(RegularityViolation::MultiWriterLastWriteActive { addr, last_writer: last });
            }
        }
        violations
    }

    /// Whether the history is regular (Definition 6.6).
    #[must_use]
    pub fn is_regular(&self) -> bool {
        self.regularity_violations().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AccessCost;

    fn access(pid: u32, addr: u32, wrote: bool, sees: Option<u32>, touches: Option<u32>) -> Event {
        Event::Access {
            pid: ProcId(pid),
            op: if wrote { Op::Write(Addr(addr), 1) } else { Op::Read(Addr(addr)) },
            result: 0,
            wrote,
            cost: AccessCost { rmr: true, messages: 1, invalidations: 0 },
            sees: sees.map(ProcId),
            touches: touches.map(ProcId),
        }
    }

    #[test]
    fn participants_active_finished() {
        let mut h = History::new();
        h.push(access(0, 0, true, None, None));
        h.push(access(1, 1, false, None, None));
        h.push(Event::Terminate { pid: ProcId(1) });
        assert_eq!(h.participants().len(), 2);
        assert_eq!(h.finished(), BTreeSet::from([ProcId(1)]));
        assert_eq!(h.active(), BTreeSet::from([ProcId(0)]));
    }

    #[test]
    fn empty_history_is_regular() {
        assert!(History::new().is_regular());
    }

    #[test]
    fn sees_active_process_breaks_regularity() {
        let mut h = History::new();
        h.push(access(0, 0, true, None, None)); // p0 writes
        h.push(access(1, 0, false, Some(0), None)); // p1 sees p0
        assert!(!h.is_regular());
        h.push(Event::Terminate { pid: ProcId(0) });
        assert!(h.is_regular(), "finishing the seen process restores regularity");
    }

    #[test]
    fn touches_active_process_breaks_regularity() {
        let mut h = History::new();
        h.push(access(0, 9, false, None, None)); // p0 participates
        h.push(access(1, 5, false, None, Some(0)));
        assert!(matches!(
            h.regularity_violations()[0],
            RegularityViolation::TouchesActive { toucher: ProcId(1), touched: ProcId(0), .. }
        ));
    }

    #[test]
    fn touching_a_non_participant_is_not_a_violation() {
        // Definition 6.6 quantifies over Par(H): the owner of a touched
        // module that never takes a step constrains nothing.
        let mut h = History::new();
        h.push(access(1, 5, false, None, Some(0)));
        assert!(h.is_regular());
    }

    #[test]
    fn multi_writer_last_write_by_active_breaks_regularity() {
        let mut h = History::new();
        h.push(access(0, 3, true, None, None));
        h.push(access(1, 3, true, None, None));
        h.push(Event::Terminate { pid: ProcId(0) });
        let v = h.regularity_violations();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            RegularityViolation::MultiWriterLastWriteActive { addr: Addr(3), last_writer: ProcId(1) }
        ));
    }

    #[test]
    fn single_writer_cell_never_violates_condition_3() {
        let mut h = History::new();
        h.push(access(0, 3, true, None, None));
        h.push(access(0, 3, true, None, None));
        assert!(h.is_regular());
    }

    #[test]
    fn call_records_match_invokes_to_returns() {
        let mut h = History::new();
        h.push(Event::Invoke { pid: ProcId(0), kind: CallKind(1), name: "Poll" });
        h.push(Event::Invoke { pid: ProcId(1), kind: CallKind(2), name: "Signal" });
        h.push(Event::Return { pid: ProcId(0), kind: CallKind(1), value: 0 });
        let calls = h.calls();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].return_value, Some(0));
        assert!(calls[0].is_complete());
        assert!(!calls[1].is_complete());
    }

    #[test]
    fn rmr_counting() {
        let mut h = History::new();
        h.push(access(0, 0, true, None, None));
        h.push(access(1, 0, false, None, None));
        assert_eq!(h.total_rmrs(), 2);
        assert_eq!(h.rmrs_of(ProcId(0)), 1);
        assert_eq!(h.rmrs_of(ProcId(2)), 0);
    }

    #[test]
    fn crash_counts_as_finished() {
        let mut h = History::new();
        h.push(access(0, 0, true, None, None));
        h.push(Event::Crash { pid: ProcId(0) });
        assert!(h.finished().contains(&ProcId(0)));
    }
}
