//! Histories: the typed event log of an execution, with the queries the
//! paper's definitions need (participation, *sees*, *touches*, regularity).

use crate::ids::{Addr, ProcId, Word};
use crate::machine::CallKind;
use crate::model::AccessCost;
use crate::op::Op;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One event in a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A process began a procedure call.
    Invoke {
        /// Calling process.
        pid: ProcId,
        /// Domain tag of the procedure.
        kind: CallKind,
        /// Procedure name for traces.
        name: &'static str,
    },
    /// A procedure call returned.
    Return {
        /// Calling process.
        pid: ProcId,
        /// Domain tag of the procedure.
        kind: CallKind,
        /// The returned word.
        value: Word,
    },
    /// A process performed one atomic memory access.
    Access {
        /// Acting process.
        pid: ProcId,
        /// The operation performed.
        op: Op,
        /// The word returned by the operation.
        result: Word,
        /// Whether the operation was nontrivial (overwrote the cell).
        wrote: bool,
        /// Price of the access under the simulation's cost model.
        cost: AccessCost,
        /// `Some(q)` iff this access *sees* q: it observed a value last
        /// written by the distinct process q (Definition 6.4; we apply it to
        /// every value-returning operation, i.e. everything except `Write`).
        sees: Option<ProcId>,
        /// `Some(q)` iff this access *touches* q: the cell is local to the
        /// distinct process q (Definition 6.5).
        touches: Option<ProcId>,
    },
    /// A process terminated (its call source was exhausted).
    Terminate {
        /// The terminating process.
        pid: ProcId,
    },
    /// A process crashed: it was stopped while performing a procedure call.
    Crash {
        /// The crashed process.
        pid: ProcId,
    },
}

impl Event {
    /// The process the event belongs to.
    #[must_use]
    pub fn pid(&self) -> ProcId {
        match *self {
            Event::Invoke { pid, .. }
            | Event::Return { pid, .. }
            | Event::Access { pid, .. }
            | Event::Terminate { pid }
            | Event::Crash { pid } => pid,
        }
    }
}

/// A completed or pending procedure call reconstructed from a history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallRecord {
    /// Calling process.
    pub pid: ProcId,
    /// Domain tag.
    pub kind: CallKind,
    /// Index of the `Invoke` event in the history.
    pub invoked_at: usize,
    /// Index of the `Return` event, if the call completed.
    pub returned_at: Option<usize>,
    /// Return value, if the call completed.
    pub return_value: Option<Word>,
}

impl CallRecord {
    /// Whether the call completed within the history.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.returned_at.is_some()
    }
}

/// A violation of history regularity (Definition 6.6).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RegularityViolation {
    /// Condition 1: `seer` sees `seen`, but `seen` is not finished.
    SeesActive {
        /// The reading process.
        seer: ProcId,
        /// The unfinished process whose write was observed.
        seen: ProcId,
        /// History index of the offending access.
        at: usize,
    },
    /// Condition 2: `toucher` touches `touched`, but `touched` is not finished.
    TouchesActive {
        /// The accessing process.
        toucher: ProcId,
        /// The unfinished owner of the touched cell.
        touched: ProcId,
        /// History index of the offending access.
        at: usize,
    },
    /// Condition 3: a multi-writer cell's last write is by an unfinished process.
    MultiWriterLastWriteActive {
        /// The cell in question.
        addr: Addr,
        /// The unfinished last writer.
        last_writer: ProcId,
    },
}

/// A history event as one process experiences it: cost metadata stripped,
/// identities of other processes invisible. See [`History::projection`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProjectedEvent {
    /// The process invoked a call of this kind.
    Invoke(CallKind),
    /// The process's call of this kind returned this value.
    Return(CallKind, Word),
    /// The process performed this operation and received this result.
    Access(Op, Word),
}

/// Events per sealed chunk of the log. A power of two so the index
/// arithmetic in [`EventLog::get`] compiles to shifts and masks.
const CHUNK: usize = 512;

/// Maximum chunk buffers the thread-local recycling pool retains.
const CHUNK_POOL_MAX: usize = 256;

std::thread_local! {
    /// Recycled chunk buffers (capacity ≥ [`CHUNK`], length 0). Sealing
    /// pops from here instead of calling `malloc`; dropping a log pushes
    /// its uniquely-owned chunks back. Without recycling, a simulator
    /// teardown frees its whole history as a stream of chunk-sized blocks,
    /// which keeps glibc's adaptive trim threshold small enough that every
    /// teardown shrinks the heap back to the OS — kernel time that showed
    /// up as a serial-stepping regression on rebuild-per-iteration
    /// workloads.
    static CHUNK_POOL: std::cell::RefCell<Vec<Vec<Event>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A cleared chunk buffer: recycled if the pool has one, fresh otherwise.
fn chunk_buf() -> Vec<Event> {
    CHUNK_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_else(|| Vec::with_capacity(CHUNK))
}

/// Returns a chunk buffer to the pool (dropping it if full or undersized).
fn recycle_chunk(mut buf: Vec<Event>) {
    if buf.capacity() >= CHUNK {
        CHUNK_POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < CHUNK_POOL_MAX {
                buf.clear();
                pool.push(buf);
            }
        });
    }
}

/// Chunked event storage: a sequence of sealed, immutable, `Arc`-shared
/// chunks of exactly [`CHUNK`] events each, plus an open tail the next
/// pushes land in.
///
/// `push` appends to the tail and seals it into a fresh chunk when full —
/// it **never** moves or reallocates previously recorded events, unlike a
/// growing `Vec` whose doublings copy the whole log. Cloning bumps the
/// sealed chunks' refcounts and copies only the (< [`CHUNK`]-event) tail,
/// so forking a simulator is O(len / CHUNK) in the history, not O(len).
#[derive(Clone, Debug, Default)]
struct EventLog {
    sealed: Vec<Arc<Vec<Event>>>,
    tail: Vec<Event>,
}

impl EventLog {
    fn len(&self) -> usize {
        self.sealed.len() * CHUNK + self.tail.len()
    }

    fn is_empty(&self) -> bool {
        self.sealed.is_empty() && self.tail.is_empty()
    }

    #[inline]
    fn push(&mut self, e: Event) {
        if self.tail.len() == CHUNK {
            self.seal_tail();
        }
        self.tail.push(e);
    }

    /// Seals the (exactly-[`CHUNK`]-event) tail into a fresh chunk. The
    /// check runs before every push, so the tail can never grow past
    /// `CHUNK` and sealed chunks are always exactly `CHUNK` events — the
    /// invariant [`EventLog::get`]'s index arithmetic relies on.
    #[cold]
    fn seal_tail(&mut self) {
        let full = std::mem::replace(&mut self.tail, chunk_buf());
        self.sealed.push(Arc::new(full));
    }

    fn get(&self, i: usize) -> &Event {
        let c = i / CHUNK;
        if c < self.sealed.len() {
            &self.sealed[c][i % CHUNK]
        } else {
            &self.tail[i - self.sealed.len() * CHUNK]
        }
    }

    fn iter(&self) -> impl DoubleEndedIterator<Item = &Event> + Clone + '_ {
        self.sealed
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
    }

    /// Iterates events `start..len`. Jumps straight to the containing chunk
    /// and slices into it — O(1) setup, no walk over skipped events.
    fn iter_from(&self, start: usize) -> impl Iterator<Item = &Event> + Clone + '_ {
        type Parts<'a> = (&'a [Event], &'a [Arc<Vec<Event>>], &'a [Event]);
        let c = start / CHUNK;
        let (first, rest, tail): Parts<'_> = if c < self.sealed.len() {
            (
                &self.sealed[c][start % CHUNK..],
                &self.sealed[c + 1..],
                &self.tail,
            )
        } else {
            let t = (start - self.sealed.len() * CHUNK).min(self.tail.len());
            (&self.tail[t..], &[], &[])
        };
        first
            .iter()
            .chain(rest.iter().flat_map(|ch| ch.iter()))
            .chain(tail.iter())
    }

    /// Visits events `start..len` through plain slice loops — the hot-path
    /// counterpart of [`EventLog::iter_from`] for consumers (the fingerprint
    /// flush runs once per step batch) where the chained iterator's per-next
    /// branching shows up in profiles.
    #[inline]
    fn for_each_from(&self, start: usize, mut f: impl FnMut(&Event)) {
        let c = start / CHUNK;
        if c < self.sealed.len() {
            for e in &self.sealed[c][start % CHUNK..] {
                f(e);
            }
            for ch in &self.sealed[c + 1..] {
                for e in ch.iter() {
                    f(e);
                }
            }
            for e in &self.tail {
                f(e);
            }
        } else {
            let t = (start - self.sealed.len() * CHUNK).min(self.tail.len());
            for e in &self.tail[t..] {
                f(e);
            }
        }
    }

    /// Keeps the first `len` events. Sealed chunks past the cut are
    /// dropped; a chunk the cut lands inside is unsealed back into the
    /// tail (its prefix is copied — at most `CHUNK - 1` events).
    fn truncate(&mut self, len: usize) {
        if len >= self.len() {
            return;
        }
        let keep = len / CHUNK;
        if keep < self.sealed.len() {
            let boundary = self.sealed[keep].clone();
            self.sealed.truncate(keep);
            self.tail.clear();
            if self.tail.capacity() < CHUNK {
                self.tail.reserve(CHUNK);
            }
            self.tail.extend_from_slice(&boundary[..len % CHUNK]);
        } else {
            self.tail.truncate(len - self.sealed.len() * CHUNK);
        }
    }

    /// The first `len` events as a new log, sharing every sealed chunk
    /// below the cut with `self`.
    fn prefix_of(&self, len: usize) -> EventLog {
        let mut out = self.clone();
        out.truncate(len);
        out
    }

    fn retain(&mut self, f: impl Fn(&Event) -> bool) {
        let mut out = EventLog::default();
        for e in self.iter() {
            if f(e) {
                out.push(e.clone());
            }
        }
        *self = out;
    }

    fn extend_cloned(&mut self, other: &EventLog) {
        for e in other.iter() {
            self.push(e.clone());
        }
    }

    #[cfg(test)]
    fn iter_mut(&mut self) -> impl Iterator<Item = &mut Event> {
        self.sealed
            .iter_mut()
            .flat_map(|c| Arc::make_mut(c).iter_mut())
            .chain(self.tail.iter_mut())
    }
}

impl Drop for EventLog {
    /// Harvests uniquely-owned chunk buffers back into the thread-local
    /// pool instead of freeing them. Chunks still shared with another log
    /// (snapshots, clones) just drop their refcount as usual.
    fn drop(&mut self) {
        for arc in self.sealed.drain(..) {
            if let Ok(buf) = Arc::try_unwrap(arc) {
                recycle_chunk(buf);
            }
        }
        recycle_chunk(std::mem::take(&mut self.tail));
    }
}

/// Maximum number of appended events the rolling-hash fold may lag behind
/// the log; bounds what an on-demand fingerprint read has to scan.
const PENDING_MAX: usize = 64;

/// The event log of one execution.
///
/// A `History` corresponds to the paper's history `H`: a finite sequence of
/// steps from well-defined initial conditions (§2). Queries implement the
/// definitions of §6 so the adversary and the test suite can check the
/// constructions mechanically.
///
/// Alongside the raw event log, a `History` maintains a per-process rolling
/// **projection fingerprint**: a 128-bit polynomial hash over exactly the
/// sequence [`History::projection`] would produce for that process. Two
/// histories with equal fingerprints for `p` have equal projections for `p`
/// (up to hash collision, which
/// [`Simulator::erase_certified`](crate::Simulator) guards with a
/// `debug_assert` on the exact comparison), which turns the lower-bound
/// adversary's survivor certification from an O(history) event comparison
/// into an O(1) hash comparison.
///
/// Fingerprint maintenance is *adaptive*. A fresh history folds each pushed
/// event into the rolling hashes inline, while the event is still in
/// registers — the straight-line stepping hot path, where a deferred fold
/// would have to re-decode every event from the log a second time. The
/// first [`History::rewind`] switches the history to deferred mode: `push`
/// then does no hash work at all and the folds run in [`PENDING_MAX`]-sized
/// batches (or on demand at a read, which folds the bounded lag on the fly).
/// Checkpoint-rewind consumers — the schedule-space explorer — mostly roll
/// pushed events back before any fingerprint is read, so deferring saves
/// their folds entirely. Reads observe exactly the same values in both
/// modes: the fold is associative over the append order, which batching
/// preserves.
#[derive(Clone, Debug, Default)]
pub struct History {
    events: EventLog,
    /// `proj_hash[p]` = rolling hash of `projection(ProcId(p))` over
    /// `events[..fp_applied]`. Grown on demand; missing entries mean "no
    /// projected events yet".
    proj_hash: Vec<u128>,
    /// Number of leading log events already folded into `proj_hash`.
    /// Equal to `events.len()` in eager mode; in deferred mode events
    /// `fp_applied..len` are folded lazily (batched in `push`, or on the
    /// fly by fingerprint reads).
    fp_applied: usize,
    /// `true` = deferred (batched) fold mode, entered on the first rewind
    /// and never left; `false` (the default) = eager inline folds on push.
    lazy_fp: bool,
}

/// Odd multiplier for the polynomial fingerprint (random 128-bit constant).
const FP_MUL: u128 = 0x9ddf_ea08_eb38_2d69_a54f_f53a_5f1d_36f1;

/// Fingerprint of the empty projection.
const FP_EMPTY: u128 = 0;

#[inline]
fn fp_absorb(h: u128, word: u64) -> u128 {
    h.wrapping_mul(FP_MUL)
        .wrapping_add(u128::from(crate::rng::mix64(word)))
}

/// Folds an arbitrary word sequence into a 128-bit fingerprint of the same
/// polynomial family as the projection fingerprints. The length is absorbed
/// first, so sequences of different lengths never trivially collide. Used by
/// [`crate::sim::Simulator::state_fingerprint`] to hash whole-machine states
/// for the schedule-space explorer's deduplication.
#[must_use]
pub fn fingerprint_words(words: &[u64]) -> u128 {
    let mut h = fp_absorb(FP_EMPTY, words.len() as u64);
    for &w in words {
        h = fp_absorb(h, w);
    }
    h
}

/// Encodes an operation as fixed-width words for fingerprinting. The leading
/// tag makes the encoding prefix-free across variants.
#[inline]
fn fp_op_words(op: &Op) -> [u64; 4] {
    match *op {
        Op::Read(a) => [0, u64::from(a.0), 0, 0],
        Op::Write(a, w) => [1, u64::from(a.0), w, 0],
        Op::Cas(a, e, n) => [2, u64::from(a.0), e, n],
        Op::Ll(a) => [3, u64::from(a.0), 0, 0],
        Op::Sc(a, w) => [4, u64::from(a.0), w, 0],
        Op::Faa(a, d) => [5, u64::from(a.0), d, 0],
        Op::Fas(a, w) => [6, u64::from(a.0), w, 0],
        Op::Tas(a) => [7, u64::from(a.0), 0, 0],
    }
}

impl History {
    /// Creates an empty history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty event log whose fingerprints continue from `hashes`
    /// (a checkpoint's fingerprint state). Appending the events that
    /// followed the checkpoint reproduces the full history's fingerprints
    /// even though the prefix events themselves are absent.
    pub(crate) fn seeded(hashes: Vec<u128>) -> Self {
        History {
            events: EventLog::default(),
            proj_hash: hashes,
            fp_applied: 0,
            lazy_fp: false,
        }
    }

    /// Builds the full history `prefix[..prefix_len] ++ suffix`: used after
    /// a suffix replay from a checkpoint, where `suffix` was
    /// [`History::seeded`] with the checkpoint's fingerprints (so its
    /// fingerprints already cover the whole spliced log). Sealed chunks of
    /// the prefix below the cut are shared, not copied.
    pub(crate) fn spliced(prefix: &History, prefix_len: usize, mut suffix: History) -> Self {
        suffix.flush_fingerprints();
        let mut events = prefix.events.prefix_of(prefix_len);
        events.extend_cloned(&suffix.events);
        let fp_applied = events.len();
        History {
            events,
            proj_hash: suffix.proj_hash,
            fp_applied,
            lazy_fp: prefix.lazy_fp,
        }
    }

    /// Keeps the first `keep` events and appends `suffix`'s events after
    /// them, adopting `suffix`'s fingerprints (which must have been
    /// [`History::seeded`] with the fingerprint state at `keep` events, so
    /// they already cover the whole resulting log). The in-place O(suffix)
    /// counterpart of [`History::spliced`].
    pub(crate) fn splice_tail(&mut self, keep: usize, mut suffix: History) {
        assert!(keep <= self.events.len(), "splice_tail past the end");
        suffix.flush_fingerprints();
        self.events.truncate(keep);
        self.events.extend_cloned(&suffix.events);
        self.proj_hash = suffix.proj_hash;
        self.fp_applied = self.events.len();
    }

    /// Removes every event of the processes marked in `gone` (indexed by
    /// pid), resetting their fingerprints to the empty-projection seed.
    ///
    /// Survivors' events and fingerprints are untouched: this is only sound
    /// when the caller has certified that no surviving projection changes
    /// under the erasure (Lemma 6.7), which is exactly when the simulator's
    /// in-place erase uses it.
    pub(crate) fn erase_pids(&mut self, gone: &[bool]) {
        self.flush_fingerprints();
        self.events
            .retain(|e| !gone.get(e.pid().index()).copied().unwrap_or(false));
        self.fp_applied = self.events.len();
        for (i, h) in self.proj_hash.iter_mut().enumerate() {
            if gone.get(i).copied().unwrap_or(false) {
                *h = FP_EMPTY;
            }
        }
    }

    /// Rewinds to `len` events, resetting fingerprints to `hashes` (the
    /// fingerprint state recorded when the history had `len` events).
    ///
    /// Also switches the history into deferred-fold mode for good: a caller
    /// that rewinds (the checkpoint-restore explorer) usually rolls pushed
    /// events back before reading a fingerprint, so folding them eagerly at
    /// push would be wasted work.
    pub(crate) fn rewind(&mut self, len: usize, hashes: &[u128]) {
        assert!(len <= self.events.len(), "rewind past the end");
        self.events.truncate(len);
        self.proj_hash.clear();
        self.proj_hash.extend_from_slice(hashes);
        self.fp_applied = len;
        self.lazy_fp = true;
    }

    /// The projected words of an event, or `None` for events outside the
    /// projection. Mirrors [`History::projection`] exactly: only
    /// Invoke/Return/Access project.
    fn fp_words(e: &Event) -> Option<(ProcId, [u64; 6])> {
        match *e {
            Event::Invoke { pid, kind, .. } => Some((pid, [1, u64::from(kind.0), 0, 0, 0, 0])),
            Event::Return { pid, kind, value } => {
                Some((pid, [2, u64::from(kind.0), value, 0, 0, 0]))
            }
            Event::Access {
                pid, op, result, ..
            } => {
                let [t, a, x, y] = fp_op_words(&op);
                Some((pid, [3, t, a, x, y, result]))
            }
            Event::Terminate { .. } | Event::Crash { .. } => None,
        }
    }

    /// Folds every not-yet-applied log event into the rolling hashes.
    fn flush_fingerprints(&mut self) {
        let Self {
            events,
            proj_hash,
            fp_applied,
            ..
        } = self;
        events.for_each_from(*fp_applied, |e| {
            if let Some((pid, words)) = Self::fp_words(e) {
                let i = pid.index();
                if proj_hash.len() <= i {
                    proj_hash.resize(i + 1, FP_EMPTY);
                }
                let mut h = proj_hash[i];
                for w in words {
                    h = fp_absorb(h, w);
                }
                proj_hash[i] = h;
            }
        });
        *fp_applied = events.len();
    }

    /// The rolling fingerprint of [`History::projection`]`(pid)`. Equal
    /// fingerprints certify equal projections (up to hash collision).
    /// Folds the (bounded) unapplied batch on the fly.
    #[must_use]
    pub fn fingerprint(&self, pid: ProcId) -> u128 {
        let mut h = self.proj_hash.get(pid.index()).copied().unwrap_or(FP_EMPTY);
        for e in self.events.iter_from(self.fp_applied) {
            match Self::fp_words(e) {
                Some((p, words)) if p == pid => {
                    for w in words {
                        h = fp_absorb(h, w);
                    }
                }
                _ => {}
            }
        }
        h
    }

    /// All per-process fingerprints (indexed by process; possibly shorter
    /// than the process count — missing entries are empty projections).
    #[must_use]
    pub fn fingerprints(&self) -> Vec<u128> {
        let mut out = Vec::new();
        self.fingerprints_into(&mut out);
        out
    }

    /// [`History::fingerprints`] into a caller-owned buffer (cleared first),
    /// for checkpoint-taking hot paths that snapshot every explored node.
    pub fn fingerprints_into(&self, out: &mut Vec<u128>) {
        out.clear();
        out.extend_from_slice(&self.proj_hash);
        for e in self.events.iter_from(self.fp_applied) {
            if let Some((p, words)) = Self::fp_words(e) {
                let i = p.index();
                if out.len() <= i {
                    out.resize(i + 1, FP_EMPTY);
                }
                let mut h = out[i];
                for w in words {
                    h = fp_absorb(h, w);
                }
                out[i] = h;
            }
        }
    }

    /// Appends an event (used by the simulator). In the default eager mode
    /// the event's projected words are folded into the rolling hashes right
    /// here, while they are still in registers; in deferred mode (after the
    /// first [`History::rewind`]) the fold runs later, in
    /// [`PENDING_MAX`]-sized batches. Same values either way — the fold is
    /// associative over the append order.
    #[inline]
    pub(crate) fn push(&mut self, e: Event) {
        if !self.lazy_fp {
            if let Some((pid, words)) = Self::fp_words(&e) {
                let i = pid.index();
                if self.proj_hash.len() <= i {
                    self.proj_hash.resize(i + 1, FP_EMPTY);
                }
                let mut h = self.proj_hash[i];
                for w in words {
                    h = fp_absorb(h, w);
                }
                self.proj_hash[i] = h;
            }
            self.events.push(e);
            self.fp_applied += 1;
            return;
        }
        self.events.push(e);
        if self.events.len() - self.fp_applied >= PENDING_MAX {
            self.flush_fingerprints();
        }
    }

    /// All events in order.
    pub fn events(&self) -> impl DoubleEndedIterator<Item = &Event> + Clone + '_ {
        self.events.iter()
    }

    /// Events `start..len` in order. Sealed chunks wholly below `start` are
    /// skipped without being touched.
    pub fn events_from(&self, start: usize) -> impl Iterator<Item = &Event> + Clone + '_ {
        self.events.iter_from(start)
    }

    /// The event at index `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    #[must_use]
    pub fn event(&self, i: usize) -> &Event {
        self.events.get(i)
    }

    /// The whole log as a freshly allocated `Vec` (for tests and one-off
    /// comparisons; prefer [`History::events`] everywhere else).
    #[must_use]
    pub fn to_vec(&self) -> Vec<Event> {
        self.events.iter().cloned().collect()
    }

    /// Mutable access to the recorded events, bypassing fingerprint
    /// maintenance. For audit-layer tamper tests only.
    #[cfg(test)]
    pub(crate) fn events_mut(&mut self) -> impl Iterator<Item = &mut Event> {
        self.flush_fingerprints();
        self.events.iter_mut()
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// `Par(H)`: processes that take at least one step in the history.
    #[must_use]
    pub fn participants(&self) -> BTreeSet<ProcId> {
        self.events.iter().map(Event::pid).collect()
    }

    /// `Fin(H)`: participating processes that have terminated (or crashed)
    /// by the end of the history.
    #[must_use]
    pub fn finished(&self) -> BTreeSet<ProcId> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Terminate { pid } | Event::Crash { pid } => Some(pid),
                _ => None,
            })
            .collect()
    }

    /// `Act(H) = Par(H) \ Fin(H)`.
    #[must_use]
    pub fn active(&self) -> BTreeSet<ProcId> {
        let fin = self.finished();
        self.participants()
            .into_iter()
            .filter(|p| !fin.contains(p))
            .collect()
    }

    /// All (seer, seen) pairs: p sees q if p observed a value last written by
    /// the distinct process q (Definition 6.4).
    #[must_use]
    pub fn sees_pairs(&self) -> BTreeSet<(ProcId, ProcId)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Access {
                    pid, sees: Some(q), ..
                } => Some((pid, q)),
                _ => None,
            })
            .collect()
    }

    /// All (toucher, touched) pairs: p touches q if p accessed a cell local
    /// to the distinct process q (Definition 6.5).
    #[must_use]
    pub fn touches_pairs(&self) -> BTreeSet<(ProcId, ProcId)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Access {
                    pid,
                    touches: Some(q),
                    ..
                } => Some((pid, q)),
                _ => None,
            })
            .collect()
    }

    /// Total RMRs across all accesses.
    #[must_use]
    pub fn total_rmrs(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Access { cost, .. } => u64::from(cost.rmr),
                _ => 0,
            })
            .sum()
    }

    /// RMRs incurred by one process.
    #[must_use]
    pub fn rmrs_of(&self, pid: ProcId) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                Event::Access { pid: p, cost, .. } if *p == pid => u64::from(cost.rmr),
                _ => 0,
            })
            .sum()
    }

    /// Reconstructs per-call records by matching `Invoke`/`Return` events.
    #[must_use]
    pub fn calls(&self) -> Vec<CallRecord> {
        let mut out = Vec::new();
        self.calls_into(&mut out);
        out
    }

    /// [`History::calls`] into a caller-owned buffer, so hot loops (the
    /// schedule-space explorer judges every generated state) can amortize
    /// the allocation. The buffer is cleared first.
    ///
    /// The open-call map is a flat pid-indexed vector: each process has at
    /// most one call open at a time, and pids are dense small integers.
    pub fn calls_into(&self, out: &mut Vec<CallRecord>) {
        let mut open: Vec<usize> = Vec::new();
        self.calls_into_open(out, &mut open);
    }

    /// [`History::calls_into`] that also hands back the open-call map
    /// (`open[pid] = record index + 1`, `0` = no open call), so the records
    /// can later be advanced by [`History::calls_extend`] instead of being
    /// rebuilt from scratch.
    pub fn calls_into_open(&self, out: &mut Vec<CallRecord>, open: &mut Vec<usize>) {
        out.clear();
        open.clear();
        self.calls_extend(0, out, open);
    }

    /// Advances a `(records, open-map)` pair that reflects the history
    /// prefix of length `from` across the events appended since — O(new
    /// events), not O(history). The explorer's claim loop judges each
    /// stepped child against the fixed node-state records plus the one or
    /// two events the step emitted.
    pub fn calls_extend(&self, from: usize, out: &mut Vec<CallRecord>, open: &mut Vec<usize>) {
        for (off, e) in self.events.iter_from(from).enumerate() {
            let i = from + off;
            match *e {
                Event::Invoke { pid, kind, .. } => {
                    let p = pid.index();
                    if open.len() <= p {
                        open.resize(p + 1, 0);
                    }
                    open[p] = out.len() + 1;
                    out.push(CallRecord {
                        pid,
                        kind,
                        invoked_at: i,
                        returned_at: None,
                        return_value: None,
                    });
                }
                Event::Return { pid, value, .. } => {
                    let slot = open
                        .get_mut(pid.index())
                        .filter(|s| **s != 0)
                        .expect("return without matching invoke");
                    let idx = *slot - 1;
                    *slot = 0;
                    out[idx].returned_at = Some(i);
                    out[idx].return_value = Some(value);
                }
                _ => {}
            }
        }
    }

    /// The semantic projection of the history onto one process: its invokes,
    /// returns, and accesses (operation + result), with cost metadata
    /// stripped. Two executions are indistinguishable to a process iff its
    /// projections are equal — the criterion the lower-bound adversary uses
    /// to certify that *erasing* other processes was transparent
    /// (Lemma 6.7's conclusion, checked mechanically).
    #[must_use]
    pub fn projection(&self, pid: ProcId) -> Vec<ProjectedEvent> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                Event::Invoke { pid: p, kind, .. } if p == pid => {
                    Some(ProjectedEvent::Invoke(kind))
                }
                Event::Return {
                    pid: p,
                    kind,
                    value,
                } if p == pid => Some(ProjectedEvent::Return(kind, value)),
                Event::Access {
                    pid: p, op, result, ..
                } if p == pid => Some(ProjectedEvent::Access(op, result)),
                _ => None,
            })
            .collect()
    }

    /// Checks regularity (Definition 6.6). Conditions 1 and 2 require every
    /// seen/touched process to be in `Fin(H)`; condition 3 requires the last
    /// writer of every multi-writer cell to be in `Fin(H)`.
    ///
    /// Returns all violations (empty = regular).
    #[must_use]
    pub fn regularity_violations(&self) -> Vec<RegularityViolation> {
        self.regularity_violations_given_fin(&self.finished())
    }

    /// Like [`History::regularity_violations`], but with the finished set
    /// supplied by the caller. The lower-bound adversary manages termination
    /// as bookkeeping (a rolled-forward waiter "completes its pending
    /// `Poll()` and terminates" without the simulator recording a
    /// `Terminate` event), so it checks regularity against its own `Fin`.
    #[must_use]
    pub fn regularity_violations_given_fin(
        &self,
        fin: &BTreeSet<ProcId>,
    ) -> Vec<RegularityViolation> {
        let mut violations = Vec::new();
        // Definition 6.6 quantifies over p, q ∈ Par(H): seeing or touching a
        // process that never takes a step (e.g. the owner of a memory module
        // who was erased) constrains nothing.
        let participants = self.participants();
        // Conditions 1 and 2, checked against end-of-history Fin (the
        // definition quantifies over the whole history).
        for (i, e) in self.events.iter().enumerate() {
            if let Event::Access {
                pid, sees, touches, ..
            } = *e
            {
                if let Some(q) = sees {
                    if participants.contains(&q) && !fin.contains(&q) {
                        violations.push(RegularityViolation::SeesActive {
                            seer: pid,
                            seen: q,
                            at: i,
                        });
                    }
                }
                if let Some(q) = touches {
                    if participants.contains(&q) && !fin.contains(&q) {
                        violations.push(RegularityViolation::TouchesActive {
                            toucher: pid,
                            touched: q,
                            at: i,
                        });
                    }
                }
            }
        }
        // Condition 3: reconstruct per-cell writer sets from the log.
        let mut writers: BTreeMap<Addr, (BTreeSet<ProcId>, ProcId)> = BTreeMap::new();
        for e in self.events.iter() {
            if let Event::Access {
                pid,
                op,
                wrote: true,
                ..
            } = *e
            {
                let entry = writers
                    .entry(op.addr())
                    .or_insert_with(|| (BTreeSet::new(), pid));
                entry.0.insert(pid);
                entry.1 = pid;
            }
        }
        for (addr, (set, last)) in writers {
            if set.len() > 1 && !fin.contains(&last) {
                violations.push(RegularityViolation::MultiWriterLastWriteActive {
                    addr,
                    last_writer: last,
                });
            }
        }
        violations
    }

    /// Whether the history is regular (Definition 6.6).
    #[must_use]
    pub fn is_regular(&self) -> bool {
        self.regularity_violations().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AccessCost;

    fn access(pid: u32, addr: u32, wrote: bool, sees: Option<u32>, touches: Option<u32>) -> Event {
        Event::Access {
            pid: ProcId(pid),
            op: if wrote {
                Op::Write(Addr(addr), 1)
            } else {
                Op::Read(Addr(addr))
            },
            result: 0,
            wrote,
            cost: AccessCost {
                rmr: true,
                messages: 1,
                invalidations: 0,
            },
            sees: sees.map(ProcId),
            touches: touches.map(ProcId),
        }
    }

    #[test]
    fn participants_active_finished() {
        let mut h = History::new();
        h.push(access(0, 0, true, None, None));
        h.push(access(1, 1, false, None, None));
        h.push(Event::Terminate { pid: ProcId(1) });
        assert_eq!(h.participants().len(), 2);
        assert_eq!(h.finished(), BTreeSet::from([ProcId(1)]));
        assert_eq!(h.active(), BTreeSet::from([ProcId(0)]));
    }

    #[test]
    fn empty_history_is_regular() {
        assert!(History::new().is_regular());
    }

    #[test]
    fn sees_active_process_breaks_regularity() {
        let mut h = History::new();
        h.push(access(0, 0, true, None, None)); // p0 writes
        h.push(access(1, 0, false, Some(0), None)); // p1 sees p0
        assert!(!h.is_regular());
        h.push(Event::Terminate { pid: ProcId(0) });
        assert!(
            h.is_regular(),
            "finishing the seen process restores regularity"
        );
    }

    #[test]
    fn touches_active_process_breaks_regularity() {
        let mut h = History::new();
        h.push(access(0, 9, false, None, None)); // p0 participates
        h.push(access(1, 5, false, None, Some(0)));
        assert!(matches!(
            h.regularity_violations()[0],
            RegularityViolation::TouchesActive {
                toucher: ProcId(1),
                touched: ProcId(0),
                ..
            }
        ));
    }

    #[test]
    fn touching_a_non_participant_is_not_a_violation() {
        // Definition 6.6 quantifies over Par(H): the owner of a touched
        // module that never takes a step constrains nothing.
        let mut h = History::new();
        h.push(access(1, 5, false, None, Some(0)));
        assert!(h.is_regular());
    }

    #[test]
    fn multi_writer_last_write_by_active_breaks_regularity() {
        let mut h = History::new();
        h.push(access(0, 3, true, None, None));
        h.push(access(1, 3, true, None, None));
        h.push(Event::Terminate { pid: ProcId(0) });
        let v = h.regularity_violations();
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            RegularityViolation::MultiWriterLastWriteActive {
                addr: Addr(3),
                last_writer: ProcId(1)
            }
        ));
    }

    #[test]
    fn single_writer_cell_never_violates_condition_3() {
        let mut h = History::new();
        h.push(access(0, 3, true, None, None));
        h.push(access(0, 3, true, None, None));
        assert!(h.is_regular());
    }

    #[test]
    fn call_records_match_invokes_to_returns() {
        let mut h = History::new();
        h.push(Event::Invoke {
            pid: ProcId(0),
            kind: CallKind(1),
            name: "Poll",
        });
        h.push(Event::Invoke {
            pid: ProcId(1),
            kind: CallKind(2),
            name: "Signal",
        });
        h.push(Event::Return {
            pid: ProcId(0),
            kind: CallKind(1),
            value: 0,
        });
        let calls = h.calls();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].return_value, Some(0));
        assert!(calls[0].is_complete());
        assert!(!calls[1].is_complete());
    }

    #[test]
    fn rmr_counting() {
        let mut h = History::new();
        h.push(access(0, 0, true, None, None));
        h.push(access(1, 0, false, None, None));
        assert_eq!(h.total_rmrs(), 2);
        assert_eq!(h.rmrs_of(ProcId(0)), 1);
        assert_eq!(h.rmrs_of(ProcId(2)), 0);
    }

    #[test]
    fn crash_counts_as_finished() {
        let mut h = History::new();
        h.push(access(0, 0, true, None, None));
        h.push(Event::Crash { pid: ProcId(0) });
        assert!(h.finished().contains(&ProcId(0)));
    }

    #[test]
    fn fingerprints_ignore_other_processes_and_metadata() {
        // Same projection for p0, different interleavings / cost metadata /
        // terminate markers: fingerprints must agree.
        let mut a = History::new();
        a.push(access(0, 1, true, None, None));
        a.push(access(1, 2, false, None, Some(0)));
        a.push(Event::Terminate { pid: ProcId(1) });
        let mut b = History::new();
        b.push(Event::Crash { pid: ProcId(2) });
        b.push(access(0, 1, true, None, None));
        assert_eq!(a.fingerprint(ProcId(0)), b.fingerprint(ProcId(0)));
        assert_ne!(a.fingerprint(ProcId(1)), b.fingerprint(ProcId(1)));
        // Untracked pid: empty projection on both sides.
        assert_eq!(a.fingerprint(ProcId(9)), b.fingerprint(ProcId(9)));
    }

    #[test]
    fn fingerprints_distinguish_results_and_kinds() {
        let mk = |value| {
            let mut h = History::new();
            h.push(Event::Invoke {
                pid: ProcId(0),
                kind: CallKind(1),
                name: "Poll",
            });
            h.push(Event::Return {
                pid: ProcId(0),
                kind: CallKind(1),
                value,
            });
            h
        };
        assert_ne!(mk(0).fingerprint(ProcId(0)), mk(1).fingerprint(ProcId(0)));
        assert_eq!(mk(1).fingerprint(ProcId(0)), mk(1).fingerprint(ProcId(0)));
    }

    #[test]
    fn seeded_fingerprints_continue_a_prefix() {
        let mut full = History::new();
        full.push(access(0, 1, true, None, None));
        let snap = full.fingerprints();
        full.push(access(0, 2, false, None, None));

        let mut suffix = History::seeded(snap);
        suffix.push(access(0, 2, false, None, None));
        assert_eq!(suffix.fingerprint(ProcId(0)), full.fingerprint(ProcId(0)));

        let spliced = History::spliced(&full, 1, suffix);
        assert_eq!(spliced.to_vec(), full.to_vec());
        assert_eq!(spliced.fingerprint(ProcId(0)), full.fingerprint(ProcId(0)));
    }

    /// The fold mode must be invisible: a default (eager-fold) history and
    /// one switched to deferred batching by `rewind` agree with a hand-rolled
    /// reference at every read — mid-batch, at the flush boundary, and after
    /// an explicit flush.
    #[test]
    fn batched_fingerprints_match_eager_reference() {
        let mut rng = crate::rng::XorShift64::new(0xBA7C);
        let mut h = History::new();
        let mut lazy = History::new();
        lazy.rewind(0, &[]); // switch to deferred-fold mode
        assert!(lazy.lazy_fp && !h.lazy_fp);
        let mut eager: Vec<u128> = Vec::new();
        for i in 0..(PENDING_MAX * 3 + 7) {
            let pid = rng.below(4) as u32;
            let e = access(pid, rng.below(3) as u32, rng.chance(1, 2), None, None);
            if let Some((p, words)) = History::fp_words(&e) {
                let j = p.index();
                if eager.len() <= j {
                    eager.resize(j + 1, FP_EMPTY);
                }
                for w in words {
                    eager[j] = fp_absorb(eager[j], w);
                }
            }
            h.push(e.clone());
            lazy.push(e);
            assert_eq!(h.fp_applied, h.len(), "eager mode never lags");
            if i % 17 == 0 {
                for p in 0..4u32 {
                    let want = eager.get(p as usize).copied().unwrap_or(FP_EMPTY);
                    assert_eq!(h.fingerprint(ProcId(p)), want, "eager read at {i}");
                    assert_eq!(lazy.fingerprint(ProcId(p)), want, "mid-batch read at {i}");
                }
            }
        }
        assert!(lazy.fp_applied >= PENDING_MAX * 3, "batch flushes ran");
        h.flush_fingerprints();
        lazy.flush_fingerprints();
        for p in 0..4u32 {
            let want = eager.get(p as usize).copied().unwrap_or(FP_EMPTY);
            assert_eq!(h.fingerprint(ProcId(p)), want, "post-flush read");
            assert_eq!(lazy.fingerprint(ProcId(p)), want, "post-flush lazy read");
        }
        let all = h.fingerprints();
        let all_lazy = lazy.fingerprints();
        for p in 0..4usize {
            assert_eq!(all[p], eager[p]);
            assert_eq!(all_lazy[p], eager[p]);
        }
    }

    /// The chunked log behaves exactly like a flat `Vec` across chunk
    /// boundaries: push, indexed access, ranged iteration, truncate (both
    /// inside the tail and back across sealed chunks), and clone isolation.
    #[test]
    fn chunked_log_matches_flat_vec_reference() {
        let mut rng = crate::rng::XorShift64::new(0xC4EC);
        let mut h = History::new();
        let mut flat: Vec<Event> = Vec::new();
        let total = CHUNK * 2 + CHUNK / 2;
        for _ in 0..total {
            let e = access(rng.below(5) as u32, rng.below(4) as u32, true, None, None);
            h.push(e.clone());
            flat.push(e);
        }
        assert_eq!(h.len(), flat.len());
        assert_eq!(h.to_vec(), flat);
        for &i in &[0, 1, CHUNK - 1, CHUNK, 2 * CHUNK + 3, total - 1] {
            assert_eq!(h.event(i), &flat[i], "event({i})");
        }
        for &s in &[0, 1, CHUNK, CHUNK + 1, 2 * CHUNK + 5, total] {
            assert!(
                h.events_from(s).eq(flat[s..].iter()),
                "events_from({s}) mismatch"
            );
        }
        assert!(h.events().rev().eq(flat.iter().rev()), "reverse iteration");

        // A clone shares chunks but diverges independently.
        let mut fork = h.clone();
        let extra = access(9, 0, true, None, None);
        fork.push(extra.clone());
        assert_eq!(h.len(), flat.len(), "original unaffected by fork push");
        assert_eq!(fork.event(total), &extra);

        // Truncate inside the tail, then back across a sealed chunk.
        let hashes = h.fingerprints();
        h.rewind(2 * CHUNK + 5, &hashes);
        flat.truncate(2 * CHUNK + 5);
        assert_eq!(h.to_vec(), flat);
        h.rewind(CHUNK / 2, &hashes);
        flat.truncate(CHUNK / 2);
        assert_eq!(h.to_vec(), flat);
        // And keep growing after the unseal.
        for _ in 0..CHUNK {
            let e = access(rng.below(5) as u32, rng.below(4) as u32, true, None, None);
            h.push(e.clone());
            flat.push(e);
        }
        assert_eq!(h.to_vec(), flat);
    }

    /// Generates a random access history over `n_procs` processes and
    /// `n_cells` cells (writes only — condition 3 is about writer sets), plus
    /// a random finished set.
    fn random_write_history(
        rng: &mut crate::rng::XorShift64,
        n_procs: u32,
        n_cells: u32,
        len: usize,
    ) -> (History, BTreeSet<ProcId>) {
        let mut h = History::new();
        for _ in 0..len {
            let pid = rng.below(u64::from(n_procs)) as u32;
            let addr = rng.below(u64::from(n_cells)) as u32;
            h.push(access(pid, addr, true, None, None));
        }
        let mut fin = BTreeSet::new();
        for p in 0..n_procs {
            if rng.chance(1, 2) {
                fin.insert(ProcId(p));
            }
        }
        (h, fin)
    }

    /// Property: condition-3 violations are exactly the multi-writer cells
    /// whose last writer is outside `fin` — one violation per such cell,
    /// naming that last writer — for arbitrary write histories and `fin` sets.
    #[test]
    fn prop_multi_writer_last_write_active_matches_reference() {
        let mut rng = crate::rng::XorShift64::new(0xE1);
        for _ in 0..200 {
            let (h, fin) = random_write_history(&mut rng, 5, 4, 24);
            // Independent reconstruction of per-cell writer sets.
            let mut expected = Vec::new();
            for a in 0..4u32 {
                let writers: BTreeSet<ProcId> = h
                    .events()
                    .filter_map(|e| match *e {
                        Event::Access {
                            pid,
                            op,
                            wrote: true,
                            ..
                        } if op.addr() == Addr(a) => Some(pid),
                        _ => None,
                    })
                    .collect();
                let last = h.events().rev().find_map(|e| match *e {
                    Event::Access {
                        pid,
                        op,
                        wrote: true,
                        ..
                    } if op.addr() == Addr(a) => Some(pid),
                    _ => None,
                });
                if let Some(last) = last {
                    if writers.len() > 1 && !fin.contains(&last) {
                        expected.push(RegularityViolation::MultiWriterLastWriteActive {
                            addr: Addr(a),
                            last_writer: last,
                        });
                    }
                }
            }
            let got: Vec<_> = h
                .regularity_violations_given_fin(&fin)
                .into_iter()
                .filter(|v| matches!(v, RegularityViolation::MultiWriterLastWriteActive { .. }))
                .collect();
            assert_eq!(got, expected, "history: {:?}, fin: {fin:?}", h.to_vec());
        }
    }

    /// Property: a cell only ever written by one process never triggers
    /// condition 3, whatever the finished set.
    #[test]
    fn prop_single_writer_cells_never_violate_condition_3() {
        let mut rng = crate::rng::XorShift64::new(0xE2);
        for _ in 0..100 {
            // One exclusive cell per process.
            let mut h = History::new();
            for _ in 0..20 {
                let pid = rng.below(5) as u32;
                h.push(access(pid, pid, true, None, None));
            }
            let (_, fin) = random_write_history(&mut rng, 5, 1, 0);
            assert!(h
                .regularity_violations_given_fin(&fin)
                .iter()
                .all(|v| !matches!(v, RegularityViolation::MultiWriterLastWriteActive { .. })));
        }
    }

    /// Property (empty finished set): with `fin = ∅`, *every* multi-writer
    /// cell violates condition 3 and every sees/touches of a participant
    /// violates conditions 1/2; an empty history still has no violations.
    #[test]
    fn prop_empty_fin_flags_every_multi_writer_cell() {
        let empty = BTreeSet::new();
        assert!(History::new()
            .regularity_violations_given_fin(&empty)
            .is_empty());

        let mut rng = crate::rng::XorShift64::new(0xE3);
        for _ in 0..100 {
            let (h, _) = random_write_history(&mut rng, 4, 3, 18);
            let multi_writer_cells: BTreeSet<Addr> = (0..3u32)
                .map(Addr)
                .filter(|&a| {
                    let writers: BTreeSet<ProcId> = h
                        .events()
                        .filter_map(|e| match *e {
                            Event::Access {
                                pid,
                                op,
                                wrote: true,
                                ..
                            } if op.addr() == a => Some(pid),
                            _ => None,
                        })
                        .collect();
                    writers.len() > 1
                })
                .collect();
            let flagged: BTreeSet<Addr> = h
                .regularity_violations_given_fin(&empty)
                .into_iter()
                .filter_map(|v| match v {
                    RegularityViolation::MultiWriterLastWriteActive { addr, .. } => Some(addr),
                    _ => None,
                })
                .collect();
            assert_eq!(flagged, multi_writer_cells);
        }
    }

    /// With `fin = ∅`, sees/touches of participants are condition-1/2
    /// violations at the recorded indices; sees/touches of non-participants
    /// constrain nothing.
    #[test]
    fn empty_fin_sees_touches_and_nonparticipants() {
        let mut h = History::new();
        h.push(access(0, 0, true, None, None));
        h.push(access(1, 0, false, Some(0), Some(0)));
        // Process 7 never takes a step: seeing it constrains nothing.
        h.push(access(2, 1, false, Some(7), Some(7)));
        let empty = BTreeSet::new();
        let violations = h.regularity_violations_given_fin(&empty);
        assert_eq!(
            violations,
            vec![
                RegularityViolation::SeesActive {
                    seer: ProcId(1),
                    seen: ProcId(0),
                    at: 1,
                },
                RegularityViolation::TouchesActive {
                    toucher: ProcId(1),
                    touched: ProcId(0),
                    at: 1,
                },
            ]
        );
    }
}
