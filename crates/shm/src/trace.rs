//! Human-readable rendering of histories.
//!
//! Algorithms can [label](crate::mem::MemLayout::set_label) the cells they
//! allocate; [`render`] then prints a history with variable names instead
//! of raw addresses — indispensable when staring at adversary schedules.

use crate::event::Event;
use crate::history_label::Labels;
use crate::op::Op;
use std::fmt::Write as _;

/// Renders one operation with labelled addresses.
#[must_use]
pub fn render_op(op: &Op, labels: &Labels) -> String {
    let a = |addr: crate::ids::Addr| labels.name(addr);
    match *op {
        Op::Read(x) => format!("read {}", a(x)),
        Op::Write(x, w) => format!("{} := {}", a(x), render_word(w)),
        Op::Cas(x, e, n) => format!("cas {} ({} -> {})", a(x), render_word(e), render_word(n)),
        Op::Ll(x) => format!("ll {}", a(x)),
        Op::Sc(x, w) => format!("sc {} := {}", a(x), render_word(w)),
        Op::Faa(x, d) => format!("faa {} += {}", a(x), d),
        Op::Fas(x, w) => format!("fas {} := {}", a(x), render_word(w)),
        Op::Tas(x) => format!("tas {}", a(x)),
    }
}

fn render_word(w: crate::ids::Word) -> String {
    if w == crate::ids::NIL {
        "NIL".to_owned()
    } else {
        w.to_string()
    }
}

/// Renders a slice of events, one per line. `only` restricts to one
/// process when set. RMRs are starred.
#[must_use]
pub fn render(events: &[Event], labels: &Labels, only: Option<crate::ids::ProcId>) -> String {
    let mut out = String::new();
    for e in events {
        if only.is_some_and(|p| e.pid() != p) {
            continue;
        }
        match e {
            Event::Invoke { pid, name, .. } => {
                let _ = writeln!(out, "{pid} invoke {name}()");
            }
            Event::Return { pid, value, .. } => {
                let _ = writeln!(out, "{pid} return {}", render_word(*value));
            }
            Event::Access {
                pid,
                op,
                result,
                cost,
                ..
            } => {
                let star = if cost.rmr { "*" } else { " " };
                let _ = writeln!(
                    out,
                    "{pid}{star} {} -> {}",
                    render_op(op, labels),
                    render_word(*result)
                );
            }
            Event::Terminate { pid } => {
                let _ = writeln!(out, "{pid} terminate");
            }
            Event::Crash { pid } => {
                let _ = writeln!(out, "{pid} CRASH");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, ProcId};
    use crate::mem::MemLayout;

    #[test]
    fn renders_labels_and_rmr_stars() {
        let mut layout = MemLayout::new();
        let b = layout.alloc_global(0);
        layout.set_label(b, "B");
        let labels = layout.labels();
        assert_eq!(labels.name(b), "B");
        assert_eq!(labels.name(Addr(99)), "@99");
        let events = vec![
            Event::Invoke {
                pid: ProcId(0),
                kind: crate::machine::CallKind(1),
                name: "Poll",
            },
            Event::Access {
                pid: ProcId(0),
                op: Op::Read(b),
                result: 0,
                wrote: false,
                cost: crate::model::AccessCost {
                    rmr: true,
                    messages: 1,
                    invalidations: 0,
                },
                sees: None,
                touches: None,
            },
            Event::Return {
                pid: ProcId(0),
                kind: crate::machine::CallKind(1),
                value: 0,
            },
        ];
        let text = render(&events, &labels, None);
        assert!(text.contains("p0 invoke Poll()"));
        assert!(text.contains("p0* read B -> 0"));
        assert!(text.contains("p0 return 0"));
    }

    #[test]
    fn filter_by_process() {
        let events = vec![
            Event::Terminate { pid: ProcId(0) },
            Event::Terminate { pid: ProcId(1) },
        ];
        let labels = Labels::default();
        let text = render(&events, &labels, Some(ProcId(1)));
        assert!(!text.contains("p0"));
        assert!(text.contains("p1 terminate"));
    }

    #[test]
    fn nil_renders_symbolically() {
        let labels = Labels::default();
        let s = render_op(&Op::Write(Addr(0), crate::ids::NIL), &labels);
        assert_eq!(s, "@0 := NIL");
    }
}
