//! Human-readable rendering of histories.
//!
//! Algorithms can [label](crate::mem::MemLayout::set_label) the cells they
//! allocate; [`render`] then prints a history with variable names instead
//! of raw addresses — indispensable when staring at adversary schedules.

use crate::event::Event;
use crate::history_label::Labels;
use crate::op::Op;
use std::fmt::Write as _;

/// Renders one operation with labelled addresses.
#[must_use]
pub fn render_op(op: &Op, labels: &Labels) -> String {
    let a = |addr: crate::ids::Addr| labels.name(addr);
    match *op {
        Op::Read(x) => format!("read {}", a(x)),
        Op::Write(x, w) => format!("{} := {}", a(x), render_word(w)),
        Op::Cas(x, e, n) => format!("cas {} ({} -> {})", a(x), render_word(e), render_word(n)),
        Op::Ll(x) => format!("ll {}", a(x)),
        Op::Sc(x, w) => format!("sc {} := {}", a(x), render_word(w)),
        Op::Faa(x, d) => format!("faa {} += {}", a(x), d),
        Op::Fas(x, w) => format!("fas {} := {}", a(x), render_word(w)),
        Op::Tas(x) => format!("tas {}", a(x)),
    }
}

fn render_word(w: crate::ids::Word) -> String {
    if w == crate::ids::NIL {
        "NIL".to_owned()
    } else {
        w.to_string()
    }
}

/// Options for [`render_with`].
#[derive(Clone, Debug, Default)]
pub struct RenderOptions<'a> {
    /// Restrict output to one process.
    pub only: Option<crate::ids::ProcId>,
    /// Append a cumulative per-process RMR column (`[rmr k]`) to starred
    /// and unstarred access lines, counting RMRs as the history is walked.
    pub rmr_column: bool,
    /// Expected per-process RMR totals, rendered as `[rmr k/T]`. Feed this
    /// from `MetricsReport::by_process("sim.rmr")` (shm-obs) after an
    /// [`crate::Simulator::obs_flush`], or any other per-process totals map.
    /// Ignored unless `rmr_column` is set.
    pub rmr_totals: Option<&'a std::collections::BTreeMap<u32, u64>>,
}

/// Renders a slice of events, one per line. `only` restricts to one
/// process when set. RMRs are starred.
#[must_use]
pub fn render<'a>(
    events: impl IntoIterator<Item = &'a Event>,
    labels: &Labels,
    only: Option<crate::ids::ProcId>,
) -> String {
    render_with(
        events,
        labels,
        &RenderOptions {
            only,
            ..RenderOptions::default()
        },
    )
}

/// [`render`] with explicit [`RenderOptions`].
#[must_use]
pub fn render_with<'a>(
    events: impl IntoIterator<Item = &'a Event>,
    labels: &Labels,
    opts: &RenderOptions<'_>,
) -> String {
    let mut out = String::new();
    let mut cum_rmrs: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for e in events {
        // Cumulative counts cover the whole slice, even when `only` hides
        // other processes' lines (the column must not depend on filtering).
        if let Event::Access { pid, cost, .. } = e {
            if cost.rmr {
                *cum_rmrs.entry(pid.0).or_default() += 1;
            }
        }
        if opts.only.is_some_and(|p| e.pid() != p) {
            continue;
        }
        match e {
            Event::Invoke { pid, name, .. } => {
                let _ = writeln!(out, "{pid} invoke {name}()");
            }
            Event::Return { pid, value, .. } => {
                let _ = writeln!(out, "{pid} return {}", render_word(*value));
            }
            Event::Access {
                pid,
                op,
                result,
                cost,
                ..
            } => {
                let star = if cost.rmr { "*" } else { " " };
                let _ = write!(
                    out,
                    "{pid}{star} {} -> {}",
                    render_op(op, labels),
                    render_word(*result)
                );
                if opts.rmr_column {
                    let k = cum_rmrs.get(&pid.0).copied().unwrap_or(0);
                    match opts.rmr_totals.and_then(|t| t.get(&pid.0)) {
                        Some(total) => {
                            let _ = write!(out, "  [rmr {k}/{total}]");
                        }
                        None => {
                            let _ = write!(out, "  [rmr {k}]");
                        }
                    }
                }
                out.push('\n');
            }
            Event::Terminate { pid } => {
                let _ = writeln!(out, "{pid} terminate");
            }
            Event::Crash { pid } => {
                let _ = writeln!(out, "{pid} CRASH");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Addr, ProcId};
    use crate::mem::MemLayout;

    #[test]
    fn renders_labels_and_rmr_stars() {
        let mut layout = MemLayout::new();
        let b = layout.alloc_global(0);
        layout.set_label(b, "B");
        let labels = layout.labels();
        assert_eq!(labels.name(b), "B");
        assert_eq!(labels.name(Addr(99)), "@99");
        let events = vec![
            Event::Invoke {
                pid: ProcId(0),
                kind: crate::machine::CallKind(1),
                name: "Poll",
            },
            Event::Access {
                pid: ProcId(0),
                op: Op::Read(b),
                result: 0,
                wrote: false,
                cost: crate::model::AccessCost {
                    rmr: true,
                    messages: 1,
                    invalidations: 0,
                },
                sees: None,
                touches: None,
            },
            Event::Return {
                pid: ProcId(0),
                kind: crate::machine::CallKind(1),
                value: 0,
            },
        ];
        let text = render(&events, labels, None);
        assert!(text.contains("p0 invoke Poll()"));
        assert!(text.contains("p0* read B -> 0"));
        assert!(text.contains("p0 return 0"));
    }

    #[test]
    fn golden_render_with_cumulative_rmr_column() {
        let access = |pid: u32, op: Op, result: u64, rmr: bool| Event::Access {
            pid: ProcId(pid),
            op,
            result,
            wrote: false,
            cost: crate::model::AccessCost {
                rmr,
                messages: u64::from(rmr),
                invalidations: 0,
            },
            sees: None,
            touches: None,
        };
        let events = vec![
            access(0, Op::Read(Addr(0)), 0, true),
            access(1, Op::Read(Addr(1)), 5, false),
            access(0, Op::Write(Addr(0), 7), 7, true),
        ];
        // Totals column fed from a MetricsReport, the way a bench bin
        // would after `Simulator::obs_flush`.
        let mut td = shm_obs::TrackData::default();
        td.counters.insert(
            shm_obs::CounterKey {
                pid: Some(0),
                ..shm_obs::CounterKey::plain("sim.rmr")
            },
            2,
        );
        let report = shm_obs::MetricsReport::from_snapshot(&shm_obs::Snapshot {
            tracks: vec![(vec![], td)],
        });
        let totals = report.by_process("sim.rmr");
        let text = render_with(
            &events,
            &Labels::default(),
            &RenderOptions {
                only: None,
                rmr_column: true,
                rmr_totals: Some(&totals),
            },
        );
        let golden = "p0* read @0 -> 0  [rmr 1/2]\n\
                      p1  read @1 -> 5  [rmr 0]\n\
                      p0* @0 := 7 -> 7  [rmr 2/2]\n";
        assert_eq!(text, golden);
        // Filtering must not change the cumulative counts.
        let only_p0 = render_with(
            &events,
            &Labels::default(),
            &RenderOptions {
                only: Some(ProcId(0)),
                rmr_column: true,
                rmr_totals: Some(&totals),
            },
        );
        assert_eq!(
            only_p0,
            "p0* read @0 -> 0  [rmr 1/2]\np0* @0 := 7 -> 7  [rmr 2/2]\n"
        );
    }

    #[test]
    fn filter_by_process() {
        let events = vec![
            Event::Terminate { pid: ProcId(0) },
            Event::Terminate { pid: ProcId(1) },
        ];
        let labels = Labels::default();
        let text = render(&events, &labels, Some(ProcId(1)));
        assert!(!text.contains("p0"));
        assert!(text.contains("p1 terminate"));
    }

    #[test]
    fn nil_renders_symbolically() {
        let labels = Labels::default();
        let s = render_op(&Op::Write(Addr(0), crate::ids::NIL), &labels);
        assert_eq!(s, "@0 := NIL");
    }
}
