//! # shm-sim: a deterministic shared-memory multiprocessor simulator
//!
//! This crate is the machine-model substrate for an executable reproduction
//! of W. Golab, *A Complexity Separation Between the Cache-Coherent and
//! Distributed Shared Memory Models* (PODC 2011). It provides:
//!
//! * **Shared memory** with the paper's atomic primitives — reads, writes,
//!   CAS, LL/SC (§2) — plus Fetch-And-Add, Fetch-And-Store and Test-And-Set
//!   (used in §7 and by the mutual-exclusion substrate). See [`mem`], [`op`].
//! * **Two cost models** pricing the *same* execution: the DSM rule (an
//!   access is an RMR iff the cell lives in another processor's memory
//!   module) and the CC rule (an access is an RMR iff it misses the ideal
//!   cache), with configurable write-through/write-back protocols, LFCU
//!   semantics, and per-interconnect message counting. See [`model`].
//! * **Step machines**: algorithms are deterministic, cloneable state
//!   machines advanced one atomic access at a time, which makes the
//!   lower-bound adversary's *erasing* and *rolling forward* executable as
//!   schedule surgery plus replay. See [`machine`], [`source`].
//! * **Histories** with the queries of §6: participants, *sees*, *touches*,
//!   and regularity per Definition 6.6. See [`event`].
//! * **The simulator** itself, with schedule recording, deterministic
//!   replay-with-erasure, memory-free peeking at a process's next operation,
//!   and call injection. See [`sim`], [`sched`].
//!
//! ## Quick example
//!
//! The paper's §5 upper bound in one screen: a single shared Boolean solves
//! the signaling problem with O(1) RMRs per process in the CC model.
//!
//! ```
//! use shm_sim::*;
//! use std::sync::Arc;
//!
//! let mut layout = MemLayout::new();
//! let flag = layout.alloc_global(0);
//!
//! // Signal(): write true. Poll(): read the flag.
//! let signaler = Script::new(vec![ScriptedCall::new(
//!     CallKind(0), "Signal",
//!     Arc::new(move || Box::new(OpSequence::new(vec![Op::Write(flag, 1)])) as Box<dyn ProcedureCall>),
//! )]);
//! let waiter = RepeatUntil::new(
//!     ScriptedCall::new(CallKind(1), "Poll",
//!         Arc::new(move || Box::new(OpSequence::new(vec![Op::Read(flag)])) as Box<dyn ProcedureCall>)),
//!     1,
//! );
//!
//! let spec = SimSpec {
//!     layout,
//!     sources: vec![Box::new(signaler), Box::new(waiter)],
//!     model: CostModel::cc_default(),
//! };
//! let mut sim = Simulator::new(&spec);
//! let mut sched = RoundRobin::new();
//! assert!(run_to_completion(&mut sim, &mut sched, 100_000));
//! // The waiter busy-waited but cached the flag: O(1) RMRs.
//! assert!(sim.proc_stats(ProcId(1)).rmrs <= 2);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod audit;
pub mod event;
pub mod history_label;
pub mod ids;
pub mod machine;
pub mod mem;
pub mod model;
pub mod op;
pub mod rng;
pub mod sched;
pub mod sim;
pub mod source;
pub mod trace;

pub use audit::{AuditDivergence, AuditReport};
pub use event::{
    fingerprint_words, CallRecord, Event, History, ProjectedEvent, RegularityViolation,
};
pub use history_label::Labels;
pub use ids::{Addr, AddrRange, ProcId, Word, NIL};
pub use machine::{Call, CallKind, OpSequence, ProcedureCall, ReturnConst, Step};
pub use mem::{MemLayout, Memory};
pub use model::{model_tag, AccessCost, CcConfig, CostModel, CostState, Interconnect, Protocol};
pub use op::{Applied, Op};
pub use rng::XorShift64;
pub use sched::{
    run, run_exact, run_to_completion, PctScheduler, RoundRobin, Scheduler, Scripted, SeededRandom,
    Solo,
};
pub use sim::{
    Checkpoint, Peek, ProcStats, SimSpec, Simulator, Status, StepReport, Totals, TransitionPeek,
};
pub use source::{CallFactory, CallSource, Chain, Idle, RepeatUntil, Script, ScriptedCall};
pub use trace::{render, render_with, RenderOptions};
