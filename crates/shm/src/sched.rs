//! Schedulers: strategies for picking which process steps next.
//!
//! The paper's histories allow arbitrary interleavings ("process steps can
//! be scheduled arbitrarily", §2). Experiments use fair schedulers; the
//! lower-bound adversary constructs schedules by hand instead.

use crate::ids::ProcId;
use crate::rng::XorShift64;
use crate::sim::{Simulator, StepReport};

/// A scheduling strategy.
pub trait Scheduler {
    /// Chooses the next process to step, or `None` to stop (e.g. everyone
    /// has terminated).
    fn next(&mut self, sim: &Simulator) -> Option<ProcId>;
}

/// Fair round-robin over runnable processes.
#[derive(Clone, Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl RoundRobin {
    /// Creates a round-robin scheduler starting at process 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobin {
    fn next(&mut self, sim: &Simulator) -> Option<ProcId> {
        let n = sim.n();
        for offset in 0..n {
            let i = (self.cursor + offset) % n;
            let pid = ProcId(i as u32);
            if sim.is_runnable(pid) {
                self.cursor = (i + 1) % n;
                return Some(pid);
            }
        }
        None
    }
}

/// Uniformly random choice among runnable processes, from a seeded RNG.
///
/// Deterministic for a fixed seed, so experiments are reproducible.
#[derive(Clone, Debug)]
pub struct SeededRandom {
    rng: XorShift64,
    /// Reused runnable-set buffer; cleared and refilled each step.
    buf: Vec<ProcId>,
}

impl SeededRandom {
    /// Creates a random scheduler with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            rng: XorShift64::new(seed),
            buf: Vec::new(),
        }
    }
}

impl Scheduler for SeededRandom {
    fn next(&mut self, sim: &Simulator) -> Option<ProcId> {
        sim.runnable_into(&mut self.buf);
        if self.buf.is_empty() {
            None
        } else {
            Some(*self.rng.choose(&self.buf))
        }
    }
}

/// Probabilistic concurrency testing (PCT): a priority scheduler whose
/// random choices are all made up front, giving the classic
/// `1 / (n · k^(d−1))` detection guarantee for bugs of depth `d` within a
/// `k`-step budget.
///
/// Construction draws, from a seeded RNG:
/// - a random permutation of `n` distinct base priorities (all above any
///   change-point priority), and
/// - `d − 1` random *priority-change points*: step indices in `[0, k)`.
///
/// Every step schedules the highest-priority runnable process. When the
/// step counter hits a change point, the process that would have been
/// scheduled first has its priority dropped below every base priority
/// (change point `i` assigns priority `d − 1 − i`, so later drops sink
/// further), and the choice is re-evaluated.
///
/// Deterministic for a fixed `(seed, n, d, k)`, so a PCT run is replayable
/// from its parameters alone.
#[derive(Clone, Debug)]
pub struct PctScheduler {
    /// Priority per process; higher wins. Distinct by construction.
    prio: Vec<u64>,
    /// Sorted step indices at which the next scheduled process is deprioritized.
    change_at: Vec<u64>,
    /// Change points already consumed.
    next_change: usize,
    /// Steps scheduled so far.
    steps: u64,
}

impl PctScheduler {
    /// Creates a PCT scheduler for `n` processes with bug depth `d` over a
    /// `k`-step budget, drawing all randomness from `seed`.
    ///
    /// # Panics
    /// If `d == 0` (depth counts at least the final ordering constraint).
    #[must_use]
    pub fn new(seed: u64, n: usize, d: usize, k: u64) -> Self {
        assert!(d > 0, "PCT depth must be at least 1");
        let mut rng = XorShift64::new(seed);
        // Base priorities d-1+1 .. d-1+n (all above any change-point
        // priority d-1-i), assigned by a Fisher-Yates shuffle.
        let mut prio: Vec<u64> = (0..n as u64).map(|i| d as u64 + i).collect();
        for i in (1..n).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            prio.swap(i, j);
        }
        let mut change_at: Vec<u64> = (0..d - 1).map(|_| rng.below(k.max(1))).collect();
        change_at.sort_unstable();
        PctScheduler {
            prio,
            change_at,
            next_change: 0,
            steps: 0,
        }
    }

    /// The highest-priority runnable process, if any.
    fn best(&self, sim: &Simulator) -> Option<ProcId> {
        (0..self.prio.len())
            .map(|i| ProcId(i as u32))
            .filter(|&p| sim.is_runnable(p))
            .max_by_key(|p| self.prio[p.index()])
    }
}

impl Scheduler for PctScheduler {
    fn next(&mut self, sim: &Simulator) -> Option<ProcId> {
        let mut pid = self.best(sim)?;
        // Consume every change point due at this step: deprioritize the
        // process that would run and re-select.
        while self.next_change < self.change_at.len()
            && self.steps >= self.change_at[self.next_change]
        {
            self.prio[pid.index()] = (self.change_at.len() - self.next_change) as u64 - 1;
            self.next_change += 1;
            pid = self.best(sim)?;
        }
        self.steps += 1;
        Some(pid)
    }
}

/// Runs only the given process (the paper's "solo" executions).
#[derive(Clone, Copy, Debug)]
pub struct Solo(pub ProcId);

impl Scheduler for Solo {
    fn next(&mut self, sim: &Simulator) -> Option<ProcId> {
        sim.is_runnable(self.0).then_some(self.0)
    }
}

/// Replays a fixed sequence of process IDs, skipping non-runnable entries.
#[derive(Clone, Debug)]
pub struct Scripted {
    order: Vec<ProcId>,
    next: usize,
}

impl Scripted {
    /// Creates a scripted scheduler from an explicit step order.
    #[must_use]
    pub fn new(order: Vec<ProcId>) -> Self {
        Scripted { order, next: 0 }
    }
}

impl Scheduler for Scripted {
    fn next(&mut self, sim: &Simulator) -> Option<ProcId> {
        while self.next < self.order.len() {
            let pid = self.order[self.next];
            self.next += 1;
            if sim.is_runnable(pid) {
                return Some(pid);
            }
        }
        None
    }
}

/// Replays an explicit pid sequence exactly: each entry is stepped once, and
/// entries naming a non-runnable process are dropped silently (they record
/// nothing, matching [`Scripted`]'s skip semantics). Returns the number of
/// steps actually taken.
///
/// This is the schedule-space explorer's replay hook: a serialized
/// counterexample schedule — possibly with entries deleted by shrinking —
/// re-executes through here, and the steps that survive are exactly the
/// recorded [`Simulator::schedule`] of the replayed run.
pub fn run_exact(sim: &mut Simulator, order: &[ProcId]) -> u64 {
    let mut taken = 0;
    for &pid in order {
        match sim.step(pid) {
            StepReport::NotRunnable => {}
            _ => taken += 1,
        }
    }
    taken
}

/// Drives `sim` under `sched` until the scheduler stops or `max_steps` steps
/// have been taken. Returns the number of steps taken.
pub fn run(sim: &mut Simulator, sched: &mut dyn Scheduler, max_steps: u64) -> u64 {
    let mut taken = 0;
    while taken < max_steps {
        let Some(pid) = sched.next(sim) else { break };
        match sim.step(pid) {
            StepReport::NotRunnable => {}
            _ => taken += 1,
        }
    }
    taken
}

/// Runs until every process has terminated (or `max_steps` is exhausted).
/// Returns `true` if all processes finished.
pub fn run_to_completion(sim: &mut Simulator, sched: &mut dyn Scheduler, max_steps: u64) -> bool {
    run(sim, sched, max_steps);
    sim.all_done()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{CallKind, OpSequence};
    use crate::mem::MemLayout;
    use crate::model::CostModel;
    use crate::op::Op;
    use crate::sim::SimSpec;
    use crate::source::{Script, ScriptedCall};
    use std::sync::Arc;

    fn spec_with_counter_writers(n: usize) -> SimSpec {
        let mut layout = MemLayout::new();
        let c = layout.alloc_global(0);
        let sources = (0..n)
            .map(|_| {
                let call = ScriptedCall::new(
                    CallKind(0),
                    "inc",
                    Arc::new(move || Box::new(OpSequence::new(vec![Op::Faa(c, 1)]))),
                );
                Box::new(Script::new(vec![call])) as Box<dyn crate::source::CallSource>
            })
            .collect();
        SimSpec {
            layout,
            sources,
            model: CostModel::Dsm,
        }
    }

    #[test]
    fn round_robin_completes_everyone() {
        let spec = spec_with_counter_writers(5);
        let mut sim = crate::sim::Simulator::new(&spec);
        assert!(run_to_completion(&mut sim, &mut RoundRobin::new(), 10_000));
        assert_eq!(sim.memory().peek(crate::ids::Addr(0)), 5);
    }

    #[test]
    fn seeded_random_is_deterministic() {
        let spec = spec_with_counter_writers(4);
        let run_once = |seed| {
            let mut sim = crate::sim::Simulator::new(&spec);
            run_to_completion(&mut sim, &mut SeededRandom::new(seed), 10_000);
            sim.schedule().to_vec()
        };
        assert_eq!(run_once(7), run_once(7));
        // Two seeds almost surely give different schedules for 4 processes.
        assert_ne!(run_once(7), run_once(8));
    }

    #[test]
    fn solo_runs_only_one_process() {
        let spec = spec_with_counter_writers(3);
        let mut sim = crate::sim::Simulator::new(&spec);
        run(&mut sim, &mut Solo(ProcId(1)), 10_000);
        assert_eq!(sim.memory().peek(crate::ids::Addr(0)), 1);
        assert!(sim.history().participants().iter().all(|&p| p == ProcId(1)));
    }

    #[test]
    fn scripted_follows_order_and_skips_dead() {
        let spec = spec_with_counter_writers(2);
        let mut sim = crate::sim::Simulator::new(&spec);
        let order = vec![ProcId(0); 10]
            .into_iter()
            .chain(vec![ProcId(1); 10])
            .collect();
        let mut sched = Scripted::new(order);
        run(&mut sim, &mut sched, 10_000);
        assert!(sim.all_done());
    }

    #[test]
    fn pct_is_deterministic_and_complete() {
        let spec = spec_with_counter_writers(4);
        let run_once = |seed| {
            let mut sim = crate::sim::Simulator::new(&spec);
            let mut sched = PctScheduler::new(seed, 4, 3, 10_000);
            run_to_completion(&mut sim, &mut sched, 10_000);
            (
                sim.schedule().to_vec(),
                sim.memory().peek(crate::ids::Addr(0)),
            )
        };
        let (sched_a, sum_a) = run_once(11);
        assert_eq!((sched_a.clone(), sum_a), run_once(11));
        assert_eq!(sum_a, 4, "priority scheduling still completes everyone");
        // Different seeds almost surely permute priorities differently.
        assert_ne!(sched_a, run_once(12).0);
    }

    #[test]
    fn pct_priorities_are_distinct_and_drops_sink() {
        let sched = PctScheduler::new(99, 8, 4, 500);
        let mut seen = sched.prio.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 8, "base priorities are distinct");
        assert!(sched.prio.iter().all(|&p| p >= 4), "bases above drop range");
        assert_eq!(sched.change_at.len(), 3, "d-1 change points");
        assert!(sched.change_at.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn pct_depth_one_never_preempts_by_priority() {
        // d = 1 means no change points: the highest-priority runnable
        // process runs solo until it blocks or finishes.
        let spec = spec_with_counter_writers(3);
        let mut sim = crate::sim::Simulator::new(&spec);
        let mut sched = PctScheduler::new(5, 3, 1, 1000);
        run_to_completion(&mut sim, &mut sched, 1000);
        let schedule = sim.schedule().to_vec();
        // Each process's steps form one contiguous run.
        let mut seen_done: Vec<ProcId> = Vec::new();
        for w in schedule.windows(2) {
            if w[0] != w[1] {
                assert!(
                    !seen_done.contains(&w[1]),
                    "process resumed after preemption"
                );
                seen_done.push(w[0]);
            }
        }
    }

    #[test]
    fn run_respects_step_budget() {
        let spec = spec_with_counter_writers(5);
        let mut sim = crate::sim::Simulator::new(&spec);
        let taken = run(&mut sim, &mut RoundRobin::new(), 3);
        assert_eq!(taken, 3);
        assert!(!sim.all_done());
    }
}
