//! Core identifier newtypes shared across the simulator.

use std::fmt;

/// Machine word stored in a shared-memory cell.
///
/// All values exchanged through shared memory are plain 64-bit words; domain
/// crates encode Booleans as `0`/`1` and process IDs via [`ProcId::to_word`].
pub type Word = u64;

/// Sentinel word used to encode "no process" / NIL pointers.
///
/// Process IDs are small, so `u64::MAX` can never collide with an encoded ID.
pub const NIL: Word = u64::MAX;

/// Identifier of a process (equivalently, of the processor it runs on).
///
/// The paper's process `p_i` has `ProcId(i - 1)`: IDs are zero-based indices
/// into the simulator's process table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

impl ProcId {
    /// Encodes this ID as a shared-memory word (e.g. to store in a cell).
    #[must_use]
    pub fn to_word(self) -> Word {
        Word::from(self.0)
    }

    /// Decodes a word previously produced by [`ProcId::to_word`].
    ///
    /// Returns `None` for [`NIL`] or out-of-range words.
    #[must_use]
    pub fn from_word(w: Word) -> Option<ProcId> {
        if w == NIL || w > Word::from(u32::MAX) {
            None
        } else {
            Some(ProcId(w as u32))
        }
    }

    /// Zero-based index of this process.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Address of a shared-memory cell.
///
/// Addresses are allocated through [`crate::mem::MemLayout`] and index into
/// the flat cell array of a [`crate::mem::Memory`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Addr(pub u32);

impl Addr {
    /// Index of this address in the flat cell array.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A contiguous range of addresses produced by array allocation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AddrRange {
    pub(crate) start: u32,
    pub(crate) len: u32,
}

impl AddrRange {
    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn at(&self, i: usize) -> Addr {
        assert!(
            i < self.len as usize,
            "array index {i} out of bounds (len {})",
            self.len
        );
        Addr(self.start + i as u32)
    }

    /// Number of elements in the range.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the addresses in the range.
    pub fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        (0..self.len).map(move |i| Addr(self.start + i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_word_round_trip() {
        for raw in [0_u32, 1, 17, u32::MAX] {
            let id = ProcId(raw);
            assert_eq!(ProcId::from_word(id.to_word()), Some(id));
        }
    }

    #[test]
    fn nil_decodes_to_none() {
        assert_eq!(ProcId::from_word(NIL), None);
        assert_eq!(ProcId::from_word(Word::from(u32::MAX) + 1), None);
    }

    #[test]
    fn addr_range_indexing() {
        let r = AddrRange { start: 5, len: 3 };
        assert_eq!(r.at(0), Addr(5));
        assert_eq!(r.at(2), Addr(7));
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        let collected: Vec<Addr> = r.iter().collect();
        assert_eq!(collected, vec![Addr(5), Addr(6), Addr(7)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn addr_range_oob_panics() {
        let r = AddrRange { start: 0, len: 2 };
        let _ = r.at(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ProcId(3).to_string(), "p3");
        assert_eq!(Addr(9).to_string(), "@9");
    }
}
