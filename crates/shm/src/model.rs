//! Cost models: what makes a memory access a *remote memory reference*.
//!
//! The paper prices the same abstract execution differently in two models:
//!
//! * **DSM** — an access is an RMR iff the cell lives in another processor's
//!   memory module (ownership is static; see [`crate::mem::MemLayout`]).
//! * **CC** — an access is an RMR iff it cannot be served by the processor's
//!   cache. We implement the paper's "ideal cache" (§2): caches never drop
//!   data spuriously, so a sequence of reads of one location costs one RMR
//!   until some other process performs a nontrivial operation on it.
//!
//! The CC model is configurable along the three axes §8 discusses:
//! write-through vs. write-back propagation, LFCU (local failed comparisons
//! with write-update) vs. standard invalidation, and the interconnect that
//! determines how many *messages* one coherence action costs (shared bus,
//! ideal directory, or stateless broadcast).

use crate::ids::{Addr, ProcId, Word};
use crate::op::Applied;

/// How writes propagate in the CC model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Protocol {
    /// Every nontrivial operation goes to main memory (always an RMR).
    #[default]
    WriteThrough,
    /// A nontrivial operation by the sole cache-line holder is local.
    WriteBack,
}

/// Message cost of one coherence action (§8's "exchange rate" discussion).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Interconnect {
    /// Shared bus: a single broadcast serves the write and all invalidations,
    /// so CC RMRs are "at par" with DSM RMRs (one message each).
    #[default]
    Bus,
    /// Ideal directory: invalidations are sent exactly to the remote caches
    /// that hold a copy (requires ~N bits of state per line; §8 calls this
    /// unrealistic but it makes amortized RMRs track amortized messages).
    IdealDirectory,
    /// Stateless broadcast fabric: every write RMR notifies all other N-1
    /// processors whether or not they hold a copy (superfluous invalidation
    /// messages; amortized messages can exceed amortized RMRs).
    StatelessBroadcast,
}

/// Configuration of the cache-coherent cost model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CcConfig {
    /// Write propagation policy.
    pub protocol: Protocol,
    /// Local-Failed-Comparison with write-Update semantics (Anderson–Kim's
    /// LFCU systems, §3): failed CAS/SC are free and local, and writes update
    /// remote copies instead of invalidating them.
    pub lfcu: bool,
    /// Message accounting for coherence actions.
    pub interconnect: Interconnect,
}

/// The two architecture models of Figure 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CostModel {
    /// Distributed shared memory: RMR iff the address maps to another
    /// processor's module.
    #[default]
    Dsm,
    /// Cache-coherent with the given configuration.
    Cc(CcConfig),
}

impl CostModel {
    /// Standard write-through CC machine with a shared bus.
    #[must_use]
    pub fn cc_default() -> Self {
        CostModel::Cc(CcConfig::default())
    }
}

/// Static label of a cost model: `dsm`, or `cc-{wt|wb}[-lfcu]-{bus|dir|bcast}`
/// for the twelve CC configurations. `&'static str` (rather than a formatted
/// `String`) so the label can serve as an `shm-obs` counter dimension.
#[must_use]
pub fn model_tag(model: CostModel) -> &'static str {
    use Interconnect::{Bus, IdealDirectory as Dir, StatelessBroadcast as Bcast};
    use Protocol::{WriteBack as Wb, WriteThrough as Wt};
    match model {
        CostModel::Dsm => "dsm",
        CostModel::Cc(cfg) => match (cfg.protocol, cfg.lfcu, cfg.interconnect) {
            (Wt, false, Bus) => "cc-wt-bus",
            (Wt, false, Dir) => "cc-wt-dir",
            (Wt, false, Bcast) => "cc-wt-bcast",
            (Wt, true, Bus) => "cc-wt-lfcu-bus",
            (Wt, true, Dir) => "cc-wt-lfcu-dir",
            (Wt, true, Bcast) => "cc-wt-lfcu-bcast",
            (Wb, false, Bus) => "cc-wb-bus",
            (Wb, false, Dir) => "cc-wb-dir",
            (Wb, false, Bcast) => "cc-wb-bcast",
            (Wb, true, Bus) => "cc-wb-lfcu-bus",
            (Wb, true, Dir) => "cc-wb-lfcu-dir",
            (Wb, true, Bcast) => "cc-wb-lfcu-bcast",
        },
    }
}

/// Price of one memory access under a cost model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AccessCost {
    /// Whether the access is a remote memory reference.
    pub rmr: bool,
    /// Interconnect messages generated (RMR traffic + coherence traffic).
    pub messages: u64,
    /// Cached copies actually destroyed by this access (CC only). §8's key
    /// observation: totals satisfy `invalidations <= RMRs` because a copy is
    /// created by an RMR and destroyed at most once.
    pub invalidations: u64,
}

/// Helpers over one cell's validity words (a `stride`-word bitset of
/// process IDs): `words[blk]` bit `bit` covers process `blk * 64 + bit`.
mod procset {
    use super::ProcId;

    pub(super) fn contains(words: &[u64], p: ProcId) -> bool {
        let (blk, bit) = (p.index() / 64, p.index() % 64);
        words.get(blk).is_some_and(|b| b >> bit & 1 == 1)
    }

    pub(super) fn insert(words: &mut [u64], p: ProcId) {
        let (blk, bit) = (p.index() / 64, p.index() % 64);
        words[blk] |= 1 << bit;
    }

    pub(super) fn len(words: &[u64]) -> u64 {
        words.iter().map(|b| u64::from(b.count_ones())).sum()
    }

    /// Number of members other than `p`.
    pub(super) fn count_others(words: &[u64], p: ProcId) -> u64 {
        len(words) - u64::from(contains(words, p))
    }

    /// Retains only `p` (whether present or not, the set becomes `{p}`).
    pub(super) fn reset_to(words: &mut [u64], p: ProcId) {
        words.iter_mut().for_each(|b| *b = 0);
        insert(words, p);
    }

    /// Visits members in ascending process-ID order.
    pub(super) fn for_each_member(words: &[u64], mut f: impl FnMut(ProcId)) {
        for (blk, &bits) in words.iter().enumerate() {
            let mut rest = bits;
            while rest != 0 {
                let bit = rest.trailing_zeros() as usize;
                f(ProcId((blk * 64 + bit) as u32));
                rest &= rest - 1;
            }
        }
    }
}

/// Mutable pricing state for one execution under one cost model.
///
/// For DSM this is stateless; for CC it tracks which processes hold a valid
/// cached copy of each cell — as one flat bitset (`stride` words per cell,
/// cells contiguous), so checkpoint/restore is a single `memcpy` and the
/// state encoding walks one cache-friendly buffer instead of chasing a
/// pointer per cell.
#[derive(Clone, Debug)]
pub struct CostState {
    model: CostModel,
    n_procs: usize,
    /// Flat cache-validity bitset: `valid[a * stride ..][..stride]` is the
    /// set of processes holding a valid cached copy of cell `a` (CC only;
    /// empty for DSM).
    valid: Vec<u64>,
    /// Words per cell: `ceil(n_procs / 64)`, minimum 1 (0 under DSM, where
    /// `valid` stays empty).
    stride: usize,
}

impl CostState {
    /// Creates pricing state for `n_procs` processes and `n_cells` cells.
    #[must_use]
    pub fn new(model: CostModel, n_procs: usize, n_cells: usize) -> Self {
        let stride = match model {
            CostModel::Dsm => 0,
            CostModel::Cc(_) => n_procs.div_ceil(64).max(1),
        };
        CostState {
            model,
            n_procs,
            valid: vec![0; n_cells * stride],
            stride,
        }
    }

    /// Copies `src`'s state into `self`, reusing the flat bit buffer — the
    /// checkpoint-restore hot path rolls pricing state back with one
    /// `memcpy` and no allocator traffic at steady state.
    pub(crate) fn copy_from(&mut self, src: &CostState) {
        self.model = src.model;
        self.n_procs = src.n_procs;
        self.stride = src.stride;
        self.valid.clone_from(&src.valid);
    }

    fn cell(&self, a: usize) -> &[u64] {
        &self.valid[a * self.stride..(a + 1) * self.stride]
    }

    /// The model being priced.
    #[must_use]
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Processes currently holding a valid cached copy of `addr`, in
    /// ascending ID order. Always empty under DSM (which has no caches).
    ///
    /// Exposed for the differential audit layer, which diffs the fast path's
    /// cache-validity state against an independent reference after every
    /// audited access.
    #[must_use]
    pub fn holders(&self, addr: Addr) -> Vec<ProcId> {
        let mut out = Vec::new();
        if self.stride > 0 && (addr.index() + 1) * self.stride <= self.valid.len() {
            procset::for_each_member(self.cell(addr.index()), |p| out.push(p));
        }
        out
    }

    /// Appends a canonical word encoding of the pricing state to `out`:
    /// nothing under DSM (which is stateless), and for CC each cell's
    /// valid-copy holder set (member count followed by ascending IDs).
    ///
    /// Two cost states with equal encodings price every future access
    /// identically; the schedule-space explorer folds this into its state
    /// fingerprints so deduplication never merges states that would charge
    /// differently.
    pub fn encode_state(&self, out: &mut Vec<u64>) {
        if self.stride == 0 {
            return;
        }
        for cell in self.valid.chunks_exact(self.stride) {
            out.push(procset::len(cell));
            procset::for_each_member(cell, |p| out.push(u64::from(p.0)));
        }
    }

    /// Prices the access `applied` performed by `pid` on `addr` (whose module
    /// owner is `owner`), updating cache state for the CC model.
    ///
    /// Must be called exactly once per memory access, in execution order.
    pub fn charge(
        &mut self,
        pid: ProcId,
        addr: Addr,
        owner: Option<ProcId>,
        applied: &Applied,
    ) -> AccessCost {
        match self.model {
            CostModel::Dsm => {
                let rmr = owner != Some(pid);
                AccessCost {
                    rmr,
                    messages: u64::from(rmr),
                    invalidations: 0,
                }
            }
            CostModel::Cc(cfg) => self.charge_cc(cfg, pid, addr, applied),
        }
    }

    fn charge_cc(
        &mut self,
        cfg: CcConfig,
        pid: ProcId,
        addr: Addr,
        applied: &Applied,
    ) -> AccessCost {
        let stride = self.stride;
        let valid = &mut self.valid[addr.index() * stride..(addr.index() + 1) * stride];
        if applied.failed_comparison && cfg.lfcu {
            // LFCU: a failed comparison primitive is applied locally.
            return AccessCost::default();
        }
        if !applied.nontrivial {
            // Read-like access (read, LL, or standard failed comparison):
            // served by the cache if a valid copy exists, otherwise one fetch.
            let rmr = !procset::contains(valid, pid);
            procset::insert(valid, pid);
            return AccessCost {
                rmr,
                messages: u64::from(rmr),
                invalidations: 0,
            };
        }
        // Nontrivial operation.
        let holders_elsewhere = procset::count_others(valid, pid);
        let rmr = match cfg.protocol {
            Protocol::WriteThrough => true,
            Protocol::WriteBack => !(procset::contains(valid, pid) && holders_elsewhere == 0),
        };
        let (invalidations, coherence_messages) = if cfg.lfcu {
            // Write-update: remote copies are refreshed in place, not destroyed.
            let updates = match cfg.interconnect {
                Interconnect::Bus => u64::from(holders_elsewhere > 0),
                Interconnect::IdealDirectory => holders_elsewhere,
                Interconnect::StatelessBroadcast => {
                    if rmr {
                        self.n_procs as u64 - 1
                    } else {
                        0
                    }
                }
            };
            (0, updates)
        } else {
            let msgs = match cfg.interconnect {
                Interconnect::Bus => u64::from(holders_elsewhere > 0),
                Interconnect::IdealDirectory => holders_elsewhere,
                Interconnect::StatelessBroadcast => {
                    if rmr {
                        self.n_procs as u64 - 1
                    } else {
                        0
                    }
                }
            };
            (holders_elsewhere, msgs)
        };
        if cfg.lfcu {
            procset::insert(valid, pid);
        } else {
            procset::reset_to(valid, pid);
        }
        AccessCost {
            rmr,
            messages: u64::from(rmr) + coherence_messages,
            invalidations,
        }
    }
}

/// Convenience: prices a single hypothetical access without mutating state.
///
/// Useful for "is the next op an RMR?" peeks by the lower-bound adversary.
#[must_use]
pub fn would_be_rmr(
    state: &CostState,
    pid: ProcId,
    addr: Addr,
    owner: Option<ProcId>,
    nontrivial_hint: bool,
) -> bool {
    match state.model {
        CostModel::Dsm => owner != Some(pid),
        CostModel::Cc(cfg) => {
            let valid = state.cell(addr.index());
            if !nontrivial_hint {
                !procset::contains(valid, pid)
            } else {
                match cfg.protocol {
                    Protocol::WriteThrough => true,
                    Protocol::WriteBack => {
                        !(procset::contains(valid, pid) && procset::count_others(valid, pid) == 0)
                    }
                }
            }
        }
    }
}

/// Dummy word re-export so doctests elsewhere can reference the alias.
#[doc(hidden)]
pub type _Word = Word;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Applied;

    fn read_applied(v: Word) -> Applied {
        Applied {
            result: v,
            nontrivial: false,
            failed_comparison: false,
        }
    }
    fn write_applied() -> Applied {
        Applied {
            result: 0,
            nontrivial: true,
            failed_comparison: false,
        }
    }
    fn failed_cas() -> Applied {
        Applied {
            result: 0,
            nontrivial: false,
            failed_comparison: true,
        }
    }

    const A: Addr = Addr(0);
    const P: ProcId = ProcId(0);
    const Q: ProcId = ProcId(1);

    #[test]
    fn dsm_charges_by_ownership_only() {
        let mut st = CostState::new(CostModel::Dsm, 4, 1);
        assert!(st.charge(P, A, Some(Q), &read_applied(0)).rmr);
        assert!(!st.charge(P, A, Some(P), &read_applied(0)).rmr);
        assert!(
            st.charge(P, A, None, &write_applied()).rmr,
            "global cells are remote to all in DSM"
        );
        // Repeated remote reads stay RMRs in DSM (no caching).
        assert!(st.charge(P, A, Some(Q), &read_applied(0)).rmr);
        assert!(st.charge(P, A, Some(Q), &read_applied(0)).rmr);
    }

    #[test]
    fn cc_repeated_reads_cost_one_rmr() {
        let mut st = CostState::new(CostModel::cc_default(), 4, 1);
        assert!(st.charge(P, A, None, &read_applied(0)).rmr);
        assert!(!st.charge(P, A, None, &read_applied(0)).rmr);
        assert!(!st.charge(P, A, None, &read_applied(0)).rmr);
    }

    #[test]
    fn cc_write_by_other_invalidates_reader() {
        let mut st = CostState::new(CostModel::cc_default(), 4, 1);
        st.charge(P, A, None, &read_applied(0));
        let w = st.charge(Q, A, None, &write_applied());
        assert!(w.rmr);
        assert_eq!(w.invalidations, 1, "P's copy destroyed");
        assert!(
            st.charge(P, A, None, &read_applied(0)).rmr,
            "P must re-fetch"
        );
    }

    #[test]
    fn cc_write_through_writes_always_rmr() {
        let mut st = CostState::new(
            CostModel::Cc(CcConfig {
                protocol: Protocol::WriteThrough,
                ..Default::default()
            }),
            4,
            1,
        );
        assert!(st.charge(P, A, None, &write_applied()).rmr);
        assert!(st.charge(P, A, None, &write_applied()).rmr);
    }

    #[test]
    fn cc_write_back_sole_holder_writes_locally() {
        let mut st = CostState::new(
            CostModel::Cc(CcConfig {
                protocol: Protocol::WriteBack,
                ..Default::default()
            }),
            4,
            1,
        );
        assert!(
            st.charge(P, A, None, &write_applied()).rmr,
            "first write fetches the line"
        );
        assert!(
            !st.charge(P, A, None, &write_applied()).rmr,
            "exclusive holder writes locally"
        );
        st.charge(Q, A, None, &read_applied(0)); // Q caches a copy
        assert!(
            st.charge(P, A, None, &write_applied()).rmr,
            "sharing forces an RMR again"
        );
    }

    #[test]
    fn failed_comparison_standard_vs_lfcu() {
        let mut standard = CostState::new(CostModel::cc_default(), 4, 1);
        assert!(
            standard.charge(P, A, None, &failed_cas()).rmr,
            "standard: failed CAS fetches the line"
        );
        assert!(
            !standard.charge(P, A, None, &failed_cas()).rmr,
            "…then it is cached"
        );

        let mut lfcu = CostState::new(
            CostModel::Cc(CcConfig {
                lfcu: true,
                ..Default::default()
            }),
            4,
            1,
        );
        let c = lfcu.charge(P, A, None, &failed_cas());
        assert!(
            !c.rmr && c.messages == 0,
            "LFCU: failed comparisons are local"
        );
    }

    #[test]
    fn lfcu_write_updates_instead_of_invalidating() {
        let cfg = CcConfig {
            lfcu: true,
            interconnect: Interconnect::IdealDirectory,
            ..Default::default()
        };
        let mut st = CostState::new(CostModel::Cc(cfg), 4, 1);
        st.charge(Q, A, None, &read_applied(0));
        let w = st.charge(P, A, None, &write_applied());
        assert_eq!(w.invalidations, 0);
        assert_eq!(w.messages, 2, "1 write + 1 update to Q");
        assert!(
            !st.charge(Q, A, None, &read_applied(0)).rmr,
            "Q's copy stays valid"
        );
    }

    #[test]
    fn interconnect_message_counts() {
        // Two readers cache the line, then P writes.
        let setup = |ic| {
            let mut st = CostState::new(
                CostModel::Cc(CcConfig {
                    interconnect: ic,
                    ..Default::default()
                }),
                8,
                1,
            );
            st.charge(Q, A, None, &read_applied(0));
            st.charge(ProcId(2), A, None, &read_applied(0));
            st.charge(P, A, None, &write_applied())
        };
        assert_eq!(
            setup(Interconnect::Bus).messages,
            1 + 1,
            "write + one broadcast"
        );
        assert_eq!(
            setup(Interconnect::IdealDirectory).messages,
            1 + 2,
            "write + exactly the 2 holders"
        );
        assert_eq!(
            setup(Interconnect::StatelessBroadcast).messages,
            1 + 7,
            "write + all N-1 others"
        );
    }

    #[test]
    fn bus_write_with_no_holders_sends_no_coherence_traffic() {
        let mut st = CostState::new(CostModel::cc_default(), 8, 1);
        let w = st.charge(P, A, None, &write_applied());
        assert_eq!(w.messages, 1);
        assert_eq!(w.invalidations, 0);
    }

    #[test]
    fn would_be_rmr_matches_charge_for_reads() {
        let mut st = CostState::new(CostModel::cc_default(), 4, 1);
        assert!(would_be_rmr(&st, P, A, None, false));
        st.charge(P, A, None, &read_applied(0));
        assert!(!would_be_rmr(&st, P, A, None, false));
        assert!(would_be_rmr(&st, Q, A, None, false));
    }

    #[test]
    fn procset_operations() {
        // Two 64-bit words cover pids past 63.
        let mut s = [0u64; 2];
        assert!(!procset::contains(&s, ProcId(70)));
        procset::insert(&mut s, ProcId(70));
        procset::insert(&mut s, ProcId(3));
        assert!(procset::contains(&s, ProcId(70)) && procset::contains(&s, ProcId(3)));
        assert_eq!(procset::len(&s), 2);
        assert_eq!(procset::count_others(&s, ProcId(3)), 1);
        assert_eq!(procset::count_others(&s, ProcId(9)), 2);
        procset::reset_to(&mut s, ProcId(9));
        assert_eq!(procset::len(&s), 1);
        assert!(procset::contains(&s, ProcId(9)) && !procset::contains(&s, ProcId(70)));
    }

    #[test]
    fn members_and_holders_enumerate_in_order() {
        let mut s = [0u64; 2];
        procset::insert(&mut s, ProcId(70));
        procset::insert(&mut s, ProcId(3));
        procset::insert(&mut s, ProcId(64));
        let mut members = Vec::new();
        procset::for_each_member(&s, |p| members.push(p));
        assert_eq!(members, vec![ProcId(3), ProcId(64), ProcId(70)]);

        let mut st = CostState::new(CostModel::cc_default(), 4, 2);
        st.charge(Q, A, None, &read_applied(0));
        st.charge(P, A, None, &read_applied(0));
        assert_eq!(st.holders(A), vec![P, Q]);
        assert_eq!(st.holders(Addr(1)), Vec::<ProcId>::new());

        let dsm = CostState::new(CostModel::Dsm, 4, 2);
        assert!(dsm.holders(A).is_empty(), "DSM has no caches");
    }
}
