//! Property tests for the memory and cost models against simple reference
//! implementations.

use proptest::prelude::*;
use shm_sim::{
    Addr, Applied, CcConfig, CostModel, CostState, Interconnect, MemLayout, Memory, Op, ProcId, Protocol, Word,
};
use std::collections::{BTreeMap, BTreeSet};

const CELLS: u32 = 4;
const PROCS: u32 = 4;

fn arb_op() -> impl Strategy<Value = Op> {
    let addr = (0..CELLS).prop_map(Addr);
    let word = 0u64..5;
    prop_oneof![
        addr.clone().prop_map(Op::Read),
        (addr.clone(), word.clone()).prop_map(|(a, w)| Op::Write(a, w)),
        (addr.clone(), word.clone(), word.clone()).prop_map(|(a, e, n)| Op::Cas(a, e, n)),
        addr.clone().prop_map(Op::Ll),
        (addr.clone(), word.clone()).prop_map(|(a, w)| Op::Sc(a, w)),
        (addr.clone(), word.clone()).prop_map(|(a, w)| Op::Faa(a, w)),
        (addr.clone(), word.clone()).prop_map(|(a, w)| Op::Fas(a, w)),
        addr.prop_map(Op::Tas),
    ]
}

/// Straightforward reference semantics: value map + per-process LL links.
#[derive(Default)]
struct RefModel {
    values: BTreeMap<u32, Word>,
    links: BTreeMap<u32, BTreeSet<u32>>, // addr -> procs holding a reservation
}

impl RefModel {
    fn apply(&mut self, pid: u32, op: Op) -> Applied {
        let a = op.addr().0;
        let old = *self.values.entry(a).or_insert(0);
        let write = |vals: &mut BTreeMap<u32, Word>, links: &mut BTreeMap<u32, BTreeSet<u32>>, v: Word| {
            vals.insert(a, v);
            links.remove(&a);
        };
        match op {
            Op::Read(_) => Applied { result: old, nontrivial: false, failed_comparison: false },
            Op::Ll(_) => {
                self.links.entry(a).or_default().insert(pid);
                Applied { result: old, nontrivial: false, failed_comparison: false }
            }
            Op::Write(_, w) => {
                write(&mut self.values, &mut self.links, w);
                Applied { result: w, nontrivial: true, failed_comparison: false }
            }
            Op::Cas(_, e, n) => {
                if old == e {
                    write(&mut self.values, &mut self.links, n);
                    Applied { result: old, nontrivial: true, failed_comparison: false }
                } else {
                    Applied { result: old, nontrivial: false, failed_comparison: true }
                }
            }
            Op::Sc(_, w) => {
                if self.links.get(&a).is_some_and(|s| s.contains(&pid)) {
                    write(&mut self.values, &mut self.links, w);
                    Applied { result: 1, nontrivial: true, failed_comparison: false }
                } else {
                    Applied { result: 0, nontrivial: false, failed_comparison: true }
                }
            }
            Op::Faa(_, d) => {
                write(&mut self.values, &mut self.links, old.wrapping_add(d));
                Applied { result: old, nontrivial: true, failed_comparison: false }
            }
            Op::Fas(_, w) => {
                write(&mut self.values, &mut self.links, w);
                Applied { result: old, nontrivial: true, failed_comparison: false }
            }
            Op::Tas(_) => {
                write(&mut self.values, &mut self.links, 1);
                Applied { result: old, nontrivial: true, failed_comparison: false }
            }
        }
    }
}

fn blank_memory() -> Memory {
    let mut layout = MemLayout::new();
    for _ in 0..CELLS {
        layout.alloc_global(0);
    }
    Memory::from_layout(&layout)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The memory implements exactly the reference semantics for arbitrary
    /// interleavings of all eight primitives.
    #[test]
    fn memory_matches_reference(ops in proptest::collection::vec((0..PROCS, arb_op()), 0..60)) {
        let mut mem = blank_memory();
        let mut reference = RefModel::default();
        for (pid, op) in ops {
            let got = mem.apply(ProcId(pid), op);
            let want = reference.apply(pid, op);
            prop_assert_eq!(got, want, "op {} by p{}", op, pid);
        }
        for a in 0..CELLS {
            prop_assert_eq!(mem.peek(Addr(a)), *reference.values.get(&a).unwrap_or(&0));
        }
    }

    /// §8's inequality as a machine invariant: under every CC configuration
    /// the total invalidations never exceed total RMRs.
    #[test]
    fn invalidations_never_exceed_rmrs(
        ops in proptest::collection::vec((0..PROCS, arb_op()), 0..80),
        write_back in any::<bool>(),
        lfcu in any::<bool>(),
        ic in 0u8..3,
    ) {
        let cfg = CcConfig {
            protocol: if write_back { Protocol::WriteBack } else { Protocol::WriteThrough },
            lfcu,
            interconnect: match ic { 0 => Interconnect::Bus, 1 => Interconnect::IdealDirectory, _ => Interconnect::StatelessBroadcast },
        };
        let mut mem = blank_memory();
        let mut cost = CostState::new(CostModel::Cc(cfg), PROCS as usize, CELLS as usize);
        let (mut rmrs, mut invalidations) = (0u64, 0u64);
        for (pid, op) in ops {
            let applied = mem.apply(ProcId(pid), op);
            let c = cost.charge(ProcId(pid), op.addr(), mem.owner(op.addr()), &applied);
            rmrs += u64::from(c.rmr);
            invalidations += c.invalidations;
            prop_assert!(invalidations <= rmrs, "after {} by p{}", op, pid);
        }
    }

    /// A read that costs zero RMRs in CC must return the same value the
    /// last fetch (or a local write chain) established — i.e. cached reads
    /// are never stale: any nontrivial op by another process invalidates.
    #[test]
    fn cc_cached_reads_are_never_stale(
        ops in proptest::collection::vec((0..PROCS, arb_op()), 0..80),
    ) {
        let mut mem = blank_memory();
        let mut cost = CostState::new(CostModel::cc_default(), PROCS as usize, CELLS as usize);
        // last_seen[(pid, addr)] = value this process last observed/wrote.
        let mut last_seen: BTreeMap<(u32, u32), Word> = BTreeMap::new();
        for (pid, op) in ops {
            let a = op.addr();
            let applied = mem.apply(ProcId(pid), op);
            let c = cost.charge(ProcId(pid), a, mem.owner(a), &applied);
            if matches!(op, Op::Read(_)) && !c.rmr {
                if let Some(&v) = last_seen.get(&(pid, a.0)) {
                    prop_assert_eq!(applied.result, v, "stale cached read of {} by p{}", a, pid);
                }
            }
            last_seen.insert((pid, a.0), mem.peek(a));
        }
    }

    /// In the DSM model every access costs exactly what ownership dictates,
    /// independent of history.
    #[test]
    fn dsm_is_stateless(ops in proptest::collection::vec((0..PROCS, arb_op()), 0..60)) {
        let mut layout = MemLayout::new();
        let a0 = layout.alloc_local(ProcId(0), 0);
        for _ in 1..CELLS {
            layout.alloc_global(0);
        }
        let mut mem = Memory::from_layout(&layout);
        let mut cost = CostState::new(CostModel::Dsm, PROCS as usize, CELLS as usize);
        for (pid, op) in ops {
            let applied = mem.apply(ProcId(pid), op);
            let c = cost.charge(ProcId(pid), op.addr(), mem.owner(op.addr()), &applied);
            let expect = !(op.addr() == a0 && pid == 0);
            prop_assert_eq!(c.rmr, expect);
            prop_assert_eq!(c.messages, u64::from(expect));
            prop_assert_eq!(c.invalidations, 0);
        }
    }
}
