//! Property-style tests for the memory and cost models against simple
//! reference implementations, driven by seeded deterministic random loops
//! (the workspace is dependency-free, so no proptest).

use shm_sim::{
    Addr, Applied, CcConfig, CostModel, CostState, Interconnect, MemLayout, Memory, Op, ProcId,
    Protocol, Word, XorShift64,
};
use std::collections::{BTreeMap, BTreeSet};

const CELLS: u32 = 4;
const PROCS: u32 = 4;

fn gen_op(rng: &mut XorShift64) -> Op {
    let a = Addr(rng.below(u64::from(CELLS)) as u32);
    let word = |rng: &mut XorShift64| rng.below(5);
    match rng.below(8) {
        0 => Op::Read(a),
        1 => Op::Write(a, word(rng)),
        2 => Op::Cas(a, word(rng), word(rng)),
        3 => Op::Ll(a),
        4 => Op::Sc(a, word(rng)),
        5 => Op::Faa(a, word(rng)),
        6 => Op::Fas(a, word(rng)),
        _ => Op::Tas(a),
    }
}

fn gen_ops(rng: &mut XorShift64, max_len: u64) -> Vec<(u32, Op)> {
    let len = rng.below(max_len) as usize;
    (0..len)
        .map(|_| (rng.below(u64::from(PROCS)) as u32, gen_op(rng)))
        .collect()
}

/// Straightforward reference semantics: value map + per-process LL links.
#[derive(Default)]
struct RefModel {
    values: BTreeMap<u32, Word>,
    links: BTreeMap<u32, BTreeSet<u32>>, // addr -> procs holding a reservation
}

impl RefModel {
    fn apply(&mut self, pid: u32, op: Op) -> Applied {
        let a = op.addr().0;
        let old = *self.values.entry(a).or_insert(0);
        let write =
            |vals: &mut BTreeMap<u32, Word>, links: &mut BTreeMap<u32, BTreeSet<u32>>, v: Word| {
                vals.insert(a, v);
                links.remove(&a);
            };
        match op {
            Op::Read(_) => Applied {
                result: old,
                nontrivial: false,
                failed_comparison: false,
            },
            Op::Ll(_) => {
                self.links.entry(a).or_default().insert(pid);
                Applied {
                    result: old,
                    nontrivial: false,
                    failed_comparison: false,
                }
            }
            Op::Write(_, w) => {
                write(&mut self.values, &mut self.links, w);
                Applied {
                    result: w,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
            Op::Cas(_, e, n) => {
                if old == e {
                    write(&mut self.values, &mut self.links, n);
                    Applied {
                        result: old,
                        nontrivial: true,
                        failed_comparison: false,
                    }
                } else {
                    Applied {
                        result: old,
                        nontrivial: false,
                        failed_comparison: true,
                    }
                }
            }
            Op::Sc(_, w) => {
                if self.links.get(&a).is_some_and(|s| s.contains(&pid)) {
                    write(&mut self.values, &mut self.links, w);
                    Applied {
                        result: 1,
                        nontrivial: true,
                        failed_comparison: false,
                    }
                } else {
                    Applied {
                        result: 0,
                        nontrivial: false,
                        failed_comparison: true,
                    }
                }
            }
            Op::Faa(_, d) => {
                write(&mut self.values, &mut self.links, old.wrapping_add(d));
                Applied {
                    result: old,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
            Op::Fas(_, w) => {
                write(&mut self.values, &mut self.links, w);
                Applied {
                    result: old,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
            Op::Tas(_) => {
                write(&mut self.values, &mut self.links, 1);
                Applied {
                    result: old,
                    nontrivial: true,
                    failed_comparison: false,
                }
            }
        }
    }
}

fn blank_memory() -> Memory {
    let mut layout = MemLayout::new();
    for _ in 0..CELLS {
        layout.alloc_global(0);
    }
    Memory::from_layout(&layout)
}

/// The memory implements exactly the reference semantics for arbitrary
/// interleavings of all eight primitives.
#[test]
fn memory_matches_reference() {
    let mut rng = XorShift64::new(0x0A11_CE55);
    for _case in 0..256 {
        let ops = gen_ops(&mut rng, 60);
        let mut mem = blank_memory();
        let mut reference = RefModel::default();
        for (pid, op) in ops {
            let got = mem.apply(ProcId(pid), op);
            let want = reference.apply(pid, op);
            assert_eq!(got, want, "op {op} by p{pid}");
        }
        for a in 0..CELLS {
            assert_eq!(mem.peek(Addr(a)), *reference.values.get(&a).unwrap_or(&0));
        }
    }
}

/// §8's inequality as a machine invariant: under every CC configuration
/// the total invalidations never exceed total RMRs.
#[test]
fn invalidations_never_exceed_rmrs() {
    let mut rng = XorShift64::new(0xBEEF);
    for case in 0..256u64 {
        let ops = gen_ops(&mut rng, 80);
        let cfg = CcConfig {
            protocol: if case % 2 == 0 {
                Protocol::WriteBack
            } else {
                Protocol::WriteThrough
            },
            lfcu: (case / 2) % 2 == 0,
            interconnect: match (case / 4) % 3 {
                0 => Interconnect::Bus,
                1 => Interconnect::IdealDirectory,
                _ => Interconnect::StatelessBroadcast,
            },
        };
        let mut mem = blank_memory();
        let mut cost = CostState::new(CostModel::Cc(cfg), PROCS as usize, CELLS as usize);
        let (mut rmrs, mut invalidations) = (0u64, 0u64);
        for (pid, op) in ops {
            let applied = mem.apply(ProcId(pid), op);
            let c = cost.charge(ProcId(pid), op.addr(), mem.owner(op.addr()), &applied);
            rmrs += u64::from(c.rmr);
            invalidations += c.invalidations;
            assert!(invalidations <= rmrs, "after {op} by p{pid} under {cfg:?}");
        }
    }
}

/// A read that costs zero RMRs in CC must return the same value the
/// last fetch (or a local write chain) established — i.e. cached reads
/// are never stale: any nontrivial op by another process invalidates.
#[test]
fn cc_cached_reads_are_never_stale() {
    let mut rng = XorShift64::new(0xCAC4E);
    for _case in 0..256 {
        let ops = gen_ops(&mut rng, 80);
        let mut mem = blank_memory();
        let mut cost = CostState::new(CostModel::cc_default(), PROCS as usize, CELLS as usize);
        // last_seen[(pid, addr)] = value this process last observed/wrote.
        let mut last_seen: BTreeMap<(u32, u32), Word> = BTreeMap::new();
        for (pid, op) in ops {
            let a = op.addr();
            let applied = mem.apply(ProcId(pid), op);
            let c = cost.charge(ProcId(pid), a, mem.owner(a), &applied);
            if matches!(op, Op::Read(_)) && !c.rmr {
                if let Some(&v) = last_seen.get(&(pid, a.0)) {
                    assert_eq!(applied.result, v, "stale cached read of {a} by p{pid}");
                }
            }
            last_seen.insert((pid, a.0), mem.peek(a));
        }
    }
}

/// In the DSM model every access costs exactly what ownership dictates,
/// independent of history.
#[test]
fn dsm_is_stateless() {
    let mut rng = XorShift64::new(0xD5A);
    for _case in 0..256 {
        let ops = gen_ops(&mut rng, 60);
        let mut layout = MemLayout::new();
        let a0 = layout.alloc_local(ProcId(0), 0);
        for _ in 1..CELLS {
            layout.alloc_global(0);
        }
        let mut mem = Memory::from_layout(&layout);
        let mut cost = CostState::new(CostModel::Dsm, PROCS as usize, CELLS as usize);
        for (pid, op) in ops {
            let applied = mem.apply(ProcId(pid), op);
            let c = cost.charge(ProcId(pid), op.addr(), mem.owner(op.addr()), &applied);
            let expect = !(op.addr() == a0 && pid == 0);
            assert_eq!(c.rmr, expect);
            assert_eq!(c.messages, u64::from(expect));
            assert_eq!(c.invalidations, 0);
        }
    }
}
