//! Determinism contract for the incremental replay engine: a checkpointed
//! simulator's `filtered_replay` / `replay_from` / `erase_certified` must
//! reproduce exactly — event log, totals, per-process stats, memory — what a
//! from-scratch `Simulator::replay` of the same schedule produces, for every
//! cost model and checkpoint interval, with and without erasure and call
//! injection.

use shm_sim::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Mixed-op workload over shared and per-process cells (same family as
/// `sim_invariants`).
fn workload(n: usize, calls: usize, model: CostModel) -> SimSpec {
    let mut layout = MemLayout::new();
    let a = layout.alloc_global(0);
    let b = layout.alloc_global(5);
    let mine = layout.alloc_per_process_array(n, 0);
    let sources = (0..n)
        .map(|i| {
            let pid = ProcId(i as u32);
            let mut cs = Vec::new();
            for k in 0..calls {
                let ops = match (i + k) % 5 {
                    0 => vec![Op::Read(a), Op::Write(mine.at(pid.index()), k as Word)],
                    1 => vec![Op::Faa(a, 1), Op::Read(b)],
                    2 => vec![Op::Cas(b, 5, 6), Op::Read(mine.at(pid.index()))],
                    3 => vec![Op::Ll(b), Op::Sc(b, 9)],
                    _ => vec![Op::Tas(a), Op::Fas(b, 7)],
                };
                cs.push(ScriptedCall::new(
                    CallKind(k as u32),
                    "mix",
                    Arc::new(move || {
                        Box::new(OpSequence::new(ops.clone())) as Box<dyn ProcedureCall>
                    }),
                ));
            }
            Box::new(Script::new(cs)) as Box<dyn CallSource>
        })
        .collect();
    SimSpec {
        layout,
        sources,
        model,
    }
}

fn all_models() -> Vec<CostModel> {
    vec![
        CostModel::Dsm,
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteThrough,
            lfcu: false,
            interconnect: Interconnect::IdealDirectory,
        }),
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteBack,
            lfcu: false,
            interconnect: Interconnect::Bus,
        }),
        CostModel::Cc(CcConfig {
            protocol: Protocol::WriteBack,
            lfcu: true,
            interconnect: Interconnect::IdealDirectory,
        }),
    ]
}

/// Every observable of `got` equals `want`: events, totals, stats, memory
/// contents, fingerprints.
fn assert_same_execution(got: &Simulator, want: &Simulator, ctx: &str) {
    assert_eq!(
        got.history().to_vec(),
        want.history().to_vec(),
        "{ctx}: events"
    );
    assert_eq!(got.totals(), want.totals(), "{ctx}: totals");
    assert_eq!(got.schedule(), want.schedule(), "{ctx}: schedule");
    for i in 0..want.n() {
        let p = ProcId(i as u32);
        assert_eq!(got.proc_stats(p), want.proc_stats(p), "{ctx}: stats of {p}");
        assert_eq!(
            got.history().fingerprint(p),
            want.history().fingerprint(p),
            "{ctx}: fingerprint of {p}"
        );
        assert_eq!(
            got.history().projection(p),
            want.history().projection(p),
            "{ctx}: projection of {p}"
        );
    }
}

/// `filtered_replay` with no erasure reproduces the recording exactly, for
/// every model and a spread of checkpoint intervals.
#[test]
fn filtered_replay_matches_full_replay_without_erasure() {
    for model in all_models() {
        for interval in [1usize, 7, 64] {
            let spec = workload(5, 3, model);
            let mut sim = Simulator::new(&spec);
            sim.enable_checkpoints(interval);
            run_to_completion(&mut sim, &mut SeededRandom::new(2024), 1_000_000);
            let reference = Simulator::replay(&spec, sim.schedule(), &BTreeSet::new());
            let got = sim.filtered_replay(&spec, &BTreeSet::new());
            assert_same_execution(&got, &reference, &format!("{model:?} interval={interval}"));
            assert_same_execution(&got, &sim, &format!("{model:?} interval={interval} (self)"));
        }
    }
}

/// `filtered_replay` under erasure equals a from-scratch filtered
/// `Simulator::replay` — the incremental path may only change *how* the
/// state is computed, never the state.
#[test]
fn filtered_replay_matches_full_replay_under_erasure() {
    for model in all_models() {
        for interval in [1usize, 7, 64] {
            for victim in 0..5u32 {
                let spec = workload(5, 3, model);
                let mut sim = Simulator::new(&spec);
                sim.enable_checkpoints(interval);
                run_to_completion(&mut sim, &mut SeededRandom::new(99), 1_000_000);
                let erased = BTreeSet::from([ProcId(victim)]);
                let reference = Simulator::replay(&spec, sim.schedule(), &erased);
                let got = sim.filtered_replay(&spec, &erased);
                assert_same_execution(
                    &got,
                    &reference,
                    &format!("{model:?} interval={interval} erased=p{victim}"),
                );
            }
        }
    }
}

/// Multi-process erasure batches replay exactly too.
#[test]
fn filtered_replay_matches_under_batch_erasure() {
    let spec = workload(6, 3, CostModel::cc_default());
    let mut sim = Simulator::new(&spec);
    sim.enable_checkpoints(16);
    run_to_completion(&mut sim, &mut SeededRandom::new(7), 1_000_000);
    for batch in [
        BTreeSet::from([ProcId(0), ProcId(5)]),
        BTreeSet::from([ProcId(1), ProcId(2), ProcId(3)]),
        (0..6).map(ProcId).collect::<BTreeSet<_>>(),
    ] {
        let reference = Simulator::replay(&spec, sim.schedule(), &batch);
        let got = sim.filtered_replay(&spec, &batch);
        assert_same_execution(&got, &reference, &format!("batch={batch:?}"));
    }
}

/// `snapshot`/`restore` rolls the simulator back to a byte-identical state:
/// re-running the same suffix reproduces the original execution.
#[test]
fn snapshot_restore_roundtrip() {
    let spec = workload(4, 3, CostModel::cc_default());
    let mut sim = Simulator::new(&spec);
    let mut sched = SeededRandom::new(5);
    shm_sim::run(&mut sim, &mut sched, 20);
    let ckpt = sim.snapshot();
    let fork = sim.clone();

    // Advance past the snapshot, then restore.
    let mut sched2 = sched.clone();
    shm_sim::run(&mut sim, &mut sched2, 50);
    let suffix: Vec<ProcId> = sim.schedule()[ckpt.schedule_len()..].to_vec();
    sim.restore(&ckpt);
    assert_same_execution(&sim, &fork, "restored state");

    // Re-running the recorded suffix reproduces the advanced execution.
    let mut replayed = sim.clone();
    for &pid in &suffix {
        let _ = replayed.step(pid);
    }
    let mut advanced = fork.clone();
    for &pid in &suffix {
        let _ = advanced.step(pid);
    }
    assert_same_execution(&replayed, &advanced, "suffix after restore");
}

/// `replay_from` a checkpoint reproduces the suffix state and fingerprints.
#[test]
fn replay_from_checkpoint_reproduces_suffix() {
    let spec = workload(5, 3, CostModel::Dsm);
    let mut sim = Simulator::new(&spec);
    sim.enable_checkpoints(8);
    run_to_completion(&mut sim, &mut SeededRandom::new(41), 1_000_000);
    let ckpt = sim.snapshot();
    // Extend the execution with injected work so there is a real suffix.
    sim.inject_call(
        ProcId(2),
        Call::new(
            CallKind(77),
            "extra",
            Box::new(OpSequence::new(vec![Op::Faa(Addr(0), 3)])),
        ),
    );
    while sim.is_runnable(ProcId(2)) {
        let _ = sim.step(ProcId(2));
    }
    let suffix: Vec<ProcId> = sim.schedule()[ckpt.schedule_len()..].to_vec();
    let got = sim.replay_from(&ckpt, &suffix, &BTreeSet::new());
    assert_eq!(got.schedule(), sim.schedule(), "replay_from schedule");
    assert_eq!(got.totals(), sim.totals(), "replay_from totals");
    for i in 0..sim.n() {
        let p = ProcId(i as u32);
        assert_eq!(
            got.history().fingerprint(p),
            sim.history().fingerprint(p),
            "replay_from fingerprint of {p}"
        );
    }
    // Suffix history matches the original's tail.
    assert!(
        got.history()
            .events()
            .eq(sim.history().events_from(ckpt.history_len())),
        "replay_from suffix events"
    );
}

/// Injected calls are re-applied at their recorded positions by
/// `filtered_replay`, and skipped when their target is erased.
#[test]
fn filtered_replay_reapplies_injections() {
    let spec = workload(4, 2, CostModel::cc_default());
    let mut sim = Simulator::new(&spec);
    sim.enable_checkpoints(4);
    run_to_completion(&mut sim, &mut SeededRandom::new(12), 1_000_000);
    sim.inject_call(
        ProcId(1),
        Call::new(
            CallKind(50),
            "sig",
            Box::new(OpSequence::new(vec![Op::Write(Addr(0), 42)])),
        ),
    );
    while sim.is_runnable(ProcId(1)) {
        let _ = sim.step(ProcId(1));
    }

    let replayed = sim.filtered_replay(&spec, &BTreeSet::new());
    assert_same_execution(&replayed, &sim, "injection replay, no erasure");

    // Erasing the injection's target drops the injected call too: the replay
    // equals a plain filtered replay of the schedule minus p1.
    let erased = BTreeSet::from([ProcId(1)]);
    let got = sim.filtered_replay(&spec, &erased);
    let reference = Simulator::replay(&spec, sim.schedule(), &erased);
    assert_same_execution(&got, &reference, "injection target erased");
}

/// `erase_certified` agrees with the reference certification: it returns a
/// simulator exactly when every survivor's projection is unchanged, and the
/// returned state equals the reference filtered replay.
#[test]
fn erase_certified_agrees_with_reference() {
    let spec = workload(6, 3, CostModel::cc_default());
    let mut sim = Simulator::new(&spec);
    sim.enable_checkpoints(8);
    run_to_completion(&mut sim, &mut SeededRandom::new(3), 1_000_000);
    for victim in 0..6u32 {
        let batch = BTreeSet::from([ProcId(victim)]);
        let reference = Simulator::replay(&spec, sim.schedule(), &batch);
        let ref_ok = (0..6u32).map(ProcId).all(|p| {
            batch.contains(&p) || reference.history().projection(p) == sim.history().projection(p)
        });
        match sim.erase_certified(&spec, &batch) {
            Some(got) => {
                assert!(
                    ref_ok,
                    "erase_certified accepted p{victim} but reference rejects"
                );
                assert_same_execution(&got, &reference, &format!("certified erase of p{victim}"));
            }
            None => assert!(
                !ref_ok,
                "erase_certified rejected p{victim} but reference accepts"
            ),
        }
    }
}

/// Audit tier of the determinism contract: the differential audit layer —
/// a naive shadow executor with none of the incremental machinery — finds
/// no divergence from the fast path on a plain recording, for every cost
/// model, and its cross-model walks are clean too.
#[test]
fn audit_is_clean_on_plain_recordings_for_every_model() {
    for model in all_models() {
        let spec = workload(5, 3, model);
        let mut sim = Simulator::new(&spec);
        run_to_completion(&mut sim, &mut SeededRandom::new(2024), 1_000_000);
        let report = sim.audit(&spec);
        assert!(
            report.is_clean(),
            "{model:?}: {}",
            report.divergence.unwrap()
        );
        assert_eq!(report.models_checked, 4, "{model:?}");
        assert!(report.steps_checked > 0, "{model:?}");
    }
}

/// Audit tier with injections: a recording extended by injected calls (the
/// adversary's signal splices) still audits clean — the shadow executor
/// re-applies the injections at their recorded positions.
#[test]
fn audit_is_clean_after_call_injection() {
    for model in all_models() {
        let spec = workload(4, 2, model);
        let mut sim = Simulator::new(&spec);
        run_to_completion(&mut sim, &mut SeededRandom::new(12), 1_000_000);
        sim.inject_call(
            ProcId(1),
            Call::new(
                CallKind(50),
                "sig",
                Box::new(OpSequence::new(vec![Op::Write(Addr(0), 42)])),
            ),
        );
        while sim.is_runnable(ProcId(1)) {
            let _ = sim.step(ProcId(1));
        }
        let report = sim.audit(&spec);
        assert!(
            report.is_clean(),
            "{model:?}: {}",
            report.divergence.unwrap()
        );
    }
}

/// Audit tier after event-walk surgery: a simulator produced by
/// `erase_certified` (checkpoints + fingerprints + surgical replay) audits
/// clean against the naive shadow executor — the strongest end-to-end check
/// that the incremental path's shortcuts are sound.
#[test]
fn audit_is_clean_after_certified_erasure() {
    for model in all_models() {
        let spec = workload(6, 3, model);
        let mut sim = Simulator::new(&spec);
        sim.enable_checkpoints(8);
        run_to_completion(&mut sim, &mut SeededRandom::new(3), 1_000_000);
        for victim in 0..6u32 {
            let batch = BTreeSet::from([ProcId(victim)]);
            if let Some(got) = sim.erase_certified(&spec, &batch) {
                let report = got.audit(&spec);
                assert!(
                    report.is_clean(),
                    "{model:?} erased=p{victim}: {}",
                    report.divergence.unwrap()
                );
            }
        }
    }
}

/// Audit tier, parallel sharding: the audit report — counts and (absent)
/// divergence — is byte-identical whether the shards run on one worker (the
/// exact serial path) or four, with and without checkpoints to chunk the
/// full walk on.
#[test]
fn audit_report_is_thread_count_independent() {
    for model in all_models() {
        for interval in [None, Some(8)] {
            let spec = workload(6, 3, model);
            let mut sim = Simulator::new(&spec);
            if let Some(iv) = interval {
                sim.enable_checkpoints(iv);
            }
            run_to_completion(&mut sim, &mut SeededRandom::new(77), 1_000_000);
            let serial = sim.audit_with_threads(&spec, 1);
            let parallel = sim.audit_with_threads(&spec, 4);
            assert_eq!(
                serial.to_json(),
                parallel.to_json(),
                "{model:?} interval={interval:?}"
            );
            assert!(
                serial.is_clean(),
                "{model:?}: {}",
                serial.divergence.unwrap()
            );
        }
    }
}

/// Checkpoint thinning keeps memory bounded (≤ 96 checkpoints) without
/// breaking replay exactness, even at interval 1.
#[test]
fn checkpoint_thinning_preserves_exactness() {
    let spec = workload(8, 6, CostModel::Dsm);
    let mut sim = Simulator::new(&spec);
    sim.enable_checkpoints(1);
    run_to_completion(&mut sim, &mut SeededRandom::new(17), 1_000_000);
    assert!(
        sim.checkpoint_count() <= 96,
        "thinned to {}",
        sim.checkpoint_count()
    );
    assert!(sim.checkpoint_interval() >= 1);
    let erased = BTreeSet::from([ProcId(7)]);
    let reference = Simulator::replay(&spec, sim.schedule(), &erased);
    let got = sim.filtered_replay(&spec, &erased);
    assert_same_execution(&got, &reference, "after thinning");
}
