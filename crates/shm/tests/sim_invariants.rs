//! Simulator invariants under randomized workloads: peeking predicts
//! stepping, schedules replay exactly, statistics are consistent with the
//! history, and cloning forks state without sharing. Driven by seeded
//! deterministic loops (the workspace is dependency-free, so no proptest).

use shm_sim::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A random-ish but deterministic workload: each process runs `calls`
/// rounds of a small mixed-op procedure over a few shared cells.
fn workload(n: usize, calls: usize, model: CostModel) -> SimSpec {
    let mut layout = MemLayout::new();
    let a = layout.alloc_global(0);
    let b = layout.alloc_global(5);
    let mine = layout.alloc_per_process_array(n, 0);
    let sources = (0..n)
        .map(|i| {
            let pid = ProcId(i as u32);
            let mut cs = Vec::new();
            for k in 0..calls {
                let ops = match (i + k) % 5 {
                    0 => vec![Op::Read(a), Op::Write(mine.at(pid.index()), k as Word)],
                    1 => vec![Op::Faa(a, 1), Op::Read(b)],
                    2 => vec![Op::Cas(b, 5, 6), Op::Read(mine.at(pid.index()))],
                    3 => vec![Op::Ll(b), Op::Sc(b, 9)],
                    _ => vec![Op::Tas(a), Op::Fas(b, 7)],
                };
                cs.push(ScriptedCall::new(
                    CallKind(k as u32),
                    "mix",
                    Arc::new(move || {
                        Box::new(OpSequence::new(ops.clone())) as Box<dyn ProcedureCall>
                    }),
                ));
            }
            Box::new(Script::new(cs)) as Box<dyn CallSource>
        })
        .collect();
    SimSpec {
        layout,
        sources,
        model,
    }
}

/// `peek_transition` predicts exactly what the next `step` reports, for
/// every process at every point of a random schedule.
#[test]
fn peek_transition_predicts_step() {
    for case in 0..64u64 {
        let seed = 31 * case + 7;
        let model = if case % 2 == 0 {
            CostModel::Dsm
        } else {
            CostModel::cc_default()
        };
        let spec = workload(4, 3, model);
        let mut sim = Simulator::new(&spec);
        let mut sched = SeededRandom::new(seed);
        for _ in 0..300 {
            let Some(pid) = Scheduler::next(&mut sched, &sim) else {
                break;
            };
            let peek = sim.peek_transition(pid);
            let report = sim.step(pid);
            match (peek, report) {
                (TransitionPeek::Access(op_p), StepReport::Access { op, .. }) => {
                    assert_eq!(op_p, op);
                }
                (
                    TransitionPeek::Return { kind, value },
                    StepReport::Returned {
                        kind: k2,
                        value: v2,
                    },
                ) => {
                    assert_eq!(kind, k2);
                    assert_eq!(value, v2);
                }
                (TransitionPeek::WillTerminate, StepReport::Terminated) => {}
                (p, r) => panic!("peek {p:?} vs step {r:?}"),
            }
        }
    }
}

/// Per-process statistics agree with recomputation from the history.
#[test]
fn stats_match_history() {
    for case in 0..64u64 {
        let seed = 1000 + case;
        let spec = workload(5, 3, CostModel::Dsm);
        let mut sim = Simulator::new(&spec);
        run_to_completion(&mut sim, &mut SeededRandom::new(seed), 1_000_000);
        for i in 0..5u32 {
            let pid = ProcId(i);
            assert_eq!(sim.proc_stats(pid).rmrs, sim.history().rmrs_of(pid));
            let accesses = sim
                .history()
                .events()
                .filter(|e| matches!(e, Event::Access { pid: p, .. } if *p == pid))
                .count() as u64;
            assert_eq!(sim.proc_stats(pid).accesses, accesses);
        }
        assert_eq!(sim.totals().rmrs, sim.history().total_rmrs());
    }
}

/// Cloned simulators evolve independently, and the clone replays to the
/// same state as a fresh replay of its schedule.
#[test]
fn clone_is_a_true_fork() {
    let mut rng = XorShift64::new(0xF04C);
    for _case in 0..64 {
        let seed = rng.next_u64();
        let split = rng.range_u64(1, 200);
        let spec = workload(4, 3, CostModel::Dsm);
        let mut sim = Simulator::new(&spec);
        let mut sched = SeededRandom::new(seed);
        shm_sim::run(&mut sim, &mut sched, split);
        let snapshot = sim.clone();
        let snap_events = snapshot.history().len();
        // Advance the original; the snapshot must not move.
        shm_sim::run(&mut sim, &mut sched, 100);
        assert_eq!(snapshot.history().len(), snap_events);
        // A fresh replay of the snapshot's schedule equals the snapshot.
        let replayed = Simulator::replay(&spec, snapshot.schedule(), &BTreeSet::new());
        assert_eq!(replayed.history().to_vec(), snapshot.history().to_vec());
        assert_eq!(replayed.totals(), snapshot.totals());
    }
}

/// Basic sanity under every model: the message count is at least the RMR
/// count (each RMR generates at least one interconnect message).
#[test]
fn messages_at_least_rmrs() {
    for case in 0..64u64 {
        let seed = 77 * case + 13;
        let model = if case % 2 == 0 {
            CostModel::Dsm
        } else {
            CostModel::cc_default()
        };
        let spec = workload(4, 3, model);
        let mut sim = Simulator::new(&spec);
        run_to_completion(&mut sim, &mut SeededRandom::new(seed), 1_000_000);
        assert!(sim.totals().messages >= sim.totals().rmrs);
    }
}
