//! Bounded model-checking-lite: every lock, many seeds, both models —
//! mutual exclusion must hold and every run must complete (no deadlock or
//! lost wakeup). This scan is what caught the classic per-level spin-flag
//! bug in the tournament lock during development.

use shm_mutex::{
    run_lock_workload, AndersonLock, LockWorkloadConfig, McsLock, MutexAlgorithm, TasLock,
    TournamentLock, TtasLock,
};
use shm_sim::CostModel;

fn scan(algo: &dyn MutexAlgorithm, n: usize, cycles: u64, seeds: u64) {
    for model in [CostModel::Dsm, CostModel::cc_default()] {
        for seed in 0..seeds {
            let r = run_lock_workload(
                algo,
                &LockWorkloadConfig {
                    n,
                    cycles,
                    seed,
                    model,
                },
            );
            assert_eq!(
                r.violations,
                Vec::new(),
                "{} n={n} cycles={cycles} {model:?} seed {seed}: mutual exclusion violated",
                algo.name()
            );
            assert!(
                r.completed,
                "{} n={n} cycles={cycles} {model:?} seed {seed}: stalled (deadlock/lost wakeup)",
                algo.name()
            );
            assert_eq!(
                r.passages,
                n as u64 * cycles,
                "{} lost passages",
                algo.name()
            );
        }
    }
}

#[test]
fn tas_family_small_populations() {
    scan(&TasLock, 3, 2, 30);
    scan(&TtasLock, 3, 2, 30);
}

#[test]
fn anderson_small_populations() {
    scan(&AndersonLock, 3, 3, 30);
    scan(&AndersonLock, 2, 6, 30); // heavy wraparound
}

#[test]
fn mcs_small_populations() {
    scan(&McsLock, 3, 2, 40);
    scan(&McsLock, 2, 4, 40);
}

#[test]
fn tournament_small_populations() {
    // The duel (n = 2) exercises a single node; n = 3 adds asymmetric
    // paths; n = 5 gives a three-level tree with an idle subtree.
    scan(&TournamentLock, 2, 3, 60);
    scan(&TournamentLock, 3, 2, 60);
    scan(&TournamentLock, 5, 2, 40);
}

#[test]
fn all_locks_mid_population() {
    let locks: Vec<Box<dyn MutexAlgorithm>> = vec![
        Box::new(TasLock),
        Box::new(TtasLock),
        Box::new(AndersonLock),
        Box::new(McsLock),
        Box::new(TournamentLock),
    ];
    for lock in &locks {
        scan(lock.as_ref(), 7, 2, 10);
    }
}
