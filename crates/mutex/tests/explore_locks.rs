//! Bounded model checking of the mutex substrate: drive the lock workload
//! spec over all schedules within a CHESS-style preemption/depth bound and
//! check mutual exclusion on every reached state.
//!
//! Locks spin, and the explorer's projection-fingerprint dedup merges
//! interleavings, not loops — so lock exploration is always *bounded*
//! verification: a clean verdict means no overlap within the bound.

use shm_explore::{explore, Bounds, FnOracle, Oracle as _};
use shm_mutex::{kinds, workload_spec, LockWorkloadConfig, MutexAlgorithm};
use shm_sim::{CostModel, MemLayout, ProcId, Simulator};
use std::sync::Arc;

fn cfg(n: usize) -> LockWorkloadConfig {
    LockWorkloadConfig {
        n,
        cycles: 1,
        // The seed only feeds run_lock_workload's random scheduler; the
        // explorer enumerates schedules instead of sampling one.
        seed: 0,
        model: CostModel::Dsm,
    }
}

/// Mutual exclusion as a *state* predicate — "two critical sections are open
/// right now" — rather than the harness's completed-span sweep. Two spans
/// overlap iff both are pending at some state, so every violating execution
/// passes through a flagged state; and because the predicate is a function
/// of the current state alone, it needs no [`shm_explore::Oracle`] dedup
/// context.
fn mutex_oracle() -> FnOracle {
    FnOracle::new("mutual-exclusion", |sim: &Simulator| {
        let open: Vec<ProcId> = sim
            .history()
            .calls()
            .iter()
            .filter(|c| c.kind == kinds::CRITICAL && c.returned_at.is_none())
            .map(|c| c.pid)
            .collect();
        if open.len() > 1 {
            Err(format!("critical sections open simultaneously: {open:?}"))
        } else {
            Ok(())
        }
    })
}

fn lock_bounds() -> Bounds {
    // Depth 60 covers both passages plus generous spinning; 3 preemptions
    // are enough to interleave two 2-process passages every way that
    // matters for span overlap.
    Bounds::bounded(60, Some(3))
}

#[test]
fn tas_and_mcs_exclude_within_the_preemption_bound() {
    let algos: Vec<Box<dyn MutexAlgorithm>> =
        vec![Box::new(shm_mutex::TasLock), Box::new(shm_mutex::McsLock)];
    let oracle = mutex_oracle();
    for algo in &algos {
        let spec = workload_spec(algo.as_ref(), &cfg(2));
        let report = explore(&spec, &[&oracle], None, &lock_bounds());
        assert_eq!(
            report.violations_found,
            0,
            "{}: {:?}",
            algo.name(),
            report.violations
        );
        assert!(
            report.terminals > 0,
            "{}: some schedule must complete both passages within the bound",
            algo.name()
        );
    }
}

#[test]
fn broken_lock_is_caught_by_exploration() {
    // A "lock" that admits everyone immediately: exploration must find an
    // overlapping pair of critical sections within a small bound.
    struct NoLock;
    struct NoLockInst;
    impl MutexAlgorithm for NoLock {
        fn name(&self) -> &'static str {
            "nolock"
        }
        fn instantiate(&self, _l: &mut MemLayout, _n: usize) -> Arc<dyn shm_mutex::MutexInstance> {
            Arc::new(NoLockInst)
        }
    }
    impl shm_mutex::MutexInstance for NoLockInst {
        fn acquire_call(&self, _pid: ProcId) -> Box<dyn shm_sim::ProcedureCall> {
            Box::new(shm_sim::ReturnConst(0))
        }
        fn release_call(&self, _pid: ProcId) -> Box<dyn shm_sim::ProcedureCall> {
            Box::new(shm_sim::ReturnConst(0))
        }
    }
    let spec = workload_spec(&NoLock, &cfg(2));
    let report = explore(&spec, &[&mutex_oracle()], None, &lock_bounds());
    assert!(report.violations_found > 0, "{report:?}");
    let v = &report.violations[0];
    assert_eq!(v.oracle, "mutual-exclusion");
    // The recorded schedule replays to the same violation (it ends at the
    // first both-open state, so re-judge with the oracle rather than the
    // completed-span sweep).
    let replayed = shm_explore::replay(&spec, &v.schedule);
    assert!(mutex_oracle().check(&replayed).is_err());
}
