//! Yang–Anderson tournament lock: Θ(log N) RMRs from reads and writes.
//!
//! Yang and Anderson \[30\] arrange N processes at the leaves of a binary
//! arbitration tree; each internal node runs a 2-process mutual exclusion
//! protocol in which every wait spins on the waiting process's **own** spin
//! variable `P[p]` — local in the DSM model, cached in the CC model. A
//! passage climbs ⌈log₂ N⌉ nodes, each costing O(1) RMRs: the Θ(log N)
//! read/write tight bound of §3, identical in both models.
//!
//! Per-node protocol (process `p` arriving on side `i` at tree level `ℓ`):
//!
//! ```text
//! ENTRY:  C[i] := p;  T := p;  P[p][ℓ] := 0
//!         rival := C[1−i]
//!         if rival ≠ NIL and T = p:
//!             if P[rival][ℓ] = 0:  P[rival][ℓ] := 1
//!             await P[p][ℓ] ≥ 1                 // spin on own variable
//!             if T = p:  await P[p][ℓ] = 2      // spin on own variable
//! EXIT:   C[i] := NIL
//!         rival := T
//!         if rival ≠ p:  P[rival][ℓ] := 2
//! ```
//!
//! The spin variables are **per process per level**: with a single flag per
//! process, a wakeup at one level can clobber a handoff at another (a
//! lost-wakeup deadlock this crate's test suite reproduces if you collapse
//! the array — both sides of a node agree on ℓ, so targeting is unambiguous).

use crate::lock::{MutexAlgorithm, MutexInstance};
use shm_sim::{AddrRange, MemLayout, Op, ProcId, ProcedureCall, Step, Word, NIL};
use std::sync::Arc;

/// The Yang–Anderson arbitration-tree lock.
#[derive(Clone, Copy, Debug, Default)]
pub struct TournamentLock;

#[derive(Clone, Debug)]
struct Inst {
    /// `c0[v]`, `c1[v]`: announcement registers of node `v` (heap-indexed,
    /// root = 1; index 0 unused).
    c0: AddrRange,
    c1: AddrRange,
    /// `t[v]`: tie-breaker register of node `v`.
    t: AddrRange,
    /// `p_flag[ℓ]` is a per-process array for level `ℓ`; cell `p` is the
    /// spin variable of process `p` at that level, local to `p`.
    p_flag: Vec<AddrRange>,
    /// Number of leaf slots (a power of two ≥ n).
    leaves: usize,
}

impl Inst {
    /// The (node, side) path from process `pid`'s leaf up to the root.
    fn path(&self, pid: ProcId) -> Vec<(usize, usize)> {
        let mut x = self.leaves + pid.index();
        let mut out = Vec::new();
        while x > 1 {
            out.push((x / 2, x & 1));
            x /= 2;
        }
        out
    }
}

impl MutexAlgorithm for TournamentLock {
    fn name(&self) -> &'static str {
        "tournament"
    }
    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn MutexInstance> {
        let leaves = n.max(2).next_power_of_two();
        let nodes = leaves; // internal nodes are 1..leaves
        let levels = leaves.ilog2() as usize;
        Arc::new(Inst {
            c0: layout.alloc_global_array(nodes, NIL),
            c1: layout.alloc_global_array(nodes, NIL),
            t: layout.alloc_global_array(nodes, NIL),
            p_flag: (0..levels)
                .map(|_| layout.alloc_per_process_array(n, 0))
                .collect(),
            leaves,
        })
    }
}

impl MutexInstance for Inst {
    fn acquire_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        let path = self.path(pid);
        Box::new(Acquire {
            inst: self.clone(),
            me: pid,
            path,
            level: 0,
            line: Line::WriteC,
            rival: NIL,
        })
    }
    fn release_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        let mut path = self.path(pid);
        path.reverse(); // exit root-to-leaf
        Box::new(Release {
            inst: self.clone(),
            me: pid,
            path,
            level: 0,
            line: ExitLine::ClearC,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Line {
    WriteC,
    WriteT,
    ResetP,
    ReadRival,
    ReadT1,
    Decide1,
    MaybeWake,
    Await1,
    ReadT2,
    Await2,
}

#[derive(Clone, Debug)]
struct Acquire {
    inst: Inst,
    me: ProcId,
    path: Vec<(usize, usize)>,
    level: usize,
    line: Line,
    rival: Word,
}

impl Acquire {
    fn c_side(&self, node: usize, side: usize) -> shm_sim::Addr {
        if side == 0 {
            self.inst.c0.at(node)
        } else {
            self.inst.c1.at(node)
        }
    }

    fn next_level(&mut self) -> Step {
        self.level += 1;
        self.line = Line::WriteC;
        if self.level == self.path.len() {
            Step::Return(0)
        } else {
            let (node, side) = self.path[self.level];
            self.line = Line::WriteT;
            Step::Op(Op::Write(self.c_side(node, side), self.me.to_word()))
        }
    }
}

impl ProcedureCall for Acquire {
    fn step(&mut self, last: Option<Word>) -> Step {
        if self.path.is_empty() {
            return Step::Return(0);
        }
        let (node, side) = self.path[self.level];
        let my_flag = self.inst.p_flag[self.level].at(self.me.index());
        match self.line {
            Line::WriteC => {
                self.line = Line::WriteT;
                Step::Op(Op::Write(self.c_side(node, side), self.me.to_word()))
            }
            Line::WriteT => {
                self.line = Line::ResetP;
                Step::Op(Op::Write(self.inst.t.at(node), self.me.to_word()))
            }
            Line::ResetP => {
                self.line = Line::ReadRival;
                Step::Op(Op::Write(my_flag, 0))
            }
            Line::ReadRival => {
                self.line = Line::ReadT1;
                Step::Op(Op::Read(self.c_side(node, 1 - side)))
            }
            Line::ReadT1 => {
                self.rival = last.expect("rival value");
                self.line = Line::Decide1;
                Step::Op(Op::Read(self.inst.t.at(node)))
            }
            Line::Decide1 => {
                let t = last.expect("T value");
                if self.rival != NIL && t == self.me.to_word() {
                    self.line = Line::MaybeWake;
                    let rival = ProcId::from_word(self.rival).expect("valid rival");
                    Step::Op(Op::Read(self.inst.p_flag[self.level].at(rival.index())))
                } else {
                    self.next_level()
                }
            }
            Line::MaybeWake => {
                let rival_flag = last.expect("rival P value");
                self.line = Line::Await1;
                if rival_flag == 0 {
                    let rival = ProcId::from_word(self.rival).expect("valid rival");
                    Step::Op(Op::Write(self.inst.p_flag[self.level].at(rival.index()), 1))
                } else {
                    Step::Op(Op::Read(my_flag))
                }
            }
            Line::Await1 => {
                // `last` is either the wake write's result or our flag read.
                // Distinguish by re-reading until our flag is ≥ 1; the first
                // entry into this state after the wake write must issue a
                // fresh read.
                match last {
                    Some(v) if v >= 1 && self.reading_own_flag_previously() => {
                        self.line = Line::ReadT2;
                        Step::Op(Op::Read(self.inst.t.at(node)))
                    }
                    _ => {
                        self.mark_reading_own_flag();
                        Step::Op(Op::Read(my_flag))
                    }
                }
            }
            Line::ReadT2 => {
                let t = last.expect("T value");
                if t == self.me.to_word() {
                    self.line = Line::Await2;
                    Step::Op(Op::Read(my_flag))
                } else {
                    self.next_level()
                }
            }
            Line::Await2 => {
                if last.expect("own P value") == 2 {
                    self.next_level()
                } else {
                    Step::Op(Op::Read(my_flag))
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

impl Acquire {
    // Await1 needs to know whether `last` came from reading our own flag or
    // from the wake write to the rival's flag. We track it with the rival
    // field sentinel: once we start spinning we set `rival` to NIL.
    fn reading_own_flag_previously(&self) -> bool {
        self.rival == NIL
    }
    fn mark_reading_own_flag(&mut self) {
        self.rival = NIL;
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ExitLine {
    ClearC,
    ReadT,
    Decide,
    AfterWake,
}

#[derive(Clone, Debug)]
struct Release {
    inst: Inst,
    me: ProcId,
    /// Path root-to-leaf.
    path: Vec<(usize, usize)>,
    level: usize,
    line: ExitLine,
}

impl Release {
    fn next_level(&mut self) -> Step {
        self.level += 1;
        self.line = ExitLine::ClearC;
        if self.level == self.path.len() {
            Step::Return(0)
        } else {
            self.emit_clear()
        }
    }
    fn emit_clear(&mut self) -> Step {
        let (node, side) = self.path[self.level];
        self.line = ExitLine::ReadT;
        let c = if side == 0 {
            self.inst.c0.at(node)
        } else {
            self.inst.c1.at(node)
        };
        Step::Op(Op::Write(c, NIL))
    }
}

impl ProcedureCall for Release {
    fn step(&mut self, last: Option<Word>) -> Step {
        if self.path.is_empty() {
            return Step::Return(0);
        }
        let (node, _side) = self.path[self.level];
        match self.line {
            ExitLine::ClearC => self.emit_clear(),
            ExitLine::ReadT => {
                self.line = ExitLine::Decide;
                Step::Op(Op::Read(self.inst.t.at(node)))
            }
            ExitLine::Decide => {
                let t = last.expect("T value");
                if t != self.me.to_word() && t != NIL {
                    self.line = ExitLine::AfterWake;
                    let rival = ProcId::from_word(t).expect("valid rival");
                    Step::Op(Op::Write(
                        self.inst.p_flag[self.path.len() - 1 - self.level].at(rival.index()),
                        2,
                    ))
                } else {
                    self.next_level()
                }
            }
            ExitLine::AfterWake => self.next_level(),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_lock_workload, LockWorkloadConfig};
    use shm_sim::CostModel;

    #[test]
    fn tournament_provides_mutual_exclusion_in_both_models() {
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            for seed in 0..40 {
                let r = run_lock_workload(
                    &TournamentLock,
                    &LockWorkloadConfig {
                        n: 6,
                        cycles: 3,
                        seed,
                        model,
                    },
                );
                assert_eq!(r.violations, Vec::new(), "{model:?} seed {seed}");
                assert!(r.completed, "{model:?} seed {seed}");
            }
        }
    }

    #[test]
    fn two_process_duel_many_schedules() {
        for seed in 0..150 {
            let r = run_lock_workload(
                &TournamentLock,
                &LockWorkloadConfig {
                    n: 2,
                    cycles: 4,
                    seed,
                    model: CostModel::Dsm,
                },
            );
            assert_eq!(r.violations, Vec::new(), "seed {seed}");
            assert!(r.completed, "seed {seed}");
        }
    }

    #[test]
    fn rmrs_scale_logarithmically() {
        let per_passage = |n: usize| {
            let r = run_lock_workload(
                &TournamentLock,
                &LockWorkloadConfig {
                    n,
                    cycles: 4,
                    seed: 11,
                    model: CostModel::Dsm,
                },
            );
            assert!(r.completed);
            assert_eq!(r.violations, Vec::new());
            r.rmrs_per_passage()
        };
        let small = per_passage(4); // 2 levels
        let large = per_passage(64); // 6 levels
        assert!(
            large < small * 5.0,
            "log growth, not linear: {small} -> {large}"
        );
        assert!(large > small, "more levels cost more");
    }

    #[test]
    fn solo_passage_climbs_quietly() {
        let r = run_lock_workload(
            &TournamentLock,
            &LockWorkloadConfig {
                n: 1,
                cycles: 3,
                seed: 0,
                model: CostModel::Dsm,
            },
        );
        assert!(r.completed);
        assert_eq!(r.violations, Vec::new());
    }
}
