//! The MCS queue lock (Mellor-Crummey & Scott \[28\]).
//!
//! Each process owns a queue node in its **own memory module** (a `next`
//! pointer and a `locked` flag), so waiting spins on local memory in *both*
//! the CC and DSM models: O(1) RMRs per passage with Fetch-And-Store and
//! CAS — the classical witness that, for mutual exclusion, the two models
//! agree (§3's context for the paper's separation, which needs a different
//! problem).
//!
//! Protocol (per passage by process `p`):
//!
//! ```text
//! acquire:  next[p] := NIL; locked[p] := 1
//!           pred := FAS(tail, p)
//!           if pred != NIL { next[pred] := p; await locked[p] == 0 }  // local spin
//! release:  if next[p] == NIL {
//!               if CAS(tail, p, NIL) succeeds { return }      // no successor
//!               await next[p] != NIL                          // local spin
//!           }
//!           locked[next[p]] := 0
//! ```

use crate::lock::{MutexAlgorithm, MutexInstance};
use shm_sim::{Addr, AddrRange, MemLayout, Op, ProcId, ProcedureCall, Step, Word, NIL};
use std::sync::Arc;

/// The MCS queue lock.
#[derive(Clone, Copy, Debug, Default)]
pub struct McsLock;

#[derive(Clone, Debug)]
struct Inst {
    tail: Addr,
    /// `next[p]`: successor pointer, local to `p`.
    next: AddrRange,
    /// `locked[p]`: spin flag, local to `p` (1 = wait, 0 = go).
    locked: AddrRange,
}

impl MutexAlgorithm for McsLock {
    fn name(&self) -> &'static str {
        "mcs"
    }
    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn MutexInstance> {
        Arc::new(Inst {
            tail: layout.alloc_global(NIL),
            next: layout.alloc_per_process_array(n, NIL),
            locked: layout.alloc_per_process_array(n, 0),
        })
    }
}

impl MutexInstance for Inst {
    fn acquire_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Acquire {
            inst: self.clone(),
            me: pid,
            state: AcqState::InitNext,
            pred: 0,
        })
    }
    fn release_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Release {
            inst: self.clone(),
            me: pid,
            state: RelState::ReadNext,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AcqState {
    InitNext,
    InitLocked,
    Swap,
    CheckPred,
    LinkPred,
    SpinDecide,
}

#[derive(Clone, Debug)]
struct Acquire {
    inst: Inst,
    me: ProcId,
    state: AcqState,
    pred: Word,
}

impl ProcedureCall for Acquire {
    fn step(&mut self, last: Option<Word>) -> Step {
        let me = self.me.index();
        match self.state {
            AcqState::InitNext => {
                self.state = AcqState::InitLocked;
                Step::Op(Op::Write(self.inst.next.at(me), NIL))
            }
            AcqState::InitLocked => {
                self.state = AcqState::Swap;
                Step::Op(Op::Write(self.inst.locked.at(me), 1))
            }
            AcqState::Swap => {
                self.state = AcqState::CheckPred;
                Step::Op(Op::Fas(self.inst.tail, self.me.to_word()))
            }
            AcqState::CheckPred => {
                self.pred = last.expect("FAS result");
                if self.pred == NIL {
                    Step::Return(0)
                } else {
                    self.state = AcqState::LinkPred;
                    let pred = ProcId::from_word(self.pred).expect("valid pred");
                    Step::Op(Op::Write(
                        self.inst.next.at(pred.index()),
                        self.me.to_word(),
                    ))
                }
            }
            AcqState::LinkPred => {
                self.state = AcqState::SpinDecide;
                Step::Op(Op::Read(self.inst.locked.at(me)))
            }
            AcqState::SpinDecide => {
                if last.expect("locked value") == 0 {
                    Step::Return(0)
                } else {
                    self.state = AcqState::SpinDecide;
                    Step::Op(Op::Read(self.inst.locked.at(me)))
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RelState {
    ReadNext,
    DecideNext,
    TryCas,
    AwaitSuccessor,
    Done,
}

#[derive(Clone, Debug)]
struct Release {
    inst: Inst,
    me: ProcId,
    state: RelState,
}

impl ProcedureCall for Release {
    fn step(&mut self, last: Option<Word>) -> Step {
        let me = self.me.index();
        match self.state {
            RelState::ReadNext => {
                self.state = RelState::DecideNext;
                Step::Op(Op::Read(self.inst.next.at(me)))
            }
            RelState::DecideNext => {
                let next = last.expect("next value");
                if next == NIL {
                    self.state = RelState::TryCas;
                    Step::Op(Op::Cas(self.inst.tail, self.me.to_word(), NIL))
                } else {
                    self.state = RelState::Done;
                    let succ = ProcId::from_word(next).expect("valid successor");
                    Step::Op(Op::Write(self.inst.locked.at(succ.index()), 0))
                }
            }
            RelState::TryCas => {
                let old = last.expect("CAS result");
                if old == self.me.to_word() {
                    // CAS succeeded: no successor.
                    Step::Return(0)
                } else {
                    // Someone swapped in behind us; await the link.
                    self.state = RelState::AwaitSuccessor;
                    Step::Op(Op::Read(self.inst.next.at(me)))
                }
            }
            RelState::AwaitSuccessor => {
                let next = last.expect("next value");
                if next == NIL {
                    // Local spin until the successor links itself.
                    Step::Op(Op::Read(self.inst.next.at(me)))
                } else {
                    self.state = RelState::Done;
                    let succ = ProcId::from_word(next).expect("valid successor");
                    Step::Op(Op::Write(self.inst.locked.at(succ.index()), 0))
                }
            }
            RelState::Done => Step::Return(0),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_lock_workload, LockWorkloadConfig};
    use shm_sim::CostModel;

    #[test]
    fn mcs_provides_mutual_exclusion_in_both_models() {
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            for seed in 0..25 {
                let r = run_lock_workload(
                    &McsLock,
                    &LockWorkloadConfig {
                        n: 6,
                        cycles: 3,
                        seed,
                        model,
                    },
                );
                assert_eq!(r.violations, Vec::new(), "{model:?} seed {seed}");
                assert!(r.completed, "{model:?} seed {seed}");
            }
        }
    }

    #[test]
    fn mcs_is_constant_rmr_in_both_models() {
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            let r = run_lock_workload(
                &McsLock,
                &LockWorkloadConfig {
                    n: 8,
                    cycles: 5,
                    seed: 3,
                    model,
                },
            );
            assert!(r.completed);
            assert!(
                r.rmrs_per_passage() <= 10.0,
                "{model:?}: {} RMRs/passage",
                r.rmrs_per_passage()
            );
        }
    }

    #[test]
    fn handoff_race_no_successor_yet() {
        // p0 acquires; p1 swaps into the tail but is suspended before
        // linking; p0's release must CAS-fail and await the link.
        let mut layout = MemLayout::new();
        let inst = McsLock.instantiate(&mut layout, 2);
        let spec = shm_sim::SimSpec {
            layout,
            sources: vec![
                Box::new(shm_sim::Idle) as Box<dyn shm_sim::CallSource>,
                Box::new(shm_sim::Idle),
            ],
            model: CostModel::Dsm,
        };
        let mut sim = shm_sim::Simulator::new(&spec);
        let acquire = |sim: &mut shm_sim::Simulator, p: u32| {
            sim.inject_call(
                ProcId(p),
                shm_sim::Call::new(
                    crate::lock::kinds::ACQUIRE,
                    "acquire",
                    inst.acquire_call(ProcId(p)),
                ),
            );
        };
        acquire(&mut sim, 0);
        while sim.has_pending_call(ProcId(0)) {
            let _ = sim.step(ProcId(0));
        }
        // p1: init next, init locked, FAS — freeze before linking next[p0].
        acquire(&mut sim, 1);
        for _ in 0..3 {
            let _ = sim.step(ProcId(1));
        }
        // p0 releases: must spin on next[p0] until p1 links.
        sim.inject_call(
            ProcId(0),
            shm_sim::Call::new(
                crate::lock::kinds::RELEASE,
                "release",
                inst.release_call(ProcId(0)),
            ),
        );
        for _ in 0..20 {
            let _ = sim.step(ProcId(0));
        }
        assert!(
            sim.has_pending_call(ProcId(0)),
            "release is awaiting the successor link"
        );
        // Let p1 link itself (one step), after which p0's release can hand
        // off, unblocking p1's spin.
        let _ = sim.step(ProcId(1));
        while sim.has_pending_call(ProcId(0)) {
            let _ = sim.step(ProcId(0));
        }
        while sim.has_pending_call(ProcId(1)) {
            let _ = sim.step(ProcId(1));
        }
        // p1 now holds the lock.
        assert_eq!(sim.memory().peek(shm_sim::Addr(0)), 1, "tail points at p1");
    }
}
