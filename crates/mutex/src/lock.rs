//! The mutual-exclusion interface.

use shm_sim::{MemLayout, ProcId, ProcedureCall};
use std::sync::Arc;

/// Call-kind constants for lock procedures.
pub mod kinds {
    use shm_sim::CallKind;
    /// An `acquire()` call; its return marks critical-section entry.
    pub const ACQUIRE: CallKind = CallKind(200);
    /// A `release()` call; its invocation marks critical-section exit.
    pub const RELEASE: CallKind = CallKind(201);
    /// The critical section itself (used by the workload harness).
    pub const CRITICAL: CallKind = CallKind(202);
}

/// A mutual-exclusion algorithm: a recipe for laying out shared variables
/// and producing per-process acquire/release calls.
pub trait MutexAlgorithm: Send + Sync {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// Allocates the lock's shared variables for `n` processes.
    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn MutexInstance>;
}

/// A lock bound to concrete addresses.
///
/// Contract: a process alternates `acquire` and `release` calls, starting
/// with `acquire`; it may not call `release` without holding the lock.
pub trait MutexInstance: Send + Sync {
    /// One `acquire()` call by `pid`; returns (value ignored) only when the
    /// lock is held.
    fn acquire_call(&self, pid: ProcId) -> Box<dyn ProcedureCall>;

    /// One `release()` call by `pid`.
    fn release_call(&self, pid: ProcId) -> Box<dyn ProcedureCall>;
}
