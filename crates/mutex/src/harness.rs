//! Lock workload harness: contended acquire/CS/release cycles with
//! mutual-exclusion checking and RMR measurement.

use crate::lock::{kinds, MutexAlgorithm};
use shm_sim::{
    run_to_completion, CallSource, CostModel, MemLayout, Op, OpSequence, ProcId, Script,
    ScriptedCall, SeededRandom, SimSpec, Simulator, Totals,
};
use std::sync::Arc;

/// Workload parameters.
#[derive(Clone, Copy, Debug)]
pub struct LockWorkloadConfig {
    /// Number of contending processes.
    pub n: usize,
    /// Passages (acquire/CS/release cycles) per process.
    pub cycles: u64,
    /// Seed for the random scheduler.
    pub seed: u64,
    /// Cost model.
    pub model: CostModel,
}

/// A mutual-exclusion violation: two overlapping critical sections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutexViolation {
    /// First process and its critical-section event range.
    pub a: (ProcId, usize, usize),
    /// Second process and its critical-section event range.
    pub b: (ProcId, usize, usize),
}

/// Result of one workload run.
#[derive(Clone, Debug)]
pub struct LockWorkloadResult {
    /// Whether all processes completed all cycles within the step budget.
    pub completed: bool,
    /// Overlapping critical sections found (must be empty).
    pub violations: Vec<MutexViolation>,
    /// Aggregate costs.
    pub totals: Totals,
    /// Completed passages (critical sections executed).
    pub passages: u64,
    /// The finished simulator, for deeper inspection.
    pub sim: Simulator,
}

impl LockWorkloadResult {
    /// Average RMRs per passage — the quantity the classical lock papers
    /// report and §3's bounds constrain.
    #[must_use]
    pub fn rmrs_per_passage(&self) -> f64 {
        if self.passages == 0 {
            0.0
        } else {
            self.totals.rmrs as f64 / self.passages as f64
        }
    }
}

/// Finds overlapping critical sections in a history.
///
/// A critical section is the span of a [`kinds::CRITICAL`] call (invoke to
/// return). Spans of different processes must be disjoint.
#[must_use]
pub fn check_mutual_exclusion(history: &shm_sim::History) -> Vec<MutexViolation> {
    let mut spans: Vec<(ProcId, usize, usize)> = history
        .calls()
        .iter()
        .filter(|c| c.kind == kinds::CRITICAL && c.is_complete())
        .map(|c| (c.pid, c.invoked_at, c.returned_at.expect("complete")))
        .collect();
    spans.sort_by_key(|&(_, start, _)| start);
    let mut violations = Vec::new();
    // Sweep: remember the span reaching furthest right; any later span
    // starting before that end overlaps it.
    let mut furthest: Option<(ProcId, usize, usize)> = None;
    for &(pid, start, end) in &spans {
        if let Some((fp, fs, fe)) = furthest {
            if start < fe && pid != fp {
                violations.push(MutexViolation {
                    a: (fp, fs, fe),
                    b: (pid, start, end),
                });
            }
        }
        if furthest.is_none_or(|(_, _, fe)| end > fe) {
            furthest = Some((pid, start, end));
        }
    }
    violations
}

/// Builds the workload's executable spec without running it: `n` processes
/// each scripted with `cycles` passages of acquire → critical section →
/// release. Shared by [`run_lock_workload`] and the schedule-space explorer
/// (which drives the same spec over *all* interleavings instead of one
/// seeded one).
#[must_use]
pub fn workload_spec(algo: &dyn MutexAlgorithm, cfg: &LockWorkloadConfig) -> SimSpec {
    let mut layout = MemLayout::new();
    let inst = algo.instantiate(&mut layout, cfg.n);
    let scratch = layout.alloc_global(0);
    let sources: Vec<Box<dyn CallSource>> = (0..cfg.n)
        .map(|i| {
            let pid = ProcId(i as u32);
            let mut calls = Vec::with_capacity(3 * cfg.cycles as usize);
            for _ in 0..cfg.cycles {
                let inst_a = Arc::clone(&inst);
                calls.push(ScriptedCall::new(
                    kinds::ACQUIRE,
                    "acquire",
                    Arc::new(move || inst_a.acquire_call(pid)),
                ));
                calls.push(ScriptedCall::new(
                    kinds::CRITICAL,
                    "critical",
                    Arc::new(move || {
                        Box::new(OpSequence::new(vec![
                            Op::Read(scratch),
                            Op::Write(scratch, pid.to_word()),
                        ])) as Box<dyn shm_sim::ProcedureCall>
                    }),
                ));
                let inst_r = Arc::clone(&inst);
                calls.push(ScriptedCall::new(
                    kinds::RELEASE,
                    "release",
                    Arc::new(move || inst_r.release_call(pid)),
                ));
            }
            Box::new(Script::new(calls)) as Box<dyn CallSource>
        })
        .collect();
    SimSpec {
        layout,
        sources,
        model: cfg.model,
    }
}

/// Builds and runs the workload: `n` processes each perform `cycles`
/// passages of acquire → critical section → release under a seeded random
/// scheduler.
pub fn run_lock_workload(
    algo: &dyn MutexAlgorithm,
    cfg: &LockWorkloadConfig,
) -> LockWorkloadResult {
    let spec = workload_spec(algo, cfg);
    let mut sim = Simulator::new(&spec);
    let budget = 4_000_000 + cfg.n as u64 * cfg.cycles * 50_000;
    let completed = run_to_completion(&mut sim, &mut SeededRandom::new(cfg.seed), budget);
    let violations = check_mutual_exclusion(sim.history());
    let passages = sim
        .history()
        .calls()
        .iter()
        .filter(|c| c.kind == kinds::CRITICAL && c.is_complete())
        .count() as u64;
    LockWorkloadResult {
        completed,
        violations,
        totals: sim.totals(),
        passages,
        sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tas::TasLock;

    #[test]
    fn workload_counts_passages() {
        let r = run_lock_workload(
            &TasLock,
            &LockWorkloadConfig {
                n: 3,
                cycles: 4,
                seed: 0,
                model: CostModel::Dsm,
            },
        );
        assert!(r.completed);
        assert_eq!(r.passages, 12);
        assert!(r.rmrs_per_passage() > 0.0);
    }

    #[test]
    fn checker_flags_overlapping_critical_sections() {
        // A deliberately broken "lock" that lets everyone in immediately.
        struct NoLock;
        struct NoLockInst;
        impl MutexAlgorithm for NoLock {
            fn name(&self) -> &'static str {
                "nolock"
            }
            fn instantiate(
                &self,
                _l: &mut MemLayout,
                _n: usize,
            ) -> Arc<dyn crate::lock::MutexInstance> {
                Arc::new(NoLockInst)
            }
        }
        impl crate::lock::MutexInstance for NoLockInst {
            fn acquire_call(&self, _pid: ProcId) -> Box<dyn shm_sim::ProcedureCall> {
                Box::new(shm_sim::ReturnConst(0))
            }
            fn release_call(&self, _pid: ProcId) -> Box<dyn shm_sim::ProcedureCall> {
                Box::new(shm_sim::ReturnConst(0))
            }
        }
        let mut found = false;
        for seed in 0..20 {
            let r = run_lock_workload(
                &NoLock,
                &LockWorkloadConfig {
                    n: 4,
                    cycles: 3,
                    seed,
                    model: CostModel::Dsm,
                },
            );
            if !r.violations.is_empty() {
                found = true;
                break;
            }
        }
        assert!(
            found,
            "the broken lock must produce overlapping critical sections"
        );
    }

    #[test]
    fn checker_ignores_same_process_adjacent_sections() {
        let r = run_lock_workload(
            &TasLock,
            &LockWorkloadConfig {
                n: 1,
                cycles: 5,
                seed: 0,
                model: CostModel::Dsm,
            },
        );
        assert_eq!(r.violations, Vec::new());
    }
}
