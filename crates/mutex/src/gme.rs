//! Group mutual exclusion (GME) — the problem behind the first CC/DSM
//! separation.
//!
//! §3 of the paper: Hadzilacos and Danek showed that *two-session N-process
//! GME* costs Θ(N) RMRs in the DSM model but only O(log N) in the CC model
//! — the separation that motivated Golab to look for one that does not
//! lean on wait-freedom. GME generalizes mutual exclusion: requests carry a
//! **session ID**, and two processes may occupy the critical section
//! concurrently iff they requested the same session.
//!
//! We implement the problem (calls, safety checker, workload harness) and a
//! mutex-backed algorithm in the style of Keane and Moir \[20\]: a lock
//! protects a `(session, count)` pair; entering a conflicting session
//! releases and retries. The algorithm inherits the lock's RMR cost per
//! attempt (Θ(log N) with the tournament lock, from reads/writes only)
//! plus retries under conflicts — a *terminating* solution, not a wait-free
//! one. The Hadzilacos–Danek bounds concern wait-free-flavoured GME
//! specifications; reproducing their Ω(N) DSM lower bound is out of scope
//! (it needs their specific doorway structure), but the problem, checker,
//! and a working algorithm give the §3 context an executable home.

use crate::lock::{MutexAlgorithm, MutexInstance};
use shm_sim::{
    run_to_completion, Addr, CallSource, CostModel, History, MemLayout, Op, OpSequence, ProcId,
    ProcedureCall, Script, ScriptedCall, SeededRandom, SimSpec, Simulator, Step, Word, NIL,
};
use std::sync::Arc;

/// Call-kind constants for GME procedures.
pub mod kinds {
    use shm_sim::CallKind;
    /// An `enter(session)` call; returns the session on entry.
    pub const ENTER: CallKind = CallKind(210);
    /// The critical section (returns the session, for the checker).
    pub const CRITICAL: CallKind = CallKind(211);
    /// An `exit(session)` call.
    pub const EXIT: CallKind = CallKind(212);
}

/// A GME algorithm bound to shared memory.
pub trait GmeInstance: Send + Sync {
    /// One `enter(session)` call by `pid`; returns (with the session) only
    /// once the session is active.
    fn enter_call(&self, pid: ProcId, session: Word) -> Box<dyn ProcedureCall>;
    /// One `exit(session)` call by `pid`.
    fn exit_call(&self, pid: ProcId, session: Word) -> Box<dyn ProcedureCall>;
}

/// A GME algorithm: lays out shared variables for `n` processes.
pub trait GmeAlgorithm: Send + Sync {
    /// Short identifier for tables.
    fn name(&self) -> &'static str;
    /// Allocates shared state.
    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn GmeInstance>;
}

/// GME built over any mutual-exclusion lock: the lock protects a
/// `(session, count)` pair; conflicting entries release and retry.
#[derive(Clone, Copy, Debug, Default)]
pub struct MutexBackedGme<M> {
    /// The lock protecting the session state.
    pub lock: M,
}

impl<M: MutexAlgorithm> GmeAlgorithm for MutexBackedGme<M> {
    fn name(&self) -> &'static str {
        "mutex-backed-gme"
    }
    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn GmeInstance> {
        let lock = self.lock.instantiate(layout, n);
        let session = layout.alloc_global(NIL);
        let count = layout.alloc_global(0);
        layout.set_label(session, "SESSION");
        layout.set_label(count, "COUNT");
        Arc::new(Inst {
            lock,
            session,
            count,
        })
    }
}

struct Inst {
    lock: Arc<dyn MutexInstance>,
    session: Addr,
    count: Addr,
}

impl GmeInstance for Inst {
    fn enter_call(&self, pid: ProcId, session: Word) -> Box<dyn ProcedureCall> {
        Box::new(Enter {
            lock: Arc::clone(&self.lock),
            session_cell: self.session,
            count_cell: self.count,
            me: pid,
            want: session,
            state: GmeState::StartAcquire,
        })
    }
    fn exit_call(&self, pid: ProcId, _session: Word) -> Box<dyn ProcedureCall> {
        Box::new(Exit {
            lock: Arc::clone(&self.lock),
            session_cell: self.session,
            count_cell: self.count,
            me: pid,
            state: GmeState::StartAcquire,
        })
    }
}

/// Shared state-machine states for enter/exit (not all used by both).
enum GmeState {
    StartAcquire,
    Acquiring(Box<dyn ProcedureCall>),
    DecideSession,
    AfterClaim,
    IncCount,
    DecCount,
    AfterDec {
        cleared_needed: bool,
    },
    StartRelease {
        retry: bool,
    },
    Releasing {
        call: Box<dyn ProcedureCall>,
        retry: bool,
    },
}

impl Clone for GmeState {
    fn clone(&self) -> Self {
        match self {
            GmeState::StartAcquire => GmeState::StartAcquire,
            GmeState::Acquiring(c) => GmeState::Acquiring(c.clone_call()),
            GmeState::DecideSession => GmeState::DecideSession,
            GmeState::AfterClaim => GmeState::AfterClaim,
            GmeState::IncCount => GmeState::IncCount,
            GmeState::DecCount => GmeState::DecCount,
            GmeState::AfterDec { cleared_needed } => GmeState::AfterDec {
                cleared_needed: *cleared_needed,
            },
            GmeState::StartRelease { retry } => GmeState::StartRelease { retry: *retry },
            GmeState::Releasing { call, retry } => GmeState::Releasing {
                call: call.clone_call(),
                retry: *retry,
            },
        }
    }
}

struct Enter {
    lock: Arc<dyn MutexInstance>,
    session_cell: Addr,
    count_cell: Addr,
    me: ProcId,
    want: Word,
    state: GmeState,
}

impl ProcedureCall for Enter {
    fn step(&mut self, last: Option<Word>) -> Step {
        loop {
            match &mut self.state {
                GmeState::StartAcquire => {
                    let mut call = self.lock.acquire_call(self.me);
                    match call.step(None) {
                        Step::Op(op) => {
                            self.state = GmeState::Acquiring(call);
                            return Step::Op(op);
                        }
                        Step::Return(_) => {
                            self.state = GmeState::DecideSession;
                            return Step::Op(Op::Read(self.session_cell));
                        }
                    }
                }
                GmeState::Acquiring(call) => match call.step(last) {
                    Step::Op(op) => return Step::Op(op),
                    Step::Return(_) => {
                        self.state = GmeState::DecideSession;
                        return Step::Op(Op::Read(self.session_cell));
                    }
                },
                GmeState::DecideSession => {
                    let current = last.expect("session value");
                    if current == NIL {
                        self.state = GmeState::AfterClaim;
                        return Step::Op(Op::Write(self.session_cell, self.want));
                    } else if current == self.want {
                        self.state = GmeState::IncCount;
                        return Step::Op(Op::Read(self.count_cell));
                    }
                    // Conflicting session: release the lock and retry.
                    self.state = GmeState::StartRelease { retry: true };
                }
                GmeState::AfterClaim => {
                    self.state = GmeState::IncCount;
                    return Step::Op(Op::Read(self.count_cell));
                }
                GmeState::IncCount => {
                    let c = last.expect("count value");
                    self.state = GmeState::StartRelease { retry: false };
                    return Step::Op(Op::Write(self.count_cell, c + 1));
                }
                GmeState::StartRelease { retry } => {
                    let retry = *retry;
                    let mut call = self.lock.release_call(self.me);
                    match call.step(None) {
                        Step::Op(op) => {
                            self.state = GmeState::Releasing { call, retry };
                            return Step::Op(op);
                        }
                        Step::Return(_) => {
                            if retry {
                                self.state = GmeState::StartAcquire;
                            } else {
                                return Step::Return(self.want);
                            }
                        }
                    }
                }
                GmeState::Releasing { call, retry } => match call.step(last) {
                    Step::Op(op) => return Step::Op(op),
                    Step::Return(_) => {
                        if *retry {
                            self.state = GmeState::StartAcquire;
                        } else {
                            return Step::Return(self.want);
                        }
                    }
                },
                GmeState::DecCount | GmeState::AfterDec { .. } => {
                    unreachable!("exit-only states")
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(Enter {
            lock: Arc::clone(&self.lock),
            session_cell: self.session_cell,
            count_cell: self.count_cell,
            me: self.me,
            want: self.want,
            state: self.state.clone(),
        })
    }
}

struct Exit {
    lock: Arc<dyn MutexInstance>,
    session_cell: Addr,
    count_cell: Addr,
    me: ProcId,
    state: GmeState,
}

impl ProcedureCall for Exit {
    fn step(&mut self, last: Option<Word>) -> Step {
        loop {
            match &mut self.state {
                GmeState::StartAcquire => {
                    let mut call = self.lock.acquire_call(self.me);
                    match call.step(None) {
                        Step::Op(op) => {
                            self.state = GmeState::Acquiring(call);
                            return Step::Op(op);
                        }
                        Step::Return(_) => {
                            self.state = GmeState::DecCount;
                            return Step::Op(Op::Read(self.count_cell));
                        }
                    }
                }
                GmeState::Acquiring(call) => match call.step(last) {
                    Step::Op(op) => return Step::Op(op),
                    Step::Return(_) => {
                        self.state = GmeState::DecCount;
                        return Step::Op(Op::Read(self.count_cell));
                    }
                },
                GmeState::DecCount => {
                    let c = last.expect("count value");
                    assert!(c > 0, "exit without matching enter");
                    self.state = GmeState::AfterDec {
                        cleared_needed: c == 1,
                    };
                    return Step::Op(Op::Write(self.count_cell, c - 1));
                }
                GmeState::AfterDec { cleared_needed } => {
                    if *cleared_needed {
                        self.state = GmeState::StartRelease { retry: false };
                        return Step::Op(Op::Write(self.session_cell, NIL));
                    }
                    self.state = GmeState::StartRelease { retry: false };
                }
                GmeState::StartRelease { .. } => {
                    let mut call = self.lock.release_call(self.me);
                    match call.step(None) {
                        Step::Op(op) => {
                            self.state = GmeState::Releasing { call, retry: false };
                            return Step::Op(op);
                        }
                        Step::Return(_) => return Step::Return(0),
                    }
                }
                GmeState::Releasing { call, .. } => match call.step(last) {
                    Step::Op(op) => return Step::Op(op),
                    Step::Return(_) => return Step::Return(0),
                },
                GmeState::DecideSession | GmeState::AfterClaim | GmeState::IncCount => {
                    unreachable!("enter-only states")
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(Exit {
            lock: Arc::clone(&self.lock),
            session_cell: self.session_cell,
            count_cell: self.count_cell,
            me: self.me,
            state: self.state.clone(),
        })
    }
}

/// A GME safety violation: two concurrent critical sections with different
/// sessions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GmeViolation {
    /// First process, its session, and its CS event range.
    pub a: (ProcId, Word, usize, usize),
    /// Second process, its session, and its CS start.
    pub b: (ProcId, Word, usize),
}

/// Checks GME safety: overlapping [`kinds::CRITICAL`] spans must carry the
/// same session (the span's return value).
#[must_use]
pub fn check_gme(history: &History) -> Vec<GmeViolation> {
    let mut spans: Vec<(ProcId, Word, usize, usize)> = history
        .calls()
        .iter()
        .filter(|c| c.kind == kinds::CRITICAL && c.is_complete())
        .map(|c| {
            (
                c.pid,
                c.return_value.expect("session"),
                c.invoked_at,
                c.returned_at.expect("complete"),
            )
        })
        .collect();
    spans.sort_by_key(|&(_, _, start, _)| start);
    let mut violations = Vec::new();
    // Sweep with the furthest-reaching span per session-disagreement check.
    for (i, &(pa, sa, _, ea)) in spans.iter().enumerate() {
        for &(pb, sb, start_b, _) in spans.iter().skip(i + 1) {
            if start_b >= ea {
                break;
            }
            if pb != pa && sb != sa {
                violations.push(GmeViolation {
                    a: (pa, sa, start_b, ea),
                    b: (pb, sb, start_b),
                });
            }
        }
    }
    violations
}

/// Workload configuration for [`run_gme_workload`].
#[derive(Clone, Debug)]
pub struct GmeWorkloadConfig {
    /// Session requested by each process (length = process count).
    pub sessions: Vec<Word>,
    /// Passages per process.
    pub cycles: u64,
    /// Scheduler seed.
    pub seed: u64,
    /// Cost model.
    pub model: CostModel,
}

/// Result of a GME workload run.
#[derive(Debug)]
pub struct GmeWorkloadResult {
    /// Whether everyone finished.
    pub completed: bool,
    /// Safety violations (must be empty).
    pub violations: Vec<GmeViolation>,
    /// The finished simulator.
    pub sim: Simulator,
}

/// Runs `cycles` enter/CS/exit passages per process with the given sessions.
pub fn run_gme_workload(algo: &dyn GmeAlgorithm, cfg: &GmeWorkloadConfig) -> GmeWorkloadResult {
    let n = cfg.sessions.len();
    let mut layout = MemLayout::new();
    let inst = algo.instantiate(&mut layout, n);
    let scratch = layout.alloc_global(0);
    let sources: Vec<Box<dyn CallSource>> = (0..n)
        .map(|i| {
            let pid = ProcId(i as u32);
            let session = cfg.sessions[i];
            let mut calls = Vec::new();
            for _ in 0..cfg.cycles {
                let inst_e = Arc::clone(&inst);
                calls.push(ScriptedCall::new(
                    kinds::ENTER,
                    "enter",
                    Arc::new(move || inst_e.enter_call(pid, session)),
                ));
                calls.push(ScriptedCall::new(
                    kinds::CRITICAL,
                    "critical",
                    Arc::new(move || {
                        // Touch shared state, then return the session so the
                        // checker can match concurrent occupants.
                        Box::new(SessionCritical {
                            inner: OpSequence::new(vec![
                                Op::Read(scratch),
                                Op::Write(scratch, session),
                            ]),
                            session,
                        }) as Box<dyn ProcedureCall>
                    }),
                ));
                let inst_x = Arc::clone(&inst);
                calls.push(ScriptedCall::new(
                    kinds::EXIT,
                    "exit",
                    Arc::new(move || inst_x.exit_call(pid, session)),
                ));
            }
            Box::new(Script::new(calls)) as Box<dyn CallSource>
        })
        .collect();
    let spec = SimSpec {
        layout,
        sources,
        model: cfg.model,
    };
    let mut sim = Simulator::new(&spec);
    let budget = 4_000_000 + n as u64 * cfg.cycles * 100_000;
    let completed = run_to_completion(&mut sim, &mut SeededRandom::new(cfg.seed), budget);
    let violations = check_gme(sim.history());
    GmeWorkloadResult {
        completed,
        violations,
        sim,
    }
}

/// A critical-section body that returns its session ID.
#[derive(Clone)]
struct SessionCritical {
    inner: OpSequence,
    session: Word,
}

impl ProcedureCall for SessionCritical {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.inner.step(last) {
            Step::Op(op) => Step::Op(op),
            Step::Return(_) => Step::Return(self.session),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{McsLock, TournamentLock};

    fn gme_over_tournament() -> MutexBackedGme<TournamentLock> {
        MutexBackedGme {
            lock: TournamentLock,
        }
    }

    #[test]
    fn two_sessions_safety_across_many_schedules() {
        let algo = gme_over_tournament();
        for seed in 0..40 {
            let cfg = GmeWorkloadConfig {
                sessions: vec![0, 0, 1, 1],
                cycles: 2,
                seed,
                model: CostModel::Dsm,
            };
            let r = run_gme_workload(&algo, &cfg);
            assert_eq!(r.violations, Vec::new(), "seed {seed}");
            assert!(r.completed, "seed {seed}");
        }
    }

    #[test]
    fn same_session_processes_can_share_the_floor() {
        // Two same-session processes: drive p0 into its CS and park it,
        // then p1 must be able to enter too.
        let algo = gme_over_tournament();
        let mut layout = MemLayout::new();
        let inst = algo.instantiate(&mut layout, 2);
        let spec = SimSpec {
            layout,
            sources: vec![
                Box::new(shm_sim::Idle) as Box<dyn CallSource>,
                Box::new(shm_sim::Idle),
            ],
            model: CostModel::Dsm,
        };
        let mut sim = Simulator::new(&spec);
        sim.inject_call(
            ProcId(0),
            shm_sim::Call::new(kinds::ENTER, "enter", inst.enter_call(ProcId(0), 7)),
        );
        while sim.has_pending_call(ProcId(0)) {
            let _ = sim.step(ProcId(0));
        }
        // p0 is inside. Now p1 enters the same session without p0 exiting.
        sim.inject_call(
            ProcId(1),
            shm_sim::Call::new(kinds::ENTER, "enter", inst.enter_call(ProcId(1), 7)),
        );
        let mut guard = 0;
        while sim.has_pending_call(ProcId(1)) {
            let _ = sim.step(ProcId(1));
            guard += 1;
            assert!(guard < 100_000, "same-session entry must not block");
        }
    }

    #[test]
    fn conflicting_session_blocks_until_exit() {
        let algo = gme_over_tournament();
        let mut layout = MemLayout::new();
        let inst = algo.instantiate(&mut layout, 2);
        let spec = SimSpec {
            layout,
            sources: vec![
                Box::new(shm_sim::Idle) as Box<dyn CallSource>,
                Box::new(shm_sim::Idle),
            ],
            model: CostModel::Dsm,
        };
        let mut sim = Simulator::new(&spec);
        sim.inject_call(
            ProcId(0),
            shm_sim::Call::new(kinds::ENTER, "enter", inst.enter_call(ProcId(0), 1)),
        );
        while sim.has_pending_call(ProcId(0)) {
            let _ = sim.step(ProcId(0));
        }
        // p1 wants session 2: it must spin (retry) while p0 is inside.
        sim.inject_call(
            ProcId(1),
            shm_sim::Call::new(kinds::ENTER, "enter", inst.enter_call(ProcId(1), 2)),
        );
        for _ in 0..5_000 {
            let _ = sim.step(ProcId(1));
        }
        assert!(
            sim.has_pending_call(ProcId(1)),
            "conflicting entry admitted concurrently"
        );
        // p0 exits; p1 gets in.
        sim.inject_call(
            ProcId(0),
            shm_sim::Call::new(kinds::EXIT, "exit", inst.exit_call(ProcId(0), 1)),
        );
        while sim.has_pending_call(ProcId(0)) {
            let _ = sim.step(ProcId(0));
        }
        let mut guard = 0;
        while sim.has_pending_call(ProcId(1)) {
            let _ = sim.step(ProcId(1));
            guard += 1;
            assert!(
                guard < 100_000,
                "entry must succeed after the conflicting exit"
            );
        }
    }

    #[test]
    fn checker_flags_cross_session_overlap() {
        // A broken "GME" that admits everyone: plain pass-through calls.
        struct NoGme;
        struct NoGmeInst;
        impl GmeAlgorithm for NoGme {
            fn name(&self) -> &'static str {
                "no-gme"
            }
            fn instantiate(&self, _l: &mut MemLayout, _n: usize) -> Arc<dyn GmeInstance> {
                Arc::new(NoGmeInst)
            }
        }
        impl GmeInstance for NoGmeInst {
            fn enter_call(&self, _pid: ProcId, session: Word) -> Box<dyn ProcedureCall> {
                Box::new(shm_sim::ReturnConst(session))
            }
            fn exit_call(&self, _pid: ProcId, _session: Word) -> Box<dyn ProcedureCall> {
                Box::new(shm_sim::ReturnConst(0))
            }
        }
        let mut found = false;
        for seed in 0..20 {
            let cfg = GmeWorkloadConfig {
                sessions: vec![0, 1, 0, 1],
                cycles: 3,
                seed,
                model: CostModel::Dsm,
            };
            let r = run_gme_workload(&NoGme, &cfg);
            if !r.violations.is_empty() {
                found = true;
                break;
            }
        }
        assert!(found, "the broken GME must produce cross-session overlaps");
    }

    #[test]
    fn works_over_mcs_too() {
        let algo = MutexBackedGme { lock: McsLock };
        for seed in 0..20 {
            let cfg = GmeWorkloadConfig {
                sessions: vec![3, 3, 9],
                cycles: 2,
                seed,
                model: CostModel::cc_default(),
            };
            let r = run_gme_workload(&algo, &cfg);
            assert_eq!(r.violations, Vec::new(), "seed {seed}");
            assert!(r.completed, "seed {seed}");
        }
    }

    #[test]
    fn single_session_everyone_shares() {
        let algo = gme_over_tournament();
        let cfg = GmeWorkloadConfig {
            sessions: vec![5; 6],
            cycles: 3,
            seed: 11,
            model: CostModel::Dsm,
        };
        let r = run_gme_workload(&algo, &cfg);
        assert_eq!(r.violations, Vec::new());
        assert!(r.completed);
    }
}
