//! Anderson's array-based queue lock (Fetch-And-Increment).
//!
//! Each arriving process takes a ticket with FAI and spins on the array
//! slot `ticket mod n`; the releaser clears its own slot and sets the next.
//! In the **CC model** each spinner caches its slot, so a passage costs
//! O(1) RMRs — the classic result of Anderson \[4\] that motivated RMR
//! counting. In the **DSM model** the slots are not local to their
//! spinners, so the spin is remote: Anderson's lock is the canonical
//! example of a lock that is local-spin in CC only (the asymmetry §1
//! describes: "such techniques are specific to a shared memory model").
//!
//! Because `acquire` and `release` are separate procedure calls, the
//! claimed slot is parked in a per-process *local* cell between them (an
//! algorithmic register in the process's own module, free to access).

use crate::lock::{MutexAlgorithm, MutexInstance};
use shm_sim::{Addr, AddrRange, MemLayout, Op, ProcId, ProcedureCall, Step, Word};
use std::sync::Arc;

/// Anderson's array lock.
#[derive(Clone, Copy, Debug, Default)]
pub struct AndersonLock;

#[derive(Clone, Debug)]
struct Inst {
    ticket: Addr,
    /// `flags[i] == 1` means the holder of ticket `i (mod n)` may enter.
    /// Allocated cell by cell so that slot 0 can start enabled.
    flags: Vec<Addr>,
    /// Per-process cell remembering the slot of the passage in progress.
    my_slot: AddrRange,
}

impl MutexAlgorithm for AndersonLock {
    fn name(&self) -> &'static str {
        "anderson"
    }
    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn MutexInstance> {
        let n = n.max(1);
        let ticket = layout.alloc_global(0);
        let flags = (0..n)
            .map(|i| layout.alloc_global(u64::from(i == 0)))
            .collect();
        let my_slot = layout.alloc_per_process_array(n, 0);
        Arc::new(Inst {
            ticket,
            flags,
            my_slot,
        })
    }
}

impl MutexInstance for Inst {
    fn acquire_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Acquire {
            inst: self.clone(),
            me: pid,
            state: AcqState::TakeTicket,
            slot: 0,
        })
    }
    fn release_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Release {
            inst: self.clone(),
            me: pid,
            state: RelState::ReadSlot,
            slot: 0,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AcqState {
    TakeTicket,
    StoreSlot,
    Spin,
    SpinDecide,
    ConsumedBaton,
}

#[derive(Clone, Debug)]
struct Acquire {
    inst: Inst,
    me: ProcId,
    state: AcqState,
    slot: usize,
}

impl ProcedureCall for Acquire {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            AcqState::TakeTicket => {
                self.state = AcqState::StoreSlot;
                Step::Op(Op::Faa(self.inst.ticket, 1))
            }
            AcqState::StoreSlot => {
                let ticket = last.expect("FAI result");
                self.slot = (ticket % self.inst.flags.len() as Word) as usize;
                self.state = AcqState::Spin;
                Step::Op(Op::Write(
                    self.inst.my_slot.at(self.me.index()),
                    self.slot as Word,
                ))
            }
            AcqState::Spin => {
                self.state = AcqState::SpinDecide;
                Step::Op(Op::Read(self.inst.flags[self.slot]))
            }
            AcqState::SpinDecide => {
                if last.expect("flag value") == 1 {
                    // Consume the baton immediately so a wrapped-around
                    // ticket sharing this slot cannot enter concurrently.
                    self.state = AcqState::ConsumedBaton;
                    Step::Op(Op::Write(self.inst.flags[self.slot], 0))
                } else {
                    Step::Op(Op::Read(self.inst.flags[self.slot]))
                }
            }
            AcqState::ConsumedBaton => Step::Return(0),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RelState {
    ReadSlot,
    EnableNext,
    Done,
}

#[derive(Clone, Debug)]
struct Release {
    inst: Inst,
    me: ProcId,
    state: RelState,
    slot: usize,
}

impl ProcedureCall for Release {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            RelState::ReadSlot => {
                self.state = RelState::EnableNext;
                Step::Op(Op::Read(self.inst.my_slot.at(self.me.index())))
            }
            RelState::EnableNext => {
                self.slot = last.expect("slot value") as usize;
                self.state = RelState::Done;
                let next = (self.slot + 1) % self.inst.flags.len();
                Step::Op(Op::Write(self.inst.flags[next], 1))
            }
            RelState::Done => Step::Return(0),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_lock_workload, LockWorkloadConfig};
    use shm_sim::CostModel;

    #[test]
    fn anderson_lock_provides_mutual_exclusion() {
        for seed in 0..20 {
            let r = run_lock_workload(
                &AndersonLock,
                &LockWorkloadConfig {
                    n: 5,
                    cycles: 3,
                    seed,
                    model: CostModel::Dsm,
                },
            );
            assert_eq!(r.violations, Vec::new(), "seed {seed}");
            assert!(r.completed, "seed {seed}");
        }
    }

    #[test]
    fn ticket_wraparound_reuses_slots_safely() {
        // More passages than slots: tickets wrap around the n-slot array.
        let r = run_lock_workload(
            &AndersonLock,
            &LockWorkloadConfig {
                n: 3,
                cycles: 10,
                seed: 1,
                model: CostModel::Dsm,
            },
        );
        assert_eq!(r.violations, Vec::new());
        assert!(r.completed);
        assert_eq!(r.passages, 30);
    }

    #[test]
    fn anderson_is_constant_rmr_in_cc_under_contention() {
        let r = run_lock_workload(
            &AndersonLock,
            &LockWorkloadConfig {
                n: 8,
                cycles: 4,
                seed: 7,
                model: CostModel::cc_default(),
            },
        );
        assert!(r.completed);
        assert!(
            r.rmrs_per_passage() <= 10.0,
            "CC passages should be O(1): {}",
            r.rmrs_per_passage()
        );
    }

    #[test]
    fn anderson_spins_remotely_in_dsm() {
        let cc = run_lock_workload(
            &AndersonLock,
            &LockWorkloadConfig {
                n: 8,
                cycles: 4,
                seed: 7,
                model: CostModel::cc_default(),
            },
        );
        let dsm = run_lock_workload(
            &AndersonLock,
            &LockWorkloadConfig {
                n: 8,
                cycles: 4,
                seed: 7,
                model: CostModel::Dsm,
            },
        );
        assert!(
            dsm.rmrs_per_passage() > 2.0 * cc.rmrs_per_passage(),
            "DSM {} vs CC {}",
            dsm.rmrs_per_passage(),
            cc.rmrs_per_passage()
        );
    }
}
