//! # shm-mutex: mutual exclusion as deterministic step machines
//!
//! The paper's related-work section (§3) and its practice discussion (§8)
//! lean on the classical RMR-complexity landscape of mutual exclusion:
//!
//! * reads/writes (and comparison primitives): tight bound **Θ(log N)** RMRs
//!   per passage, the *same* in CC and DSM (Yang–Anderson tournament);
//! * with Fetch-And-Increment / Fetch-And-Store: **O(1)** RMRs per passage
//!   (Anderson's array lock in CC, the MCS queue lock in both models);
//! * non-local-spin locks (TAS/TTAS): **unbounded** RMRs under contention.
//!
//! Reproducing those numbers on the same simulator (experiment E6)
//! establishes that our RMR accounting matches the literature the paper
//! builds on — and shows the contrast the paper draws: for mutual
//! exclusion, CC and DSM agree; for signaling, they separate.
//!
//! Locks provided: [`TasLock`], [`TtasLock`], [`AndersonLock`] (local-spin
//! in CC only), [`McsLock`] (local-spin in both), [`TournamentLock`]
//! (Yang–Anderson arbitration tree, reads/writes only, local-spin in both).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod anderson;
pub mod gme;
pub mod harness;
pub mod lock;
pub mod mcs;
pub mod tas;
pub mod tournament;

pub use anderson::AndersonLock;
pub use gme::{
    check_gme, run_gme_workload, GmeAlgorithm, GmeInstance, GmeViolation, GmeWorkloadConfig,
    GmeWorkloadResult, MutexBackedGme,
};
pub use harness::{
    check_mutual_exclusion, run_lock_workload, workload_spec, LockWorkloadConfig,
    LockWorkloadResult, MutexViolation,
};
pub use lock::{kinds, MutexAlgorithm, MutexInstance};
pub use mcs::McsLock;
pub use tas::{TasLock, TtasLock};
pub use tournament::TournamentLock;
