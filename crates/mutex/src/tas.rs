//! Test-And-Set spin locks: the non-local-spin baselines.
//!
//! [`TasLock`] spins directly on `TAS(L)`; every spin is a nontrivial
//! operation, so it is an RMR in *both* models (in CC each failed TAS
//! invalidates every other spinner's copy).
//!
//! [`TtasLock`] (test-and-test-and-set) spins on a plain read and attempts
//! `TAS` only when the lock looks free. In the CC model the read spin is
//! served from cache, so waiting is local until a release invalidates the
//! line; in the DSM model the read spin is remote every time. Both locks
//! have unbounded worst-case RMR complexity — the §8 "non-local-spin"
//! baselines that the literature's experiments show collapsing under
//! contention.

use crate::lock::{MutexAlgorithm, MutexInstance};
use shm_sim::{Addr, MemLayout, Op, OpSequence, ProcId, ProcedureCall, Step, Word};
use std::sync::Arc;

/// The plain TAS spin lock.
#[derive(Clone, Copy, Debug, Default)]
pub struct TasLock;

/// The test-and-test-and-set spin lock.
#[derive(Clone, Copy, Debug, Default)]
pub struct TtasLock;

#[derive(Clone, Copy, Debug)]
struct Inst {
    lock: Addr,
    test_first: bool,
}

impl MutexAlgorithm for TasLock {
    fn name(&self) -> &'static str {
        "tas"
    }
    fn instantiate(&self, layout: &mut MemLayout, _n: usize) -> Arc<dyn MutexInstance> {
        Arc::new(Inst {
            lock: layout.alloc_global(0),
            test_first: false,
        })
    }
}

impl MutexAlgorithm for TtasLock {
    fn name(&self) -> &'static str {
        "ttas"
    }
    fn instantiate(&self, layout: &mut MemLayout, _n: usize) -> Arc<dyn MutexInstance> {
        Arc::new(Inst {
            lock: layout.alloc_global(0),
            test_first: true,
        })
    }
}

impl MutexInstance for Inst {
    fn acquire_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Acquire {
            lock: self.lock,
            test_first: self.test_first,
            state: if self.test_first {
                AcqState::TestRead
            } else {
                AcqState::Tas
            },
        })
    }
    fn release_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(OpSequence::new(vec![Op::Write(self.lock, 0)]))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum AcqState {
    TestRead,
    TestDecide,
    Tas,
    TasDecide,
}

#[derive(Clone, Debug)]
struct Acquire {
    lock: Addr,
    test_first: bool,
    state: AcqState,
}

impl ProcedureCall for Acquire {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            AcqState::TestRead => {
                self.state = AcqState::TestDecide;
                Step::Op(Op::Read(self.lock))
            }
            AcqState::TestDecide => {
                if last.expect("lock value") == 0 {
                    self.state = AcqState::TasDecide;
                    Step::Op(Op::Tas(self.lock))
                } else {
                    self.state = AcqState::TestDecide;
                    Step::Op(Op::Read(self.lock))
                }
            }
            AcqState::Tas => {
                self.state = AcqState::TasDecide;
                Step::Op(Op::Tas(self.lock))
            }
            AcqState::TasDecide => {
                if last.expect("TAS result") == 0 {
                    Step::Return(0)
                } else if self.test_first {
                    self.state = AcqState::TestDecide;
                    Step::Op(Op::Read(self.lock))
                } else {
                    self.state = AcqState::TasDecide;
                    Step::Op(Op::Tas(self.lock))
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_lock_workload, LockWorkloadConfig};
    use shm_sim::CostModel;

    #[test]
    fn tas_lock_provides_mutual_exclusion() {
        for seed in 0..20 {
            let r = run_lock_workload(
                &TasLock,
                &LockWorkloadConfig {
                    n: 4,
                    cycles: 3,
                    seed,
                    model: CostModel::Dsm,
                },
            );
            assert_eq!(r.violations, Vec::new(), "seed {seed}");
            assert!(r.completed);
        }
    }

    #[test]
    fn ttas_lock_provides_mutual_exclusion() {
        for seed in 0..20 {
            let r = run_lock_workload(
                &TtasLock,
                &LockWorkloadConfig {
                    n: 4,
                    cycles: 3,
                    seed,
                    model: CostModel::cc_default(),
                },
            );
            assert_eq!(r.violations, Vec::new(), "seed {seed}");
            assert!(r.completed);
        }
    }

    #[test]
    fn uncontended_acquire_is_cheap() {
        let r = run_lock_workload(
            &TasLock,
            &LockWorkloadConfig {
                n: 1,
                cycles: 5,
                seed: 0,
                model: CostModel::Dsm,
            },
        );
        // TAS + CS + release per cycle: bounded constant.
        assert!(r.rmrs_per_passage() <= 5.0);
    }

    #[test]
    fn ttas_spins_locally_in_cc_but_not_in_dsm() {
        // One holder + one spinner; let the spinner spin a lot.
        let mk = |model| {
            let mut layout = MemLayout::new();
            let inst = TtasLock.instantiate(&mut layout, 2);
            let spec = shm_sim::SimSpec {
                layout,
                sources: vec![
                    Box::new(shm_sim::Idle) as Box<dyn shm_sim::CallSource>,
                    Box::new(shm_sim::Idle),
                ],
                model,
            };
            let mut sim = shm_sim::Simulator::new(&spec);
            // p0 acquires directly.
            sim.inject_call(
                ProcId(0),
                shm_sim::Call::new(
                    crate::lock::kinds::ACQUIRE,
                    "acquire",
                    inst.acquire_call(ProcId(0)),
                ),
            );
            while sim.has_pending_call(ProcId(0)) {
                let _ = sim.step(ProcId(0));
            }
            // p1 spins.
            sim.inject_call(
                ProcId(1),
                shm_sim::Call::new(
                    crate::lock::kinds::ACQUIRE,
                    "acquire",
                    inst.acquire_call(ProcId(1)),
                ),
            );
            for _ in 0..100 {
                let _ = sim.step(ProcId(1));
            }
            sim.proc_stats(ProcId(1)).rmrs
        };
        assert!(mk(CostModel::cc_default()) <= 2, "CC: cached spin");
        assert!(mk(CostModel::Dsm) >= 100, "DSM: every spin is remote");
    }
}
