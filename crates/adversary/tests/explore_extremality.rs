//! Cross-validation of the §6 adversary against the schedule-space explorer.
//!
//! The wild-goose-chase adversary *constructs* one expensive schedule for
//! the signaler; the explorer *measures* the true maximum of the signaler's
//! RMRs over every schedule of a small scenario. The constructed cost is a
//! lower bound on the reachable maximum, so at equal n the empirical max
//! must dominate the chase cost — if it ever dropped below, either the
//! adversary is fabricating charges or the explorer is missing schedules.

use rmr_adversary::{run_lower_bound, LowerBoundConfig};
use shm_explore::{check, Bounds, ScenarioSpec};
use shm_sim::CostModel;
use signaling::algorithms::{Broadcast, CcFlag, QueueSignaling, SingleWaiter};
use signaling::SignalingAlgorithm;

const N: usize = 3;

fn explored_max_signaler_rmrs(algo: &dyn SignalingAlgorithm) -> u64 {
    // The chase's signaler may poll before it signals (its RMRs include
    // those polls), so the scenario space must allow a pre-poll too.
    let scenario = ScenarioSpec {
        algorithm: algo,
        waiters: N - 1,
        max_polls: 2,
        signaler_polls_first: 1,
        model: CostModel::Dsm,
        seed: None,
    };
    let out = check(&scenario, &Bounds::exhaustive());
    assert!(
        out.report.exhaustive,
        "{}: small-n exploration must be exhaustive",
        algo.name()
    );
    out.max_signaler_rmrs()
        .expect("terminal states exist: every call source is bounded")
}

fn chase_signaler_rmrs(algo: &dyn SignalingAlgorithm) -> u64 {
    let report = run_lower_bound(algo, LowerBoundConfig::for_n(N));
    report.chase.as_ref().map_or(0, |c| c.signaler_rmrs)
}

#[test]
fn empirical_max_dominates_the_constructed_chase_cost() {
    let algos: Vec<Box<dyn SignalingAlgorithm>> = vec![
        Box::new(Broadcast),
        Box::new(CcFlag),
        Box::new(SingleWaiter),
        Box::new(QueueSignaling),
    ];
    for algo in &algos {
        let explored = explored_max_signaler_rmrs(algo.as_ref());
        let chase = chase_signaler_rmrs(algo.as_ref());
        assert!(
            explored >= chase,
            "{}: explored max signaler RMRs {explored} < chase-constructed {chase}",
            algo.name()
        );
    }
}

#[test]
fn explorer_and_adversary_agree_single_waiter_fails_only_out_of_contract() {
    // The adversary drives 2 waiters against single-waiter (contract: 1) and
    // classifies the resulting spec failures as out-of-contract; exhaustive
    // exploration of the same population must reach the same classification
    // on every violating schedule.
    let scenario = ScenarioSpec {
        algorithm: &SingleWaiter,
        waiters: 2,
        max_polls: 2,
        signaler_polls_first: 0,
        model: CostModel::Dsm,
        seed: None,
    };
    let out = check(&scenario, &Bounds::exhaustive());
    assert!(out.report.exhaustive);
    assert_eq!(
        out.in_contract_violations, 0,
        "every single-waiter violation with 2 waiters is out-of-contract"
    );
}
