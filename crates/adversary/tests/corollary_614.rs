//! Corollary 6.14, end to end: a CAS-based algorithm is attacked both
//! natively and after the read/write transformation. The corollary says
//! comparison primitives do not help: amortized RMR cost still grows with
//! N (where the FAA queue's stays flat — see the E4 experiment).

use rmr_adversary::{run_lower_bound, LowerBoundConfig, Part1Config, ReadWriteTransformed};
use signaling::algorithms::CasList;

fn cfg(n: usize) -> LowerBoundConfig {
    let mut c = LowerBoundConfig::for_n(n);
    // The CAS scan (and, transformed, the tournament climb) takes more
    // rounds to stabilize than the flag algorithms: give the construction
    // head room.
    c.part1 = Part1Config {
        n,
        max_rounds: 64,
        ..Part1Config::default()
    };
    c
}

#[test]
fn native_cas_list_amortized_cost_grows_with_n() {
    let a24 = run_lower_bound(&CasList, cfg(24));
    let a48 = run_lower_bound(&CasList, cfg(48));
    // The k-th registrant's CAS scan costs Θ(k) RMRs, so amortized cost is
    // Θ(N) no matter how the adversary plays: CAS does not escape the
    // bound.
    assert!(a24.part1.stabilized && a48.part1.stabilized);
    assert!(
        a48.worst_amortized() > 1.5 * a24.worst_amortized(),
        "amortized must grow with N: {} -> {}",
        a24.worst_amortized(),
        a48.worst_amortized()
    );
    // Honest limitation on display: the chase cannot erase members of a CAS
    // result chain (their failed-CAS results observed the erased winner),
    // so certification blocks those erasures rather than cheating.
    let blocked = a48.chase.as_ref().map_or(0, |c| c.blocked);
    assert!(blocked > 0, "CAS chains must block chase erasures");
}

#[test]
fn transformed_cas_list_amortized_cost_grows_with_n() {
    let t24 = run_lower_bound(&ReadWriteTransformed::new(Box::new(CasList)), cfg(24));
    let t48 = run_lower_bound(&ReadWriteTransformed::new(Box::new(CasList)), cfg(48));
    // After the transformation every access is a read or a write; the
    // emulated CAS costs a tournament passage, and the adversary's
    // construction drives amortized cost up with N.
    assert!(
        t48.worst_amortized() > t24.worst_amortized(),
        "amortized must grow with N: {} -> {}",
        t24.worst_amortized(),
        t48.worst_amortized()
    );
    assert!(
        t24.worst_amortized() > 8.0,
        "already far above O(1): {}",
        t24.worst_amortized()
    );
    // No violations: both versions are safe; they are merely expensive.
    assert!(!t24.found_violation() && !t48.found_violation());
}

#[test]
fn transformation_is_deterministic_under_the_adversary() {
    let run = || {
        let algo = ReadWriteTransformed::new(Box::new(CasList));
        let r = run_lower_bound(&algo, cfg(24));
        (
            r.part1.stable.len(),
            r.part1.parked.len(),
            r.part1.erased.len(),
            r.worst_amortized().to_bits(),
        )
    };
    assert_eq!(run(), run());
}
