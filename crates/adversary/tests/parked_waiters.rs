//! The *parked* stability path: a waiter that busy-waits on local memory
//! in the middle of `Poll()` forever satisfies Definition 6.8 (solo runs
//! incur zero RMRs) without ever reaching a call boundary. The adversary
//! must classify it stable-but-parked, and Part 2 must skip its post-poll.

use rmr_adversary::{run_lower_bound, LowerBoundConfig, Part1Config, Part1Runner};
use shm_sim::{AddrRange, MemLayout, Op, ProcId, ProcedureCall, Step, Word};
use signaling::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
use std::sync::Arc;

/// A pathological (but legal, terminating-in-fair-histories) algorithm:
/// `Poll()` spins on the caller's own flag until the signaler writes it.
/// The signal broadcasts to every local flag.
struct ParkingPoll;

struct Inst {
    v: AddrRange,
    n: usize,
}

impl SignalingAlgorithm for ParkingPoll {
    fn name(&self) -> &'static str {
        "parking-poll"
    }
    fn primitive_class(&self) -> PrimitiveClass {
        PrimitiveClass::ReadWrite
    }
    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn AlgorithmInstance> {
        Arc::new(Inst {
            v: layout.alloc_per_process_array(n, 0),
            n,
        })
    }
}

impl AlgorithmInstance for Inst {
    fn signal_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(SignalAll {
            v: self.v,
            n: self.n,
            idx: 0,
        })
    }
    fn poll_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(SpinOwn {
            flag: self.v.at(pid.index()),
            issued: false,
        })
    }
}

#[derive(Clone)]
struct SpinOwn {
    flag: shm_sim::Addr,
    issued: bool,
}
impl ProcedureCall for SpinOwn {
    fn step(&mut self, last: Option<Word>) -> Step {
        if self.issued && last == Some(1) {
            Step::Return(1)
        } else {
            self.issued = true;
            Step::Op(Op::Read(self.flag))
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[derive(Clone)]
struct SignalAll {
    v: AddrRange,
    n: usize,
    idx: usize,
}
impl ProcedureCall for SignalAll {
    fn step(&mut self, _last: Option<Word>) -> Step {
        if self.idx >= self.n {
            return Step::Return(0);
        }
        let i = self.idx;
        self.idx += 1;
        Step::Op(Op::Write(self.v.at(i), 1))
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[test]
fn parked_waiters_are_detected_and_skipped() {
    let n = 12;
    let cfg = Part1Config {
        n,
        max_local_steps: 64,
        ..Part1Config::default()
    };
    let mut runner = Part1Runner::new(&ParkingPoll, cfg);
    let out = runner.run();
    assert!(out.stabilized, "local spinners stabilize immediately");
    assert_eq!(out.parked.len(), n, "every waiter parks mid-poll");
    assert_eq!(out.total_rmrs, 0, "parking is free");
    assert!(out.regular);
}

#[test]
fn fully_parked_population_yields_no_eligible_signaler() {
    // Every process is mid-Poll forever: none can start Signal(). This is
    // the fingerprint of an algorithm whose Poll() violates §4's progress
    // requirement ("each call to Poll() must eventually terminate provided
    // that the history is fair") — it is outside the problem class, and the
    // adversary reports that by finding no chase to run rather than by
    // injecting into a busy process.
    let n = 12;
    let mut cfg = LowerBoundConfig::for_n(n);
    cfg.part1 = Part1Config {
        n,
        max_local_steps: 64,
        ..Part1Config::default()
    };
    let report = run_lower_bound(&ParkingPoll, cfg);
    assert!(report.part1.stabilized);
    assert_eq!(report.part1.parked.len(), n);
    assert!(
        report.chase.is_none(),
        "no between-calls process can signal"
    );
    assert!(report.discovery.is_none());
}
