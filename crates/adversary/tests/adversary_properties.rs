//! Property tests for the lower-bound machinery: bookkeeping invariants,
//! certification soundness, and determinism across the algorithm zoo.

use proptest::prelude::*;
use rmr_adversary::{run_lower_bound, LowerBoundConfig, Part1Config, Part1Runner};
use shm_sim::ProcId;
use signaling::algorithms::{Broadcast, CasList, CcFlag, FixedSignaler, QueueSignaling, SingleWaiter};
use signaling::SignalingAlgorithm;
use std::collections::BTreeSet;

fn algo(which: usize) -> Box<dyn SignalingAlgorithm> {
    match which {
        0 => Box::new(Broadcast),
        1 => Box::new(CcFlag),
        2 => Box::new(SingleWaiter),
        3 => Box::new(QueueSignaling),
        4 => Box::new(FixedSignaler { signaler: ProcId(0) }),
        _ => Box::new(CasList),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Part-1 bookkeeping invariants hold for every algorithm and size:
    /// erased/finished/stable are disjoint where they must be, erased
    /// processes leave no trace, and parked ⊆ stable.
    #[test]
    fn part1_bookkeeping_invariants(which in 0usize..6, n in 8usize..40, rounds in 2usize..12) {
        let a = algo(which);
        let cfg = Part1Config { n, max_rounds: rounds, ..Part1Config::default() };
        let mut runner = Part1Runner::new(a.as_ref(), cfg);
        let out = runner.run();
        prop_assert!(out.erased.is_disjoint(&out.finished), "{}", a.name());
        prop_assert!(out.erased.is_disjoint(&out.stable), "{}", a.name());
        prop_assert!(out.stable.is_disjoint(&out.finished), "{}", a.name());
        prop_assert!(out.parked.is_subset(&out.stable), "{}", a.name());
        let participants = runner.sim.history().participants();
        for q in &out.erased {
            prop_assert!(!participants.contains(q), "{}: erased {q} participates", a.name());
        }
        prop_assert_eq!(out.total_rmrs, runner.sim.totals().rmrs);
        // stabilized ⇒ no active process has a pending RMR: every active is
        // stable or finished.
        if out.stabilized {
            for i in 0..n as u32 {
                let p = ProcId(i);
                let accounted = out.erased.contains(&p)
                    || out.finished.contains(&p)
                    || out.stable.contains(&p);
                prop_assert!(accounted, "{}: {p} unaccounted", a.name());
            }
        }
    }

    /// Certified erasures really are transparent: after `run()`, replaying
    /// the final schedule with the erased set removed must equal the final
    /// history (it *is* the final history, by construction — this asserts
    /// the runner's state is exactly the filtered replay).
    #[test]
    fn final_state_is_a_filtered_replay(which in 0usize..6, n in 8usize..24) {
        let a = algo(which);
        let cfg = Part1Config { n, max_rounds: 6, ..Part1Config::default() };
        let mut runner = Part1Runner::new(a.as_ref(), cfg);
        let _ = runner.run();
        let replayed = shm_sim::Simulator::replay(&runner.spec, runner.sim.schedule(), &BTreeSet::new());
        prop_assert_eq!(replayed.history().events(), runner.sim.history().events());
    }

    /// The full lower-bound pipeline is deterministic for every algorithm.
    #[test]
    fn pipeline_is_deterministic(which in 0usize..6, n in 8usize..32) {
        let run = || {
            let a = algo(which);
            let r = run_lower_bound(a.as_ref(), LowerBoundConfig::for_n(n));
            (
                r.part1.stabilized,
                r.part1.stable.len(),
                r.part1.erased.len(),
                r.worst_amortized().to_bits(),
                r.chase.as_ref().map(|c| (c.signaler_rmrs, c.erased.len(), c.blocked)),
            )
        };
        prop_assert_eq!(run(), run());
    }

    /// Amortized cost is monotone-ish in the data the adversary reports:
    /// worst_amortized is at least the Part-1 amortized cost.
    #[test]
    fn worst_amortized_dominates_part1(which in 0usize..6, n in 8usize..32) {
        let a = algo(which);
        let r = run_lower_bound(a.as_ref(), LowerBoundConfig::for_n(n));
        if r.part1.participants > 0 {
            let p1 = r.part1.total_rmrs as f64 / r.part1.participants as f64;
            prop_assert!(r.worst_amortized() >= p1 - 1e-9);
        }
    }
}
