//! Property-style tests for the lower-bound machinery: bookkeeping
//! invariants, certification soundness, determinism across the algorithm
//! zoo, and equivalence of the incremental replay engine with the reference
//! from-scratch path. Driven by seeded deterministic loops (the workspace is
//! dependency-free, so no proptest).

use rmr_adversary::{run_lower_bound, LowerBoundConfig, Part1Config, Part1Runner};
use shm_sim::{ProcId, XorShift64};
use signaling::algorithms::{
    Broadcast, CasList, CcFlag, FixedSignaler, QueueSignaling, SingleWaiter,
};
use signaling::SignalingAlgorithm;
use std::collections::BTreeSet;

fn algo(which: usize) -> Box<dyn SignalingAlgorithm> {
    match which {
        0 => Box::new(Broadcast),
        1 => Box::new(CcFlag),
        2 => Box::new(SingleWaiter),
        3 => Box::new(QueueSignaling),
        4 => Box::new(FixedSignaler {
            signaler: ProcId(0),
        }),
        _ => Box::new(CasList),
    }
}

/// Part-1 bookkeeping invariants hold for every algorithm and size:
/// erased/finished/stable are disjoint where they must be, erased
/// processes leave no trace, and parked ⊆ stable.
#[test]
fn part1_bookkeeping_invariants() {
    let mut rng = XorShift64::new(0x0B00);
    for _case in 0..24 {
        let which = rng.range_usize(0, 6);
        let n = rng.range_usize(8, 40);
        let rounds = rng.range_usize(2, 12);
        let a = algo(which);
        let cfg = Part1Config {
            n,
            max_rounds: rounds,
            ..Part1Config::default()
        };
        let mut runner = Part1Runner::new(a.as_ref(), cfg);
        let out = runner.run();
        assert!(out.erased.is_disjoint(&out.finished), "{}", a.name());
        assert!(out.erased.is_disjoint(&out.stable), "{}", a.name());
        assert!(out.stable.is_disjoint(&out.finished), "{}", a.name());
        assert!(out.parked.is_subset(&out.stable), "{}", a.name());
        let participants = runner.sim.history().participants();
        for q in &out.erased {
            assert!(
                !participants.contains(q),
                "{}: erased {q} participates",
                a.name()
            );
        }
        assert_eq!(out.total_rmrs, runner.sim.totals().rmrs);
        // stabilized ⇒ no active process has a pending RMR: every active is
        // stable or finished.
        if out.stabilized {
            for i in 0..n as u32 {
                let p = ProcId(i);
                let accounted =
                    out.erased.contains(&p) || out.finished.contains(&p) || out.stable.contains(&p);
                assert!(accounted, "{}: {p} unaccounted", a.name());
            }
        }
    }
}

/// Certified erasures really are transparent: after `run()`, replaying
/// the final schedule with the erased set removed must equal the final
/// history (it *is* the final history, by construction — this asserts
/// the runner's state is exactly the filtered replay).
#[test]
fn final_state_is_a_filtered_replay() {
    let mut rng = XorShift64::new(0xF11);
    for _case in 0..24 {
        let which = rng.range_usize(0, 6);
        let n = rng.range_usize(8, 24);
        let a = algo(which);
        let cfg = Part1Config {
            n,
            max_rounds: 6,
            ..Part1Config::default()
        };
        let mut runner = Part1Runner::new(a.as_ref(), cfg);
        let _ = runner.run();
        let replayed =
            shm_sim::Simulator::replay(&runner.spec, runner.sim.schedule(), &BTreeSet::new());
        assert_eq!(replayed.history().to_vec(), runner.sim.history().to_vec());
    }
}

/// The full lower-bound pipeline is deterministic for every algorithm.
#[test]
fn pipeline_is_deterministic() {
    let mut rng = XorShift64::new(0xDE7);
    for _case in 0..12 {
        let which = rng.range_usize(0, 6);
        let n = rng.range_usize(8, 32);
        let run = || {
            let a = algo(which);
            let r = run_lower_bound(a.as_ref(), LowerBoundConfig::for_n(n));
            (
                r.part1.stabilized,
                r.part1.stable.len(),
                r.part1.erased.len(),
                r.worst_amortized().to_bits(),
                r.chase
                    .as_ref()
                    .map(|c| (c.signaler_rmrs, c.erased.len(), c.blocked)),
            )
        };
        assert_eq!(run(), run());
    }
}

/// Amortized cost is monotone-ish in the data the adversary reports:
/// worst_amortized is at least the Part-1 amortized cost.
#[test]
fn worst_amortized_dominates_part1() {
    let mut rng = XorShift64::new(0x0A3);
    for _case in 0..24 {
        let which = rng.range_usize(0, 6);
        let n = rng.range_usize(8, 32);
        let a = algo(which);
        let r = run_lower_bound(a.as_ref(), LowerBoundConfig::for_n(n));
        if r.part1.participants > 0 {
            let p1 = r.part1.total_rmrs as f64 / r.part1.participants as f64;
            assert!(r.worst_amortized() >= p1 - 1e-9);
        }
    }
}

/// The incremental replay engine and the reference from-scratch path are
/// observationally identical: every outcome of the full pipeline — Part-1
/// populations, RMR counts, chase/discovery results — matches exactly with
/// `incremental` on and off, for every algorithm and several checkpoint
/// intervals.
#[test]
fn incremental_engine_matches_reference_pipeline() {
    let summarize = |a: &dyn SignalingAlgorithm, n: usize, incremental: bool, interval: usize| {
        let mut cfg = LowerBoundConfig::for_n(n);
        cfg.part1.incremental = incremental;
        cfg.part1.checkpoint_interval = interval;
        let r = run_lower_bound(a, cfg);
        let run_key = |s: &rmr_adversary::SignalRun| {
            (
                s.signaler,
                s.signaler_rmrs,
                s.erased.clone(),
                s.blocked,
                s.survivors,
                s.signal_completed,
                s.post_polls_skipped,
                s.post_spec,
                s.total_rmrs,
                s.participants,
            )
        };
        (
            r.part1.stabilized,
            r.part1.stable.clone(),
            r.part1.finished.clone(),
            r.part1.erased.clone(),
            r.part1.parked.clone(),
            r.part1.blocked_erasures,
            r.part1.total_rmrs,
            r.part1.participants,
            r.part1.regular,
            r.chase.as_ref().map(run_key),
            r.discovery.as_ref().map(run_key),
        )
    };
    for which in 0..6 {
        let a = algo(which);
        let n = 20;
        let reference = summarize(a.as_ref(), n, false, 0);
        for interval in [16usize, 128] {
            let inc = summarize(a.as_ref(), n, true, interval);
            assert_eq!(
                inc,
                reference,
                "{} n={n} interval={interval}: incremental differs from reference",
                a.name()
            );
        }
    }
}
