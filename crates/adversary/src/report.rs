//! Report types shared by the adversary's phases.

use shm_sim::ProcId;
use std::collections::BTreeSet;

/// What happened in one round of the Part-1 construction.
#[derive(Clone, Debug, Default)]
pub struct RoundReport {
    /// Round number (1-based; the paper's `i`).
    pub index: usize,
    /// Processes that had a pending RMR at the start of the round.
    pub pending: usize,
    /// Processes newly declared stable during this round's advance phase.
    pub newly_stable: usize,
    /// Processes erased while resolving conflicts this round.
    pub erased: BTreeSet<ProcId>,
    /// Erasure attempts rejected by projection certification (information
    /// leaked through a non-comparison RMW primitive such as FAA).
    pub blocked_erasures: usize,
    /// Read-RMRs applied this round.
    pub applied_reads: usize,
    /// Write-RMRs applied this round.
    pub applied_writes: usize,
    /// Process rolled forward this round (completed its call and finished),
    /// if the same-variable write pile-up triggered the roll-forward case.
    pub rolled_forward: Option<ProcId>,
    /// Whether the round hit the roll-forward case (true) or the erasing
    /// case / no-writes case (false).
    pub roll_forward_case: bool,
}

/// Wall-clock breakdown of a full lower-bound run, per phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Milliseconds spent advancing processes in Part 1 (recording steps).
    pub record_ms: f64,
    /// Milliseconds spent on Part-1 round machinery: conflict resolution,
    /// erasure replays and certification, roll-forwards.
    pub rounds_ms: f64,
    /// Milliseconds spent on the Part-2 erase-on-sight chase.
    pub chase_ms: f64,
    /// Milliseconds spent on the Part-2 no-erasure discovery run.
    pub discovery_ms: f64,
}

impl PhaseTimings {
    /// Total milliseconds across all phases.
    #[must_use]
    pub fn total_ms(&self) -> f64 {
        self.record_ms + self.rounds_ms + self.chase_ms + self.discovery_ms
    }
}
