//! Report types shared by the adversary's phases.

use shm_sim::ProcId;
use std::collections::BTreeSet;

/// What happened in one round of the Part-1 construction.
#[derive(Clone, Debug, Default)]
pub struct RoundReport {
    /// Round number (1-based; the paper's `i`).
    pub index: usize,
    /// Processes that had a pending RMR at the start of the round.
    pub pending: usize,
    /// Processes newly declared stable during this round's advance phase.
    pub newly_stable: usize,
    /// Processes erased while resolving conflicts this round.
    pub erased: BTreeSet<ProcId>,
    /// Erasure attempts rejected by projection certification (information
    /// leaked through a non-comparison RMW primitive such as FAA).
    pub blocked_erasures: usize,
    /// Read-RMRs applied this round.
    pub applied_reads: usize,
    /// Write-RMRs applied this round.
    pub applied_writes: usize,
    /// Process rolled forward this round (completed its call and finished),
    /// if the same-variable write pile-up triggered the roll-forward case.
    pub rolled_forward: Option<ProcId>,
    /// Whether the round hit the roll-forward case (true) or the erasing
    /// case / no-writes case (false).
    pub roll_forward_case: bool,
}
