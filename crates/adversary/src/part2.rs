//! Part 2 of the lower-bound proof (§6.3): the wild goose chase.
//!
//! After Part 1 leaves a population of *stable* waiters (spinning on local
//! memory, mutually invisible), a signaler `s` is chosen whose memory
//! module was never written (Lemma 6.13 guarantees one exists for large N)
//! and directed to call `Signal()`. The chase rule: whenever `s` is about
//! to *see* or *touch* a stable waiter, erase that waiter just before the
//! step — certified by survivor-projection replay — and let `s` take the
//! step. A correct algorithm's signaler must reach every stable waiter, so
//! it is forced into RMR after RMR; an algorithm whose signaler stays cheap
//! necessarily leaves some hidden waiter unsignaled, which the **post-poll
//! check** converts into a visible Specification 4.1 violation.
//!
//! Two complementary runs:
//!
//! * **chase** — erase-on-sight, measuring how many RMRs the erasures force
//!   and whether any erasure is blocked by certification (FAA algorithms);
//! * **discovery** — no erasures, measuring the signaler's natural cost
//!   against the full stable population (Ω(#stable) for correct broadcast-
//!   style algorithms) and checking the spec with post-signal polls.
//!
//! The headline quantity is `amortized = total RMRs / participants` of the
//! final history; Theorem 6.2 says it exceeds any constant for read/write/
//! CAS/LLSC algorithms once N is large enough.

use crate::part1::{Part1Config, Part1Outcome, Part1Runner};
use crate::report::PhaseTimings;
use shm_sim::{AuditDivergence, AuditReport, Call, ProcId, Simulator, TransitionPeek};
use signaling::{check_polling, kinds, peak_concurrent_waiters, waiter_processes, SpecViolation};
use std::collections::BTreeSet;
use std::time::Instant;

/// Configuration for the full lower-bound run (Part 1 + Part 2).
#[derive(Clone, Copy, Debug)]
pub struct LowerBoundConfig {
    /// Part-1 knobs.
    pub part1: Part1Config,
    /// Force a specific signaler instead of the lemma's "unwritten module"
    /// choice (ablation: running the chase with the algorithm's *intended*
    /// fixed signaler shows why the fixed-signaler variant escapes the
    /// bound).
    pub force_signaler: Option<ProcId>,
    /// Cap on chase iterations (each erasure re-certifies; the cap is a
    /// guard far above N).
    pub max_chase_steps: u64,
}

impl LowerBoundConfig {
    /// Defaults for `n` processes.
    #[must_use]
    pub fn for_n(n: usize) -> Self {
        LowerBoundConfig {
            part1: Part1Config {
                n,
                ..Part1Config::default()
            },
            force_signaler: None,
            max_chase_steps: 10_000_000,
        }
    }
}

/// Result of one phase of Part 2 (chase or discovery).
#[derive(Clone, Debug)]
pub struct SignalRun {
    /// The signaler used.
    pub signaler: ProcId,
    /// RMRs the signaler incurred completing `Signal()`.
    pub signaler_rmrs: u64,
    /// Stable waiters erased during the run (chase only).
    pub erased: BTreeSet<ProcId>,
    /// Erasure attempts rejected by projection certification.
    pub blocked: usize,
    /// Stable waiters remaining after the run.
    pub survivors: usize,
    /// Whether the injected `Signal()` completed within the step budget.
    /// Busy-waiting algorithms (e.g. the Corollary 6.14 read/write
    /// transformation) can leave a solo signaler blocked behind parked
    /// waiters — the "bounded exit breaks" phenomenon the paper notes.
    pub signal_completed: bool,
    /// Post-signal polls skipped because the waiter is parked mid-call (its
    /// pending poll cannot complete solo) or exceeded the step budget.
    pub post_polls_skipped: usize,
    /// Safety verdict after every survivor performed one more `Poll()`.
    pub post_spec: Result<(), SpecViolation>,
    /// Distinct processes that acted as waiters in the final history
    /// ([`waiter_processes`]).
    pub distinct_waiters: usize,
    /// Peak number of concurrently open `Poll()`/`Wait()` calls anywhere in
    /// the final history ([`peak_concurrent_waiters`]).
    pub peak_waiters: usize,
    /// Whether the history exceeds the algorithm's participation contract
    /// ([`Part1Runner::contract_waiters`], checked against
    /// `distinct_waiters`). The adversary drives up to n−1 waiters against
    /// every algorithm, so limited-contract algorithms (e.g. single-waiter,
    /// contract ≤ 1) legitimately fail Specification 4.1 here — such
    /// failures say nothing about the algorithm and are excluded from
    /// [`LowerBoundReport::found_violation`].
    pub out_of_contract: bool,
    /// Total RMRs in the final history.
    pub total_rmrs: u64,
    /// Processes that took at least one step in the final history.
    pub participants: usize,
    /// Differential audit of the final phase history against the naive
    /// reference executor (present iff [`Part1Config::audit`]).
    pub audit: Option<AuditReport>,
}

impl SignalRun {
    /// Total RMRs divided by participants — the amortized complexity the
    /// theorem bounds from below.
    #[must_use]
    pub fn amortized_rmrs(&self) -> f64 {
        if self.participants == 0 {
            0.0
        } else {
            self.total_rmrs as f64 / self.participants as f64
        }
    }
}

/// Combined report of the executable lower bound.
#[derive(Clone, Debug)]
pub struct LowerBoundReport {
    /// Algorithm under attack.
    pub algorithm: String,
    /// Number of processes.
    pub n: usize,
    /// Part-1 outcome.
    pub part1: Part1Outcome,
    /// Erase-on-sight run (absent when Part 1 never stabilized).
    pub chase: Option<SignalRun>,
    /// No-erasure run (absent when Part 1 never stabilized).
    pub discovery: Option<SignalRun>,
    /// Wall-clock breakdown of the run's phases.
    pub timings: PhaseTimings,
}

impl LowerBoundReport {
    /// The single "how bad is it" number for tables: the worst amortized
    /// RMR count the adversary achieved across its runs, or the Part-1
    /// amortized cost for never-stabilizing algorithms.
    #[must_use]
    pub fn worst_amortized(&self) -> f64 {
        let p1 = if self.part1.participants == 0 {
            0.0
        } else {
            self.part1.total_rmrs as f64 / self.part1.participants as f64
        };
        [
            Some(p1),
            self.chase.as_ref().map(SignalRun::amortized_rmrs),
            self.discovery.as_ref().map(SignalRun::amortized_rmrs),
        ]
        .into_iter()
        .flatten()
        .fold(0.0, f64::max)
    }

    /// Whether the adversary exposed a genuine safety violation — a
    /// Specification 4.1 failure in a history *within* the algorithm's
    /// participation contract. Failures in out-of-contract histories (see
    /// [`SignalRun::out_of_contract`]) are excluded: they reflect the
    /// adversary exceeding the algorithm's premise, not an algorithm bug.
    #[must_use]
    pub fn found_violation(&self) -> bool {
        let in_contract_failure = |r: &SignalRun| r.post_spec.is_err() && !r.out_of_contract;
        self.chase.as_ref().is_some_and(in_contract_failure)
            || self.discovery.as_ref().is_some_and(in_contract_failure)
    }

    /// Whether some Part-2 history exceeded the algorithm's participation
    /// contract (always `false` for algorithms with an unbounded contract).
    #[must_use]
    pub fn out_of_contract(&self) -> bool {
        self.chase.as_ref().is_some_and(|r| r.out_of_contract)
            || self.discovery.as_ref().is_some_and(|r| r.out_of_contract)
    }

    /// Combined differential-audit verdict: `None` when no audits ran
    /// (auditing disabled, [`Part1Config::audit`]), otherwise whether every
    /// audited phase was divergence-free.
    #[must_use]
    pub fn audit_clean(&self) -> Option<bool> {
        let audits: Vec<&AuditReport> = [
            self.part1.audit.as_ref(),
            self.chase.as_ref().and_then(|r| r.audit.as_ref()),
            self.discovery.as_ref().and_then(|r| r.audit.as_ref()),
        ]
        .into_iter()
        .flatten()
        .collect();
        if audits.is_empty() {
            None
        } else {
            Some(audits.iter().all(|a| a.is_clean()))
        }
    }

    /// The first audit divergence across all audited phases, if any.
    #[must_use]
    pub fn first_divergence(&self) -> Option<&AuditDivergence> {
        [
            self.part1.audit.as_ref(),
            self.chase.as_ref().and_then(|r| r.audit.as_ref()),
            self.discovery.as_ref().and_then(|r| r.audit.as_ref()),
        ]
        .into_iter()
        .flatten()
        .find_map(|a| a.divergence.as_ref())
    }
}

/// Picks the signaler: a process that took no steps and whose memory module
/// was never written (the lemma's choice), falling back to any non-finished
/// process with an unwritten module.
fn choose_signaler(runner: &Part1Runner, n: usize) -> Option<ProcId> {
    let mem = runner.sim.memory();
    let mut written_modules: BTreeSet<ProcId> = BTreeSet::new();
    for i in 0..mem.len() {
        let a = shm_sim::Addr(i as u32);
        if let Some(owner) = mem.owner(a) {
            // Only writes by *other* processes disqualify a module: the
            // lemma needs "p has never written memory local to s", and a
            // process writing its own module is harmless.
            if mem.writers(a).any(|w| w != owner) {
                written_modules.insert(owner);
            }
        }
    }
    let candidates: Vec<ProcId> = (0..n as u32).map(ProcId).collect();
    // A process with a call in progress cannot start Signal(): only
    // between-calls (or never-scheduled) processes qualify. Parked waiters
    // are therefore never signalers — if *every* process is parked, the
    // algorithm's Poll() does not terminate in fair histories, putting it
    // outside the §4 problem class, and there is no chase to run.
    let eligible = |p: &ProcId| !runner.sim.has_pending_call(*p) && !written_modules.contains(p);
    candidates
        .iter()
        .copied()
        .find(|p| runner.sim.proc_stats(*p).steps == 0 && eligible(p))
        .or_else(|| {
            candidates
                .iter()
                .copied()
                .find(|p| !runner.finished.contains(p) && eligible(p))
        })
}

/// Rebuilds the pre-chase state: replay the base schedule without `erased`,
/// inject the signal call into `s`, and re-execute `s`'s committed steps.
fn rebuild(
    runner: &Part1Runner,
    base: &[ProcId],
    erased: &BTreeSet<ProcId>,
    s: ProcId,
    committed_signal_steps: u64,
) -> Simulator {
    let mut sim = Simulator::replay(&runner.spec, base, erased);
    sim.inject_call(
        s,
        Call::new(kinds::SIGNAL, "Signal", runner.instance.signal_call(s)),
    );
    for _ in 0..committed_signal_steps {
        let _ = sim.step(s);
    }
    sim
}

/// Runs one signal phase. `erase_on_sight` distinguishes chase from
/// discovery.
fn run_signal_phase(
    runner: &Part1Runner,
    s: ProcId,
    erase_on_sight: bool,
    max_steps: u64,
) -> SignalRun {
    let scope: &'static str = if erase_on_sight { "chase" } else { "discovery" };
    let _span = shm_obs::Span::enter(if erase_on_sight {
        "adv.chase"
    } else {
        "adv.discovery"
    });
    let incremental = runner.config().incremental;
    let base: Vec<ProcId> = runner.sim.schedule().to_vec();
    let mut erased = runner.erased.clone();
    let mut blocked_set: BTreeSet<ProcId> = BTreeSet::new();
    let mut committed: u64 = 0;
    let mut sim = if incremental {
        // Incremental path: continue the Part-1 simulator directly (with its
        // checkpoints); the injection is recorded, so `erase_certified`
        // replays it when it reconstructs the suffix.
        let mut sim = runner.sim.clone();
        sim.inject_call(
            s,
            Call::new(kinds::SIGNAL, "Signal", runner.instance.signal_call(s)),
        );
        sim
    } else {
        rebuild(runner, &base, &erased, s, committed)
    };
    let pre_rmrs = sim.proc_stats(s).rmrs;
    let mut guard = 0u64;
    let mut signal_completed = false;
    loop {
        guard += 1;
        if guard >= max_steps {
            break; // e.g. a solo signaler blocked behind a parked lock holder
        }
        match sim.peek_transition(s) {
            TransitionPeek::NotRunnable | TransitionPeek::WillTerminate => break,
            TransitionPeek::Return { kind, .. } => {
                let _ = sim.step(s);
                committed += 1;
                if kind == kinds::SIGNAL {
                    signal_completed = true;
                    break;
                }
            }
            TransitionPeek::Access(op) => {
                if erase_on_sight {
                    let (sees, touches) = sim.op_observation(s, &op);
                    let target = [sees, touches].into_iter().flatten().find(|q| {
                        *q != s
                            && runner.stable.contains(q)
                            && !erased.contains(q)
                            && !blocked_set.contains(q)
                    });
                    if let Some(q) = target {
                        // Tentative erase of q, certified in the rebuilt
                        // world (including s's committed signal prefix).
                        let mut new_erased = erased.clone();
                        new_erased.insert(q);
                        if incremental {
                            // Shares the checkpointed prefix before q's first
                            // step; survivors certified online against the
                            // recorded log, applied in place (no history
                            // copy).
                            if sim.erase_certified_in_place(&runner.spec, &new_erased) {
                                erased = new_erased;
                                // Re-evaluate the same pending access in
                                // the new world before stepping.
                                continue;
                            }
                            blocked_set.insert(q);
                        } else {
                            let candidate = rebuild(runner, &base, &new_erased, s, committed);
                            let consistent = (0..runner.spec.n() as u32).map(ProcId).all(|p| {
                                new_erased.contains(&p)
                                    || candidate.history().projection(p)
                                        == sim.history().projection(p)
                            });
                            if consistent {
                                erased = new_erased;
                                sim = candidate;
                                // Re-evaluate the same pending access in the
                                // new world before stepping.
                                continue;
                            }
                            blocked_set.insert(q);
                        }
                    }
                }
                let _ = sim.step(s);
                committed += 1;
            }
        }
    }
    let signaler_rmrs = sim.proc_stats(s).rmrs - pre_rmrs;

    // Post-poll check: every surviving stable waiter performs one more
    // complete Poll(); with Signal() completed, any `false` is a
    // Specification 4.1 violation.
    let survivors: Vec<ProcId> = runner
        .stable
        .iter()
        .copied()
        .filter(|q| !erased.contains(q) && *q != s)
        .collect();
    let mut post_polls_skipped = 0usize;
    for &q in &survivors {
        if runner.parked.contains(&q) {
            // Parked mid-call: its pending poll cannot complete solo.
            post_polls_skipped += 1;
            continue;
        }
        let start = sim.proc_stats(q).calls_completed;
        let mut poll_guard = 0u64;
        while sim.proc_stats(q).calls_completed == start && poll_guard < 1_000_000 {
            let _ = sim.step(q);
            poll_guard += 1;
        }
        if sim.proc_stats(q).calls_completed == start {
            post_polls_skipped += 1;
        }
    }
    let post_spec = check_polling(sim.history());
    let distinct_waiters = waiter_processes(sim.history()).len();
    let peak_waiters = peak_concurrent_waiters(sim.history());
    let out_of_contract = runner
        .contract_waiters
        .is_some_and(|limit| distinct_waiters > limit);
    let participants = (0..runner.spec.n() as u32)
        .map(ProcId)
        .filter(|&p| sim.proc_stats(p).steps > 0)
        .count();
    if shm_obs::enabled() {
        // Final-history RMR attribution for this phase: per-process cells
        // (sim.rmr/sim.local/sim.inval) plus the signaler-vs-waiters split.
        // `part2.rmr.signaler` is the signaler's own erase-chase delta (the
        // quantity the lower bound argues about, = `chase_signaler_rmrs` in
        // the bench rows); `part2.rmr.waiters` is everything the surviving
        // history charges to other processes.
        sim.obs_flush(scope);
        shm_obs::counter!("part2.rmr.signaler", signaler_rmrs, scope: scope, pid: s.0);
        shm_obs::counter!(
            "part2.rmr.waiters",
            sim.totals().rmrs - sim.proc_stats(s).rmrs,
            scope: scope
        );
        let newly_erased = erased.difference(&runner.erased).count() as u64;
        shm_obs::counter!("part2.erased", newly_erased, scope: scope);
        shm_obs::counter!("part2.blocked", blocked_set.len() as u64, scope: scope);
    }
    let audit = runner.config().audit.then(|| sim.audit(&runner.spec));
    SignalRun {
        signaler: s,
        signaler_rmrs,
        erased: erased.difference(&runner.erased).copied().collect(),
        blocked: blocked_set.len(),
        survivors: survivors.len(),
        signal_completed,
        post_polls_skipped,
        post_spec,
        distinct_waiters,
        peak_waiters,
        out_of_contract,
        total_rmrs: sim.totals().rmrs,
        participants,
        audit,
    }
}

/// Runs the complete executable lower bound (Part 1 + both Part-2 phases)
/// against `algo` with `cfg.part1.n` processes in the DSM model.
pub fn run_lower_bound(
    algo: &dyn signaling::SignalingAlgorithm,
    cfg: LowerBoundConfig,
) -> LowerBoundReport {
    let mut runner = Part1Runner::new(algo, cfg.part1);
    let part1 = runner.run();
    let n = cfg.part1.n;
    let mut timings = PhaseTimings {
        record_ms: part1.record_ms,
        rounds_ms: part1.rounds_ms,
        ..PhaseTimings::default()
    };
    let (chase, discovery) = if part1.stabilized && !part1.stable.is_empty() {
        let s = cfg.force_signaler.or_else(|| choose_signaler(&runner, n));
        match s {
            Some(s) => {
                let t = Instant::now();
                let chase = run_signal_phase(&runner, s, true, cfg.max_chase_steps);
                timings.chase_ms = t.elapsed().as_secs_f64() * 1e3;
                let t = Instant::now();
                let discovery = run_signal_phase(&runner, s, false, cfg.max_chase_steps);
                timings.discovery_ms = t.elapsed().as_secs_f64() * 1e3;
                (Some(chase), Some(discovery))
            }
            None => (None, None),
        }
    } else {
        (None, None)
    };
    LowerBoundReport {
        algorithm: algo.name().to_owned(),
        n,
        part1,
        chase,
        discovery,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signaling::algorithms::{Broadcast, CcFlag, FixedSignaler, QueueSignaling, SingleWaiter};

    #[test]
    fn broadcast_chase_forces_n_rmrs_on_the_signaler() {
        let report = run_lower_bound(&Broadcast, LowerBoundConfig::for_n(32));
        assert!(report.part1.stabilized);
        let chase = report.chase.expect("stabilized");
        // Signal() writes all 31 other flags: each is an RMR, and each
        // stable waiter is erased just before its flag is touched.
        assert_eq!(chase.signaler_rmrs, 31);
        assert!(chase.erased.len() >= 30, "erased {}", chase.erased.len());
        assert_eq!(chase.post_spec, Ok(()));
        // Amortized cost explodes: ~31 RMRs over a handful of participants.
        assert!(
            chase.amortized_rmrs() > 5.0,
            "amortized {}",
            chase.amortized_rmrs()
        );
    }

    #[test]
    fn broadcast_discovery_is_safe_but_expensive() {
        let report = run_lower_bound(&Broadcast, LowerBoundConfig::for_n(16));
        let disc = report.discovery.expect("stabilized");
        assert_eq!(disc.signaler_rmrs, 15);
        assert_eq!(disc.post_spec, Ok(()), "broadcast is correct");
        assert_eq!(disc.survivors, 15);
    }

    #[test]
    fn cc_flag_never_stabilizes_so_waiters_pay() {
        let report = run_lower_bound(&CcFlag, LowerBoundConfig::for_n(16));
        assert!(!report.part1.stabilized);
        assert!(report.chase.is_none());
        // Amortized cost from Part 1 alone grows with the round budget.
        assert!(
            report.worst_amortized() >= 4.0,
            "got {}",
            report.worst_amortized()
        );
    }

    #[test]
    fn single_waiter_misuse_is_out_of_contract_not_a_violation() {
        // SingleWaiter's contract is ≤ 1 concurrent waiter; the adversary
        // drives n−1 of them, so the discovery run's Specification 4.1
        // failure (Signal() completes, hidden waiters still poll false) must
        // be classified as out-of-contract — the algorithm is correct within
        // its §7 premise — and not reported as a violation.
        let report = run_lower_bound(&SingleWaiter, LowerBoundConfig::for_n(64));
        assert!(report.part1.stabilized);
        let disc = report.discovery.as_ref().expect("stabilized");
        assert!(
            disc.post_spec.is_err(),
            "the spec failure itself is still observed: {disc:?}"
        );
        assert!(
            disc.distinct_waiters > 1,
            "waiters: {}",
            disc.distinct_waiters
        );
        assert!(report.out_of_contract());
        assert!(!report.found_violation(), "report: {report:?}");
    }

    #[test]
    fn unbounded_contract_algorithms_are_never_out_of_contract() {
        let report = run_lower_bound(&Broadcast, LowerBoundConfig::for_n(16));
        assert!(!report.out_of_contract());
        let disc = report.discovery.expect("stabilized");
        assert!(
            disc.distinct_waiters > 1,
            "the adversary drives many waiters: {}",
            disc.distinct_waiters
        );
    }

    #[test]
    fn audited_lower_bound_runs_clean() {
        for (algo, name) in [
            (
                &Broadcast as &dyn signaling::SignalingAlgorithm,
                "broadcast",
            ),
            (&SingleWaiter, "single-waiter"),
        ] {
            let mut cfg = LowerBoundConfig::for_n(24);
            cfg.part1.audit = true;
            let report = run_lower_bound(algo, cfg);
            assert_eq!(
                report.audit_clean(),
                Some(true),
                "{name}: {:?}",
                report.first_divergence()
            );
            assert!(report.part1.audit.is_some());
        }
    }

    #[test]
    fn queue_faa_defeats_the_adversary() {
        let report = run_lower_bound(&QueueSignaling, LowerBoundConfig::for_n(64));
        assert!(report.part1.stabilized);
        let chase = report.chase.expect("stabilized");
        // The chase cannot hide registered waiters: erasing them would
        // change other processes' FAA tickets, so certification blocks it.
        assert!(chase.blocked > 0, "FAA must block erasures");
        assert_eq!(chase.post_spec, Ok(()));
        let disc = report.discovery.expect("stabilized");
        assert_eq!(disc.post_spec, Ok(()));
        // Amortized cost stays modest: the signaler pays O(registered), and
        // every registered waiter is a participant.
        assert!(
            disc.amortized_rmrs() <= 8.0,
            "amortized {}",
            disc.amortized_rmrs()
        );
    }

    #[test]
    fn fixed_signaler_with_its_intended_host_is_cheap() {
        // Ablation: force the chase to use the algorithm's fixed signaler
        // p0. Registration flags live in p0's module, so the scan is local
        // and the chase achieves nothing — the restricted variant escapes
        // the bound (§7).
        let n = 32;
        let mut cfg = LowerBoundConfig::for_n(n);
        cfg.force_signaler = Some(ProcId(0));
        let report = run_lower_bound(
            &FixedSignaler {
                signaler: ProcId(0),
            },
            cfg,
        );
        assert!(report.part1.stabilized);
        let disc = report.discovery.expect("stabilized");
        assert_eq!(disc.post_spec, Ok(()));
        // Signaler cost: 1 (global S) + one write per surviving registered
        // waiter — O(participants), not O(N): amortized O(1).
        assert!(
            disc.amortized_rmrs() <= 4.0,
            "amortized {}",
            disc.amortized_rmrs()
        );
    }

    #[test]
    fn chase_erasures_leave_no_trace_of_erased_waiters() {
        let report = run_lower_bound(&Broadcast, LowerBoundConfig::for_n(16));
        let chase = report.chase.expect("stabilized");
        assert!(!chase.erased.is_empty());
        // Erased + survivors partition the stable set (minus the signaler,
        // which here is itself drawn from the stable population).
        let s_in_stable = usize::from(report.part1.stable.contains(&chase.signaler));
        assert_eq!(
            chase.erased.len() + chase.survivors,
            report.part1.stable.len() - s_in_stable,
            "every stable waiter is either erased or a survivor"
        );
    }

    #[test]
    fn lower_bound_run_is_deterministic() {
        let run = || {
            let r = run_lower_bound(&Broadcast, LowerBoundConfig::for_n(24));
            let c = r.chase.unwrap();
            (c.signaler_rmrs, c.erased, c.total_rmrs, c.participants)
        };
        assert_eq!(run(), run());
    }
}
