//! The simplified Ω(W) lower bound for the fixed-waiters variant (§7).
//!
//! The paper sketches it thus: let all W fixed waiters poll until stable,
//! complete their pending polls, then run a solo `Signal()`. Before the
//! call terminates, the signaler must write remotely to the local memory of
//! each waiter (except possibly itself) — otherwise some waiter's next
//! `Poll()` incorrectly repeats `false`. Hence Ω(W) RMRs for the signaler
//! when all W waiters participate.
//!
//! This module measures that quantity directly: it stabilizes the waiter
//! population, runs `Signal()` solo, counts the signaler's RMRs and — the
//! teeth of the argument — verifies with post-signal polls that skipping a
//! waiter is impossible without a Specification 4.1 violation.

use shm_sim::{
    Call, CallSource, CostModel, MemLayout, ProcId, RepeatUntil, ScriptedCall, SimSpec, Simulator,
    TransitionPeek,
};
use signaling::{check_polling, kinds, SignalingAlgorithm, SpecViolation};
use std::sync::Arc;

/// Measured cost of signaling a fixed, fully participating waiter set.
#[derive(Clone, Debug)]
pub struct FixedWaitersCost {
    /// Number of fixed waiters that participated.
    pub w: usize,
    /// RMRs the signaler incurred in its solo `Signal()`.
    pub signaler_rmrs: u64,
    /// RMRs incurred per waiter while stabilizing (max over waiters).
    pub max_waiter_rmrs: u64,
    /// Safety verdict after every waiter performed one more `Poll()`.
    pub post_spec: Result<(), SpecViolation>,
    /// Total RMRs in the history.
    pub total_rmrs: u64,
    /// Amortized RMRs over the W+1 participants.
    pub amortized: f64,
}

/// Stabilizes waiters `0..w`, then runs a solo `Signal()` by process `w`,
/// then has every waiter poll once more; returns the measured costs.
///
/// Works for any [`SignalingAlgorithm`]; the E7 experiment instantiates it
/// with both [`signaling::algorithms::FixedWaiters`] modes to reproduce the
/// Ω(W) signaler cost with equality.
///
/// # Panics
///
/// Panics if a waiter fails to stabilize within a generous step budget
/// (i.e. the algorithm busy-waits remotely and is out of scope for this
/// measurement), or if `w + 1` exceeds the algorithm's process bound.
pub fn fixed_waiters_signaler_cost(algo: &dyn SignalingAlgorithm, w: usize) -> FixedWaitersCost {
    let n = w + 1;
    let signaler = ProcId(w as u32);
    let mut layout = MemLayout::new();
    let instance = algo.instantiate(&mut layout, n);
    let sources: Vec<Box<dyn CallSource>> = (0..n)
        .map(|i| {
            let pid = ProcId(i as u32);
            let inst = Arc::clone(&instance);
            let poll =
                ScriptedCall::new(kinds::POLL, "Poll", Arc::new(move || inst.poll_call(pid)));
            Box::new(RepeatUntil::new(poll, 1)) as Box<dyn CallSource>
        })
        .collect();
    let spec = SimSpec {
        layout,
        sources,
        model: CostModel::Dsm,
    };
    let mut sim = Simulator::new(&spec);

    // Stabilize every waiter: run it solo until it has completed 3 polls
    // with no RMR in the last one (all shipped algorithms are per-call
    // periodic, so one RMR-free complete poll implies stability).
    for i in 0..w {
        let pid = ProcId(i as u32);
        let mut stable_polls = 0;
        let mut guard = 0u64;
        while stable_polls < 3 {
            let rmrs_before = sim.proc_stats(pid).rmrs;
            let calls_before = sim.proc_stats(pid).calls_completed;
            while sim.proc_stats(pid).calls_completed == calls_before {
                let _ = sim.step(pid);
                guard += 1;
                assert!(guard < 1_000_000, "{pid} did not complete a poll");
            }
            if sim.proc_stats(pid).rmrs == rmrs_before {
                stable_polls += 1;
            } else {
                stable_polls = 0;
            }
        }
    }
    let max_waiter_rmrs = (0..w)
        .map(|i| sim.proc_stats(ProcId(i as u32)).rmrs)
        .max()
        .unwrap_or(0);

    // Solo Signal() by the signaler.
    let rmrs_before = sim.proc_stats(signaler).rmrs;
    sim.inject_call(
        signaler,
        Call::new(kinds::SIGNAL, "Signal", instance.signal_call(signaler)),
    );
    let mut guard = 0u64;
    loop {
        guard += 1;
        assert!(guard < 10_000_000, "Signal() did not terminate solo");
        match sim.peek_transition(signaler) {
            TransitionPeek::Return { kind, .. } => {
                let _ = sim.step(signaler);
                if kind == kinds::SIGNAL {
                    break;
                }
            }
            TransitionPeek::NotRunnable | TransitionPeek::WillTerminate => break,
            TransitionPeek::Access(_) => {
                let _ = sim.step(signaler);
            }
        }
    }
    let signaler_rmrs = sim.proc_stats(signaler).rmrs - rmrs_before;

    // Every waiter polls once more; all must return true now.
    for i in 0..w {
        let pid = ProcId(i as u32);
        let calls_before = sim.proc_stats(pid).calls_completed;
        let mut guard = 0u64;
        while sim.proc_stats(pid).calls_completed == calls_before && sim.is_runnable(pid) {
            let _ = sim.step(pid);
            guard += 1;
            assert!(guard < 1_000_000, "{pid} post-poll did not complete");
        }
    }
    let post_spec = check_polling(sim.history());
    let total_rmrs = sim.totals().rmrs;
    FixedWaitersCost {
        w,
        signaler_rmrs,
        max_waiter_rmrs,
        post_spec,
        total_rmrs,
        amortized: total_rmrs as f64 / (w as f64 + 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signaling::algorithms::{Broadcast, FixedWaiters, QueueSignaling};

    #[test]
    fn eager_fixed_waiters_signaler_pays_exactly_w() {
        for w in [2usize, 8, 32] {
            let waiters: Vec<ProcId> = (0..w as u32).map(ProcId).collect();
            let algo = FixedWaiters::eager(waiters);
            let cost = fixed_waiters_signaler_cost(&algo, w);
            assert_eq!(
                cost.signaler_rmrs, w as u64,
                "one remote flag write per waiter"
            );
            assert_eq!(cost.post_spec, Ok(()));
            assert_eq!(cost.max_waiter_rmrs, 0, "eager waiters poll locally");
        }
    }

    #[test]
    fn awaiting_fixed_waiters_signaler_pays_exactly_w() {
        let w: u32 = 16;
        let waiters: Vec<ProcId> = (0..w).map(ProcId).collect();
        let algo = FixedWaiters::awaiting(waiters, ProcId(w));
        let cost = fixed_waiters_signaler_cost(&algo, w as usize);
        assert_eq!(
            cost.signaler_rmrs,
            u64::from(w),
            "participation spins are local"
        );
        assert_eq!(cost.post_spec, Ok(()));
        assert!(cost.amortized <= 3.0);
    }

    #[test]
    fn broadcast_matches_the_bound_with_w_equals_n_minus_1() {
        let cost = fixed_waiters_signaler_cost(&Broadcast, 12);
        assert_eq!(cost.signaler_rmrs, 12);
        assert_eq!(cost.post_spec, Ok(()));
    }

    #[test]
    fn queue_signaler_pays_per_registered_waiter() {
        let w = 10;
        let cost = fixed_waiters_signaler_cost(&QueueSignaling, w);
        // G write + tail read + w slot reads + w V writes.
        assert_eq!(cost.signaler_rmrs, 2 + 2 * w as u64);
        assert_eq!(cost.post_spec, Ok(()));
        assert!(cost.signaler_rmrs >= w as u64, "the Ω(W) bound holds");
    }

    #[test]
    fn signaler_cost_scales_linearly_in_w() {
        let waiters8: Vec<ProcId> = (0..8).map(ProcId).collect();
        let waiters32: Vec<ProcId> = (0..32).map(ProcId).collect();
        let c8 = fixed_waiters_signaler_cost(&FixedWaiters::eager(waiters8), 8);
        let c32 = fixed_waiters_signaler_cost(&FixedWaiters::eager(waiters32), 32);
        assert_eq!(c32.signaler_rmrs, 4 * c8.signaler_rmrs);
    }
}
