//! The Corollary 6.14 transformation: replace RMW primitives by read/write
//! implementations.
//!
//! Corollary 6.14 extends Theorem 6.2 from reads/writes to algorithms that
//! also use CAS or LL/SC, by "replacing the variables accessed via CAS or
//! LL/SC with the locally-accessible O(1)-RMR implementations of these
//! primitives" \[11, 12\] — implementations built from reads and writes,
//! which necessarily introduce busy-waiting (Herlihy's consensus hierarchy
//! forbids wait-free ones).
//!
//! We reproduce the transformation with a simpler substitute for the
//! \[11, 12\] machinery: a **mutex-protected read-modify-write** where the
//! mutex is the Yang–Anderson tournament lock — itself built from reads
//! and writes only. [`RwEmulation`] wraps any step machine and rewrites
//! every CAS/FAA/FAS/TAS it issues into
//! `acquire; read; (write); release` sequences of plain reads and writes.
//! [`ReadWriteTransformed`] lifts the rewrite to whole signaling
//! algorithms.
//!
//! Substitution note (also recorded in `DESIGN.md`): the paper's cited
//! implementations cost O(1) RMRs per operation; ours costs O(log N) and
//! serializes all emulated operations through one lock. Both are in the
//! read/write class and both introduce busy-waiting, which is what the
//! corollary's argument needs; the weaker constants only make *upper*
//! bounds worse, never the lower-bound demonstration unsound.
//!
//! Atomicity caveat: plain reads and writes issued by the wrapped
//! algorithm bypass the lock. That is sound for the algorithms shipped
//! here (their RMW targets are only read, never plainly written, by other
//! operations, and a racing plain read observing a pre- or post-RMW value
//! is linearizable either way); a general-purpose transformer would need
//! the full \[11, 12\] construction.

use shm_mutex::{MutexAlgorithm, MutexInstance, TournamentLock};
use shm_sim::{Op, ProcId, ProcedureCall, Step, Word};
use signaling::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
use std::sync::Arc;

/// A signaling algorithm with every RMW primitive rewritten to reads and
/// writes via a tournament-lock-protected emulation.
pub struct ReadWriteTransformed {
    inner: Box<dyn SignalingAlgorithm>,
    name: &'static str,
}

impl ReadWriteTransformed {
    /// Wraps `inner`. The display name is leaked once per wrapper (tooling
    /// convenience; wrappers are created a handful of times per process).
    #[must_use]
    pub fn new(inner: Box<dyn SignalingAlgorithm>) -> Self {
        let name = Box::leak(format!("{}+rw", inner.name()).into_boxed_str());
        ReadWriteTransformed { inner, name }
    }
}

impl SignalingAlgorithm for ReadWriteTransformed {
    fn name(&self) -> &'static str {
        self.name
    }

    fn primitive_class(&self) -> PrimitiveClass {
        PrimitiveClass::ReadWrite
    }

    fn instantiate(&self, layout: &mut shm_sim::MemLayout, n: usize) -> Arc<dyn AlgorithmInstance> {
        let lock = TournamentLock.instantiate(layout, n);
        let inner = self.inner.instantiate(layout, n);
        Arc::new(TransformedInst { lock, inner })
    }
}

struct TransformedInst {
    lock: Arc<dyn MutexInstance>,
    inner: Arc<dyn AlgorithmInstance>,
}

impl AlgorithmInstance for TransformedInst {
    fn signal_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(RwEmulation::new(
            self.inner.signal_call(pid),
            Arc::clone(&self.lock),
            pid,
        ))
    }
    fn poll_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(RwEmulation::new(
            self.inner.poll_call(pid),
            Arc::clone(&self.lock),
            pid,
        ))
    }
    fn wait_call(&self, pid: ProcId) -> Option<Box<dyn ProcedureCall>> {
        self.inner.wait_call(pid).map(|w| {
            Box::new(RwEmulation::new(w, Arc::clone(&self.lock), pid)) as Box<dyn ProcedureCall>
        })
    }
}

enum EmuState {
    /// Initial state: drive the inner machine (with no op result yet).
    DriveInner,
    /// The inner machine's plain op is in flight; its result goes back in.
    ForwardPlain,
    /// Running the lock's acquire call; then emulate `pending`.
    Acquire {
        pending: Op,
        call: Box<dyn ProcedureCall>,
    },
    /// The read of the target cell is in flight.
    ReadOld { pending: Op },
    /// The emulation's write is in flight; then release and feed `result`.
    WriteNew { result: Word },
    /// Running the lock's release call; then feed `result` to the inner.
    Release {
        result: Word,
        call: Box<dyn ProcedureCall>,
    },
}

/// Step-machine wrapper rewriting RMW operations into lock-protected
/// read/write sequences. See the module docs.
pub struct RwEmulation {
    inner: Box<dyn ProcedureCall>,
    lock: Arc<dyn MutexInstance>,
    me: ProcId,
    state: EmuState,
}

impl RwEmulation {
    /// Wraps one procedure call.
    #[must_use]
    pub fn new(inner: Box<dyn ProcedureCall>, lock: Arc<dyn MutexInstance>, me: ProcId) -> Self {
        RwEmulation {
            inner,
            lock,
            me,
            state: EmuState::DriveInner,
        }
    }

    /// Advances the inner machine with `input` and dispatches on what it
    /// wants to do. May recurse once through a zero-op lock call.
    fn drive_inner(&mut self, input: Option<Word>) -> Step {
        match self.inner.step(input) {
            Step::Return(v) => Step::Return(v),
            Step::Op(op) => match op {
                Op::Read(_) | Op::Write(..) => {
                    self.state = EmuState::ForwardPlain;
                    Step::Op(op)
                }
                Op::Ll(_) | Op::Sc(..) => {
                    unimplemented!(
                        "RwEmulation covers CAS/FAA/FAS/TAS; extend it for LL/SC \
                         (the shipped algorithms do not use LL/SC)"
                    )
                }
                rmw => {
                    let mut call = self.lock.acquire_call(self.me);
                    match call.step(None) {
                        Step::Op(first) => {
                            self.state = EmuState::Acquire { pending: rmw, call };
                            Step::Op(first)
                        }
                        Step::Return(_) => {
                            // Zero-op acquire (degenerate lock): go straight
                            // to the read.
                            self.state = EmuState::ReadOld { pending: rmw };
                            Step::Op(Op::Read(rmw.addr()))
                        }
                    }
                }
            },
        }
    }

    /// Computes the RMW's result and optional new value from the old value.
    fn emulate(op: Op, old: Word) -> (Word, Option<Word>) {
        match op {
            Op::Cas(_, expected, new) => {
                if old == expected {
                    (old, Some(new))
                } else {
                    (old, None)
                }
            }
            Op::Faa(_, d) => (old, Some(old.wrapping_add(d))),
            Op::Fas(_, w) => (old, Some(w)),
            Op::Tas(_) => (old, Some(1)),
            other => unreachable!("not an emulated RMW: {other}"),
        }
    }

    fn start_release(&mut self, result: Word) -> Step {
        let mut call = self.lock.release_call(self.me);
        match call.step(None) {
            Step::Op(first) => {
                self.state = EmuState::Release { result, call };
                Step::Op(first)
            }
            Step::Return(_) => self.drive_with(result),
        }
    }

    fn drive_with(&mut self, result: Word) -> Step {
        self.drive_inner(Some(result))
    }
}

impl ProcedureCall for RwEmulation {
    fn step(&mut self, last: Option<Word>) -> Step {
        match std::mem::replace(&mut self.state, EmuState::DriveInner) {
            // Only reachable as the initial state (all other transitions
            // into the inner machine happen inside `drive_inner`/
            // `drive_with` within a single step).
            EmuState::DriveInner => self.drive_inner(None),
            EmuState::ForwardPlain => self.drive_inner(last),
            EmuState::Acquire { pending, mut call } => match call.step(last) {
                Step::Op(op) => {
                    self.state = EmuState::Acquire { pending, call };
                    Step::Op(op)
                }
                Step::Return(_) => {
                    self.state = EmuState::ReadOld { pending };
                    Step::Op(Op::Read(pending.addr()))
                }
            },
            EmuState::ReadOld { pending } => {
                let old = last.expect("read result");
                let (result, new) = Self::emulate(pending, old);
                match new {
                    Some(v) => {
                        self.state = EmuState::WriteNew { result };
                        Step::Op(Op::Write(pending.addr(), v))
                    }
                    None => self.start_release(result),
                }
            }
            EmuState::WriteNew { result } => self.start_release(result),
            EmuState::Release { result, mut call } => match call.step(last) {
                Step::Op(op) => {
                    self.state = EmuState::Release { result, call };
                    Step::Op(op)
                }
                Step::Return(_) => self.drive_with(result),
            },
        }
    }

    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(RwEmulation {
            inner: self.inner.clone_call(),
            lock: Arc::clone(&self.lock),
            me: self.me,
            state: self.state.clone(),
        })
    }
}

impl Clone for EmuState {
    fn clone(&self) -> Self {
        match self {
            EmuState::DriveInner => EmuState::DriveInner,
            EmuState::ForwardPlain => EmuState::ForwardPlain,
            EmuState::Acquire { pending, call } => EmuState::Acquire {
                pending: *pending,
                call: call.clone_call(),
            },
            EmuState::ReadOld { pending } => EmuState::ReadOld { pending: *pending },
            EmuState::WriteNew { result } => EmuState::WriteNew { result: *result },
            EmuState::Release { result, call } => EmuState::Release {
                result: *result,
                call: call.clone_call(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shm_sim::{CostModel, Event, SeededRandom};
    use signaling::algorithms::{CasList, QueueSignaling};
    use signaling::{run_scenario, Role, Scenario};

    fn roles(w: usize) -> Vec<Role> {
        let mut r = vec![Role::waiter(); w];
        r.push(Role::signaler());
        r
    }

    #[test]
    fn transformed_cas_list_satisfies_spec() {
        let algo = ReadWriteTransformed::new(Box::new(CasList));
        for seed in 0..25 {
            let scenario = Scenario {
                algorithm: &algo,
                roles: roles(5),
                model: CostModel::Dsm,
            };
            let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 5_000_000);
            assert!(out.completed, "seed {seed}");
            assert_eq!(out.polling_spec, Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn transformed_queue_satisfies_spec() {
        let algo = ReadWriteTransformed::new(Box::new(QueueSignaling));
        for seed in 0..25 {
            let scenario = Scenario {
                algorithm: &algo,
                roles: roles(5),
                model: CostModel::Dsm,
            };
            let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 5_000_000);
            assert!(out.completed, "seed {seed}");
            assert_eq!(out.polling_spec, Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn transformed_execution_uses_reads_and_writes_only() {
        let algo = ReadWriteTransformed::new(Box::new(CasList));
        assert_eq!(algo.primitive_class(), PrimitiveClass::ReadWrite);
        let scenario = Scenario {
            algorithm: &algo,
            roles: roles(4),
            model: CostModel::Dsm,
        };
        let out = run_scenario(&scenario, &mut SeededRandom::new(3), 5_000_000);
        assert!(out.completed);
        for e in out.sim.history().events() {
            if let Event::Access { op, .. } = e {
                assert!(op.is_read_write(), "leaked primitive: {op}");
            }
        }
    }

    #[test]
    fn emulated_cas_agrees_with_native_cas_results() {
        // Same algorithm, same fair schedule: the transformed version's
        // poll/signal return values agree with the native version's.
        let native = Scenario {
            algorithm: &CasList,
            roles: roles(4),
            model: CostModel::Dsm,
        };
        let transformed_algo = ReadWriteTransformed::new(Box::new(CasList));
        let transformed = Scenario {
            algorithm: &transformed_algo,
            roles: roles(4),
            model: CostModel::Dsm,
        };
        // Round-robin gives both versions the same call-level structure.
        let a = run_scenario(&native, &mut shm_sim::RoundRobin::new(), 5_000_000);
        let b = run_scenario(&transformed, &mut shm_sim::RoundRobin::new(), 5_000_000);
        assert!(a.completed && b.completed);
        assert_eq!(a.polling_spec, Ok(()));
        assert_eq!(b.polling_spec, Ok(()));
        // Both deliver the signal to every waiter (same number of true polls).
        let trues = |sim: &shm_sim::Simulator| {
            sim.history()
                .calls()
                .iter()
                .filter(|c| c.kind == signaling::kinds::POLL && c.return_value == Some(1))
                .count()
        };
        assert_eq!(trues(&a.sim), trues(&b.sim));
    }

    #[test]
    fn transformed_rmw_cost_is_log_n_not_constant() {
        // One registration under no contention: native CAS costs 1 RMR;
        // the emulation pays the lock's Θ(log N) climb.
        let native_cost = |algo: &dyn SignalingAlgorithm, n: usize| {
            let mut r = vec![Role::Bystander; n - 2];
            r.push(Role::Waiter { max_polls: Some(1) });
            r.push(Role::Bystander);
            let scenario = Scenario {
                algorithm: algo,
                roles: r,
                model: CostModel::Dsm,
            };
            let out = run_scenario(&scenario, &mut shm_sim::RoundRobin::new(), 5_000_000);
            assert!(out.completed);
            out.sim.proc_stats(ProcId(n as u32 - 2)).rmrs
        };
        let plain = native_cost(&CasList, 16);
        let t16 = ReadWriteTransformed::new(Box::new(CasList));
        let t64 = ReadWriteTransformed::new(Box::new(CasList));
        let emu16 = native_cost(&t16, 16);
        let emu64 = native_cost(&t64, 64);
        assert!(
            emu16 > plain,
            "emulation must cost more ({emu16} vs {plain})"
        );
        assert!(emu64 > emu16, "deeper tree, more RMRs");
        assert!(emu64 < emu16 + 20, "growth is logarithmic, not linear");
    }
}
