//! # rmr-adversary: the §6 lower bound, executable
//!
//! Theorem 6.2 of Golab (PODC 2011): no deterministic terminating algorithm
//! solves the signaling problem (polling semantics, one signaler, many
//! waiters with unknown IDs) in the DSM model with O(1) *amortized* RMRs
//! using reads, writes, CAS or LL/SC. The proof is constructive — an
//! adversary builds a bad history — and this crate *runs that adversary*
//! against concrete algorithms:
//!
//! * **Part 1** ([`part1`]): starting from N waiters polling, rounds of
//!   Kim–Anderson-style **erasing** and **rolling forward** keep processes
//!   mutually invisible until the surviving waiters *stabilize* (busy-wait
//!   on local memory only).
//! * **Part 2** ([`part2`]): a signaler whose memory module nobody wrote is
//!   sent on the **wild goose chase**: every time its `Signal()` is about to
//!   see or touch a surviving waiter, that waiter is erased and the call
//!   restarted — forcing one RMR per stable waiter, or a safety violation.
//!
//! Mechanized soundness: erasing is implemented as *replay of the recorded
//! schedule without the erased process's steps*, and every erasure is
//! certified by checking that all survivors' history **projections** are
//! unchanged (Lemma 6.7's conclusion, checked rather than assumed). When an
//! algorithm uses Fetch-And-Add, erasures fail this certification — FAA
//! leaks information without any process "seeing" another — and the
//! adversary records the defeat instead of cheating: that is exactly how §7's
//! queue-based algorithm escapes the bound, reproduced in experiment E4.
//!
//! The simplified Ω(W) bound for the fixed-waiters variant (§7) is in
//! [`fixed_w`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod fixed_w;
pub mod graph;
pub mod part1;
pub mod part2;
pub mod report;
pub mod transform;

pub use fixed_w::{fixed_waiters_signaler_cost, FixedWaitersCost};
pub use graph::ConflictGraph;
pub use part1::{Part1Config, Part1Outcome, Part1Runner};
pub use part2::{run_lower_bound, LowerBoundConfig, LowerBoundReport, SignalRun};
pub use report::{PhaseTimings, RoundReport};
pub use transform::{ReadWriteTransformed, RwEmulation};
