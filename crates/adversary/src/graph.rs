//! Conflict graphs and independent sets.
//!
//! The proof's rounds resolve conflicts ("p's next RMR sees or touches q")
//! by keeping an independent set of the conflict graph and erasing the rest.
//! Turán's theorem guarantees an independent set of size ≥ n/(d̄+1) where d̄
//! is the average degree; the classic greedy (repeatedly take a
//! minimum-degree vertex, discard its neighbours) achieves that bound, which
//! the proof uses with d̄ ≤ 4 (sees/touches graph) and d̄ ≤ 2 (prior-writer
//! graph).

use shm_sim::ProcId;
use std::collections::{BTreeMap, BTreeSet};

/// An undirected conflict graph over process IDs.
#[derive(Clone, Debug, Default)]
pub struct ConflictGraph {
    adj: BTreeMap<ProcId, BTreeSet<ProcId>>,
}

impl ConflictGraph {
    /// Creates a graph with the given vertices and no edges.
    pub fn new<I: IntoIterator<Item = ProcId>>(vertices: I) -> Self {
        let adj = vertices.into_iter().map(|v| (v, BTreeSet::new())).collect();
        ConflictGraph { adj }
    }

    /// Adds an undirected edge; vertices are added implicitly. Self-loops
    /// are ignored.
    pub fn add_edge(&mut self, p: ProcId, q: ProcId) {
        if p == q {
            return;
        }
        self.adj.entry(p).or_default().insert(q);
        self.adj.entry(q).or_default().insert(p);
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Average degree (0 for the empty graph).
    #[must_use]
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.adj.len() as f64
        }
    }

    /// Greedy maximum independent set: repeatedly pick a minimum-degree
    /// vertex and delete its neighbourhood.
    ///
    /// Guaranteed size ≥ n/(d̄+1) (Turán bound), which the unit and property
    /// tests verify.
    #[must_use]
    pub fn greedy_independent_set(&self) -> BTreeSet<ProcId> {
        let mut degree: BTreeMap<ProcId, usize> =
            self.adj.iter().map(|(&v, ns)| (v, ns.len())).collect();
        let mut alive: BTreeSet<ProcId> = self.adj.keys().copied().collect();
        let mut chosen = BTreeSet::new();
        while let Some((&v, _)) = degree
            .iter()
            .filter(|(v, _)| alive.contains(v))
            .min_by_key(|&(v, &d)| (d, *v))
        {
            chosen.insert(v);
            alive.remove(&v);
            let neighbours: Vec<ProcId> = self.adj[&v].iter().copied().collect();
            for u in neighbours {
                if alive.remove(&u) {
                    // Removing u lowers its alive neighbours' degrees.
                    for w in &self.adj[&u] {
                        if let Some(d) = degree.get_mut(w) {
                            *d = d.saturating_sub(1);
                        }
                    }
                }
            }
            degree.remove(&v);
        }
        chosen
    }

    /// Checks that `set` is independent in this graph.
    #[must_use]
    pub fn is_independent(&self, set: &BTreeSet<ProcId>) -> bool {
        set.iter().all(|v| {
            self.adj
                .get(v)
                .is_none_or(|ns| ns.iter().all(|u| !set.contains(u)))
        })
    }

    /// Exact maximum independent set by branch and bound — exponential, for
    /// cross-checking the greedy on small graphs in tests only.
    #[must_use]
    pub fn exact_max_independent_set(&self) -> BTreeSet<ProcId> {
        fn solve(
            g: &ConflictGraph,
            verts: &[ProcId],
            idx: usize,
            current: &mut BTreeSet<ProcId>,
            best: &mut BTreeSet<ProcId>,
        ) {
            if idx == verts.len() {
                if current.len() > best.len() {
                    *best = current.clone();
                }
                return;
            }
            if current.len() + (verts.len() - idx) <= best.len() {
                return; // prune
            }
            let v = verts[idx];
            let compatible = g.adj[&v].iter().all(|u| !current.contains(u));
            if compatible {
                current.insert(v);
                solve(g, verts, idx + 1, current, best);
                current.remove(&v);
            }
            solve(g, verts, idx + 1, current, best);
        }
        let verts: Vec<ProcId> = self.adj.keys().copied().collect();
        assert!(
            verts.len() <= 24,
            "exact solver is for small test graphs only"
        );
        let mut best = BTreeSet::new();
        solve(self, &verts, 0, &mut BTreeSet::new(), &mut best);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcId {
        ProcId(i)
    }

    #[test]
    fn empty_graph_yields_empty_set() {
        let g = ConflictGraph::default();
        assert!(g.greedy_independent_set().is_empty());
        assert_eq!(g.average_degree(), 0.0);
    }

    #[test]
    fn edgeless_graph_keeps_everything() {
        let g = ConflictGraph::new((0..5).map(p));
        assert_eq!(g.greedy_independent_set().len(), 5);
    }

    #[test]
    fn triangle_keeps_one() {
        let mut g = ConflictGraph::new((0..3).map(p));
        g.add_edge(p(0), p(1));
        g.add_edge(p(1), p(2));
        g.add_edge(p(0), p(2));
        let s = g.greedy_independent_set();
        assert_eq!(s.len(), 1);
        assert!(g.is_independent(&s));
    }

    #[test]
    fn star_keeps_the_leaves() {
        let mut g = ConflictGraph::new((0..6).map(p));
        for i in 1..6 {
            g.add_edge(p(0), p(i));
        }
        let s = g.greedy_independent_set();
        assert_eq!(s.len(), 5, "all leaves survive, hub erased");
        assert!(!s.contains(&p(0)));
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = ConflictGraph::new((0..2).map(p));
        g.add_edge(p(0), p(0));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.greedy_independent_set().len(), 2);
    }

    #[test]
    fn turan_bound_holds_on_a_path() {
        // Path 0-1-2-...-9: greedy should find the 5 odd/even vertices.
        let mut g = ConflictGraph::new((0..10).map(p));
        for i in 0..9 {
            g.add_edge(p(i), p(i + 1));
        }
        let s = g.greedy_independent_set();
        assert!(g.is_independent(&s));
        let bound = (10.0 / (g.average_degree() + 1.0)).ceil() as usize;
        assert!(s.len() >= bound, "{} < Turán bound {bound}", s.len());
        assert_eq!(s.len(), 5, "greedy is optimal on paths");
    }

    #[test]
    fn greedy_matches_exact_on_small_random_graphs() {
        let mut rng = shm_sim::XorShift64::new(99);
        for _ in 0..30 {
            let n = rng.range_usize(4, 12) as u32;
            let mut g = ConflictGraph::new((0..n).map(p));
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.chance(3, 10) {
                        g.add_edge(p(i), p(j));
                    }
                }
            }
            let greedy = g.greedy_independent_set();
            let exact = g.exact_max_independent_set();
            assert!(g.is_independent(&greedy));
            // Greedy need not be optimal, but must meet the Turán bound and
            // never exceed the optimum.
            let turan = (f64::from(n) / (g.average_degree() + 1.0)).floor() as usize;
            assert!(greedy.len() >= turan.max(1));
            assert!(greedy.len() <= exact.len());
        }
    }
}
