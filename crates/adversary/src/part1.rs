//! Part 1 of the lower-bound proof (§6.2), executable.
//!
//! All N processes participate as waiters, repeatedly calling `Poll()`. The
//! runner builds a history round by round:
//!
//! 1. **Advance**: each active, unstable process takes local steps until it
//!    is *about to* perform an RMR (detected with [`shm_sim::Simulator::peek_transition`],
//!    which inspects the deterministic step machine without touching
//!    memory). A process that completes `probe_calls` whole `Poll()` calls
//!    without reaching an RMR is declared **stable** (Definition 6.8,
//!    decided by a bounded solo probe — exact for all algorithms shipped
//!    here, whose per-call behaviour is eventually periodic).
//! 2. **Resolve**: pending RMRs that would *see* or *touch* an active
//!    process (Definitions 6.4/6.5) are resolved by erasing processes —
//!    a greedy independent set of the conflict graph survives (Turán's
//!    theorem, as in the paper). Pending writes to the same variable
//!    trigger the paper's case split: with ⌊√X⌋ writers on one variable the
//!    **roll-forward** case applies (apply those writes, roll the last
//!    writer forward to completion, erasing whomever it meets); otherwise
//!    the **erasing** case keeps one writer per variable and resolves
//!    prior-writer conflicts (regularity condition 3) with a second
//!    independent set.
//! 3. **Apply**: surviving pending reads, then writes, are executed.
//!
//! Every erasure is implemented as *filtered replay* of the recorded
//! schedule and certified by survivor-projection equality (Lemma 6.7). When
//! certification fails — possible only with primitives outside the
//! read/write/CAS/LLSC class, such as FAA — the erasure is abandoned and
//! counted in [`RoundReport::blocked_erasures`].
//!
//! The loop ends when every active process is stable (proceed to Part 2),
//! or after `max_rounds` rounds (the algorithm never stabilizes — its
//! waiters pay unbounded RMRs themselves, the other horn of the bound).

use crate::graph::ConflictGraph;
use crate::report::RoundReport;
use shm_sim::{
    CostModel, Op, ProcId, RepeatUntil, ScriptedCall, SimSpec, Simulator, StepReport,
    TransitionPeek,
};
use signaling::{kinds, AlgorithmInstance, SignalingAlgorithm};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Tuning knobs for the Part-1 construction.
#[derive(Clone, Copy, Debug)]
pub struct Part1Config {
    /// Number of processes (the paper's N).
    pub n: usize,
    /// Maximum rounds before giving up on stabilization (the paper's c; our
    /// algorithms stabilize within 3 rounds or never).
    pub max_rounds: usize,
    /// Complete `Poll()` calls without an RMR required to declare a process
    /// stable.
    pub probe_calls: u64,
    /// Local steps without an RMR after which a process that has *not*
    /// completed a call is declared stable anyway ("parked"): it busy-waits
    /// on local memory mid-call, which satisfies Definition 6.8 (a solo run
    /// incurs zero RMRs) without ever reaching a call boundary. Lock-based
    /// algorithms — e.g. the Corollary 6.14 read/write transformation —
    /// park waiters like this.
    pub max_local_steps: u64,
    /// Steps between simulator checkpoints for incremental replay (0
    /// disables checkpointing; only meaningful with `incremental`).
    pub checkpoint_interval: usize,
    /// Use the incremental replay engine ([`Simulator::erase_certified`])
    /// for erasures. When `false`, every erasure is certified by a
    /// from-scratch replay plus full projection comparison — the reference
    /// path the incremental one is tested against.
    pub incremental: bool,
    /// Run the differential audit ([`Simulator::audit`]) over the final
    /// history of each phase: a naive shadow executor re-runs the recorded
    /// schedule under reference implementations of all four cost models and
    /// diffs every charge, cache state and memory image against the
    /// incremental path. Expensive (full re-execution × 4 models); off by
    /// default.
    pub audit: bool,
}

impl Default for Part1Config {
    fn default() -> Self {
        Part1Config {
            n: 64,
            max_rounds: 8,
            probe_calls: 3,
            max_local_steps: 4_096,
            checkpoint_interval: 128,
            incremental: true,
            audit: false,
        }
    }
}

/// Result of running Part 1.
#[derive(Clone, Debug)]
pub struct Part1Outcome {
    /// Per-round reports.
    pub rounds: Vec<RoundReport>,
    /// Whether every surviving active process stabilized.
    pub stabilized: bool,
    /// The stable survivors (the waiters Part 2 will hide from the signaler).
    pub stable: BTreeSet<ProcId>,
    /// Rolled-forward processes (completed a call and terminated).
    pub finished: BTreeSet<ProcId>,
    /// Erased processes.
    pub erased: BTreeSet<ProcId>,
    /// Stable processes that are *parked*: busy-waiting on local memory in
    /// the middle of a call (they can never complete a poll solo; see
    /// [`Part1Config::max_local_steps`]).
    pub parked: BTreeSet<ProcId>,
    /// Total erasures rejected by projection certification.
    pub blocked_erasures: usize,
    /// Total RMRs in the constructed history.
    pub total_rmrs: u64,
    /// Number of processes that took at least one step.
    pub participants: usize,
    /// Whether the constructed history is regular (Definition 6.6, with the
    /// adversary's finished set).
    pub regular: bool,
    /// Wall-clock milliseconds spent advancing processes (recording steps).
    pub record_ms: f64,
    /// Wall-clock milliseconds spent on round machinery other than
    /// recording: conflict resolution, erasure replays, roll-forwards.
    pub rounds_ms: f64,
    /// Differential audit of the final Part-1 history against the naive
    /// reference executor (present iff [`Part1Config::audit`]).
    pub audit: Option<shm_sim::AuditReport>,
}

/// Verdict of advancing one process through its local steps.
enum Advance {
    /// Completed `probe_calls` calls without an RMR (stable at a boundary).
    Stable,
    /// Exceeded the local-step horizon without an RMR or a completed call:
    /// busy-waiting on local memory mid-call (stable, but *parked*).
    Parked,
    /// About to perform this RMR.
    Pending(Op),
    /// Source exhausted.
    Terminated,
}

/// The Part-1 construction driver. Owns the evolving simulator so Part 2
/// can continue from the stabilized state.
pub struct Part1Runner {
    /// The reusable initial conditions (needed by replay).
    pub spec: SimSpec,
    /// The algorithm instance (needed by Part 2 to build the signal call).
    pub instance: Arc<dyn AlgorithmInstance>,
    /// The evolving execution.
    pub sim: Simulator,
    /// Erased processes.
    pub erased: BTreeSet<ProcId>,
    /// Rolled-forward (finished) processes.
    pub finished: BTreeSet<ProcId>,
    /// Stable processes.
    pub stable: BTreeSet<ProcId>,
    /// Stable processes parked mid-call (subset of `stable`).
    pub parked: BTreeSet<ProcId>,
    /// The algorithm's participation contract
    /// ([`SignalingAlgorithm::max_concurrent_waiters`]): histories whose
    /// peak concurrent-waiter count exceeds this are out of contract, and
    /// safety failures in them must not be reported as violations.
    pub contract_waiters: Option<usize>,
    cfg: Part1Config,
    blocked: usize,
    /// Wall-clock nanoseconds spent advancing processes (history recording).
    record_nanos: u128,
}

impl Part1Runner {
    /// Sets up N waiters running `algo` in the DSM model.
    #[must_use]
    pub fn new(algo: &dyn SignalingAlgorithm, cfg: Part1Config) -> Self {
        let mut layout = shm_sim::MemLayout::new();
        let instance = algo.instantiate(&mut layout, cfg.n);
        let sources = (0..cfg.n)
            .map(|i| {
                let pid = ProcId(i as u32);
                let inst = Arc::clone(&instance);
                let poll =
                    ScriptedCall::new(kinds::POLL, "Poll", Arc::new(move || inst.poll_call(pid)));
                // Unbounded polling; the §4 variation lets waiters stop after
                // finitely many polls, which the adversary exercises through
                // erasing (zero polls) and rolling forward (stop now).
                Box::new(RepeatUntil::new(poll, 1)) as Box<dyn shm_sim::CallSource>
            })
            .collect();
        let spec = SimSpec {
            layout,
            sources,
            model: CostModel::Dsm,
        };
        let mut sim = Simulator::new(&spec);
        if cfg.incremental {
            // Scale the interval with n: the schedule grows ~n steps per
            // round, so this keeps the checkpoint count O(rounds) while the
            // event-walk certifier stays cheap over an interval-long span.
            sim.enable_checkpoints(cfg.checkpoint_interval.max(cfg.n));
        }
        Part1Runner {
            spec,
            instance,
            sim,
            erased: BTreeSet::new(),
            finished: BTreeSet::new(),
            stable: BTreeSet::new(),
            parked: BTreeSet::new(),
            contract_waiters: algo.max_concurrent_waiters(),
            cfg,
            blocked: 0,
            record_nanos: 0,
        }
    }

    /// The configuration this runner was built with.
    #[must_use]
    pub fn config(&self) -> &Part1Config {
        &self.cfg
    }

    /// Processes that are neither erased nor finished.
    #[must_use]
    pub fn active(&self) -> Vec<ProcId> {
        (0..self.cfg.n as u32)
            .map(ProcId)
            .filter(|p| !self.erased.contains(p) && !self.finished.contains(p))
            .collect()
    }

    fn is_active(&self, p: ProcId) -> bool {
        !self.erased.contains(&p) && !self.finished.contains(&p)
    }

    /// Attempts to erase `batch`, certifying via survivor projections.
    /// Returns `true` on success (state replaced by the filtered replay).
    pub fn try_erase(&mut self, batch: &BTreeSet<ProcId>) -> bool {
        if batch.is_empty() {
            return true;
        }
        let mut new_erased = self.erased.clone();
        new_erased.extend(batch.iter().copied());
        if self.cfg.incremental {
            // Incremental path: replay only from the last checkpoint before
            // the batch's first step, certifying survivor projections online
            // (first divergent event refuses the erasure). The erasure is
            // applied in place so the shared history prefix is never copied.
            // (`erase_certified_in_place` takes the *full* erased set:
            // previously erased processes have no recorded steps, so they
            // never move the splice point.)
            if self.sim.erase_certified_in_place(&self.spec, &new_erased) {
                self.erased = new_erased;
                true
            } else {
                false
            }
        } else {
            // Reference path: from-scratch replay + exact projection
            // comparison (what the incremental path is certified against).
            let replayed = Simulator::replay(&self.spec, self.sim.schedule(), &new_erased);
            let ok = (0..self.cfg.n as u32).map(ProcId).all(|p| {
                new_erased.contains(&p)
                    || replayed.history().projection(p) == self.sim.history().projection(p)
            });
            if ok {
                self.erased = new_erased;
                self.sim = replayed;
                true
            } else {
                false
            }
        }
    }

    /// Tries to erase `batch` — all at once first (one replay), then member
    /// by member for the stragglers. Returns (erased, blocked).
    fn erase_individually(&mut self, batch: &BTreeSet<ProcId>) -> (BTreeSet<ProcId>, usize) {
        if self.try_erase(batch) {
            return (batch.clone(), 0);
        }
        let mut done = BTreeSet::new();
        let mut blocked = 0;
        for &q in batch {
            if self.try_erase(&BTreeSet::from([q])) {
                done.insert(q);
            } else {
                blocked += 1;
            }
        }
        (done, blocked)
    }

    /// Advances `p` through local steps until it is about to perform an RMR
    /// (leaving that RMR as its very next step), stabilizes, or terminates.
    fn advance(&mut self, p: ProcId) -> Advance {
        let start_calls = self.sim.proc_stats(p).calls_completed;
        let mut steps = 0u64;
        loop {
            match self.sim.peek_transition(p) {
                TransitionPeek::NotRunnable | TransitionPeek::WillTerminate => {
                    return Advance::Terminated;
                }
                TransitionPeek::Return { .. } => {
                    let _ = self.sim.step(p);
                }
                TransitionPeek::Access(op) => {
                    if self.sim.op_would_be_rmr(p, &op) {
                        return Advance::Pending(op);
                    }
                    let _ = self.sim.step(p);
                }
            }
            if self.sim.proc_stats(p).calls_completed - start_calls >= self.cfg.probe_calls {
                return Advance::Stable;
            }
            steps += 1;
            if steps >= self.cfg.max_local_steps {
                return Advance::Parked;
            }
        }
    }

    /// Executes the access that `advance` left pending for `p`. Returns the
    /// operation actually performed.
    fn apply_pending(&mut self, p: ProcId) -> Op {
        match self.sim.step(p) {
            StepReport::Access { op, .. } => op,
            other => panic!("expected pending access for {p}, got {other:?}"),
        }
    }

    /// Whether `op`, executed now, would perform a nontrivial write.
    fn op_writes(&self, op: &Op) -> bool {
        match *op {
            Op::Write(..) | Op::Faa(..) | Op::Fas(..) | Op::Tas(_) => true,
            Op::Cas(a, expected, _) => self.sim.memory().peek(a) == expected,
            Op::Sc(..) => true, // conservative
            Op::Read(_) | Op::Ll(_) => false,
        }
    }

    /// Runs one round. Returns its report; `pending == 0` means everything
    /// active is stable and the construction is complete.
    pub fn run_round(&mut self, index: usize) -> RoundReport {
        let _span = shm_obs::Span::enter("part1.round");
        shm_obs::counter!("part1.rounds");
        let mut report = RoundReport {
            index,
            ..RoundReport::default()
        };

        // Phase 1: advance unstable actives to their next RMR. Advancing in
        // *descending* pid order is deliberate: signalers typically visit
        // waiters in ascending pid order, so the waiters erased first during
        // the wild goose chase are the ones whose first recorded step is
        // latest — which keeps the incremental replay's suffix (everything
        // after the erased process's first step) short. Any fair order is a
        // legal adversary schedule; the reference path uses the same one.
        let advance_start = std::time::Instant::now();
        let advance_span = shm_obs::Span::enter("part1.advance");
        let mut pending: BTreeMap<ProcId, Op> = BTreeMap::new();
        for p in self.active().into_iter().rev() {
            if self.stable.contains(&p) {
                continue;
            }
            match self.advance(p) {
                Advance::Stable => {
                    self.stable.insert(p);
                    report.newly_stable += 1;
                }
                Advance::Parked => {
                    self.stable.insert(p);
                    self.parked.insert(p);
                    report.newly_stable += 1;
                }
                Advance::Pending(op) => {
                    pending.insert(p, op);
                }
                Advance::Terminated => {
                    self.finished.insert(p);
                }
            }
        }
        drop(advance_span);
        self.record_nanos += advance_start.elapsed().as_nanos();
        report.pending = pending.len();
        if pending.is_empty() {
            return report;
        }

        // Phase 2: conflict resolution fixpoint. Erasing can change what a
        // pending access would observe (the last writer of its cell may
        // change), so iterate until clean.
        for _ in 0..self.cfg.n + 2 {
            let mut to_erase: BTreeSet<ProcId> = BTreeSet::new();
            let mut graph = ConflictGraph::new(pending.keys().copied());
            // Conflicts with quiet (non-pending) active processes: erasing
            // the quiet hub is cheaper when several pending RMRs converge on
            // it; a singleton conflict erases the issuer instead, keeping
            // the stable population large.
            let mut quiet_conflicts: BTreeMap<ProcId, Vec<ProcId>> = BTreeMap::new();
            for (&p, op) in &pending {
                let (sees, touches) = self.sim.op_observation(p, op);
                for q in [sees, touches].into_iter().flatten() {
                    if self.is_active(q) && q != p {
                        if pending.contains_key(&q) {
                            graph.add_edge(p, q);
                        } else {
                            quiet_conflicts.entry(q).or_default().push(p);
                        }
                    }
                }
            }
            for (q, issuers) in &quiet_conflicts {
                if issuers.len() >= 2 {
                    to_erase.insert(*q);
                } else {
                    to_erase.extend(issuers.iter().copied());
                }
            }
            let keep = graph.greedy_independent_set();
            for p in pending.keys() {
                if !keep.contains(p) {
                    to_erase.insert(*p);
                }
            }
            if to_erase.is_empty() {
                break;
            }
            let (erased, blocked) = self.erase_individually(&to_erase);
            report.blocked_erasures += blocked;
            self.blocked += blocked;
            for q in &erased {
                pending.remove(q);
                self.stable.remove(q);
                report.erased.insert(*q);
            }
            if erased.is_empty() {
                // Nothing certifiable: give up on minimality this round and
                // apply the conflicting accesses as they are.
                break;
            }
        }

        // Phase 3: apply surviving reads.
        let (reads, writes): (Vec<_>, Vec<_>) = pending
            .iter()
            .map(|(&p, &op)| (p, op))
            .partition(|(_, op)| !self.op_writes(op));
        for &(p, _) in &reads {
            let _ = self.apply_pending(p);
            report.applied_reads += 1;
        }

        // Phase 4: writes — the paper's case split.
        if writes.is_empty() {
            return report;
        }
        let mut by_addr: BTreeMap<shm_sim::Addr, Vec<ProcId>> = BTreeMap::new();
        for &(p, op) in &writes {
            by_addr.entry(op.addr()).or_default().push(p);
        }
        let x = writes.len();
        let threshold = ((x as f64).sqrt().floor() as usize).max(2);
        let biggest = by_addr
            .values()
            .max_by_key(|v| v.len())
            .expect("non-empty")
            .clone();

        if biggest.len() >= threshold {
            // Roll-forward case: erase all other pending writers, apply the
            // pile-up in ID order, roll the last writer forward.
            report.roll_forward_case = true;
            let group: BTreeSet<ProcId> = biggest.iter().copied().collect();
            let others: BTreeSet<ProcId> = writes
                .iter()
                .map(|&(p, _)| p)
                .filter(|p| !group.contains(p))
                .collect();
            let (erased, blocked) = self.erase_individually(&others);
            report.blocked_erasures += blocked;
            self.blocked += blocked;
            for q in &erased {
                report.erased.insert(*q);
                self.stable.remove(q);
            }
            let mut appliers: Vec<ProcId> = group.iter().copied().collect();
            appliers.sort_unstable();
            for &p in &appliers {
                let _ = self.apply_pending(p);
                report.applied_writes += 1;
            }
            // The last writer is rolled forward: it completes its pending
            // call (erasing active processes it is about to see or touch)
            // and terminates.
            let r = *appliers.last().expect("non-empty group");
            let chase_erased = self.roll_forward(r, &mut report);
            for q in chase_erased {
                report.erased.insert(q);
            }
            report.rolled_forward = Some(r);
            self.finished.insert(r);
        } else {
            // Erasing case: keep one writer per variable.
            let mut to_erase: BTreeSet<ProcId> = BTreeSet::new();
            let mut kept: Vec<ProcId> = Vec::new();
            for procs in by_addr.values() {
                let mut sorted = procs.clone();
                sorted.sort_unstable();
                kept.push(sorted[0]);
                to_erase.extend(sorted[1..].iter().copied());
            }
            // Prior-writer conflicts (regularity condition 3): a kept writer
            // about to write a cell previously written by another active
            // process conflicts with it.
            let mut graph = ConflictGraph::new(kept.iter().copied());
            for &p in &kept {
                let addr = pending[&p].addr();
                for q in self.sim.memory().writers(addr) {
                    if q != p && self.is_active(q) {
                        if kept.contains(&q) {
                            graph.add_edge(p, q);
                        } else {
                            to_erase.insert(p);
                        }
                    }
                }
            }
            let keep = graph.greedy_independent_set();
            for p in &kept {
                if !keep.contains(p) {
                    to_erase.insert(*p);
                }
            }
            let (erased, blocked) = self.erase_individually(&to_erase);
            report.blocked_erasures += blocked;
            self.blocked += blocked;
            for q in &erased {
                report.erased.insert(*q);
                self.stable.remove(q);
            }
            let mut survivors: Vec<ProcId> = writes
                .iter()
                .map(|&(p, _)| p)
                .filter(|p| self.is_active(*p))
                .collect();
            survivors.sort_unstable();
            for p in survivors {
                let _ = self.apply_pending(p);
                report.applied_writes += 1;
            }
        }
        report
    }

    /// Rolls `r` forward: completes its current call, erasing (when
    /// certified) any active process it is about to see or touch. Returns
    /// the processes erased along the way.
    fn roll_forward(&mut self, r: ProcId, report: &mut RoundReport) -> BTreeSet<ProcId> {
        let _span = shm_obs::Span::enter("part1.rollforward");
        shm_obs::counter!("part1.rollforward");
        let mut erased_here = BTreeSet::new();
        let mut guard = 0u64;
        while self.sim.has_pending_call(r) && self.sim.is_runnable(r) {
            guard += 1;
            assert!(
                guard < self.cfg.max_local_steps,
                "roll-forward of {r} did not terminate"
            );
            if let TransitionPeek::Access(op) = self.sim.peek_transition(r) {
                let (sees, touches) = self.sim.op_observation(r, &op);
                let mut retry = false;
                for q in [sees, touches].into_iter().flatten() {
                    if q != r && self.is_active(q) && !erased_here.contains(&q) {
                        if self.try_erase(&BTreeSet::from([q])) {
                            self.stable.remove(&q);
                            erased_here.insert(q);
                            retry = true;
                        } else {
                            report.blocked_erasures += 1;
                            self.blocked += 1;
                        }
                    }
                }
                if retry {
                    // Erasure may have changed what the access observes;
                    // re-evaluate before stepping.
                    continue;
                }
            }
            let _ = self.sim.step(r);
        }
        erased_here
    }

    /// Runs rounds until stabilization or the round budget is exhausted.
    pub fn run(&mut self) -> Part1Outcome {
        let total_start = std::time::Instant::now();
        let record_base = self.record_nanos;
        let mut rounds = Vec::new();
        let mut stabilized = false;
        for i in 1..=self.cfg.max_rounds {
            let report = self.run_round(i);
            let done = report.pending == 0;
            rounds.push(report);
            if done {
                stabilized = true;
                break;
            }
        }
        let total_nanos = total_start.elapsed().as_nanos();
        let record_nanos = self.record_nanos - record_base;
        let participants = (0..self.cfg.n as u32)
            .map(ProcId)
            .filter(|&p| self.sim.proc_stats(p).steps > 0)
            .count();
        let mut fin_for_regularity = self.finished.clone();
        // Stable processes are *active* in the paper's terms; only finished
        // ones count towards Fin.
        fin_for_regularity.retain(|p| !self.erased.contains(p));
        let regular = self
            .sim
            .history()
            .regularity_violations_given_fin(&fin_for_regularity)
            .is_empty();
        self.parked
            .retain(|p| self.stable.contains(p) && !self.erased.contains(p));
        // Attribute the surviving history's access costs to the part1 phase
        // (no-op unless an shm-obs recorder is installed).
        self.sim.obs_flush("part1");
        let audit = self.cfg.audit.then(|| self.sim.audit(&self.spec));
        Part1Outcome {
            rounds,
            stabilized,
            stable: self.stable.clone(),
            finished: self.finished.clone(),
            erased: self.erased.clone(),
            parked: self.parked.clone(),
            blocked_erasures: self.blocked,
            total_rmrs: self.sim.totals().rmrs,
            participants,
            regular,
            record_ms: record_nanos as f64 / 1e6,
            rounds_ms: total_nanos.saturating_sub(record_nanos) as f64 / 1e6,
            audit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use signaling::algorithms::{Broadcast, CcFlag, FixedSignaler, QueueSignaling, SingleWaiter};

    fn cfg(n: usize) -> Part1Config {
        Part1Config {
            n,
            ..Part1Config::default()
        }
    }

    #[test]
    fn broadcast_stabilizes_immediately_with_everyone() {
        let mut runner = Part1Runner::new(&Broadcast, cfg(32));
        let out = runner.run();
        assert!(out.stabilized);
        assert_eq!(
            out.stable.len(),
            32,
            "polling the local flag is stable from the start"
        );
        assert_eq!(out.total_rmrs, 0);
        assert!(out.regular);
    }

    #[test]
    fn cc_flag_never_stabilizes_in_dsm() {
        let mut runner = Part1Runner::new(&CcFlag, cfg(16));
        let out = runner.run();
        assert!(!out.stabilized, "every poll of the global flag is an RMR");
        assert!(out.stable.is_empty());
        // Each round applies one read-RMR per active process.
        assert!(out.total_rmrs >= (16 * out.rounds.len()) as u64 / 2);
        assert!(out.regular, "reads of an unwritten global never see anyone");
    }

    #[test]
    fn single_waiter_triggers_roll_forward_and_stabilizes() {
        let mut runner = Part1Runner::new(&SingleWaiter, cfg(64));
        let out = runner.run();
        assert!(out.stabilized);
        assert!(
            out.rounds.iter().any(|r| r.roll_forward_case),
            "all first polls write W: the same-variable pile-up must trigger roll-forward"
        );
        assert!(out.finished.len() <= out.rounds.len());
        assert!(!out.stable.is_empty());
        assert!(out.regular, "rounds: {:?}", out.rounds);
        // Survivor count ~ sqrt(N) as in the paper's recursion.
        assert!(out.stable.len() >= 3, "stable: {}", out.stable.len());
    }

    #[test]
    fn fixed_signaler_stabilizes_by_erasing_the_flag_host() {
        let mut runner = Part1Runner::new(
            &FixedSignaler {
                signaler: ProcId(0),
            },
            cfg(32),
        );
        let out = runner.run();
        assert!(out.stabilized);
        // Every waiter's registration touches p0's module; the conflict
        // resolution must erase p0 (the star hub) and keep the others.
        assert!(out.erased.contains(&ProcId(0)));
        assert!(out.stable.len() >= 16);
        assert!(out.regular);
    }

    #[test]
    fn queue_faa_stabilizes_but_blocks_some_erasures_later() {
        let mut runner = Part1Runner::new(&QueueSignaling, cfg(64));
        let out = runner.run();
        assert!(out.stabilized);
        assert!(!out.stable.is_empty());
        // FAA pile-up on the ticket counter triggers roll-forward.
        assert!(out.rounds.iter().any(|r| r.roll_forward_case));
    }

    #[test]
    fn erasure_certification_rejects_faa_dependencies() {
        // Directly: two processes FAA the same counter; erasing the first
        // changes the second's ticket, so certification must fail.
        let mut runner = Part1Runner::new(&QueueSignaling, cfg(4));
        // Drive two processes through their FAAs manually.
        for p in [ProcId(0), ProcId(1)] {
            loop {
                match runner.sim.peek_transition(p) {
                    TransitionPeek::Access(op) => {
                        let _ = runner.sim.step(p);
                        if matches!(op, Op::Faa(..)) {
                            break;
                        }
                    }
                    _ => {
                        let _ = runner.sim.step(p);
                    }
                }
            }
        }
        assert!(
            !runner.try_erase(&BTreeSet::from([ProcId(0)])),
            "erasing the first FAA issuer must fail certification"
        );
        assert!(
            runner.try_erase(&BTreeSet::from([ProcId(1)])),
            "erasing the *last* FAA issuer is transparent"
        );
    }

    #[test]
    fn erased_processes_leave_no_trace() {
        let mut runner = Part1Runner::new(&SingleWaiter, cfg(32));
        let out = runner.run();
        let participants = runner.sim.history().participants();
        for q in &out.erased {
            assert!(!participants.contains(q), "{q} was erased but participates");
        }
    }

    #[test]
    fn audited_part1_run_is_clean() {
        // The audit shadow-executes the heavily erased/spliced Part-1
        // history under all four cost models and diffs it against the
        // incremental path.
        let mut runner = Part1Runner::new(
            &SingleWaiter,
            Part1Config {
                n: 32,
                audit: true,
                ..Part1Config::default()
            },
        );
        let out = runner.run();
        let audit = out.audit.expect("audit enabled");
        assert!(audit.is_clean(), "{}", audit.divergence.unwrap());
        assert_eq!(audit.models_checked, 4);
    }

    #[test]
    fn contract_waiters_reflects_the_algorithm() {
        assert_eq!(
            Part1Runner::new(&SingleWaiter, cfg(8)).contract_waiters,
            Some(1)
        );
        assert_eq!(Part1Runner::new(&Broadcast, cfg(8)).contract_waiters, None);
    }

    #[test]
    fn part1_is_deterministic() {
        let run = || {
            let mut runner = Part1Runner::new(&SingleWaiter, cfg(48));
            let out = runner.run();
            (out.stable, out.erased, out.finished, out.total_rmrs)
        };
        assert_eq!(run(), run());
    }
}
