//! The interface every signaling algorithm implements.

use shm_sim::{MemLayout, ProcId, ProcedureCall};
use std::sync::Arc;

/// The synchronization-primitive class an algorithm draws from, following
/// the classes the paper's bounds distinguish (§3, §6, Corollary 6.14).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PrimitiveClass {
    /// Atomic reads and writes only (Theorem 6.2's class).
    ReadWrite,
    /// Reads, writes, and comparison primitives — CAS and/or LL/SC
    /// (Corollary 6.14's class; the lower bound still applies).
    ReadWriteCompare,
    /// Reads, writes, and non-comparison read-modify-write primitives such
    /// as Fetch-And-Add or Fetch-And-Store (outside the lower bound's reach;
    /// §7 uses this class to close the CC/DSM gap).
    ReadWriteRmw,
}

/// A signaling algorithm: a recipe for laying out shared variables and
/// producing per-process procedure calls.
///
/// Implementations are stateless descriptors; all run state lives in shared
/// memory (including per-process persistent state such as "have I
/// registered?", which algorithms keep in cells local to the process — free
/// to read in the DSM model and cached in the CC model).
pub trait SignalingAlgorithm: Send + Sync {
    /// Short identifier used in experiment tables.
    fn name(&self) -> &'static str;

    /// The primitive class the algorithm's operations belong to.
    fn primitive_class(&self) -> PrimitiveClass;

    /// The algorithm's participation contract: the maximum number of
    /// processes that may act as waiters (issue `Poll()`/`Wait()` calls) in
    /// a history for Specification 4.1 to be guaranteed. `None` (the
    /// default) means the algorithm supports arbitrarily many concurrent
    /// waiters. Measured by [`crate::spec::waiter_processes`], which
    /// dominates the simultaneously-open-calls count.
    ///
    /// Drivers that deliberately exceed this bound (e.g. the §6 lower-bound
    /// adversary, which pits up to n−1 concurrent waiters against every
    /// algorithm) must classify resulting safety failures as out-of-contract
    /// rather than as violations — see
    /// [`crate::spec::peak_concurrent_waiters`].
    fn max_concurrent_waiters(&self) -> Option<usize> {
        None
    }

    /// Allocates the algorithm's shared variables for `n` processes and
    /// returns an instance bound to those addresses.
    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn AlgorithmInstance>;
}

/// A signaling algorithm bound to concrete shared-memory addresses.
pub trait AlgorithmInstance: Send + Sync {
    /// One `Signal()` call by `pid`. Return value is ignored.
    fn signal_call(&self, pid: ProcId) -> Box<dyn ProcedureCall>;

    /// One `Poll()` call by `pid`. Returns 1 (signal observed) or 0.
    fn poll_call(&self, pid: ProcId) -> Box<dyn ProcedureCall>;

    /// One `Wait()` call by `pid` (blocking semantics), if the algorithm
    /// supports it natively. The default falls back to `None`; the scenario
    /// harness then synthesizes `Wait()` as repeated `Poll()` calls, the
    /// generic reduction §7 describes.
    fn wait_call(&self, _pid: ProcId) -> Option<Box<dyn ProcedureCall>> {
        None
    }
}
