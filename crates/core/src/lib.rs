//! # signaling: the paper's synchronization problem, executable
//!
//! The *signaling problem* (Golab, PODC 2011, §4): **signalers** must make
//! **waiters** aware that an event has occurred. With *polling semantics* a
//! solution provides `Signal()` and `Poll()`; with *blocking semantics*,
//! `Signal()` and `Wait()`. The safety contract is Specification 4.1:
//!
//! 1. if some call to `Poll()` returns true, then some call to `Signal()`
//!    has already begun;
//! 2. if some call to `Poll()` returns false, then no call to `Signal()`
//!    completed before this call to `Poll()` began.
//!
//! This crate provides:
//!
//! * the problem interface ([`SignalingAlgorithm`], [`AlgorithmInstance`])
//!   and call-kind constants ([`kinds`]);
//! * a history checker for Specification 4.1 and for blocking semantics
//!   ([`spec`]);
//! * the paper's algorithms ([`algorithms`]):
//!   - [`algorithms::CcFlag`] — the §5 CC upper bound (single Boolean;
//!     wait-free, O(1) RMRs per process in CC, reads/writes only) — and the
//!     negative control whose DSM cost the §6 adversary explodes;
//!   - [`algorithms::SingleWaiter`] — §7, one waiter not fixed in advance
//!     (O(1) RMRs per process in both models);
//!   - [`algorithms::FixedWaiters`] — §7, waiter set fixed in advance
//!     (eager: O(W) worst-case signaler; awaiting: terminating with O(1)
//!     amortized);
//!   - [`algorithms::FixedSignaler`] — §7, waiters unknown but the signaler
//!     fixed in advance (registration in the signaler's module);
//!   - [`algorithms::QueueSignaling`] — §7, nobody fixed in advance, using
//!     Fetch-And-Add: the primitive upgrade that closes the CC/DSM gap;
//!   - [`algorithms::Broadcast`] — the natural *correct* read/write attempt
//!     (write every local flag), the canonical victim of the §6 bound;
//!   - [`algorithms::CasList`] — CAS-scan registration, the Corollary 6.14
//!     subject (comparison primitives buy nothing);
//! * a scenario harness ([`scenario`]) that assembles waiter/signaler
//!   populations, runs them under any scheduler and cost model, measures
//!   RMRs, and checks the specification.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod algorithm;
pub mod algorithms;
pub mod kinds;
pub mod progress;
pub mod scenario;
pub mod spec;

pub use algorithm::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
pub use progress::{call_steps, max_accesses_per_call, worst_poll, worst_signal, CallSteps};
pub use scenario::{run_scenario, Role, RunOutcome, Scenario};
pub use spec::{
    check_blocking, check_blocking_calls, check_polling, check_polling_calls,
    peak_concurrent_waiters, waiter_processes, SpecViolation,
};
