//! CAS-based registration signaling: the Corollary 6.14 subject.
//!
//! Like [`crate::algorithms::QueueSignaling`] but the registration list is
//! built from **Compare-And-Swap** instead of Fetch-And-Add: a registering
//! waiter scans the slot array and claims the first free slot with
//! `CAS(slot, NIL, me)`. CAS is a *comparison* primitive, so Corollary 6.14
//! says this algorithm — unlike the FAA queue — remains subject to the
//! lower bound: there is no O(1)-amortized DSM solution in this primitive
//! class. The adversary crate attacks both the native CAS version and its
//! read/write transformation (`rmr-adversary`'s `transform` module).
//!
//! * `Poll()` by `p_i`, first call: scan slots `0..N`, `CAS(slot_j, NIL,
//!   i)` until one succeeds; read and return the global flag `G`.
//! * `Poll()` by `p_i`, later calls: read and return `V[i]` (local).
//! * `Signal()`: write `G := true`; read every slot; write `V[w]` for each
//!   registered waiter `w` found.
//!
//! Registration costs O(k) RMRs for the k-th registrant (the CAS scan walks
//! over occupied slots) — already worse than the FAA queue's O(1), which is
//! the paper's point in miniature.

use crate::algorithm::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
use shm_sim::{Addr, AddrRange, MemLayout, Op, ProcId, ProcedureCall, Step, Word, NIL};
use std::sync::Arc;

/// The CAS-scan registration algorithm.
#[derive(Clone, Copy, Debug, Default)]
pub struct CasList;

#[derive(Clone, Debug)]
struct Inst {
    g: Addr,
    slots: AddrRange,
    v: AddrRange,
    reg: AddrRange,
}

impl SignalingAlgorithm for CasList {
    fn name(&self) -> &'static str {
        "cas-list"
    }

    fn primitive_class(&self) -> PrimitiveClass {
        PrimitiveClass::ReadWriteCompare
    }

    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn AlgorithmInstance> {
        Arc::new(Inst {
            g: layout.alloc_global(0),
            slots: layout.alloc_global_array(n, NIL),
            v: layout.alloc_per_process_array(n, 0),
            reg: layout.alloc_per_process_array(n, 0),
        })
    }
}

impl AlgorithmInstance for Inst {
    fn signal_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Signal {
            inst: self.clone(),
            state: SigState::WriteG,
            idx: 0,
        })
    }

    fn poll_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Poll {
            inst: self.clone(),
            me: pid,
            state: PollState::ReadReg,
            idx: 0,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SigState {
    WriteG,
    ReadSlot,
    DecideSlot,
}

#[derive(Clone, Debug)]
struct Signal {
    inst: Inst,
    state: SigState,
    idx: usize,
}

impl ProcedureCall for Signal {
    fn step(&mut self, last: Option<Word>) -> Step {
        loop {
            match self.state {
                SigState::WriteG => {
                    self.state = SigState::ReadSlot;
                    return Step::Op(Op::Write(self.inst.g, 1));
                }
                SigState::ReadSlot => {
                    if self.idx >= self.inst.slots.len() {
                        return Step::Return(0);
                    }
                    self.state = SigState::DecideSlot;
                    return Step::Op(Op::Read(self.inst.slots.at(self.idx)));
                }
                SigState::DecideSlot => {
                    let slot = last.expect("slot value");
                    self.idx += 1;
                    self.state = SigState::ReadSlot;
                    if let Some(waiter) = ProcId::from_word(slot) {
                        return Step::Op(Op::Write(self.inst.v.at(waiter.index()), 1));
                    }
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PollState {
    ReadReg,
    Branch,
    CasSlot,
    MarkReg,
    ReadG,
    ReturnLast,
}

#[derive(Clone, Debug)]
struct Poll {
    inst: Inst,
    me: ProcId,
    state: PollState,
    idx: usize,
}

impl ProcedureCall for Poll {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            PollState::ReadReg => {
                self.state = PollState::Branch;
                Step::Op(Op::Read(self.inst.reg.at(self.me.index())))
            }
            PollState::Branch => {
                if last.expect("REG value") == 0 {
                    self.state = PollState::CasSlot;
                    Step::Op(Op::Cas(self.inst.slots.at(0), NIL, self.me.to_word()))
                } else {
                    self.state = PollState::ReturnLast;
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
            PollState::CasSlot => {
                let old = last.expect("CAS result");
                if old == NIL {
                    // Claimed slot `idx`.
                    self.state = PollState::MarkReg;
                    Step::Op(Op::Write(self.inst.reg.at(self.me.index()), 1))
                } else {
                    self.idx += 1;
                    assert!(self.idx < self.inst.slots.len(), "registration overflow");
                    Step::Op(Op::Cas(
                        self.inst.slots.at(self.idx),
                        NIL,
                        self.me.to_word(),
                    ))
                }
            }
            PollState::MarkReg => {
                self.state = PollState::ReadG;
                Step::Op(Op::Read(self.inst.g))
            }
            PollState::ReadG => Step::Return(last.expect("G value")),
            PollState::ReturnLast => Step::Return(last.expect("V value")),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Role, Scenario};
    use shm_sim::{CostModel, RoundRobin, SeededRandom, Simulator};

    fn waiters_plus_signaler(w: usize) -> Vec<Role> {
        let mut roles = vec![Role::waiter(); w];
        roles.push(Role::signaler());
        roles
    }

    #[test]
    fn spec_holds_under_random_schedules_in_both_models() {
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            for seed in 0..40 {
                let scenario = Scenario {
                    algorithm: &CasList,
                    roles: waiters_plus_signaler(6),
                    model,
                };
                let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
                assert!(out.completed, "{model:?} seed {seed}");
                assert_eq!(out.polling_spec, Ok(()), "{model:?} seed {seed}");
            }
        }
    }

    #[test]
    fn kth_registrant_pays_k_cas_attempts() {
        let scenario = Scenario {
            algorithm: &CasList,
            roles: waiters_plus_signaler(8),
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        // Register waiters strictly one after another.
        for i in 0..8u32 {
            while sim.proc_stats(ProcId(i)).calls_completed == 0 {
                let _ = sim.step(ProcId(i));
            }
        }
        // Waiter 7 scanned slots 0..7: 8 CAS attempts + G read.
        assert_eq!(sim.proc_stats(ProcId(7)).rmrs, 9);
        assert_eq!(
            sim.proc_stats(ProcId(0)).rmrs,
            2,
            "first registrant: 1 CAS + G read"
        );
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
    }

    #[test]
    fn contended_registration_claims_distinct_slots() {
        for seed in 0..30 {
            let scenario = Scenario {
                algorithm: &CasList,
                roles: waiters_plus_signaler(6),
                model: CostModel::Dsm,
            };
            let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
            assert!(out.completed);
            // All 6 waiters eventually saw true, so all were signaled: each
            // claimed a distinct slot.
            assert_eq!(out.polling_spec, Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn signal_before_any_registration_is_cheap() {
        let scenario = Scenario {
            algorithm: &CasList,
            roles: waiters_plus_signaler(4),
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        while sim.is_runnable(ProcId(4)) {
            let _ = sim.step(ProcId(4));
        }
        // G write + one read per slot (the array has n = 5 slots), no V writes.
        assert_eq!(sim.proc_stats(ProcId(4)).rmrs, 6);
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
    }
}
