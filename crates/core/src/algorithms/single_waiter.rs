//! §7, "single waiter": at most one waiter, identity not fixed in advance.
//!
//! Variables: `W` (process ID, initially NIL), `S` (Boolean, initially
//! false), and `V[1..N]` with `V[i]` local to process `p_i`; additionally a
//! per-process local flag `REG[i]` remembering whether `p_i` already made
//! its first `Poll()` (persistent per-process state kept in the process's
//! own module, free to consult in both models).
//!
//! * `Poll()` by `p_i`, first call: write `W := i`; read and return `S`.
//! * `Poll()` by `p_i`, later calls: read and return `V[i]`.
//! * `Signal()`: write `S := true`; read `W`; if non-NIL, write `V[W] := true`.
//!
//! O(1) RMRs per process worst case in both CC and DSM — matching the CC
//! upper bound, which is why the *single*-waiter case does not separate the
//! models; many waiters with unknown IDs are needed for that (§6).

use crate::algorithm::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
use shm_sim::{Addr, AddrRange, MemLayout, Op, ProcId, ProcedureCall, Step, Word, NIL};
use std::sync::Arc;

/// The single-waiter algorithm of §7.
#[derive(Clone, Copy, Debug, Default)]
pub struct SingleWaiter;

#[derive(Clone, Debug)]
struct Inst {
    w: Addr,
    s: Addr,
    v: AddrRange,
    reg: AddrRange,
}

impl SignalingAlgorithm for SingleWaiter {
    fn name(&self) -> &'static str {
        "single-waiter"
    }

    fn primitive_class(&self) -> PrimitiveClass {
        PrimitiveClass::ReadWrite
    }

    fn max_concurrent_waiters(&self) -> Option<usize> {
        // §7's premise: at most one process ever polls (its identity just
        // isn't fixed in advance). `Signal()` notifies only the waiter
        // registered in `W`, so any second poller may legitimately read
        // `V[i] = 0` after the signal completes.
        Some(1)
    }

    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn AlgorithmInstance> {
        let inst = Inst {
            w: layout.alloc_global(NIL),
            s: layout.alloc_global(0),
            v: layout.alloc_per_process_array(n, 0),
            reg: layout.alloc_per_process_array(n, 0),
        };
        layout.set_label(inst.w, "W");
        layout.set_label(inst.s, "S");
        layout.set_array_label(inst.v, "V");
        layout.set_array_label(inst.reg, "REG");
        Arc::new(inst)
    }
}

impl AlgorithmInstance for Inst {
    fn signal_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Signal {
            inst: self.clone(),
            state: SigState::WriteS,
        })
    }

    fn poll_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Poll {
            inst: self.clone(),
            me: pid,
            state: PollState::ReadReg,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SigState {
    WriteS,
    ReadW,
    MaybeWriteV,
    Done,
}

#[derive(Clone, Debug)]
struct Signal {
    inst: Inst,
    state: SigState,
}

impl ProcedureCall for Signal {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            SigState::WriteS => {
                self.state = SigState::ReadW;
                Step::Op(Op::Write(self.inst.s, 1))
            }
            SigState::ReadW => {
                self.state = SigState::MaybeWriteV;
                Step::Op(Op::Read(self.inst.w))
            }
            SigState::MaybeWriteV => match ProcId::from_word(last.expect("W value")) {
                None => Step::Return(0),
                Some(waiter) => {
                    self.state = SigState::Done;
                    Step::Op(Op::Write(self.inst.v.at(waiter.index()), 1))
                }
            },
            SigState::Done => Step::Return(0),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PollState {
    ReadReg,
    Branch,
    WriteRegDone,
    ReadS,
    ReturnLast,
}

#[derive(Clone, Debug)]
struct Poll {
    inst: Inst,
    me: ProcId,
    state: PollState,
}

impl ProcedureCall for Poll {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            PollState::ReadReg => {
                self.state = PollState::Branch;
                Step::Op(Op::Read(self.inst.reg.at(self.me.index())))
            }
            PollState::Branch => {
                if last.expect("REG value") == 0 {
                    // First Poll: announce ourselves, then consult S.
                    self.state = PollState::WriteRegDone;
                    Step::Op(Op::Write(self.inst.w, self.me.to_word()))
                } else {
                    // Later Polls: read our local flag.
                    self.state = PollState::ReturnLast;
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
            PollState::WriteRegDone => {
                self.state = PollState::ReadS;
                Step::Op(Op::Write(self.inst.reg.at(self.me.index()), 1))
            }
            PollState::ReadS => {
                self.state = PollState::ReturnLast;
                Step::Op(Op::Read(self.inst.s))
            }
            PollState::ReturnLast => Step::Return(last.expect("flag value")),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Role, Scenario};
    use shm_sim::{CostModel, RoundRobin, SeededRandom};

    fn one_waiter_roles(n: usize, waiter: usize, signaler: usize) -> Vec<Role> {
        (0..n)
            .map(|i| {
                if i == waiter {
                    Role::waiter()
                } else if i == signaler {
                    Role::signaler()
                } else {
                    Role::Bystander
                }
            })
            .collect()
    }

    #[test]
    fn spec_holds_under_random_schedules_in_both_models() {
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            for seed in 0..40 {
                let scenario = Scenario {
                    algorithm: &SingleWaiter,
                    roles: one_waiter_roles(6, 4, 1),
                    model,
                };
                let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
                assert!(out.completed, "{model:?} seed {seed}");
                assert_eq!(out.polling_spec, Ok(()), "{model:?} seed {seed}");
            }
        }
    }

    #[test]
    fn constant_rmrs_per_process_in_dsm() {
        // The §7 claim: O(1) RMR worst case in DSM, matching CC — make the
        // waiter poll many times before the signal arrives.
        let scenario = Scenario {
            algorithm: &SingleWaiter,
            roles: one_waiter_roles(4, 0, 3),
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = shm_sim::Simulator::new(&spec);
        // Waiter polls ~50 times solo.
        for _ in 0..250 {
            let _ = sim.step(ProcId(0));
        }
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
        // Waiter: first poll costs 2 RMRs (W, S); later polls are local.
        assert!(
            sim.proc_stats(ProcId(0)).rmrs <= 2,
            "waiter: {}",
            sim.proc_stats(ProcId(0)).rmrs
        );
        // Signaler: at most 3 RMRs (S, W, V[w]).
        assert!(
            sim.proc_stats(ProcId(3)).rmrs <= 3,
            "signaler: {}",
            sim.proc_stats(ProcId(3)).rmrs
        );
    }

    #[test]
    fn waiter_gives_up_then_signal_touches_nobody_harmful() {
        // Waiter terminates unsuccessfully; signaler still completes.
        let scenario = Scenario {
            algorithm: &SingleWaiter,
            roles: vec![Role::Waiter { max_polls: Some(2) }, Role::signaler()],
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = shm_sim::Simulator::new(&spec);
        while sim.is_runnable(ProcId(0)) {
            let _ = sim.step(ProcId(0));
        }
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            10_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
    }

    #[test]
    fn signal_before_any_poll_returns_quickly() {
        let scenario = Scenario {
            algorithm: &SingleWaiter,
            roles: vec![Role::waiter(), Role::signaler()],
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = shm_sim::Simulator::new(&spec);
        // Signaler runs first: W is NIL, so Signal does S write + W read only.
        while sim.is_runnable(ProcId(1)) {
            let _ = sim.step(ProcId(1));
        }
        assert_eq!(sim.proc_stats(ProcId(1)).accesses, 2);
        // Waiter's first poll then reads S = 1: true on the very first poll.
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            10_000
        ));
        let polls: Vec<_> = sim
            .history()
            .calls()
            .iter()
            .filter(|c| c.kind == crate::kinds::POLL)
            .map(|c| c.return_value.unwrap())
            .collect();
        assert_eq!(polls, vec![1]);
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
    }
}
