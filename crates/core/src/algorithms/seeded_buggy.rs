//! A deliberately broken signaling algorithm — the model checker's negative
//! control.
//!
//! Each seed selects one of three injected bug families. All of them violate
//! Specification 4.1 *within* the participation contract (the algorithm
//! claims to support arbitrarily many waiters), so a checker that cannot
//! find a schedule exposing them is broken. The buggy behavior is
//! deterministic — the seed picks the variant at construction time, not a
//! coin flipped during execution — which keeps the step-machine contract
//! (and hence replay and shrinking) intact.

use crate::algorithm::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
use shm_sim::{Addr, MemLayout, Op, OpSequence, ProcId, ProcedureCall, ReturnConst, Step, Word};
use std::sync::Arc;

/// The seeded negative control. `seed % 3` picks the bug:
///
/// * `0` — **impatient waiter**: `Poll()` counts its own invocations in
///   shared memory and returns true once it has polled twice, signal or not
///   (`TrueWithoutSignalBegun`, needs two polls by one process to surface).
/// * `1` — **lost signal**: `Signal()` writes a scratch cell instead of the
///   flag, so polls keep returning false after the signal completes
///   (`FalseAfterSignalCompleted`).
/// * `2` — **trigger-happy poll**: `Poll()` returns true unconditionally
///   (`TrueWithoutSignalBegun` on the very first poll).
#[derive(Clone, Copy, Debug)]
pub struct SeededBuggy {
    /// Bug-family selector (taken mod 3).
    pub seed: u64,
}

impl SeededBuggy {
    /// Creates the negative control with the given bug-family seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SeededBuggy { seed }
    }
}

#[derive(Clone, Copy, Debug)]
struct Inst {
    variant: u64,
    flag: Addr,
    scratch: Addr,
    counters: shm_sim::AddrRange,
}

impl SignalingAlgorithm for SeededBuggy {
    fn name(&self) -> &'static str {
        "seeded-buggy"
    }

    fn primitive_class(&self) -> PrimitiveClass {
        PrimitiveClass::ReadWrite
    }

    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn AlgorithmInstance> {
        let flag = layout.alloc_global(0);
        layout.set_label(flag, "B");
        let scratch = layout.alloc_global(0);
        layout.set_label(scratch, "SCRATCH");
        let counters = layout.alloc_global_array(n, 0);
        Arc::new(Inst {
            variant: self.seed % 3,
            flag,
            scratch,
            counters,
        })
    }
}

/// Variant 0's poll: read own counter, bump it, read the flag, and return
/// true if the flag is set *or* this was the second poll.
#[derive(Clone, Debug)]
struct ImpatientPoll {
    cnt: Addr,
    flag: Addr,
    state: u8,
    polls: Word,
}

impl ProcedureCall for ImpatientPoll {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            0 => {
                self.state = 1;
                Step::Op(Op::Read(self.cnt))
            }
            1 => {
                self.polls = last.expect("counter read") + 1;
                self.state = 2;
                Step::Op(Op::Write(self.cnt, self.polls))
            }
            2 => {
                self.state = 3;
                Step::Op(Op::Read(self.flag))
            }
            _ => {
                let flag = last.expect("flag read");
                Step::Return(u64::from(flag == 1 || self.polls >= 2))
            }
        }
    }

    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

impl AlgorithmInstance for Inst {
    fn signal_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        let target = if self.variant == 1 {
            // Lost signal: the write lands in the wrong cell.
            self.scratch
        } else {
            self.flag
        };
        Box::new(OpSequence::new(vec![Op::Write(target, 1)]))
    }

    fn poll_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        match self.variant {
            0 => Box::new(ImpatientPoll {
                cnt: self.counters.at(pid.index()),
                flag: self.flag,
                state: 0,
                polls: 0,
            }),
            1 => Box::new(OpSequence::new(vec![Op::Read(self.flag)])),
            _ => Box::new(ReturnConst(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Role, Scenario};
    use shm_sim::{CostModel, RoundRobin};

    #[test]
    fn every_variant_violates_the_polling_spec() {
        for seed in 0..3 {
            let algo = SeededBuggy::new(seed);
            // Variants 0 and 2 return true with no signal in sight, so the
            // exposing scenario has no signaler at all; variant 1 needs the
            // (lost) signal to complete before the damning poll, which
            // round-robin with an immediate signaler provides.
            let roles = if seed == 1 {
                vec![
                    Role::Waiter { max_polls: Some(3) },
                    Role::Waiter { max_polls: Some(3) },
                    Role::Signaler { polls_first: 0 },
                ]
            } else {
                vec![
                    Role::Waiter { max_polls: Some(3) },
                    Role::Waiter { max_polls: Some(3) },
                    Role::Bystander,
                ]
            };
            let scenario = Scenario {
                algorithm: &algo,
                roles,
                model: CostModel::Dsm,
            };
            let out = run_scenario(&scenario, &mut RoundRobin::new(), 100_000);
            assert!(out.completed, "seed {seed}");
            assert!(
                out.polling_spec.is_err(),
                "seed {seed} should violate Spec 4.1"
            );
        }
    }

    #[test]
    fn contract_is_unbounded_so_violations_are_in_contract() {
        assert_eq!(SeededBuggy::new(0).max_concurrent_waiters(), None);
    }
}
