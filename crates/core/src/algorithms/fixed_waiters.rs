//! §7, "many waiters, fixed in advance": the signaler knows the waiter IDs.
//!
//! Shared data: `V[1..N]` with `V[i]` local to `p_i` (the per-waiter signal
//! flags). `Poll()` by `p_i` reads and returns `V[i]` — 0 RMRs in DSM, O(1)
//! in CC.
//!
//! Two signaler strategies, matching the paper's two paragraphs:
//!
//! * **Eager** — `Signal()` writes `V[j]` for every fixed waiter `p_j`:
//!   wait-free, O(W) RMRs worst case, and *amortized* complexity above O(1)
//!   when only o(W) waiters actually participate.
//! * **Awaiting** — a terminating variant that restores O(1) amortized
//!   cost: the signaler busy-waits for each waiter to raise a participation
//!   flag (allocated in the **signaler's** module so the spin is local)
//!   before writing that waiter's `V[j]`. This requires the signaler's
//!   identity to be fixed too — the price of local spinning in DSM.
//!
//! The Ω(W) lower bound for the eager situation (signaler must write every
//! participating waiter's module) is reproduced executably in the adversary
//! crate (`fixed_w`).

use crate::algorithm::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
use shm_sim::{AddrRange, MemLayout, Op, ProcId, ProcedureCall, Step, Word};
use std::sync::Arc;

/// Signaler strategy for [`FixedWaiters`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FixedWaitersMode {
    /// Wait-free: write every fixed waiter's flag unconditionally.
    Eager,
    /// Terminating: wait (locally) for each waiter to participate before
    /// writing its flag. The participation flags live in `signaler`'s
    /// module.
    Awaiting {
        /// The (fixed) signaler whose module hosts the participation flags.
        signaler: ProcId,
    },
}

/// The fixed-waiters algorithm of §7.
#[derive(Clone, Debug)]
pub struct FixedWaiters {
    /// The waiter IDs fixed in advance.
    pub waiters: Vec<ProcId>,
    /// Signaler strategy.
    pub mode: FixedWaitersMode,
}

impl FixedWaiters {
    /// Eager variant with the given fixed waiter set.
    #[must_use]
    pub fn eager(waiters: Vec<ProcId>) -> Self {
        FixedWaiters {
            waiters,
            mode: FixedWaitersMode::Eager,
        }
    }

    /// Awaiting (terminating, O(1)-amortized) variant.
    #[must_use]
    pub fn awaiting(waiters: Vec<ProcId>, signaler: ProcId) -> Self {
        FixedWaiters {
            waiters,
            mode: FixedWaitersMode::Awaiting { signaler },
        }
    }
}

#[derive(Clone, Debug)]
struct Inst {
    waiters: Vec<ProcId>,
    mode: FixedWaitersMode,
    /// Per-process signal flags, `v[i]` local to `p_i`.
    v: AddrRange,
    /// Participation flags (Awaiting mode): `part[k]` is raised by the k-th
    /// fixed waiter; all local to the fixed signaler.
    part: AddrRange,
    /// Per-process "first poll done" flags, local to each process.
    reg: AddrRange,
}

impl Inst {
    fn waiter_slot(&self, pid: ProcId) -> Option<usize> {
        self.waiters.iter().position(|&w| w == pid)
    }
}

impl SignalingAlgorithm for FixedWaiters {
    fn name(&self) -> &'static str {
        match self.mode {
            FixedWaitersMode::Eager => "fixed-waiters-eager",
            FixedWaitersMode::Awaiting { .. } => "fixed-waiters-awaiting",
        }
    }

    fn primitive_class(&self) -> PrimitiveClass {
        PrimitiveClass::ReadWrite
    }

    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn AlgorithmInstance> {
        assert!(
            self.waiters.iter().all(|w| w.index() < n),
            "fixed waiter IDs must be < n"
        );
        let part = match self.mode {
            FixedWaitersMode::Awaiting { signaler } => {
                assert!(signaler.index() < n, "fixed signaler ID must be < n");
                layout.alloc_local_array(signaler, self.waiters.len(), 0)
            }
            // Unused in eager mode; keep a zero-length placeholder range.
            FixedWaitersMode::Eager => layout.alloc_global_array(0, 0),
        };
        Arc::new(Inst {
            waiters: self.waiters.clone(),
            mode: self.mode,
            v: layout.alloc_per_process_array(n, 0),
            part,
            reg: layout.alloc_per_process_array(n, 0),
        })
    }
}

impl AlgorithmInstance for Inst {
    fn signal_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Signal {
            inst: self.clone(),
            idx: 0,
            phase: SigPhase::Next,
        })
    }

    fn poll_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Poll {
            inst: self.clone(),
            me: pid,
            state: PollState::ReadReg,
        })
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SigPhase {
    /// Decide what to do for waiter `idx`.
    Next,
    /// (Awaiting) spinning on `part[idx]`.
    AwaitPart,
    /// Write `V[waiters[idx]]`, then advance.
    WriteV,
}

#[derive(Clone, Debug)]
struct Signal {
    inst: Inst,
    idx: usize,
    phase: SigPhase,
}

impl ProcedureCall for Signal {
    fn step(&mut self, last: Option<Word>) -> Step {
        loop {
            if self.idx >= self.inst.waiters.len() {
                return Step::Return(0);
            }
            match self.phase {
                SigPhase::Next => match self.inst.mode {
                    FixedWaitersMode::Eager => {
                        self.phase = SigPhase::WriteV;
                        let w = self.inst.waiters[self.idx];
                        self.idx += 1;
                        return Step::Op(Op::Write(self.inst.v.at(w.index()), 1));
                    }
                    FixedWaitersMode::Awaiting { .. } => {
                        self.phase = SigPhase::AwaitPart;
                        return Step::Op(Op::Read(self.inst.part.at(self.idx)));
                    }
                },
                SigPhase::AwaitPart => {
                    if last.expect("part flag") == 0 {
                        // Keep spinning (locally, in the signaler's module).
                        return Step::Op(Op::Read(self.inst.part.at(self.idx)));
                    }
                    self.phase = SigPhase::WriteV;
                    let w = self.inst.waiters[self.idx];
                    self.idx += 1;
                    return Step::Op(Op::Write(self.inst.v.at(w.index()), 1));
                }
                SigPhase::WriteV => {
                    // The write completed; move to the next waiter.
                    self.phase = SigPhase::Next;
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PollState {
    ReadReg,
    Branch,
    WritePart,
    ReadV,
    ReturnLast,
}

#[derive(Clone, Debug)]
struct Poll {
    inst: Inst,
    me: ProcId,
    state: PollState,
}

impl ProcedureCall for Poll {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            PollState::ReadReg => {
                self.state = PollState::Branch;
                Step::Op(Op::Read(self.inst.reg.at(self.me.index())))
            }
            PollState::Branch => {
                let first = last.expect("REG value") == 0;
                let needs_part = first
                    && matches!(self.inst.mode, FixedWaitersMode::Awaiting { .. })
                    && self.inst.waiter_slot(self.me).is_some();
                if needs_part {
                    self.state = PollState::WritePart;
                    let slot = self.inst.waiter_slot(self.me).expect("checked");
                    Step::Op(Op::Write(self.inst.part.at(slot), 1))
                } else if first {
                    self.state = PollState::ReadV;
                    Step::Op(Op::Write(self.inst.reg.at(self.me.index()), 1))
                } else {
                    self.state = PollState::ReturnLast;
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
            PollState::WritePart => {
                self.state = PollState::ReadV;
                Step::Op(Op::Write(self.inst.reg.at(self.me.index()), 1))
            }
            PollState::ReadV => {
                self.state = PollState::ReturnLast;
                Step::Op(Op::Read(self.inst.v.at(self.me.index())))
            }
            PollState::ReturnLast => Step::Return(last.expect("V value")),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Role, Scenario};
    use shm_sim::{CostModel, RoundRobin, SeededRandom};

    fn all_waiter_roles(w: usize, signaler: usize, n: usize) -> Vec<Role> {
        (0..n)
            .map(|i| {
                if i == signaler {
                    Role::signaler()
                } else if i < w {
                    Role::waiter()
                } else {
                    Role::Bystander
                }
            })
            .collect()
    }

    #[test]
    fn eager_spec_holds_under_random_schedules() {
        let waiters: Vec<ProcId> = (0..5).map(ProcId).collect();
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            for seed in 0..30 {
                let algo = FixedWaiters::eager(waiters.clone());
                let scenario = Scenario {
                    algorithm: &algo,
                    roles: all_waiter_roles(5, 6, 7),
                    model,
                };
                let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
                assert!(out.completed, "{model:?} seed {seed}");
                assert_eq!(out.polling_spec, Ok(()), "{model:?} seed {seed}");
            }
        }
    }

    #[test]
    fn awaiting_spec_holds_under_random_schedules() {
        let waiters: Vec<ProcId> = (0..5).map(ProcId).collect();
        for seed in 0..30 {
            let algo = FixedWaiters::awaiting(waiters.clone(), ProcId(6));
            let scenario = Scenario {
                algorithm: &algo,
                roles: all_waiter_roles(5, 6, 7),
                model: CostModel::Dsm,
            };
            let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
            assert!(out.completed, "seed {seed}");
            assert_eq!(out.polling_spec, Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn eager_signaler_costs_w_rmrs_in_dsm() {
        let w = 16;
        let waiters: Vec<ProcId> = (0..w).map(|i| ProcId(i as u32)).collect();
        let algo = FixedWaiters::eager(waiters);
        let scenario = Scenario {
            algorithm: &algo,
            roles: all_waiter_roles(w, w, w + 1),
            model: CostModel::Dsm,
        };
        let out = run_scenario(&scenario, &mut RoundRobin::new(), 1_000_000);
        assert!(out.completed);
        assert_eq!(
            out.sim.proc_stats(ProcId(w as u32)).rmrs,
            w as u64,
            "one write per fixed waiter"
        );
    }

    #[test]
    fn eager_waiters_poll_for_free_in_dsm() {
        let waiters: Vec<ProcId> = (0..3).map(ProcId).collect();
        let algo = FixedWaiters::eager(waiters);
        let scenario = Scenario {
            algorithm: &algo,
            roles: all_waiter_roles(3, 3, 4),
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = shm_sim::Simulator::new(&spec);
        // Waiter 0 polls many times before the signal.
        for _ in 0..200 {
            let _ = sim.step(ProcId(0));
        }
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(
            sim.proc_stats(ProcId(0)).rmrs,
            0,
            "V[0] and REG[0] are local"
        );
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
    }

    #[test]
    fn awaiting_signaler_rmrs_track_participants_not_w() {
        // All 8 waiters participate: signaler pays 8 V-writes, spins locally.
        let w = 8;
        let waiters: Vec<ProcId> = (0..w).map(|i| ProcId(i as u32)).collect();
        let algo = FixedWaiters::awaiting(waiters, ProcId(w as u32));
        let scenario = Scenario {
            algorithm: &algo,
            roles: all_waiter_roles(w, w, w + 1),
            model: CostModel::Dsm,
        };
        let out = run_scenario(&scenario, &mut RoundRobin::new(), 1_000_000);
        assert!(out.completed);
        assert_eq!(out.polling_spec, Ok(()));
        let sig = out.sim.proc_stats(ProcId(w as u32));
        assert_eq!(
            sig.rmrs, w as u64,
            "exactly one remote write per participant; spins were local"
        );
        // Amortized over W+1 participants: O(1).
        let total = out.sim.totals().rmrs;
        assert!(
            total <= 3 * (w as u64 + 1),
            "total {total} should be O(participants)"
        );
    }

    #[test]
    fn awaiting_signal_blocks_until_all_waiters_show_up() {
        let waiters: Vec<ProcId> = vec![ProcId(0), ProcId(1)];
        let algo = FixedWaiters::awaiting(waiters, ProcId(2));
        let scenario = Scenario {
            algorithm: &algo,
            roles: vec![Role::waiter(), Role::waiter(), Role::signaler()],
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = shm_sim::Simulator::new(&spec);
        // Signaler runs alone: it must not complete Signal() yet.
        for _ in 0..100 {
            let _ = sim.step(ProcId(2));
        }
        assert!(sim.is_runnable(ProcId(2)));
        assert!(
            sim.has_pending_call(ProcId(2)),
            "Signal() is still awaiting participation"
        );
        // Waiters show up; now everything drains.
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
    }
}
