//! §7, "many waiters not fixed in advance, one signaler fixed in advance".
//!
//! The signaler's identity is known, so waiters *register* by raising a
//! dedicated flag in the signaler's memory module; the signaler scans those
//! flags locally. The race between registration and an in-flight `Signal()`
//! is handled by a global Boolean `S` written at the start of `Signal()` and
//! checked by waiters at the end of their first `Poll()` (after
//! registering) — exactly the construction described in the §7 paragraph.
//!
//! * `Poll()` by `p_i`, first call: write `R[i] := true` (in the signaler's
//!   module, 1 RMR); read and return `S`.
//! * `Poll()` by `p_i`, later calls: read and return `V[i]` (local).
//! * `Signal()` by the fixed signaler: write `S := true` (1 RMR); for each
//!   `i`, read `R[i]` (local) and, if registered, write `V[i] := true`
//!   (1 RMR per registered waiter).
//!
//! Costs in DSM: waiters O(1) worst case; signaler O(k) for k registered
//! waiters; amortized O(1) because every registered waiter participates.
//! `Wait()` is provided natively: register, check `S`, then spin on the
//! *local* flag `V[i]` — local spinning is what blocking semantics buys.

use crate::algorithm::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
use shm_sim::{Addr, AddrRange, MemLayout, Op, ProcId, ProcedureCall, Step, Word};
use std::sync::Arc;

/// The fixed-signaler algorithm of §7.
#[derive(Clone, Copy, Debug)]
pub struct FixedSignaler {
    /// The process whose module hosts the registration flags and which will
    /// call `Signal()`.
    pub signaler: ProcId,
}

#[derive(Clone, Debug)]
struct Inst {
    s: Addr,
    /// Registration flags, all local to the fixed signaler.
    r: AddrRange,
    /// Per-process signal flags, `v[i]` local to `p_i`.
    v: AddrRange,
    /// Per-process "first poll done" flags.
    reg: AddrRange,
    n: usize,
}

impl SignalingAlgorithm for FixedSignaler {
    fn name(&self) -> &'static str {
        "fixed-signaler"
    }

    fn primitive_class(&self) -> PrimitiveClass {
        PrimitiveClass::ReadWrite
    }

    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn AlgorithmInstance> {
        assert!(self.signaler.index() < n, "fixed signaler ID must be < n");
        Arc::new(Inst {
            s: layout.alloc_global(0),
            r: layout.alloc_local_array(self.signaler, n, 0),
            v: layout.alloc_per_process_array(n, 0),
            reg: layout.alloc_per_process_array(n, 0),
            n,
        })
    }
}

impl AlgorithmInstance for Inst {
    fn signal_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Signal {
            inst: self.clone(),
            state: SigState::WriteS,
            idx: 0,
        })
    }

    fn poll_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Poll {
            inst: self.clone(),
            me: pid,
            state: PollState::ReadReg,
        })
    }

    fn wait_call(&self, pid: ProcId) -> Option<Box<dyn ProcedureCall>> {
        Some(Box::new(Wait {
            inst: self.clone(),
            me: pid,
            state: WaitState::ReadReg,
        }))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SigState {
    WriteS,
    ReadR,
    DecideR,
}

#[derive(Clone, Debug)]
struct Signal {
    inst: Inst,
    state: SigState,
    idx: usize,
}

impl ProcedureCall for Signal {
    fn step(&mut self, last: Option<Word>) -> Step {
        loop {
            match self.state {
                SigState::WriteS => {
                    self.state = SigState::ReadR;
                    return Step::Op(Op::Write(self.inst.s, 1));
                }
                SigState::ReadR => {
                    if self.idx >= self.inst.n {
                        return Step::Return(0);
                    }
                    self.state = SigState::DecideR;
                    return Step::Op(Op::Read(self.inst.r.at(self.idx)));
                }
                SigState::DecideR => {
                    let registered = last.expect("R flag") != 0;
                    let i = self.idx;
                    self.idx += 1;
                    self.state = SigState::ReadR;
                    if registered {
                        return Step::Op(Op::Write(self.inst.v.at(i), 1));
                    }
                    // Not registered: continue the scan without an access
                    // for V — loop to issue the next R read immediately.
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PollState {
    ReadReg,
    Branch,
    MarkReg,
    ReadS,
    ReturnLast,
}

#[derive(Clone, Debug)]
struct Poll {
    inst: Inst,
    me: ProcId,
    state: PollState,
}

impl ProcedureCall for Poll {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            PollState::ReadReg => {
                self.state = PollState::Branch;
                Step::Op(Op::Read(self.inst.reg.at(self.me.index())))
            }
            PollState::Branch => {
                if last.expect("REG value") == 0 {
                    self.state = PollState::MarkReg;
                    Step::Op(Op::Write(self.inst.r.at(self.me.index()), 1))
                } else {
                    self.state = PollState::ReturnLast;
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
            PollState::MarkReg => {
                self.state = PollState::ReadS;
                Step::Op(Op::Write(self.inst.reg.at(self.me.index()), 1))
            }
            PollState::ReadS => {
                self.state = PollState::ReturnLast;
                Step::Op(Op::Read(self.inst.s))
            }
            PollState::ReturnLast => Step::Return(last.expect("flag value")),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WaitState {
    ReadReg,
    Branch,
    MarkReg,
    ReadS,
    DecideS,
    SpinV,
}

#[derive(Clone, Debug)]
struct Wait {
    inst: Inst,
    me: ProcId,
    state: WaitState,
}

impl ProcedureCall for Wait {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            WaitState::ReadReg => {
                self.state = WaitState::Branch;
                Step::Op(Op::Read(self.inst.reg.at(self.me.index())))
            }
            WaitState::Branch => {
                if last.expect("REG value") == 0 {
                    self.state = WaitState::MarkReg;
                    Step::Op(Op::Write(self.inst.r.at(self.me.index()), 1))
                } else {
                    self.state = WaitState::SpinV;
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
            WaitState::MarkReg => {
                self.state = WaitState::ReadS;
                Step::Op(Op::Write(self.inst.reg.at(self.me.index()), 1))
            }
            WaitState::ReadS => {
                self.state = WaitState::DecideS;
                Step::Op(Op::Read(self.inst.s))
            }
            WaitState::DecideS => {
                if last.expect("S value") != 0 {
                    Step::Return(1)
                } else {
                    self.state = WaitState::SpinV;
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
            WaitState::SpinV => {
                if last.expect("V value") != 0 {
                    Step::Return(1)
                } else {
                    // Local spin: V[me] lives in our own module.
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Role, Scenario};
    use shm_sim::{CostModel, RoundRobin, SeededRandom, Simulator};

    fn roles(n_waiters: usize, signaler: usize) -> Vec<Role> {
        (0..=signaler)
            .map(|i| {
                if i == signaler {
                    Role::signaler()
                } else if i < n_waiters {
                    Role::waiter()
                } else {
                    Role::Bystander
                }
            })
            .collect()
    }

    #[test]
    fn spec_holds_under_random_schedules_in_both_models() {
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            for seed in 0..40 {
                let algo = FixedSignaler {
                    signaler: ProcId(5),
                };
                let scenario = Scenario {
                    algorithm: &algo,
                    roles: roles(5, 5),
                    model,
                };
                let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
                assert!(out.completed, "{model:?} seed {seed}");
                assert_eq!(out.polling_spec, Ok(()), "{model:?} seed {seed}");
            }
        }
    }

    #[test]
    fn waiter_costs_constant_rmrs_in_dsm() {
        let algo = FixedSignaler {
            signaler: ProcId(3),
        };
        let scenario = Scenario {
            algorithm: &algo,
            roles: roles(3, 3),
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        // Waiter 0 polls many times before the signal.
        for _ in 0..300 {
            let _ = sim.step(ProcId(0));
        }
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
        // First poll: R-write (remote) + S-read (remote) = 2 RMRs; later
        // polls are local.
        assert!(
            sim.proc_stats(ProcId(0)).rmrs <= 2,
            "waiter: {}",
            sim.proc_stats(ProcId(0)).rmrs
        );
    }

    #[test]
    fn signaler_rmrs_are_one_plus_registered_in_dsm() {
        let k = 6;
        let algo = FixedSignaler {
            signaler: ProcId(k as u32),
        };
        let scenario = Scenario {
            algorithm: &algo,
            roles: roles(k, k),
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        // All waiters register first (each completes one poll).
        for i in 0..k {
            for _ in 0..5 {
                let _ = sim.step(ProcId(i as u32));
            }
        }
        // Now the signaler runs.
        while sim.is_runnable(ProcId(k as u32)) {
            let _ = sim.step(ProcId(k as u32));
        }
        assert_eq!(
            sim.proc_stats(ProcId(k as u32)).rmrs,
            1 + k as u64,
            "S write + one V write per registered waiter; R scan is local"
        );
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
    }

    #[test]
    fn registration_race_is_safe() {
        // Interleave a waiter's first poll inside the signaler's Signal() at
        // every possible point; the spec must hold each time.
        let algo = FixedSignaler {
            signaler: ProcId(1),
        };
        for pause_after in 0..8 {
            let scenario = Scenario {
                algorithm: &algo,
                roles: vec![Role::waiter(), Role::signaler()],
                model: CostModel::Dsm,
            };
            let spec = scenario.build();
            let mut sim = Simulator::new(&spec);
            for _ in 0..pause_after {
                if sim.is_runnable(ProcId(1)) {
                    let _ = sim.step(ProcId(1));
                }
            }
            // Waiter performs its entire first poll mid-signal.
            for _ in 0..6 {
                let _ = sim.step(ProcId(0));
            }
            assert!(shm_sim::run_to_completion(
                &mut sim,
                &mut RoundRobin::new(),
                1_000_000
            ));
            assert_eq!(
                crate::spec::check_polling(sim.history()),
                Ok(()),
                "pause_after={pause_after}"
            );
        }
    }

    #[test]
    fn native_wait_spins_locally_in_dsm() {
        let algo = FixedSignaler {
            signaler: ProcId(1),
        };
        let scenario = Scenario {
            algorithm: &algo,
            roles: vec![Role::BlockingWaiter, Role::signaler()],
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        // Waiter registers and spins a lot.
        for _ in 0..200 {
            let _ = sim.step(ProcId(0));
        }
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_blocking(sim.history()), Ok(()));
        assert!(
            sim.proc_stats(ProcId(0)).rmrs <= 2,
            "register + S check; the V spin is local: {}",
            sim.proc_stats(ProcId(0)).rmrs
        );
    }
}
