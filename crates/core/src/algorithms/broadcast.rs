//! Broadcast signaling: the natural *correct* read/write attempt at the
//! hardest variant (many waiters, nobody fixed in advance) — and the
//! canonical victim of the §6 lower bound.
//!
//! Since the signaler cannot know who the waiters are, it writes **every**
//! process's local flag: `Signal()` writes `V[j] := true` for all `j`;
//! `Poll()` by `p_i` reads and returns `V[i]` (local, 0 RMRs in DSM).
//!
//! This is safe (it satisfies Specification 4.1, see the tests) and waiters
//! are free — but `Signal()` costs N−1 RMRs in the DSM model *regardless of
//! how few processes participate*. Amortized over k participants that is
//! Θ(N/k), unbounded — precisely the behaviour Theorem 6.2 says is
//! unavoidable for read/write algorithms, and what experiment E2 measures
//! when the adversary erases all but a handful of waiters.

use crate::algorithm::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
use crate::algorithms::common::SpinUntil;
use shm_sim::{AddrRange, MemLayout, Op, OpSequence, ProcId, ProcedureCall, Step, Word};
use std::sync::Arc;

/// The broadcast algorithm (write every local flag).
#[derive(Clone, Copy, Debug, Default)]
pub struct Broadcast;

#[derive(Clone, Debug)]
struct Inst {
    v: AddrRange,
    n: usize,
}

impl SignalingAlgorithm for Broadcast {
    fn name(&self) -> &'static str {
        "broadcast"
    }

    fn primitive_class(&self) -> PrimitiveClass {
        PrimitiveClass::ReadWrite
    }

    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn AlgorithmInstance> {
        Arc::new(Inst {
            v: layout.alloc_per_process_array(n, 0),
            n,
        })
    }
}

impl AlgorithmInstance for Inst {
    fn signal_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Signal {
            inst: self.clone(),
            me: pid,
            idx: 0,
        })
    }

    fn poll_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(OpSequence::new(vec![Op::Read(self.v.at(pid.index()))]))
    }

    fn wait_call(&self, pid: ProcId) -> Option<Box<dyn ProcedureCall>> {
        Some(Box::new(SpinUntil::new(self.v.at(pid.index()), 1)))
    }
}

/// Writes `V[j] := 1` for all j (own flag first, so the signaler-as-waiter
/// case is handled), then returns.
#[derive(Clone, Debug)]
struct Signal {
    inst: Inst,
    me: ProcId,
    idx: usize,
}

impl ProcedureCall for Signal {
    fn step(&mut self, _last: Option<Word>) -> Step {
        if self.idx == 0 {
            self.idx += 1;
            return Step::Op(Op::Write(self.inst.v.at(self.me.index()), 1));
        }
        // Remaining flags in ID order, skipping our own (already written).
        let mut j = self.idx - 1;
        if j == self.me.index() {
            self.idx += 1;
            j += 1;
        }
        if j >= self.inst.n {
            return Step::Return(0);
        }
        self.idx += 1;
        Step::Op(Op::Write(self.inst.v.at(j), 1))
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Role, Scenario};
    use shm_sim::{CostModel, RoundRobin, SeededRandom};

    #[test]
    fn spec_holds_under_random_schedules_in_both_models() {
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            for seed in 0..40 {
                let mut roles = vec![Role::waiter(); 6];
                roles.push(Role::signaler());
                let scenario = Scenario {
                    algorithm: &Broadcast,
                    roles,
                    model,
                };
                let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
                assert!(out.completed, "{model:?} seed {seed}");
                assert_eq!(out.polling_spec, Ok(()), "{model:?} seed {seed}");
            }
        }
    }

    #[test]
    fn waiters_poll_for_free_in_dsm() {
        let mut roles = vec![Role::waiter(); 3];
        roles.push(Role::signaler());
        let scenario = Scenario {
            algorithm: &Broadcast,
            roles,
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = shm_sim::Simulator::new(&spec);
        for _ in 0..150 {
            let _ = sim.step(ProcId(0));
        }
        assert_eq!(
            sim.proc_stats(ProcId(0)).rmrs,
            0,
            "polls read the local flag"
        );
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
    }

    #[test]
    fn signaler_pays_n_minus_one_rmrs_in_dsm_no_matter_who_participates() {
        let n = 16;
        let mut roles = vec![Role::Bystander; n - 1];
        roles.push(Role::signaler());
        let scenario = Scenario {
            algorithm: &Broadcast,
            roles,
            model: CostModel::Dsm,
        };
        let out = run_scenario(&scenario, &mut RoundRobin::new(), 1_000_000);
        assert!(out.completed);
        // Nobody participates but the signaler still broadcasts: the
        // amortized pathology the lower bound predicts.
        assert_eq!(out.sim.proc_stats(ProcId(n as u32 - 1)).rmrs, n as u64 - 1);
    }

    #[test]
    fn blocking_wait_spins_locally() {
        let scenario = Scenario {
            algorithm: &Broadcast,
            roles: vec![Role::BlockingWaiter, Role::signaler()],
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = shm_sim::Simulator::new(&spec);
        for _ in 0..100 {
            let _ = sim.step(ProcId(0));
        }
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(
            sim.proc_stats(ProcId(0)).rmrs,
            0,
            "waiting is entirely local"
        );
        assert_eq!(crate::spec::check_blocking(sim.history()), Ok(()));
    }
}
