//! The §5 upper bound: one shared Boolean.
//!
//! `Signal()` writes `B := true`; `Poll()` reads and returns `B`; `Wait()`
//! busy-waits on `B`. Wait-free, O(1) space, reads and writes only, and
//! O(1) RMRs per process **in the CC model**. In the DSM model the same
//! code has unbounded RMR complexity (every poll of the global flag by a
//! process that doesn't own its module is an RMR), and Theorem 6.2 shows no
//! read/write/CAS/LLSC algorithm can fix that even in the amortized sense.

use crate::algorithm::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
use crate::algorithms::common::SpinUntil;
use shm_sim::{Addr, MemLayout, Op, OpSequence, ProcId, ProcedureCall};
use std::sync::Arc;

/// The single-Boolean algorithm of §5.
#[derive(Clone, Copy, Debug, Default)]
pub struct CcFlag;

#[derive(Clone, Copy, Debug)]
struct Inst {
    b: Addr,
}

impl SignalingAlgorithm for CcFlag {
    fn name(&self) -> &'static str {
        "cc-flag"
    }

    fn primitive_class(&self) -> PrimitiveClass {
        PrimitiveClass::ReadWrite
    }

    fn instantiate(&self, layout: &mut MemLayout, _n: usize) -> Arc<dyn AlgorithmInstance> {
        let b = layout.alloc_global(0);
        layout.set_label(b, "B");
        Arc::new(Inst { b })
    }
}

impl AlgorithmInstance for Inst {
    fn signal_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(OpSequence::new(vec![Op::Write(self.b, 1)]))
    }

    fn poll_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(OpSequence::new(vec![Op::Read(self.b)]))
    }

    fn wait_call(&self, _pid: ProcId) -> Option<Box<dyn ProcedureCall>> {
        Some(Box::new(SpinUntil::new(self.b, 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Role, Scenario};
    use shm_sim::{CostModel, ProcId, RoundRobin, SeededRandom};

    #[test]
    fn satisfies_spec_under_many_random_schedules() {
        for seed in 0..50 {
            let scenario = Scenario {
                algorithm: &CcFlag,
                roles: vec![
                    Role::waiter(),
                    Role::waiter(),
                    Role::Waiter { max_polls: Some(3) },
                    Role::Signaler { polls_first: 2 },
                ],
                model: CostModel::cc_default(),
            };
            let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
            assert!(out.completed, "seed {seed}");
            assert_eq!(out.polling_spec, Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn cc_model_constant_rmrs_per_process() {
        // The §5 claim: O(1) RMRs per process in CC, even with many waiters
        // polling many times before the signal.
        let n = 32;
        let mut roles = vec![Role::waiter(); n - 1];
        roles.push(Role::signaler());
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles,
            model: CostModel::cc_default(),
        };
        // Round-robin makes each waiter poll once before the signaler runs;
        // then everyone re-polls and finishes.
        let out = run_scenario(&scenario, &mut RoundRobin::new(), 1_000_000);
        assert!(out.completed);
        for i in 0..n {
            let rmrs = out.sim.proc_stats(ProcId(i as u32)).rmrs;
            assert!(rmrs <= 3, "p{i} incurred {rmrs} RMRs; expected O(1)");
        }
    }

    #[test]
    fn wait_freedom_every_call_is_bounded() {
        // Each Poll is 1 access; Signal is 1 access — bounded steps per call
        // regardless of scheduling (wait-freedom).
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles: vec![
                Role::Waiter {
                    max_polls: Some(100),
                },
                Role::signaler(),
            ],
            model: CostModel::cc_default(),
        };
        let out = run_scenario(&scenario, &mut SeededRandom::new(1), 1_000_000);
        assert!(out.completed);
        let stats = out.sim.proc_stats(ProcId(0));
        // steps per call = accesses + returns + invokes, all O(1) per call.
        assert!(stats.steps <= 2 * stats.calls_completed + 2);
    }

    #[test]
    fn dsm_model_rmrs_grow_with_poll_count() {
        // The same code in DSM: every poll is an RMR. This is the trivial
        // side of the separation (the nontrivial side — that *no* algorithm
        // avoids this — is the adversary crate's job).
        let polls = 64;
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles: vec![Role::Waiter {
                max_polls: Some(polls),
            }],
            model: CostModel::Dsm,
        };
        let out = run_scenario(&scenario, &mut RoundRobin::new(), 1_000_000);
        assert!(out.completed);
        assert_eq!(out.sim.proc_stats(ProcId(0)).rmrs, polls);
    }

    #[test]
    fn blocking_semantics_wait_spins_locally_in_cc() {
        let scenario = Scenario {
            algorithm: &CcFlag,
            roles: vec![Role::BlockingWaiter, Role::Signaler { polls_first: 0 }],
            model: CostModel::cc_default(),
        };
        // Let the waiter spin a lot before the signaler runs.
        let spec = scenario.build();
        let mut sim = shm_sim::Simulator::new(&spec);
        for _ in 0..100 {
            let _ = sim.step(ProcId(0));
        }
        let mut rr = RoundRobin::new();
        assert!(shm_sim::run_to_completion(&mut sim, &mut rr, 1_000_000));
        assert!(sim.proc_stats(ProcId(0)).rmrs <= 3, "spin was cached");
        assert_eq!(crate::spec::check_blocking(sim.history()), Ok(()));
    }
}
