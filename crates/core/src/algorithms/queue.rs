//! §7, "many waiters not fixed in advance, one signaler not fixed in
//! advance": the variant the lower bound governs — unless stronger
//! primitives are available.
//!
//! With only reads, writes, CAS and LL/SC this variant *cannot* be solved
//! with O(1) amortized RMRs in the DSM model (Theorem 6.2 / Corollary 6.14).
//! With Fetch-And-Add the gap closes: waiters register in a shared
//! FAA-based list during their first `Poll()`, and the signaler drains the
//! list, writing each registered waiter's local flag.
//!
//! * `Poll()` by `p_i`, first call: enqueue `i` into the registration list
//!   (FAA + slot write, 2 RMRs); read and return the global flag `G`.
//! * `Poll()` by `p_i`, later calls: read and return `V[i]` (local).
//! * `Signal()`: write `G := true`; read the list's ticket counter `t`;
//!   for each slot `j < t`, read the slot and, if it holds an ID, write that
//!   waiter's `V`. Claimed-but-unwritten slots are **skipped**: the racing
//!   waiter wrote its slot before reading `G`, and `G` was set before the
//!   scan, so that waiter's first `Poll()` returns true via `G`.
//!
//! Costs in DSM: waiters O(1) worst case; a signaler O(k) for k registered
//! waiters; amortized O(1). The signaler's identity is arbitrary, and the
//! code is safe for *many* concurrent signalers (all writes are idempotent
//! and every registered waiter is covered by each scan), which also covers
//! the paper's "many signalers" variant without leader election.
//!
//! `Wait()` is provided natively: register, check `G`, spin on local `V[i]`.

use crate::algorithm::{AlgorithmInstance, PrimitiveClass, SignalingAlgorithm};
use shm_primitives::RegistrationList;
use shm_sim::{Addr, AddrRange, MemLayout, Op, ProcId, ProcedureCall, Step, Word};
use std::sync::Arc;

/// The FAA-queue algorithm of §7.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueSignaling;

#[derive(Clone, Debug)]
struct Inst {
    g: Addr,
    list: RegistrationList,
    v: AddrRange,
    reg: AddrRange,
}

impl SignalingAlgorithm for QueueSignaling {
    fn name(&self) -> &'static str {
        "queue-faa"
    }

    fn primitive_class(&self) -> PrimitiveClass {
        PrimitiveClass::ReadWriteRmw
    }

    fn instantiate(&self, layout: &mut MemLayout, n: usize) -> Arc<dyn AlgorithmInstance> {
        let inst = Inst {
            g: layout.alloc_global(0),
            list: RegistrationList::allocate(layout, n),
            v: layout.alloc_per_process_array(n, 0),
            reg: layout.alloc_per_process_array(n, 0),
        };
        layout.set_label(inst.g, "G");
        layout.set_label(inst.list.tail, "TAIL");
        layout.set_array_label(inst.list.slots, "SLOT");
        layout.set_array_label(inst.v, "V");
        layout.set_array_label(inst.reg, "REG");
        Arc::new(inst)
    }
}

impl AlgorithmInstance for Inst {
    fn signal_call(&self, _pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Signal {
            inst: self.clone(),
            state: SigState::WriteG,
            count: 0,
            idx: 0,
        })
    }

    fn poll_call(&self, pid: ProcId) -> Box<dyn ProcedureCall> {
        Box::new(Poll {
            inst: self.clone(),
            me: pid,
            state: PollState::ReadReg,
            ticket: None,
        })
    }

    fn wait_call(&self, pid: ProcId) -> Option<Box<dyn ProcedureCall>> {
        Some(Box::new(Wait {
            inst: self.clone(),
            me: pid,
            state: WaitState::ReadReg,
        }))
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SigState {
    WriteG,
    ReadTail,
    ConsumeTail,
    ReadSlot,
    DecideSlot,
}

#[derive(Clone, Debug)]
struct Signal {
    inst: Inst,
    state: SigState,
    /// Number of claimed tickets observed at the start of the scan.
    count: usize,
    /// Scan cursor.
    idx: usize,
}

impl ProcedureCall for Signal {
    fn step(&mut self, last: Option<Word>) -> Step {
        loop {
            match self.state {
                SigState::WriteG => {
                    self.state = SigState::ReadTail;
                    return Step::Op(Op::Write(self.inst.g, 1));
                }
                SigState::ReadTail => {
                    self.state = SigState::ConsumeTail;
                    return Step::Op(Op::Read(self.inst.list.tail));
                }
                SigState::ConsumeTail => {
                    let t = last.expect("tail value");
                    // Clamp to capacity (every process registers at most once).
                    self.count = (t as usize).min(self.inst.list.capacity());
                    self.state = SigState::ReadSlot;
                }
                SigState::ReadSlot => {
                    if self.idx >= self.count {
                        return Step::Return(0);
                    }
                    self.state = SigState::DecideSlot;
                    return Step::Op(Op::Read(self.inst.list.slots.at(self.idx)));
                }
                SigState::DecideSlot => {
                    let slot = last.expect("slot value");
                    self.idx += 1;
                    self.state = SigState::ReadSlot;
                    if let Some(waiter) = ProcId::from_word(slot) {
                        return Step::Op(Op::Write(self.inst.v.at(waiter.index()), 1));
                    }
                    // NIL slot: claimed but not yet written — skip (see
                    // module docs for why this is safe).
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PollState {
    ReadReg,
    Branch,
    Faa,
    WriteSlot,
    MarkReg,
    ReadG,
    ReturnLast,
}

#[derive(Clone, Debug)]
struct Poll {
    inst: Inst,
    me: ProcId,
    state: PollState,
    ticket: Option<Word>,
}

impl ProcedureCall for Poll {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            PollState::ReadReg => {
                self.state = PollState::Branch;
                Step::Op(Op::Read(self.inst.reg.at(self.me.index())))
            }
            PollState::Branch => {
                if last.expect("REG value") == 0 {
                    self.state = PollState::Faa;
                    Step::Op(Op::Faa(self.inst.list.tail, 1))
                } else {
                    self.state = PollState::ReturnLast;
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
            PollState::Faa => {
                let t = last.expect("FAA result");
                assert!(
                    (t as usize) < self.inst.list.capacity(),
                    "registration overflow"
                );
                self.ticket = Some(t);
                self.state = PollState::WriteSlot;
                Step::Op(Op::Write(
                    self.inst.list.slots.at(t as usize),
                    self.me.to_word(),
                ))
            }
            PollState::WriteSlot => {
                self.state = PollState::MarkReg;
                Step::Op(Op::Write(self.inst.reg.at(self.me.index()), 1))
            }
            PollState::MarkReg => {
                self.state = PollState::ReadG;
                Step::Op(Op::Read(self.inst.g))
            }
            PollState::ReadG => Step::Return(last.expect("G value")),
            PollState::ReturnLast => Step::Return(last.expect("V value")),
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum WaitState {
    ReadReg,
    Branch,
    Faa,
    WriteSlot,
    MarkReg,
    ReadG,
    SpinV,
}

#[derive(Clone, Debug)]
struct Wait {
    inst: Inst,
    me: ProcId,
    state: WaitState,
}

impl ProcedureCall for Wait {
    fn step(&mut self, last: Option<Word>) -> Step {
        match self.state {
            WaitState::ReadReg => {
                self.state = WaitState::Branch;
                Step::Op(Op::Read(self.inst.reg.at(self.me.index())))
            }
            WaitState::Branch => {
                if last.expect("REG value") == 0 {
                    self.state = WaitState::Faa;
                    Step::Op(Op::Faa(self.inst.list.tail, 1))
                } else {
                    self.state = WaitState::SpinV;
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
            WaitState::Faa => {
                let t = last.expect("FAA result");
                assert!(
                    (t as usize) < self.inst.list.capacity(),
                    "registration overflow"
                );
                self.state = WaitState::WriteSlot;
                Step::Op(Op::Write(
                    self.inst.list.slots.at(t as usize),
                    self.me.to_word(),
                ))
            }
            WaitState::WriteSlot => {
                self.state = WaitState::MarkReg;
                Step::Op(Op::Write(self.inst.reg.at(self.me.index()), 1))
            }
            WaitState::MarkReg => {
                self.state = WaitState::ReadG;
                Step::Op(Op::Read(self.inst.g))
            }
            WaitState::ReadG => {
                if last.expect("G value") != 0 {
                    Step::Return(1)
                } else {
                    self.state = WaitState::SpinV;
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
            WaitState::SpinV => {
                if last.expect("V value") != 0 {
                    Step::Return(1)
                } else {
                    Step::Op(Op::Read(self.inst.v.at(self.me.index())))
                }
            }
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_scenario, Role, Scenario};
    use shm_sim::{CostModel, RoundRobin, SeededRandom, Simulator};

    fn waiters_plus_signaler(w: usize) -> Vec<Role> {
        let mut roles = vec![Role::waiter(); w];
        roles.push(Role::signaler());
        roles
    }

    #[test]
    fn spec_holds_under_random_schedules_in_both_models() {
        for model in [CostModel::Dsm, CostModel::cc_default()] {
            for seed in 0..40 {
                let scenario = Scenario {
                    algorithm: &QueueSignaling,
                    roles: waiters_plus_signaler(6),
                    model,
                };
                let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
                assert!(out.completed, "{model:?} seed {seed}");
                assert_eq!(out.polling_spec, Ok(()), "{model:?} seed {seed}");
            }
        }
    }

    #[test]
    fn waiters_cost_constant_rmrs_in_dsm() {
        let scenario = Scenario {
            algorithm: &QueueSignaling,
            roles: waiters_plus_signaler(4),
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        // Waiter 0 polls many times before the signal.
        for _ in 0..400 {
            let _ = sim.step(ProcId(0));
        }
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
        // First poll: FAA + slot write + G read = 3 RMRs; later polls local.
        assert!(
            sim.proc_stats(ProcId(0)).rmrs <= 3,
            "waiter: {}",
            sim.proc_stats(ProcId(0)).rmrs
        );
    }

    #[test]
    fn amortized_rmrs_are_constant_in_dsm() {
        // Total RMRs across the whole history divided by participants stays
        // bounded as the population grows — the property Theorem 6.2 rules
        // out for read/write/CAS algorithms and FAA restores.
        for w in [4usize, 16, 64] {
            let scenario = Scenario {
                algorithm: &QueueSignaling,
                roles: waiters_plus_signaler(w),
                model: CostModel::Dsm,
            };
            let out = run_scenario(&scenario, &mut RoundRobin::new(), 10_000_000);
            assert!(out.completed);
            assert_eq!(out.polling_spec, Ok(()));
            let participants = (w + 1) as u64;
            let amortized = out.sim.totals().rmrs as f64 / participants as f64;
            assert!(amortized <= 7.0, "w={w}: amortized {amortized}");
        }
    }

    #[test]
    fn registration_race_slot_skip_is_safe() {
        // Waiter claims a ticket, then the signaler runs its entire
        // Signal() (seeing the NIL slot), then the waiter resumes.
        let scenario = Scenario {
            algorithm: &QueueSignaling,
            roles: vec![Role::waiter(), Role::signaler()],
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        // Waiter: invoke + REG read, branch + FAA — stop right after FAA.
        let _ = sim.step(ProcId(0));
        let _ = sim.step(ProcId(0));
        let _ = sim.step(ProcId(0));
        // Signaler completes fully.
        while sim.is_runnable(ProcId(1)) {
            let _ = sim.step(ProcId(1));
        }
        // Waiter resumes; must learn the signal via G on this same poll.
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
        let first_poll = sim
            .history()
            .calls()
            .iter()
            .find(|c| c.kind == crate::kinds::POLL)
            .copied()
            .unwrap();
        assert_eq!(first_poll.return_value, Some(1), "racing waiter sees G");
    }

    #[test]
    fn many_concurrent_signalers_are_safe() {
        for seed in 0..30 {
            let mut roles = vec![Role::waiter(); 5];
            roles.push(Role::signaler());
            roles.push(Role::Signaler { polls_first: 1 });
            roles.push(Role::Signaler { polls_first: 2 });
            let scenario = Scenario {
                algorithm: &QueueSignaling,
                roles,
                model: CostModel::Dsm,
            };
            let out = run_scenario(&scenario, &mut SeededRandom::new(seed), 1_000_000);
            assert!(out.completed, "seed {seed}");
            assert_eq!(out.polling_spec, Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn native_wait_spins_locally_in_dsm() {
        let scenario = Scenario {
            algorithm: &QueueSignaling,
            roles: vec![Role::BlockingWaiter, Role::signaler()],
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        for _ in 0..300 {
            let _ = sim.step(ProcId(0));
        }
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_blocking(sim.history()), Ok(()));
        assert!(
            sim.proc_stats(ProcId(0)).rmrs <= 4,
            "register + G check; V spin local: {}",
            sim.proc_stats(ProcId(0)).rmrs
        );
    }

    #[test]
    fn signaler_rmrs_scale_with_registered_waiters_only() {
        let w = 8;
        let scenario = Scenario {
            algorithm: &QueueSignaling,
            roles: waiters_plus_signaler(w),
            model: CostModel::Dsm,
        };
        let spec = scenario.build();
        let mut sim = Simulator::new(&spec);
        // Only waiters 0..3 register before the signal.
        for i in 0..4 {
            for _ in 0..8 {
                let _ = sim.step(ProcId(i));
            }
        }
        while sim.is_runnable(ProcId(w as u32)) {
            let _ = sim.step(ProcId(w as u32));
        }
        let sig_rmrs = sim.proc_stats(ProcId(w as u32)).rmrs;
        // G write + tail read + 4 slot reads + 4 V writes = 10.
        assert_eq!(sig_rmrs, 10);
        assert!(shm_sim::run_to_completion(
            &mut sim,
            &mut RoundRobin::new(),
            1_000_000
        ));
        assert_eq!(crate::spec::check_polling(sim.history()), Ok(()));
    }
}
