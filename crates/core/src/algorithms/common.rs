//! Shared step machines used by several algorithms.

use shm_sim::{Addr, Op, ProcedureCall, Step, Word};

/// Busy-waits by reading `addr` until it holds `target`, then returns
/// `target`.
///
/// This is the paper's canonical spin loop: O(1) RMRs in the CC model when
/// nobody else writes `addr` in between (the first read caches the cell),
/// and one RMR *per iteration* in the DSM model when `addr` is not local to
/// the spinner — the asymmetry the whole paper is about.
#[derive(Clone, Debug)]
pub struct SpinUntil {
    addr: Addr,
    target: Word,
    issued: bool,
}

impl SpinUntil {
    /// Creates the spin call.
    #[must_use]
    pub fn new(addr: Addr, target: Word) -> Self {
        SpinUntil {
            addr,
            target,
            issued: false,
        }
    }
}

impl ProcedureCall for SpinUntil {
    fn step(&mut self, last: Option<Word>) -> Step {
        if self.issued && last == Some(self.target) {
            Step::Return(self.target)
        } else {
            self.issued = true;
            Step::Op(Op::Read(self.addr))
        }
    }
    fn clone_call(&self) -> Box<dyn ProcedureCall> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spins_until_target_seen() {
        let mut m = SpinUntil::new(Addr(3), 1);
        assert_eq!(m.step(None), Step::Op(Op::Read(Addr(3))));
        assert_eq!(m.step(Some(0)), Step::Op(Op::Read(Addr(3))));
        assert_eq!(m.step(Some(5)), Step::Op(Op::Read(Addr(3))));
        assert_eq!(m.step(Some(1)), Step::Return(1));
    }

    #[test]
    fn returns_immediately_if_first_read_hits() {
        let mut m = SpinUntil::new(Addr(0), 7);
        assert_eq!(m.step(None), Step::Op(Op::Read(Addr(0))));
        assert_eq!(m.step(Some(7)), Step::Return(7));
    }
}
