//! The paper's signaling algorithms.
//!
//! | Algorithm | Paper section | Primitives | Headline bound |
//! |-----------|---------------|------------|----------------|
//! | [`CcFlag`] | §5 | reads/writes | wait-free, O(1) RMR/process **in CC**; unbounded in DSM (the separation's CC side) |
//! | [`SingleWaiter`] | §7 | reads/writes | O(1) RMR/process worst case, both models |
//! | [`FixedWaiters`] | §7 | reads/writes | eager: O(W) signaler worst case; awaiting: terminating, O(1) amortized |
//! | [`FixedSignaler`] | §7 | reads/writes | O(1) waiters, O(k) signaler ⇒ O(1) amortized |
//! | [`QueueSignaling`] | §7 | reads/writes + FAA | O(1) amortized with nobody fixed in advance (closes the gap) |

mod broadcast;
mod cas_list;
mod cc_flag;
mod common;
mod fixed_signaler;
mod fixed_waiters;
mod queue;
mod seeded_buggy;
mod single_waiter;

pub use broadcast::Broadcast;
pub use cas_list::CasList;
pub use cc_flag::CcFlag;
pub use common::SpinUntil;
pub use fixed_signaler::FixedSignaler;
pub use fixed_waiters::{FixedWaiters, FixedWaitersMode};
pub use queue::QueueSignaling;
pub use seeded_buggy::SeededBuggy;
pub use single_waiter::SingleWaiter;
